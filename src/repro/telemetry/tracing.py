"""Hierarchical spans over ``contextvars`` and monotonic clocks.

A :class:`Span` measures one region of work with ``time.perf_counter``
and records itself — name, parent link, duration, attributes — into the
owning collector (:class:`repro.telemetry.Telemetry`) when it closes.
Parent/child linkage rides on a :class:`contextvars.ContextVar`, so
nesting is automatic, per-thread, and survives ``async`` hops.  A span
only links under an ambient parent owned by the *same* session — a
worker-local capture that inherits a stale parent-session span (inline
single-worker runs, fork-based process pools) records its spans as
roots, which is exactly what lets ``run_sharded`` merge them back
positionally (see :meth:`repro.telemetry.Telemetry.absorb`).

The disabled path allocates nothing: :data:`NULL_SPAN` is a single
shared no-op object, so ``tel.span(...)`` on a disabled telemetry is one
attribute check plus returning a singleton.
"""

from __future__ import annotations

import functools
from contextvars import ContextVar
from time import perf_counter
from typing import Callable, Dict, Optional

__all__ = ["NULL_SPAN", "NullSpan", "Span", "current_span", "traced"]

#: The innermost open span of the current thread/context (or ``None``).
_CURRENT_SPAN: ContextVar[Optional["Span"]] = ContextVar(
    "repro_current_span", default=None
)


def current_span() -> Optional["Span"]:
    """The innermost open :class:`Span` in this context, if any."""
    return _CURRENT_SPAN.get()


class NullSpan:
    """The shared no-op span returned while telemetry is disabled.

    Supports the full span surface (context manager, :meth:`set`,
    :attr:`duration`) without measuring or recording anything.
    """

    __slots__ = ()

    #: No-op spans never time anything.
    duration = 0.0

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "NullSpan":
        """Ignore attributes; returns ``self`` for chaining."""
        return self

    def __repr__(self) -> str:
        return "<NullSpan>"


#: The singleton every disabled ``tel.span(...)`` call returns.
NULL_SPAN = NullSpan()


class Span:
    """One timed region; records itself into its collector on exit.

    Created through :meth:`repro.telemetry.Telemetry.span` (recorded) or
    :meth:`repro.telemetry.Telemetry.timed_span` (timing always, recorded
    only when enabled — ``collector=None`` means "time but don't keep").

    Attributes
    ----------
    duration:
        Seconds between ``__enter__`` and ``__exit__`` on the monotonic
        ``perf_counter`` clock; ``0.0`` until the span closes.
    """

    __slots__ = (
        "name", "attrs", "span_id", "parent_id", "start", "duration",
        "hist", "_collector", "_token",
    )

    def __init__(
        self,
        name: str,
        collector=None,
        attrs: Optional[Dict] = None,
        hist: Optional[str] = None,
    ) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.start = 0.0
        self.duration = 0.0
        self.hist = hist
        self._collector = collector
        self._token = None

    def set(self, **attrs) -> "Span":
        """Attach attributes; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        if self._collector is not None:
            parent = _CURRENT_SPAN.get()
            # Only link under an ambient span owned by the SAME session:
            # worker-local captures (inline single-worker runs, fork-based
            # process pools) may see a leftover parent-session span whose
            # id means nothing in this session's id space.
            if parent is not None and parent._collector is self._collector:
                self.parent_id = parent.span_id
            else:
                self.parent_id = None
            self.span_id = self._collector._alloc_span_id()
            self._token = _CURRENT_SPAN.set(self)
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = perf_counter() - self.start
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        if self._collector is not None:
            self._collector._finish_span(self)
        return False

    def __repr__(self) -> str:
        return f"Span({self.name!r}, id={self.span_id})"


def traced(name: Optional[str] = None, **attrs) -> Callable:
    """Decorator form of the span API.

    Wraps a callable in ``get_telemetry().span(...)``, resolved at call
    time, so a function decorated once reports into whichever telemetry
    session is active when it runs (and costs one attribute check when
    none is).

    Examples
    --------
    >>> @traced("demo.work", kind="example")
    ... def work():
    ...     return 42
    >>> work()
    42
    """

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            from .core import get_telemetry

            with get_telemetry().span(span_name, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
