"""Zero-dependency observability: spans, metrics, sinks and reports.

The instrumentation substrate every hot layer reports through — entropy
screening, the incremental halo engine, the rewire memos, the tensor
backends and the RL loop.  Pure stdlib (``contextvars``, ``time``,
``json``), so importing it can never cost a dependency, and **fully off
by default**: the process-wide session is disabled, every recording
call is a single attribute check, and disabled ``span()`` calls return
one shared no-op singleton.

Quick tour::

    from repro.telemetry import Telemetry, use_telemetry

    tel = Telemetry(enabled=True, jsonl_path="run.jsonl")
    with use_telemetry(tel):
        ...                      # instrumented code records spans/metrics
    tel.close()                  # flush the final metric snapshot
    print(tel.report())          # human-readable tree + quantiles

Pipelines opt in through ``RareConfig.telemetry`` / the CLI's
``--telemetry[=PATH]``; ``repro stats run.jsonl`` validates and renders
a persisted stream.  Naming conventions, the JSONL schema and the
overhead policy are documented in ``docs/observability.md``.
"""

from .core import (
    NULL_TELEMETRY,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_from_spec,
    use_telemetry,
)
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsView,
)
from .report import render_report, report_from_events, report_from_snapshot
from .schema import validate_event, validate_lines
from .tracing import NULL_SPAN, NullSpan, Span, current_span, traced

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "NullSpan",
    "SIZE_BUCKETS",
    "Span",
    "StatsView",
    "Telemetry",
    "current_span",
    "get_telemetry",
    "render_report",
    "report_from_events",
    "report_from_snapshot",
    "set_telemetry",
    "telemetry_from_spec",
    "traced",
    "use_telemetry",
    "validate_event",
    "validate_lines",
]
