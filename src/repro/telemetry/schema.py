"""The telemetry JSONL event schema and its validator.

Every line of a telemetry stream (``--telemetry=PATH``, or
:meth:`Telemetry.events` in memory) is one JSON object carrying a
``type`` discriminator and a schema version ``v`` (currently 1):

``meta``
    First line of a stream.  ``clock`` names the span clock
    (``"perf_counter"``: monotonic, origin per process — durations are
    comparable across processes, start offsets are not); ``run`` is
    free-form session metadata.
``span``
    One closed span: ``id`` (positive int, unique per stream),
    ``parent`` (id or ``null`` for roots), ``name``, ``start``
    (seconds on the meta clock), ``dur`` (seconds), optional ``attrs``
    (flat JSON object).
``counter`` / ``gauge``
    Final instrument values: ``name`` and numeric ``value``.
``histogram``
    Final histogram state: ``name``, sorted ``buckets`` (upper
    bounds), ``counts`` (``len(buckets) + 1`` entries, last one the
    overflow bucket), ``count``, ``total``, ``min``/``max`` (``null``
    when empty).

Metric lines appear after every span line (they are flushed by
``Telemetry.close``).  The full prose version of this contract lives in
``docs/observability.md``; :func:`validate_event` is the executable
one, used by the ``repro stats`` CLI and the CI telemetry smoke step.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

__all__ = ["validate_event", "validate_lines"]

_EVENT_TYPES = ("meta", "span", "counter", "gauge", "histogram")


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(message)


def _number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_event(event: Dict) -> None:
    """Raise ``ValueError`` unless ``event`` is a schema-valid object.

    Examples
    --------
    >>> validate_event({"type": "counter", "v": 1, "name": "x", "value": 3})
    >>> validate_event({"type": "span", "v": 1})
    Traceback (most recent call last):
        ...
    ValueError: span event missing required field 'id'
    """
    _require(isinstance(event, dict), f"event must be an object: {event!r}")
    etype = event.get("type")
    _require(
        etype in _EVENT_TYPES,
        f"unknown event type {etype!r}; expected one of {_EVENT_TYPES}",
    )
    _require(event.get("v") == 1, f"unsupported schema version {event.get('v')!r}")
    if etype == "meta":
        _require(
            isinstance(event.get("clock"), str),
            "meta event needs a string 'clock'",
        )
        _require(
            isinstance(event.get("run"), dict),
            "meta event needs an object 'run'",
        )
        return
    if etype == "span":
        for field in ("id", "name", "start", "dur"):
            _require(
                field in event,
                f"span event missing required field {field!r}",
            )
        _require(
            isinstance(event["id"], int) and event["id"] > 0,
            f"span id must be a positive int: {event['id']!r}",
        )
        parent = event.get("parent")
        _require(
            parent is None or (isinstance(parent, int) and parent > 0),
            f"span parent must be null or a positive int: {parent!r}",
        )
        _require(isinstance(event["name"], str), "span name must be a string")
        _require(_number(event["start"]), "span start must be a number")
        _require(
            _number(event["dur"]) and event["dur"] >= 0,
            f"span dur must be a non-negative number: {event['dur']!r}",
        )
        attrs = event.get("attrs")
        _require(
            attrs is None or isinstance(attrs, dict),
            "span attrs must be an object when present",
        )
        return
    _require(
        isinstance(event.get("name"), str),
        f"{etype} event needs a string 'name'",
    )
    if etype in ("counter", "gauge"):
        _require(_number(event.get("value")), f"{etype} value must be a number")
        if etype == "counter":
            _require(
                event["value"] >= 0, "counter value must be non-negative"
            )
        return
    # histogram
    buckets = event.get("buckets")
    counts = event.get("counts")
    _require(isinstance(buckets, list), "histogram needs a 'buckets' list")
    _require(
        all(_number(b) for b in buckets) and buckets == sorted(buckets),
        "histogram buckets must be sorted numbers",
    )
    _require(
        isinstance(counts, list) and len(counts) == len(buckets) + 1,
        "histogram counts must have len(buckets) + 1 entries",
    )
    _require(
        all(isinstance(c, int) and c >= 0 for c in counts),
        "histogram counts must be non-negative ints",
    )
    _require(
        isinstance(event.get("count"), int)
        and event["count"] == sum(counts),
        "histogram count must equal the sum of its bucket counts",
    )
    _require(_number(event.get("total")), "histogram total must be a number")
    for bound in ("min", "max"):
        value = event.get(bound)
        _require(
            value is None or _number(value),
            f"histogram {bound} must be null or a number",
        )


def validate_lines(lines: Iterable[str]) -> Tuple[List[Dict], List[str]]:
    """Parse and validate a JSONL stream; returns ``(events, errors)``.

    Blank lines are skipped.  Each error string carries its 1-based line
    number.  A valid stream additionally starts with a ``meta`` line,
    never repeats a span id, and every span's parent id must exist
    somewhere in the stream (spans are written in *completion* order, so
    children may precede their parents).

    Examples
    --------
    >>> events, errors = validate_lines(
    ...     ['{"type": "meta", "v": 1, "clock": "perf_counter", "run": {}}']
    ... )
    >>> (len(events), errors)
    (1, [])
    """
    events: List[Dict] = []
    errors: List[str] = []
    seen_ids: set = set()
    parents: List[Tuple[int, int]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
            validate_event(event)
        except (ValueError, TypeError) as exc:
            errors.append(f"line {lineno}: {exc}")
            continue
        if lineno == 1 and event.get("type") != "meta":
            errors.append("line 1: stream must start with a meta event")
        if event.get("type") == "span":
            if event["id"] in seen_ids:
                errors.append(f"line {lineno}: duplicate span id {event['id']}")
            seen_ids.add(event["id"])
            if event.get("parent") is not None:
                parents.append((lineno, event["parent"]))
        events.append(event)
    for lineno, parent in parents:
        if parent not in seen_ids:
            errors.append(
                f"line {lineno}: span parent {parent} never defined"
            )
    return events, errors
