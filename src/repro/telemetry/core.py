"""The :class:`Telemetry` facade: spans + metrics + sinks in one handle.

One ``Telemetry`` object is one observability session.  Disabled (the
process-wide default) it is a bundle of no-ops — ``span()`` returns the
shared :data:`~repro.telemetry.tracing.NULL_SPAN` singleton and
``count``/``observe`` return after a single attribute check, so
instrumented hot paths cost nothing measurable and mutate no global
state.  Enabled, it collects:

* a span tree (in completion order, parent ids resolved at entry);
* a :class:`~repro.telemetry.metrics.MetricsRegistry` of counters,
  gauges and fixed-bucket histograms;
* optionally a JSONL event stream (schema in
  :mod:`repro.telemetry.schema`).

Sessions are scoped with :func:`use_telemetry` (a ``ContextVar``, like
``repro.tensor.use_backend``) and read with :func:`get_telemetry`.
Worker pools do not inherit the context variable — workers see the
disabled default — which is what makes the capture protocol explicit:
``run_sharded`` runs each shard under a fresh local session and the
parent merges the picklable :meth:`Telemetry.export_state` snapshots
back positionally via :meth:`Telemetry.absorb`.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional, Sequence, Union

from .metrics import Counter, MetricsRegistry
from .tracing import NULL_SPAN, Span, _CURRENT_SPAN

__all__ = [
    "NULL_TELEMETRY",
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "telemetry_from_spec",
    "use_telemetry",
]

#: Spans kept in memory per session; beyond this, spans are counted in
#: ``telemetry.spans_dropped`` instead of stored (and never written to
#: the JSONL sink either, keeping file and memory views consistent).
MAX_SPANS = 200_000

#: Event-schema version stamped on every JSONL line.
SCHEMA_VERSION = 1


class Telemetry:
    """One observability session: tracer, metrics registry and sinks.

    Parameters
    ----------
    enabled:
        ``False`` builds the no-op shell (the process default).  All
        recording methods check this one attribute and return.
    jsonl_path:
        When given (and enabled), every span is streamed to this file as
        a JSON line on completion and the final metric snapshot is
        appended by :meth:`close`.
    run:
        Optional metadata echoed into the stream's ``meta`` line: a dict,
        or a bare string shorthand for ``{"name": <string>}``.

    Examples
    --------
    >>> tel = Telemetry(enabled=True)
    >>> with use_telemetry(tel):
    ...     with tel.span("outer"):
    ...         tel.count("things")
    >>> tel.registry.counter("things").value
    1
    """

    def __init__(
        self,
        enabled: bool = True,
        jsonl_path: Optional[str] = None,
        run: Union[Dict, str, None] = None,
    ) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.spans: List[Dict] = []
        self.spans_dropped = 0
        self.jsonl_path = jsonl_path
        self.run = {"name": run} if isinstance(run, str) else (run or {})
        self._next_span_id = 0
        self._jsonl = None
        self._closed = False
        if enabled and jsonl_path:
            self._jsonl = open(jsonl_path, "w")
            self._emit({
                "type": "meta", "v": SCHEMA_VERSION,
                "clock": "perf_counter", "run": self.run,
            })

    # -- tracing -------------------------------------------------------
    def span(self, name: str, hist: Optional[str] = None, **attrs) -> Span:
        """A recorded span, or the shared no-op singleton when disabled.

        ``hist`` names a histogram that additionally receives the span's
        duration on exit — the one mechanism behind every "span tree +
        latency distribution" pairing (``rl.step_s`` etc.).
        """
        if not self.enabled:
            return NULL_SPAN
        return Span(name, collector=self, attrs=attrs or None, hist=hist)

    def timed_span(self, name: str, **attrs) -> Span:
        """A span that *always* measures its duration.

        Recorded into the session only when enabled; disabled it is a
        bare stopwatch (no ids, no context variable, no records) for the
        few call sites that need the measured seconds as a return value
        regardless of telemetry state (``RareResult.entropy_seconds``).
        """
        return Span(
            name, collector=self if self.enabled else None,
            attrs=attrs or None,
        )

    def _alloc_span_id(self) -> int:
        self._next_span_id += 1
        return self._next_span_id

    def _finish_span(self, span: Span) -> None:
        if span.hist is not None:
            self.registry.histogram(span.hist).observe(span.duration)
        record = {
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "start": span.start,
            "dur": span.duration,
        }
        if span.attrs:
            record["attrs"] = span.attrs
        self._keep(record)

    def _keep(self, record: Dict) -> None:
        if len(self.spans) >= MAX_SPANS:
            self.spans_dropped += 1
            return
        self.spans.append(record)
        if self._jsonl is not None:
            self._emit({"type": "span", "v": SCHEMA_VERSION, **record})

    def _emit(self, event: Dict) -> None:
        self._jsonl.write(json.dumps(event, default=float) + "\n")

    # -- metrics -------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """A registered counter, or a private unregistered one when
        disabled (so callers can keep exact local counts — the thin-view
        pattern — without touching any session state)."""
        if not self.enabled:
            return Counter(name)
        return self.registry.counter(name)

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``; no-op when disabled."""
        if self.enabled:
            self.registry.counter(name).inc(n)

    def observe(
        self, name: str, value: float,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        """Record ``value`` into histogram ``name``; no-op when disabled."""
        if self.enabled:
            self.registry.histogram(name, buckets=buckets).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name``; no-op when disabled."""
        if self.enabled:
            self.registry.gauge(name).set(value)

    # -- worker snapshots ----------------------------------------------
    def export_state(self) -> Dict:
        """Picklable snapshot of everything this session recorded.

        The payload a pool worker returns alongside its result so the
        parent can :meth:`absorb` it; also usable as a same-process
        checkpoint.
        """
        return {
            "spans": list(self.spans),
            "spans_dropped": self.spans_dropped,
            "metrics": self.registry.state(),
        }

    def absorb(self, state: Dict, parent: Optional[int] = None) -> None:
        """Merge a worker's :meth:`export_state` snapshot into this one.

        Span ids are remapped into this session's id space; the worker's
        root spans are re-parented under ``parent`` (default: the span
        currently open in the absorbing context, so shard spans land
        inside e.g. ``entropy.sequences``).  Metrics merge losslessly
        (counter/histogram adds; gauges last-write-wins in call order).
        Callers absorb snapshots in task order, so the merged session is
        deterministic for every worker count and pool flavour.
        """
        if not self.enabled:
            return
        if parent is None:
            open_span = _CURRENT_SPAN.get()
            parent = open_span.span_id if open_span is not None else None
        mapping: Dict[int, int] = {}
        for record in state.get("spans", []):
            mapping[record["id"]] = self._alloc_span_id()
        for record in state.get("spans", []):
            merged = dict(record)
            merged["id"] = mapping[record["id"]]
            old_parent = record.get("parent")
            merged["parent"] = mapping.get(old_parent, parent)
            self._keep(merged)
        self.spans_dropped += state.get("spans_dropped", 0)
        self.registry.merge_state(state.get("metrics", {}))

    # -- output --------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """Counter/gauge values + histogram summaries (JSON-ready)."""
        return self.registry.snapshot()

    def events(self) -> List[Dict]:
        """The session as a list of schema events (meta, spans, metrics).

        The in-memory equivalent of the JSONL stream, usable whether or
        not a file sink was configured.
        """
        out: List[Dict] = [{
            "type": "meta", "v": SCHEMA_VERSION,
            "clock": "perf_counter", "run": self.run,
        }]
        for record in self.spans:
            out.append({"type": "span", "v": SCHEMA_VERSION, **record})
        out.extend(self._metric_events())
        return out

    def _metric_events(self) -> List[Dict]:
        events: List[Dict] = []
        for name, c in sorted(self.registry.counters.items()):
            events.append({
                "type": "counter", "v": SCHEMA_VERSION,
                "name": name, "value": c.value,
            })
        for name, g in sorted(self.registry.gauges.items()):
            events.append({
                "type": "gauge", "v": SCHEMA_VERSION,
                "name": name, "value": g.value,
            })
        for name, h in sorted(self.registry.histograms.items()):
            events.append({
                "type": "histogram", "v": SCHEMA_VERSION,
                "name": name, **h.state(),
            })
        return events

    def report(self) -> str:
        """The human-readable run report (see :mod:`.report`)."""
        from .report import render_report

        return render_report(
            self.spans, self.registry, spans_dropped=self.spans_dropped
        )

    def close(self) -> None:
        """Flush the final metric snapshot to the JSONL sink and close it.

        Idempotent; a session without a file sink closes trivially.
        """
        if self._closed:
            return
        self._closed = True
        if self._jsonl is not None:
            for event in self._metric_events():
                self._emit(event)
            self._jsonl.close()
            self._jsonl = None


#: The process-wide default session: disabled, shared, never mutated.
NULL_TELEMETRY = Telemetry(enabled=False)

#: The scoped active session (per thread/context; workers start unset).
_ACTIVE: ContextVar[Optional[Telemetry]] = ContextVar(
    "repro_telemetry", default=None
)


def get_telemetry() -> Telemetry:
    """The active telemetry session (the disabled default when none is).

    Examples
    --------
    >>> get_telemetry().enabled
    False
    """
    tel = _ACTIVE.get()
    return tel if tel is not None else NULL_TELEMETRY


def set_telemetry(tel: Optional[Telemetry]) -> None:
    """Set the active session for the current context (``None`` clears).

    Prefer the scoped :func:`use_telemetry` in library code; this is the
    escape hatch for REPLs and long-lived drivers.
    """
    _ACTIVE.set(tel)


@contextmanager
def use_telemetry(tel: Telemetry) -> Iterator[Telemetry]:
    """Scoped session activation, mirroring ``repro.tensor.use_backend``.

    Examples
    --------
    >>> tel = Telemetry(enabled=True)
    >>> with use_telemetry(tel) as t:
    ...     t is get_telemetry()
    True
    """
    token = _ACTIVE.set(tel)
    try:
        yield tel
    finally:
        _ACTIVE.reset(token)


def telemetry_from_spec(
    spec: Union[str, None], run: Optional[Dict] = None
) -> Telemetry:
    """Build a session from a config/CLI spec string.

    ``None``, ``""`` or ``"off"`` — the shared disabled default;
    ``"on"``/``"memory"`` — an enabled in-memory session; any other
    string — an enabled session streaming JSONL to that path.  This is
    the one interpretation behind ``RareConfig.telemetry`` and the CLI's
    ``--telemetry[=PATH]``.

    Examples
    --------
    >>> telemetry_from_spec(None).enabled
    False
    >>> telemetry_from_spec("on").enabled
    True
    """
    if not spec or spec == "off":
        return NULL_TELEMETRY
    if spec in ("on", "memory"):
        return Telemetry(enabled=True, run=run)
    return Telemetry(enabled=True, jsonl_path=spec, run=run)
