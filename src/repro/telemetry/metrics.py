"""Counters, gauges and fixed-bucket histograms with merge semantics.

The metric primitives behind :class:`repro.telemetry.Telemetry`.  All of
them are plain-python and allocation-light:

* :class:`Counter` — a monotonically increasing integer;
* :class:`Gauge` — a last-write-wins float;
* :class:`Histogram` — fixed bucket boundaries chosen at creation, with
  p50/p90/p99 summaries interpolated from the bucket counts.  Fixed
  buckets (rather than reservoir sampling) make worker snapshots
  *mergeable*: two histograms over the same boundaries merge by adding
  their count vectors, losslessly and order-independently.

:class:`MetricsRegistry` names and owns the instruments;
:meth:`MetricsRegistry.state` / :meth:`MetricsRegistry.merge_state` are
the picklable snapshot pair the sharded entropy workers use to ship
their metrics back to the parent (see ``run_sharded``).
:class:`StatsView` is the read-only dict facade that keeps legacy
``.stats``-style attributes (``IncrementalEvaluator.stats``) working on
top of counters.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Mapping
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StatsView",
]

#: Default histogram boundaries for durations in seconds: geometric from
#: 1 microsecond to 100 seconds, two buckets per decade.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** (-6 + i / 2.0), 12) for i in range(17)
)

#: Histogram boundaries for cardinalities (halo sizes, shard volumes):
#: powers of 4 from 1 to ~10^9.
SIZE_BUCKETS: Tuple[float, ...] = tuple(float(4 ** i) for i in range(16))


class Counter:
    """A named monotonically increasing integer.

    Examples
    --------
    >>> c = Counter("hits")
    >>> c.inc(); c.inc(2); c.value
    3
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = int(value)

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A named last-write-wins float (e.g. a cache's current size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = float(value)

    def set(self, value: float) -> None:
        """Record the instrument's current value."""
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A fixed-bucket histogram with interpolated quantile summaries.

    ``buckets`` holds the inclusive upper bounds of each bucket; one
    overflow bucket is appended implicitly, so ``counts`` has
    ``len(buckets) + 1`` entries.  Quantiles are estimated by linear
    interpolation inside the bucket the rank falls into — exact enough
    for p50/p90/p99 reporting, and (unlike sampling) exactly mergeable
    across worker snapshots.

    Examples
    --------
    >>> h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
    >>> for v in (0.05, 0.5, 0.5, 5.0):
    ...     h.observe(v)
    >>> h.count, round(h.total, 2)
    (4, 6.05)
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min", "max")

    def __init__(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> None:
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(
            buckets if buckets is not None else DEFAULT_TIME_BUCKETS
        )
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError(f"histogram buckets must be sorted: {buckets!r}")
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``) from the buckets."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= rank:
                lo = self.buckets[i - 1] if i > 0 else (
                    self.min if self.min is not None else 0.0
                )
                hi = self.buckets[i] if i < len(self.buckets) else (
                    self.max if self.max is not None else lo
                )
                lo = min(lo, hi)
                frac = (rank - seen) / c
                return lo + (hi - lo) * frac
            seen += c
        return self.max if self.max is not None else 0.0

    def summary(self) -> Dict[str, float]:
        """The reporting summary: count, mean, extrema and p50/p90/p99."""
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total": self.total,
            "mean": mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def state(self) -> Dict[str, object]:
        """Picklable full state (buckets + raw counts) for merging."""
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_state(cls, name: str, state: Mapping) -> "Histogram":
        """Rebuild a histogram from a :meth:`state` payload."""
        h = cls(name, buckets=state["buckets"])
        h.merge_state(state)
        return h

    def merge_state(self, state: Mapping) -> None:
        """Add another histogram's :meth:`state` into this one.

        Requires identical bucket boundaries — fixed buckets are what
        make the merge lossless and order-independent.
        """
        if tuple(state["buckets"]) != self.buckets:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket boundaries "
                f"differ ({state['buckets']!r} vs {list(self.buckets)!r})"
            )
        for i, c in enumerate(state["counts"]):
            self.counts[i] += c
        self.count += state["count"]
        self.total += state["total"]
        for key, pick in (("min", min), ("max", max)):
            other = state[key]
            if other is not None:
                ours = getattr(self, key)
                setattr(
                    self, key, other if ours is None else pick(ours, other)
                )

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Named instruments plus snapshot/merge plumbing.

    Instruments are created on first use and shared by name afterwards;
    asking for an existing histogram with different buckets is an error
    (silently divergent boundaries would make merges lossy).
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram under ``name``; ``buckets`` applies on creation."""
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, buckets=buckets)
        elif buckets is not None and tuple(buckets) != h.buckets:
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{list(h.buckets)!r}; cannot re-register with {buckets!r}"
            )
        return h

    def snapshot(self) -> Dict[str, Dict]:
        """Reporting snapshot: counter/gauge values, histogram summaries."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }

    def state(self) -> Dict[str, Dict]:
        """Picklable full state for cross-worker merging."""
        return {
            "counters": {n: c.value for n, c in self.counters.items()},
            "gauges": {n: g.value for n, g in self.gauges.items()},
            "histograms": {n: h.state() for n, h in self.histograms.items()},
        }

    def merge_state(self, state: Mapping) -> None:
        """Merge a worker's :meth:`state` snapshot into this registry.

        Counters and histogram counts add; gauges are last-write-wins in
        merge order (the callers merge positionally, so the result is
        deterministic for any worker count).
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, hstate in state.get("histograms", {}).items():
            self.histogram(name, buckets=hstate["buckets"]).merge_state(hstate)


class StatsView(Mapping):
    """Read-only dict facade over named counters.

    Keeps legacy counter dicts (``IncrementalEvaluator.stats``, the env
    rewire-memo accounting) source-compatible while the underlying
    numbers live in telemetry :class:`Counter` objects.

    Examples
    --------
    >>> hits = Counter("hits"); hits.inc(3)
    >>> view = StatsView({"hits": hits})
    >>> view["hits"], dict(view) == {"hits": 3}
    (3, True)
    """

    def __init__(self, counters: Mapping) -> None:
        self._counters = dict(counters)

    def __getitem__(self, key: str) -> int:
        return self._counters[key].value

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def __repr__(self) -> str:
        return f"StatsView({dict(self)!r})"
