"""Human-readable run reports from telemetry sessions or JSONL streams.

Spans are aggregated by *path* — the root-to-leaf chain of span names —
so ten thousand ``env.step`` spans render as one tree row with a call
count and total/mean milliseconds, indented under their parent phase.
Counters, gauges and histogram quantile summaries follow.  The same
renderer backs :meth:`repro.telemetry.Telemetry.report` (live sessions)
and ``repro stats run.jsonl`` (persisted streams, via
:func:`report_from_events`).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .metrics import Histogram, MetricsRegistry

__all__ = ["render_report", "report_from_events", "report_from_snapshot"]


def _span_rows(spans: Sequence[Mapping]) -> List[Tuple[str, int, float]]:
    """Aggregate span records into ``(indented name, count, seconds)``
    rows, children under parents, siblings in first-seen order."""
    by_id = {s["id"]: s for s in spans}
    paths: Dict[Tuple[str, ...], List[float]] = {}
    order: List[Tuple[str, ...]] = []
    for span in spans:
        path = [span["name"]]
        parent = span.get("parent")
        hops = 0
        while parent is not None and hops < 128:
            node = by_id.get(parent)
            if node is None:
                break
            path.append(node["name"])
            parent = node.get("parent")
            hops += 1
        key = tuple(reversed(path))
        if key not in paths:
            paths[key] = [0, 0.0]
            order.append(key)
        paths[key][0] += 1
        paths[key][1] += span["dur"]
    rows = []
    for key in sorted(order):
        count, total = paths[key]
        rows.append(("  " * (len(key) - 1) + key[-1], count, total))
    return rows


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{1000.0 * seconds:.2f}ms"


def render_report(
    spans: Sequence[Mapping],
    registry: MetricsRegistry,
    spans_dropped: int = 0,
    title: str = "telemetry report",
) -> str:
    """Render one session (span records + registry) as aligned text."""
    lines = [title, "=" * len(title)]

    rows = _span_rows(spans)
    if rows:
        lines.append("")
        lines.append("spans (aggregated by path):")
        name_width = max(len(r[0]) for r in rows)
        for name, count, total in rows:
            mean = total / count if count else 0.0
            lines.append(
                f"  {name.ljust(name_width)}  x{count:<6d} "
                f"total {_fmt_seconds(total):>10s}  "
                f"mean {_fmt_seconds(mean):>10s}"
            )
        if spans_dropped:
            lines.append(f"  ({spans_dropped} span(s) dropped at the cap)")

    if registry.counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(n) for n in registry.counters)
        for name in sorted(registry.counters):
            lines.append(
                f"  {name.ljust(width)}  {registry.counters[name].value}"
            )

    if registry.gauges:
        lines.append("")
        lines.append("gauges:")
        width = max(len(n) for n in registry.gauges)
        for name in sorted(registry.gauges):
            lines.append(
                f"  {name.ljust(width)}  {registry.gauges[name].value:g}"
            )

    if registry.histograms:
        lines.append("")
        lines.append("histograms (count / mean / p50 / p90 / p99 / max):")
        width = max(len(n) for n in registry.histograms)
        for name in sorted(registry.histograms):
            s = registry.histograms[name].summary()
            # Naming convention (docs/observability.md): histograms of
            # durations end in ``_s`` and render as ms/s; anything else
            # (sizes, fractions) renders as a plain number.
            seconds = name.endswith("_s")
            cells = " / ".join(
                _fmt_value(s[k], seconds)
                for k in ("mean", "p50", "p90", "p99", "max")
            )
            lines.append(
                f"  {name.ljust(width)}  x{s['count']:<6d} {cells}"
            )

    if len(lines) == 2:
        lines.append("(empty session)")
    return "\n".join(lines)


def _fmt_value(value: Optional[float], seconds: bool) -> str:
    if value is None:
        return "-"
    if seconds:
        return _fmt_seconds(value)
    return f"{value:g}"


def report_from_snapshot(
    snapshot: Mapping, title: str = "telemetry report"
) -> str:
    """Render a :meth:`~repro.telemetry.Telemetry.snapshot` dict.

    Snapshots carry histogram *summaries* (count/mean/quantiles), not
    bucket states, so this renders the quantile columns directly — the
    path ``repro stats`` takes for ``repro-bench/v2`` result envelopes,
    which embed exactly such a snapshot.

    Examples
    --------
    >>> out = report_from_snapshot({"counters": {"hits": 3}})
    >>> "hits" in out
    True
    """
    lines = [title, "=" * len(title)]
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    histograms = snapshot.get("histograms") or {}

    if counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            lines.append(f"  {name.ljust(width)}  {counters[name]}")

    if gauges:
        lines.append("")
        lines.append("gauges:")
        width = max(len(n) for n in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name.ljust(width)}  {gauges[name]:g}")

    if histograms:
        lines.append("")
        lines.append("histograms (count / mean / p50 / p90 / p99 / max):")
        width = max(len(n) for n in histograms)
        for name in sorted(histograms):
            s = histograms[name]
            seconds = name.endswith("_s")
            cells = " / ".join(
                _fmt_value(s.get(k), seconds)
                for k in ("mean", "p50", "p90", "p99", "max")
            )
            lines.append(
                f"  {name.ljust(width)}  x{s.get('count', 0):<6d} {cells}"
            )

    if len(lines) == 2:
        lines.append("(empty snapshot)")
    return "\n".join(lines)


def report_from_events(events: Sequence[Mapping]) -> str:
    """Rebuild a report from schema events (a parsed JSONL stream).

    Examples
    --------
    >>> out = report_from_events(
    ...     [{"type": "counter", "v": 1, "name": "hits", "value": 2}]
    ... )
    >>> "hits" in out
    True
    """
    registry = MetricsRegistry()
    spans: List[Mapping] = []
    for event in events:
        etype = event.get("type")
        if etype == "span":
            spans.append(event)
        elif etype == "counter":
            registry.counter(event["name"]).inc(event["value"])
        elif etype == "gauge":
            registry.gauge(event["name"]).set(event["value"])
        elif etype == "histogram":
            registry.histograms[event["name"]] = Histogram.from_state(
                event["name"],
                {k: event[k] for k in
                 ("buckets", "counts", "count", "total", "min", "max")},
            )
    return render_report(spans, registry)
