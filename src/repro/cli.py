"""Command-line interface for the GraphRARE reproduction.

Five subcommands::

    python -m repro info    --dataset cornell [--scale 0.6]
    python -m repro run     --dataset cornell --backbone gcn [options]
    python -m repro rewire  --dataset cornell --k 2 --d 1 [--out graph.npz]
    python -m repro serve   [--port 8473 | --unix /tmp/repro.sock]
    python -m repro stats   run.jsonl | bench_results/name.json

``info`` prints dataset statistics, ``run`` executes the full GraphRARE
pipeline and reports backbone-vs-RARE accuracy, ``rewire`` performs a
static entropy-guided rewiring and optionally saves the result,
``serve`` starts the long-lived rewiring service (NDJSON over TCP or a
unix socket; see ``docs/serving.md``), and ``stats`` renders telemetry:
either a JSONL event stream (validated against the schema) or a
``repro-bench/v2`` result envelope with its embedded metric snapshot —
both render interpolated p50/p90/p99 columns for every histogram.
``run`` and ``rewire`` accept ``--telemetry[=PATH]`` to record spans and
metrics (in memory, or streamed to ``PATH``; see
``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .core import GraphRARE, RareConfig, analyze_rewiring, rewire_graph
from .datasets import dataset_names, load_dataset
from .entropy import RelativeEntropy, build_entropy_sequences
from .graph import degree_statistics, geom_gcn_splits, homophily_ratio, save_graph
from .telemetry import (
    report_from_events,
    report_from_snapshot,
    telemetry_from_spec,
    use_telemetry,
    validate_lines,
)
from .tensor import use_backend


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphRARE reproduction (Peng et al., ICDE 2024)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_dataset_args(p, bundle: bool = False):
        p.add_argument("--dataset", required=not bundle,
                       choices=dataset_names())
        p.add_argument("--scale", type=float, default=0.1,
                       help="graph shrink factor (default 0.1)")
        p.add_argument("--seed", type=int, default=0)
        if bundle:
            p.add_argument("--graph-bundle", default=None, metavar="DIR",
                           help="run from an on-disk graph bundle "
                                "(repro.graph.save_graph_bundle) instead "
                                "of --dataset: arrays stay memory-mapped "
                                "and the entropy screen streams shard "
                                "state from the bundle (storage='stream')")

    def add_telemetry_arg(p):
        p.add_argument("--telemetry", nargs="?", const="on", default=None,
                       metavar="PATH",
                       help="record spans and metrics for the command: "
                            "bare --telemetry keeps them in memory and "
                            "prints the run report; --telemetry PATH "
                            "additionally streams a JSONL event log "
                            "(render it later with 'repro stats PATH')")

    def add_entropy_engine_args(p):
        p.add_argument("--screening", default="auto",
                       choices=["auto", "on", "off"],
                       help="entropy candidate engine: certified "
                            "screen-then-rescore (on), dense tiled kernel "
                            "(off), or size-based auto (default)")
        p.add_argument("--num-workers", type=int, default=1,
                       help="worker-pool width for the sharded entropy "
                            "build (results are byte-identical for every "
                            "worker count)")
        p.add_argument("--tensor-backend", default="numpy",
                       choices=["numpy", "accel", "auto"],
                       help="tensor kernel backend: the byte-identical "
                            "numpy reference (default), the numba-JIT "
                            "accelerated kernels (accel; warns and falls "
                            "back when numba is missing), or auto "
                            "(accelerated when available)")

    info = sub.add_parser("info", help="print dataset statistics")
    add_dataset_args(info)

    run = sub.add_parser("run", help="run the GraphRARE pipeline")
    add_dataset_args(run, bundle=True)
    run.add_argument("--backbone", default="gcn",
                     choices=["gcn", "graphsage", "gat", "h2gcn", "mixhop", "mlp"])
    run.add_argument("--episodes", type=int, default=4)
    run.add_argument("--horizon", type=int, default=6)
    run.add_argument("--k-max", type=int, default=6)
    run.add_argument("--d-max", type=int, default=6)
    run.add_argument("--lam", type=float, default=1.0)
    run.add_argument("--rl", default="ppo", choices=["ppo", "a2c", "reinforce"])
    run.add_argument("--num-envs", type=int, default=1,
                     help="parallel episodes per rollout; > 1 collects "
                          "through the vectorized VecTopologyEnv (ppo/a2c)")
    run.add_argument("--incremental-reward", action="store_true",
                     help="score per-step rewards through the incremental "
                          "engine: delta-patched propagation matrices and "
                          "halo-restricted GNN re-evaluation — supported "
                          "for gcn, graphsage, gat, h2gcn and mixhop "
                          "(equal to the dense evaluation at float64 "
                          "resolution; plan-less backbones fall back "
                          "transparently)")
    run.add_argument("--max-halo-frac", type=float, default=0.5,
                     help="halo size (fraction of nodes) above which an "
                          "incremental step falls back to the dense "
                          "evaluation (default 0.5)")
    run.add_argument("--splits", type=int, default=1)
    run.add_argument("--churn", nargs="?", const="drift", default=None,
                     choices=["drift", "burst", "hubs"], metavar="REGIME",
                     help="run under live edge churn (docs/streaming.md): "
                          "fold external add/remove edge events into the "
                          "topology every MDP step; bare --churn uses the "
                          "'drift' regime, or pick 'burst'/'hubs'")
    run.add_argument("--churn-events", type=int, default=4,
                     help="external events folded in per MDP step "
                          "(default 4; needs --churn)")
    run.add_argument("--churn-seed", type=int, default=0,
                     help="seed of the synthetic churn stream (default 0; "
                          "needs --churn)")
    add_entropy_engine_args(run)
    add_telemetry_arg(run)

    rewire = sub.add_parser("rewire", help="static entropy-guided rewiring")
    add_dataset_args(rewire, bundle=True)
    rewire.add_argument("--k", type=int, default=2)
    rewire.add_argument("--d", type=int, default=1)
    rewire.add_argument("--lam", type=float, default=1.0)
    rewire.add_argument("--out", default=None, help="save rewired graph (.npz)")
    add_entropy_engine_args(rewire)
    add_telemetry_arg(rewire)

    serve = sub.add_parser(
        "serve", help="start the long-lived rewiring service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8473,
                       help="TCP port (0 lets the OS pick; the bound "
                            "address is printed on startup)")
    serve.add_argument("--unix", default=None, metavar="PATH",
                       help="serve on a unix domain socket instead of TCP")
    serve.add_argument("--max-batch", type=int, default=16,
                       help="most concurrent requests fused into one "
                            "block-diagonal forward (default 16)")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="micro-batch collection window after the "
                            "first request arrives (default 2.0)")
    serve.add_argument("--max-queue", type=int, default=256,
                       help="intake queue bound; beyond it requests are "
                            "shed with retry_after_ms (default 256)")
    serve.add_argument("--max-sessions", type=int, default=8,
                       help="open sessions kept before LRU eviction")
    serve.add_argument("--memo-entries", type=int, default=256,
                       help="per-session (k, d) rewire-memo capacity")
    add_telemetry_arg(serve)

    stats = sub.add_parser(
        "stats", help="render telemetry: a JSONL stream or a "
                      "repro-bench/v2 result envelope"
    )
    stats.add_argument("path", help="telemetry event log written by "
                                    "--telemetry PATH, or a bench "
                                    "envelope from bench_results/")
    return parser


def cmd_info(args) -> int:
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    stats = degree_statistics(graph)
    print(f"dataset   : {args.dataset} (scale {args.scale})")
    print(f"nodes     : {graph.num_nodes}")
    print(f"edges     : {graph.num_edges}")
    print(f"features  : {graph.num_features}")
    print(f"classes   : {graph.num_classes}")
    print(f"homophily : {homophily_ratio(graph):.3f}")
    print(f"degree    : mean {stats['mean']:.1f}, max {stats['max']}, "
          f"isolated {stats['isolated']}")
    return 0


def _finish_telemetry(tel) -> None:
    """Close a CLI telemetry session and print its report/destination."""
    tel.close()
    if tel.enabled:
        print()
        print(tel.report())
        if tel.jsonl_path:
            print(f"\ntelemetry event log: {tel.jsonl_path}")


def _resolve_graph(args):
    """The command's graph and its display name: a memmapped bundle when
    ``--graph-bundle`` is given, the (scaled) named dataset otherwise."""
    bundle = getattr(args, "graph_bundle", None)
    if bundle is not None and args.dataset is not None:
        print("error: pass either --dataset or --graph-bundle, not both",
              file=sys.stderr)
        return None, None
    if bundle is not None:
        from .graph import load_graph_bundle

        return load_graph_bundle(bundle), f"bundle:{bundle}"
    if args.dataset is None:
        print("error: one of --dataset or --graph-bundle is required",
              file=sys.stderr)
        return None, None
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    return graph, args.dataset


def cmd_run(args) -> int:
    graph, graph_name = _resolve_graph(args)
    if graph is None:
        return 2
    splits = geom_gcn_splits(graph, num_splits=args.splits, seed=args.seed)
    tel = telemetry_from_spec(
        args.telemetry,
        run={"command": "run", "dataset": graph_name,
             "backbone": args.backbone},
    )
    stream_cfg = None
    if getattr(args, "churn", None):
        from .stream import StreamConfig

        stream_cfg = StreamConfig(
            regime=args.churn,
            events_per_step=args.churn_events,
            seed=args.churn_seed,
        )
    config = RareConfig(
        storage="stream" if args.graph_bundle else "ram",
        lam=args.lam,
        k_max=args.k_max,
        d_max=args.d_max,
        max_candidates=max(12, args.k_max),
        episodes=args.episodes,
        horizon=args.horizon,
        rl_algorithm=args.rl,
        num_envs=args.num_envs,
        incremental_reward=args.incremental_reward,
        max_halo_frac=args.max_halo_frac,
        screening=args.screening,
        num_workers=args.num_workers,
        tensor_backend=args.tensor_backend,
        stream=stream_cfg,
        seed=args.seed,
    )
    base_accs, rare_accs, gains = [], [], []
    with use_telemetry(tel):
        for i, split in enumerate(splits):
            result = GraphRARE(args.backbone, config).fit(graph, split)
            base_accs.append(result.baseline_test_acc)
            rare_accs.append(result.test_acc)
            gains.append(
                result.optimized_homophily - result.original_homophily
            )
            print(
                f"split {i}: {args.backbone} "
                f"{100 * result.baseline_test_acc:.1f}% "
                f"-> {args.backbone}-RARE {100 * result.test_acc:.1f}% "
                f"(dH {gains[-1]:+.3f})"
            )
    print(
        f"\nmean over {len(splits)} split(s): "
        f"{args.backbone} {100 * np.mean(base_accs):.1f}% vs "
        f"{args.backbone}-RARE {100 * np.mean(rare_accs):.1f}% "
        f"({100 * (np.mean(rare_accs) - np.mean(base_accs)):+.1f} points)"
    )
    _finish_telemetry(tel)
    return 0


def cmd_rewire(args) -> int:
    graph, graph_name = _resolve_graph(args)
    if graph is None:
        return 2
    tel = telemetry_from_spec(
        args.telemetry, run={"command": "rewire", "dataset": graph_name}
    )
    max_candidates = max(8, args.k)
    with use_telemetry(tel):
        with use_backend(args.tensor_backend):
            with tel.span("rewire.entropy"):
                if args.graph_bundle:
                    sequences = build_entropy_sequences(
                        graph, None, max_candidates=max_candidates,
                        screening="on", num_workers=args.num_workers,
                        state_loader=_bundle_state_loader(
                            graph, args.graph_bundle, args.lam,
                            max_candidates,
                        ),
                    )
                else:
                    entropy = RelativeEntropy.from_graph(graph, lam=args.lam)
                    sequences = build_entropy_sequences(
                        graph, entropy, max_candidates=max_candidates,
                        screening=args.screening,
                        num_workers=args.num_workers,
                    )
        k = np.minimum(args.k, (sequences.remote >= 0).sum(axis=1))
        d = np.minimum(args.d, graph.degrees())
        with tel.span("rewire.apply"):
            rewired = rewire_graph(graph, sequences, k, d)
    print(analyze_rewiring(graph, rewired).summary())
    if args.out:
        path = save_graph(rewired, args.out)
        print(f"saved optimised graph to {path}")
    _finish_telemetry(tel)
    return 0


def _bundle_state_loader(graph, path: str, lam: float, max_candidates: int):
    """Streamed-screening recipe for ``rewire --graph-bundle``: write the
    entropy sidecar on first use, then let each shard stream from it."""
    from .graph.storage import (
        ScreenStateLoader,
        entropy_sidecar_meta,
        has_entropy_sidecar,
        save_entropy_sidecar,
    )

    if not has_entropy_sidecar(path):
        save_entropy_sidecar(path, RelativeEntropy.from_graph(graph, lam=lam))
    elif entropy_sidecar_meta(path)["lam"] != lam:
        raise ValueError(
            f"entropy sidecar at {path!r} was built with lam="
            f"{entropy_sidecar_meta(path)['lam']} but --lam={lam} was "
            "requested; delete the sidecar or align the flag"
        )
    return ScreenStateLoader(path, max_candidates=max_candidates)


def cmd_serve(args) -> int:
    """Run the rewiring service until a ``shutdown`` request or Ctrl-C."""
    import asyncio

    from .serve import RewiringServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue,
        max_sessions=args.max_sessions,
        memo_entries=args.memo_entries,
    )
    # A service's ``stats`` op is a first-class feature, so metrics
    # default ON here (in-memory; the disabled-path budget is moot for
    # a process that exists to be observed).  ``--telemetry off`` still
    # disables, any PATH still streams JSONL.
    tel = telemetry_from_spec(
        args.telemetry if args.telemetry is not None else "on",
        run={"command": "serve"},
    )

    async def _run() -> None:
        server = RewiringServer(config, tel=tel)
        await server.start()
        if config.unix_path is not None:
            print(f"serving on unix:{config.unix_path}")
        else:
            host, port = server.address
            print(f"serving on {host}:{port}")
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    with use_telemetry(tel):
        try:
            asyncio.run(_run())
        except KeyboardInterrupt:
            print("\ninterrupted; shut down cleanly")
    _finish_telemetry(tel)
    return 0


def cmd_stats(args) -> int:
    """Render telemetry: a JSONL stream or a repro-bench/v2 envelope."""
    import json

    try:
        with open(args.path) as fh:
            text = fh.read()
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2

    envelope = None
    if text.lstrip().startswith("{"):
        # A bench envelope is one JSON document; a JSONL stream is one
        # event per line, so only the former parses as a whole.
        try:
            doc = json.loads(text)
            if isinstance(doc, dict) and doc.get("schema") == "repro-bench/v2":
                envelope = doc
        except json.JSONDecodeError:
            pass
    if envelope is not None:
        name = envelope.get("bench", "?")
        print(f"bench envelope: {name} (schema {envelope['schema']})")
        rss = envelope.get("peak_rss_bytes")
        if rss:
            print(f"peak rss      : {rss / 1e6:.1f} MB")
        print()
        snapshot = envelope.get("telemetry")
        if snapshot:
            print(report_from_snapshot(snapshot, title=f"telemetry [{name}]"))
        else:
            print("(no telemetry snapshot embedded)")
        return 0

    events, errors = validate_lines(text.splitlines())
    if errors:
        for err in errors:
            print(f"schema error: {err}", file=sys.stderr)
        return 1
    print(report_from_events(events))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": cmd_info,
        "run": cmd_run,
        "rewire": cmd_rewire,
        "serve": cmd_serve,
        "stats": cmd_stats,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
