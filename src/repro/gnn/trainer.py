"""Training / evaluation loops for node classification.

Implements the paper's protocol (Sec. V-C): Adam, early stopping on
validation accuracy, and test accuracy measured at the epoch where the
validation accuracy peaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..graph import Graph, Split
from ..nn import (
    Adam,
    EarlyStopping,
    LRScheduler,
    accuracy,
    classification_report,
    cross_entropy,
    cross_entropy_label_smoothing,
)
from ..tensor import Tensor
from .base import GNNBackbone


@dataclass
class TrainResult:
    """Outcome of one training run."""

    test_acc: float
    val_acc: float
    train_acc: float
    epochs_run: int
    history: List[dict] = field(default_factory=list)


def evaluate(
    model: GNNBackbone, graph: Graph, mask: np.ndarray
) -> Tuple[float, float]:
    """Eval-mode ``(accuracy, loss)`` of ``model`` on the nodes in ``mask``.

    This is the no-backward evaluation step of Algorithm 1 (line 9) that
    feeds the DRL reward.
    """
    was_training = model.training
    model.eval()
    logits = model(graph, Tensor(graph.features))
    loss = cross_entropy(logits, graph.labels, mask).item()
    acc = accuracy(logits.data, graph.labels, mask)
    if was_training:
        model.train()
    return acc, float(loss)


class Trainer:
    """Reusable trainer bound to one model + optimiser.

    The RARE co-training loop trains the same model repeatedly on evolving
    topologies, so optimiser state lives here rather than in a free
    function.
    """

    def __init__(
        self,
        model: GNNBackbone,
        lr: float = 0.05,
        weight_decay: float = 5e-5,
        label_smoothing: float = 0.0,
        scheduler: Optional[LRScheduler] = None,
    ) -> None:
        self.model = model
        self.optimizer = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
        self.label_smoothing = label_smoothing
        self.scheduler = scheduler

    def _loss(self, logits: Tensor, labels: np.ndarray, mask: np.ndarray):
        if self.label_smoothing > 0:
            return cross_entropy_label_smoothing(
                logits, labels, self.label_smoothing, mask
            )
        return cross_entropy(logits, labels, mask)

    def train_epoch(self, graph: Graph, train_mask: np.ndarray) -> float:
        """One full-batch gradient step; returns the training loss."""
        self.model.train()
        self.optimizer.zero_grad()
        logits = self.model(graph, Tensor(graph.features))
        loss = self._loss(logits, graph.labels, train_mask)
        loss.backward()
        self.optimizer.step()
        if self.scheduler is not None:
            self.scheduler.step()
        return loss.item()

    def report(self, graph: Graph, mask: np.ndarray):
        """Per-class precision/recall/F1 of the current model on ``mask``."""
        logits = self.model.predict_logits(graph)
        return classification_report(logits, graph.labels, mask)

    def fit(
        self,
        graph: Graph,
        split: Split,
        epochs: int = 200,
        patience: int = 30,
        record_history: bool = False,
    ) -> TrainResult:
        """Train with early stopping; restore and score the best snapshot."""
        stopper = EarlyStopping(patience=patience)
        history: List[dict] = []
        epochs_run = 0
        for epoch in range(epochs):
            epochs_run = epoch + 1
            train_loss = self.train_epoch(graph, split.train)
            val_acc, val_loss = evaluate(self.model, graph, split.val)
            if record_history:
                train_acc, _ = evaluate(self.model, graph, split.train)
                history.append(
                    {
                        "epoch": epoch,
                        "train_loss": train_loss,
                        "train_acc": train_acc,
                        "val_acc": val_acc,
                        "val_loss": val_loss,
                    }
                )
            if stopper.step(val_acc, self.model):
                break
        stopper.restore(self.model)
        val_acc, _ = evaluate(self.model, graph, split.val)
        test_acc, _ = evaluate(self.model, graph, split.test)
        train_acc, _ = evaluate(self.model, graph, split.train)
        return TrainResult(
            test_acc=test_acc,
            val_acc=val_acc,
            train_acc=train_acc,
            epochs_run=epochs_run,
            history=history,
        )


def train_backbone(
    model: GNNBackbone,
    graph: Graph,
    split: Split,
    epochs: int = 200,
    lr: float = 0.05,
    weight_decay: float = 5e-5,
    patience: int = 30,
    record_history: bool = False,
) -> TrainResult:
    """Convenience wrapper: build a Trainer and fit once."""
    trainer = Trainer(model, lr=lr, weight_decay=weight_decay)
    return trainer.fit(
        graph, split, epochs=epochs, patience=patience, record_history=record_history
    )
