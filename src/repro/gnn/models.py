"""The GNN backbones: MLP, GCN, GraphSAGE, GAT, H2GCN and MixHop.

Each follows the layer equations of the cited original papers (Sec. IV-C
adopts the backbones unchanged: the RARE framework only alters the graph
they run on).  All models default to two propagation layers, hidden width
64 and dropout 0.5, matching the paper's hyper-parameter setting (Sec. V-C).

Backbones that participate in the incremental reward engine
(:mod:`repro.gnn.incremental`) additionally expose an ``eval_state`` hook:
one instrumented eval-mode forward that returns the final logits *plus*
the intermediate activations the backbone's halo plan patches per rewire
(per-layer propagation products, GAT's per-node attention ingredients).
The hook runs the exact same tensor ops as ``forward`` — its captured
arrays are bitwise identical to a plain forward, which is what the
engine's off-halo exactness contract builds on (see
``docs/equivalence-policy.md``).
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph, gcn_norm, row_norm, two_hop_adjacency
from ..nn import MLP, Dropout, Linear
from ..tensor import Tensor, ops
from .base import GNNBackbone, cached_matrix


class MLPClassifier(GNNBackbone):
    """Attribute-only baseline: ignores the topology entirely."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: int = 64,
        dropout: float = 0.5,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(in_features, num_classes)
        rng = rng or np.random.default_rng(0)
        self.net = MLP(in_features, [hidden], num_classes, rng, dropout=dropout)

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        return self.net(x)


class GCN(GNNBackbone):
    """Kipf-Welling graph convolution: ``H' = relu(Â H W)`` with
    ``Â = D^{-1/2}(A + I)D^{-1/2}``."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: int = 64,
        dropout: float = 0.5,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(in_features, num_classes)
        rng = rng or np.random.default_rng(0)
        self.lin1 = Linear(in_features, hidden, rng)
        self.lin2 = Linear(hidden, num_classes, rng)
        self.dropout = Dropout(dropout, rng)

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        a_hat = cached_matrix(graph, "gcn_norm", gcn_norm)
        h = self.dropout(x)
        h = ops.relu(ops.spmm(a_hat, self.lin1(h)))
        h = self.dropout(h)
        return ops.spmm(a_hat, self.lin2(h))


class GraphSAGE(GNNBackbone):
    """GraphSAGE with the mean aggregator:
    ``h' = relu(W_self h + W_neigh mean_{u in N(v)} h_u)``."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: int = 64,
        dropout: float = 0.5,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(in_features, num_classes)
        rng = rng or np.random.default_rng(0)
        self.self1 = Linear(in_features, hidden, rng)
        self.neigh1 = Linear(in_features, hidden, rng, bias=False)
        self.self2 = Linear(hidden, num_classes, rng)
        self.neigh2 = Linear(hidden, num_classes, rng, bias=False)
        self.dropout = Dropout(dropout, rng)

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        mean_adj = cached_matrix(graph, "row_norm", row_norm)
        h = self.dropout(x)
        h = ops.relu(self.self1(h) + self.neigh1(ops.spmm(mean_adj, h)))
        h = self.dropout(h)
        return self.self2(h) + self.neigh2(ops.spmm(mean_adj, h))


class GATLayer(GNNBackbone):
    """One multi-head additive-attention layer (Velickovic et al.)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        heads: int,
        rng: np.random.Generator,
        concat: bool = True,
        negative_slope: float = 0.2,
    ) -> None:
        super().__init__(in_features, out_features)
        self.heads = heads
        self.concat = concat
        self.negative_slope = negative_slope
        self.linear = Linear(in_features, heads * out_features, rng, bias=False)
        self.att_src = Linear(out_features, 1, rng, bias=False)
        self.att_dst = Linear(out_features, 1, rng, bias=False)
        self.out_features = out_features

    def forward(self, graph: Graph, x: Tensor, record: dict | None = None) -> Tensor:
        n = graph.num_nodes
        edge_index = cached_matrix(
            graph, "edge_index_loops", _edge_index_with_self_loops
        )
        src, dst = edge_index

        h = self.linear(x)  # (n, heads*out)
        outputs = []
        asrc_cols, adst_cols = [], []
        for head in range(self.heads):
            cols = slice(head * self.out_features, (head + 1) * self.out_features)
            head_h = _slice_cols(h, cols)
            alpha_src = self.att_src(head_h)  # (n, 1)
            alpha_dst = self.att_dst(head_h)
            if record is not None:
                asrc_cols.append(alpha_src.data)
                adst_cols.append(alpha_dst.data)
            logits = ops.leaky_relu(
                ops.gather_rows(alpha_src, src) + ops.gather_rows(alpha_dst, dst),
                self.negative_slope,
            )
            att = ops.segment_softmax(logits, dst, n)  # (E, 1)
            messages = ops.gather_rows(head_h, src) * att
            outputs.append(ops.scatter_add_rows(messages, dst, n))
        if record is not None:
            # The per-node attention ingredients the incremental engine's
            # halo plan resplices: transformed features plus the per-head
            # (n, heads) source/destination attention coefficients.
            record["h"] = h.data
            record["asrc"] = np.concatenate(asrc_cols, axis=1)
            record["adst"] = np.concatenate(adst_cols, axis=1)
        if self.concat:
            return ops.concat(outputs, axis=1)
        total = outputs[0]
        for o in outputs[1:]:
            total = total + o
        return total * (1.0 / self.heads)


def _slice_cols(x: Tensor, cols: slice) -> Tensor:
    """Differentiable column slice (head / block selection)."""
    return ops.gather_cols(x, cols)


def _edge_index_with_self_loops(graph: Graph) -> np.ndarray:
    ei = graph.edge_index()
    loops = np.arange(graph.num_nodes)
    return np.hstack([ei, np.vstack([loops, loops])])


class GAT(GNNBackbone):
    """Two-layer GAT: multi-head concat, then single-head output layer."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: int = 64,
        heads: int = 4,
        dropout: float = 0.5,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(in_features, num_classes)
        rng = rng or np.random.default_rng(0)
        head_dim = max(1, hidden // heads)
        self.layer1 = GATLayer(in_features, head_dim, heads, rng, concat=True)
        self.layer2 = GATLayer(head_dim * heads, num_classes, 1, rng, concat=False)
        self.dropout = Dropout(dropout, rng)

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        h = self.dropout(x)
        h = ops.elu(self.layer1(graph, h))
        h = self.dropout(h)
        return self.layer2(graph, h)

    def eval_state(self, graph: Graph) -> dict:
        """Instrumented eval-mode forward for the incremental halo plan.

        Runs the exact ops of :meth:`forward` (eval mode, so dropout is the
        identity) while capturing, per attention layer, the per-node
        transformed features and attention coefficients, plus the post-ELU
        layer-1 activations and the final logits.  Captured arrays are
        bitwise identical to a plain ``predict_logits`` call.
        """
        was_training = self.training
        self.eval()
        layer1: dict = {}
        layer2: dict = {}
        h = self.dropout(Tensor(graph.features))
        act1 = ops.elu(self.layer1(graph, h, record=layer1))
        out = self.layer2(graph, self.dropout(act1), record=layer2)
        if was_training:
            self.train()
        return {
            "layer1": layer1,
            "act1": act1.data,
            "layer2": layer2,
            "out": out.data,
        }


class H2GCN(GNNBackbone):
    """H2GCN (Zhu et al., NeurIPS 2020), with its three designs:

    1. ego / neighbour embedding separation (no self-loops in aggregation),
    2. aggregation over both 1-hop and strict 2-hop neighbourhoods,
    3. final concatenation of all intermediate representations.
    """

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: int = 64,
        rounds: int = 2,
        dropout: float = 0.5,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(in_features, num_classes)
        rng = rng or np.random.default_rng(0)
        self.rounds = rounds
        self.embed = Linear(in_features, hidden, rng)
        # Each round triples the width (prev || A1 prev || A2 prev).
        final_dim = hidden * sum(2**i for i in range(rounds + 1))
        self.classify = Linear(final_dim, num_classes, rng)
        self.dropout = Dropout(dropout, rng)

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        return self._run(graph, x)

    def _run(self, graph: Graph, x: Tensor, record: dict | None = None) -> Tensor:
        a1 = cached_matrix(
            graph, "h2gcn_a1", lambda g: gcn_norm(g, add_self_loops=False)
        )
        a2 = cached_matrix(graph, "h2gcn_a2", _normalized_two_hop)

        h = ops.relu(self.embed(self.dropout(x)))
        reps = [h]
        current = h
        for _ in range(self.rounds):
            current = ops.concat(
                [ops.spmm(a1, current), ops.spmm(a2, current)], axis=1
            )
            reps.append(current)
        final = ops.concat(reps, axis=1)
        out = self.classify(self.dropout(final))
        if record is not None:
            record["reps"] = [r.data for r in reps]
            record["out"] = out.data
            record["a1"] = a1
            record["a2"] = a2
        return out

    def eval_state(self, graph: Graph) -> dict:
        """Instrumented eval-mode forward for the incremental halo plan.

        Captures every round's representation matrix (``reps[0]`` is the
        graph-independent embedding, ``reps[r]`` the round-``r`` concat of
        1-hop and strict-2-hop aggregations), the final logits, and the two
        propagation matrices.  Captured arrays are bitwise identical to a
        plain ``predict_logits`` call.
        """
        was_training = self.training
        self.eval()
        record: dict = {}
        self._run(graph, Tensor(graph.features), record)
        if was_training:
            self.train()
        return record


def _normalized_two_hop(graph: Graph):
    import scipy.sparse as sp

    # Consume the incremental engine's delta-patched matrix
    # (repro.gnn.incremental.patched_two_hop, installed under "two_hop")
    # when available; otherwise build transiently — the raw A @ A matrix
    # is not worth retaining next to the normalized "h2gcn_a2" cache.
    two = graph.cache.get("two_hop")
    if two is None:
        two = two_hop_adjacency(graph)
    deg = np.asarray(two.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(deg)
    nz = deg > 0
    inv_sqrt[nz] = deg[nz] ** -0.5
    d_half = sp.diags(inv_sqrt)
    return (d_half @ two @ d_half).tocsr()


class MixHop(GNNBackbone):
    """MixHop (Abu-El-Haija et al., ICML 2019): each layer concatenates
    propagations by adjacency powers ``Â^0, Â^1, Â^2``."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: int = 64,
        dropout: float = 0.5,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(in_features, num_classes)
        rng = rng or np.random.default_rng(0)
        width = max(1, hidden // 3)
        self.hop_linears1 = [Linear(in_features, width, rng) for _ in range(3)]
        self.hop_linears2 = [Linear(3 * width, num_classes, rng) for _ in range(3)]
        self.dropout = Dropout(dropout, rng)

    def _mix(self, graph: Graph, h: Tensor, linears, record: list | None = None) -> Tensor:
        a_hat = cached_matrix(graph, "gcn_norm", gcn_norm)
        pieces = []
        propagated = h
        for power, lin in enumerate(linears):
            if power > 0:
                propagated = ops.spmm(a_hat, propagated)
                if record is not None:
                    record.append(propagated.data)
            pieces.append(lin(propagated))
        return ops.concat(pieces, axis=1)

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        return self._run(graph, x)

    def _run(self, graph: Graph, x: Tensor, record: dict | None = None) -> Tensor:
        props1: list | None = None if record is None else []
        props2: list | None = None if record is None else []
        h = ops.relu(self._mix(graph, self.dropout(x), self.hop_linears1, props1))
        out = self._mix(graph, self.dropout(h), self.hop_linears2, props2)
        # Average the three output blocks into class logits.
        n_cls = self.num_classes
        blocks = [
            _slice_cols(out, slice(i * n_cls, (i + 1) * n_cls)) for i in range(3)
        ]
        total = blocks[0]
        for b in blocks[1:]:
            total = total + b
        total = total * (1.0 / 3.0)
        if record is not None:
            record["props1"] = props1  # [Â x, Â² x]
            record["h"] = h.data
            record["props2"] = props2  # [Â h, Â² h]
            record["out"] = total.data
            record["a_hat"] = cached_matrix(graph, "gcn_norm", gcn_norm)
        return total

    def eval_state(self, graph: Graph) -> dict:
        """Instrumented eval-mode forward for the incremental halo plan.

        Captures each layer's adjacency-power propagation products
        (``Â x``, ``Â² x``, ``Â h``, ``Â² h``), the post-ReLU hidden layer,
        the averaged logits and the normalised adjacency.  Captured arrays
        are bitwise identical to a plain ``predict_logits`` call.
        """
        was_training = self.training
        self.eval()
        record: dict = {}
        self._run(graph, Tensor(graph.features), record)
        if was_training:
            self.train()
        return record


BACKBONES = {
    "mlp": MLPClassifier,
    "gcn": GCN,
    "graphsage": GraphSAGE,
    "gat": GAT,
    "h2gcn": H2GCN,
    "mixhop": MixHop,
}


def build_backbone(
    name: str,
    in_features: int,
    num_classes: int,
    hidden: int = 64,
    dropout: float = 0.5,
    rng: np.random.Generator | None = None,
) -> GNNBackbone:
    """Instantiate a backbone by name (case-insensitive)."""
    try:
        cls = BACKBONES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown backbone {name!r}; choose from {sorted(BACKBONES)}"
        ) from None
    return cls(in_features, num_classes, hidden=hidden, dropout=dropout, rng=rng)
