"""Shared infrastructure for the GNN backbones.

Every backbone is a :class:`repro.nn.Module` whose ``forward`` takes the
graph and a feature tensor and returns class logits.  Propagation matrices
are memoised on the (immutable) graph via :func:`cached_matrix`, so
re-running many epochs on one topology costs a single normalisation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp

from ..graph import Graph
from ..nn import Module
from ..tensor import Tensor


def cached_matrix(graph: Graph, key: str, builder: Callable[[Graph], sp.spmatrix]):
    """Memoise ``builder(graph)`` in the graph's cache under ``key``."""
    if key not in graph.cache:
        graph.cache[key] = builder(graph)
    return graph.cache[key]


class GNNBackbone(Module):
    """Base class: a node classifier ``(graph, X) -> logits``.

    ``halo_plan`` is the incremental-engine hook (see
    :mod:`repro.gnn.incremental` and ``docs/architecture.md``): ``"auto"``
    (the default) looks the class up in the engine's plan registry, a
    :class:`~repro.gnn.incremental.HaloPlan` subclass declares a custom
    plan for a user backbone, and ``None`` explicitly opts out — the
    evaluator then always uses the dense full-graph forward
    (``examples/custom_backbone.py`` demonstrates both).  The
    declaration binds to the *exact* class — a subclass overriding
    ``forward`` changes the receptive field, so plans are never
    inherited; re-declare in the subclass when the forward is
    compatible.
    """

    #: Incremental halo plan: ``"auto"`` (exact-type registry lookup), a
    #: ``HaloPlan`` subclass, or ``None`` (dense fallback only).  Not
    #: inherited — consulted only on the class it is declared on.
    halo_plan = "auto"

    def __init__(self, in_features: int, num_classes: int) -> None:
        super().__init__()
        self.in_features = in_features
        self.num_classes = num_classes

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        raise NotImplementedError

    def predict_logits(self, graph: Graph) -> np.ndarray:
        """Eval-mode logits as a plain array (no autograd bookkeeping)."""
        was_training = self.training
        self.eval()
        out = self.forward(graph, Tensor(graph.features)).data
        if was_training:
            self.train()
        return out


def features_tensor(graph: Graph) -> Tensor:
    """The graph's feature matrix as a constant tensor."""
    if graph.features is None:
        raise ValueError("graph has no node features")
    return Tensor(graph.features)
