"""GNN backbones and training loops (replaces PyG/DGL layers)."""

from .base import GNNBackbone, cached_matrix, features_tensor
from .incremental import (
    IncrementalEvaluator,
    install_propagation_caches,
    patched_adjacency,
    patched_gcn_norm,
    patched_row_norm,
    patched_two_hop,
    supports_incremental,
)
from .models import (
    BACKBONES,
    GAT,
    GCN,
    H2GCN,
    GATLayer,
    GraphSAGE,
    MixHop,
    MLPClassifier,
    build_backbone,
)
from .trainer import Trainer, TrainResult, evaluate, train_backbone

__all__ = [
    "BACKBONES",
    "GAT",
    "GATLayer",
    "GCN",
    "GNNBackbone",
    "GraphSAGE",
    "H2GCN",
    "IncrementalEvaluator",
    "MLPClassifier",
    "MixHop",
    "TrainResult",
    "Trainer",
    "build_backbone",
    "cached_matrix",
    "evaluate",
    "features_tensor",
    "install_propagation_caches",
    "patched_adjacency",
    "patched_gcn_norm",
    "patched_row_norm",
    "patched_two_hop",
    "supports_incremental",
    "train_backbone",
]
