"""Incremental reward engine: delta propagation updates + halo forwards.

The RL loop's per-step cost is dominated by the reward evaluation: every
rewired graph rebuilds its propagation matrices from scratch and the GNN
scores **all** ``N`` nodes, even though one ``(k, d)`` rewire edits a small
set of edges whose influence — for a two-layer backbone — cannot escape the
2-hop halo of the edited endpoints.  This module makes both observations
operational:

1. **Delta-based propagation updates.**  :func:`repro.core.rewire.
   rewire_graph` records the exact inserted/deleted edge keys on the
   rewired graph (:class:`~repro.graph.GraphDelta`).  Given the base
   graph's cached matrices, :func:`patched_adjacency`,
   :func:`patched_gcn_norm`, :func:`patched_row_norm` and
   :func:`patched_two_hop` splice only the rows whose entries can differ
   (touched endpoints, their degree-affected neighbour rows, and — for the
   strict two-hop matrix — the delta's 2-hop closure); every other row's
   index/data segment is copied verbatim, so unchanged entries are
   *byte-identical* to a from-scratch build.

2. **Halo-restricted forward.**  For the two-layer linear-propagation
   backbones (GCN, GraphSAGE) the eval-mode logits of a rewired graph
   differ from the cached base-graph logits only inside the halo ``H``
   (dirty propagation rows plus their new-graph frontier).  The evaluator
   assembles ``(|halo|, N)`` propagation-row slices (base rows verbatim,
   dirty rows respliced), recomputes exactly those rows with plain
   :func:`repro.tensor.ops.spmm` over the slices and patches them into
   the cached base activations
   (:func:`repro.tensor.ops.scatter_patch_rows`), producing
   **full-graph** logits without a full forward.

Exactness contract
------------------
The patched propagation matrices are byte-identical to from-scratch
builds (unchanged rows are copied verbatim; respliced rows recompute the
same scalar formula in the same order).  Off-halo logit rows come from
the cached base evaluation and are byte-identical to a full
re-evaluation: every op involved is row-local (sparse row products sum in
identical index order, dense GEMM rows depend only on their own input
row).  Halo rows are recomputed through row-*subset* GEMMs whose BLAS
kernel may block the inner dimension differently from the full-matrix
call, so they are guaranteed equal at float64 resolution only —
``np.allclose(..., rtol=1e-9, atol=1e-12)``, observed ulp-level
(``<= 3e-16``) in the test suite.  Tie policy: the reward's accuracy term
uses ``argmax`` over logits, so only a class-logit tie within that
tolerance could resolve differently — with continuous weights such ties
have measure zero, and the dense full-graph evaluation is kept as the
reference twin (``RareConfig.incremental_reward = False``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..graph import Graph
from ..graph.graph import _member_sorted
from ..graph.normalize import gcn_norm, row_norm, two_hop_adjacency
from ..tensor import Tensor, ops
from .base import GNNBackbone, cached_matrix
from .models import GCN, H2GCN, GraphSAGE, MixHop

__all__ = [
    "IncrementalEvaluator",
    "install_propagation_caches",
    "patched_adjacency",
    "patched_gcn_norm",
    "patched_row_norm",
    "patched_two_hop",
    "supports_incremental",
]


# ---------------------------------------------------------------------------
# CSR row surgery primitives
# ---------------------------------------------------------------------------
def _union(*arrays: np.ndarray) -> np.ndarray:
    """Sorted unique union of int64 index arrays (empties welcome)."""
    parts = [np.asarray(a, dtype=np.int64) for a in arrays if len(a)]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(parts))


def _gather_segments(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flattened ``(row_ids, col_ids)`` of the CSR segments of ``rows``."""
    rows = np.asarray(rows, dtype=np.int64)
    counts = (indptr[rows + 1] - indptr[rows]).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    out_rows = np.repeat(rows, counts)
    starts = np.repeat(indptr[rows].astype(np.int64), counts)
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return out_rows, indices[starts + offsets].astype(np.int64)


def _neighbor_union(matrix: sp.csr_matrix, rows: np.ndarray) -> np.ndarray:
    """Unique column ids appearing in the CSR rows ``rows``."""
    if not len(rows):
        return np.empty(0, dtype=np.int64)
    _, cols = _gather_segments(matrix.indptr, matrix.indices, rows)
    return np.unique(cols)


def _replace_rows(
    mat: sp.csr_matrix,
    rows: np.ndarray,
    new_cols: np.ndarray,
    new_data: np.ndarray,
    new_lengths: np.ndarray,
) -> sp.csr_matrix:
    """A copy of ``mat`` with the CSR segments of ``rows`` replaced.

    ``rows`` must be sorted unique; ``new_cols``/``new_data`` hold the
    replacement segments concatenated in that row order (columns sorted
    within each row); ``new_lengths[i]`` is the segment length of
    ``rows[i]``.  Untouched rows are copied verbatim — their float data is
    bitwise-preserved, which is what makes the patched matrices exact.
    """
    n = mat.shape[0]
    old_lengths = np.diff(mat.indptr).astype(np.int64)
    lengths = old_lengths.copy()
    lengths[rows] = new_lengths
    indptr = np.empty(n + 1, dtype=np.int64)
    indptr[0] = 0
    np.cumsum(lengths, out=indptr[1:])
    nnz = int(indptr[-1])
    indices = np.empty(nnz, dtype=np.int64)
    data = np.empty(nnz, dtype=mat.data.dtype)

    dirty = np.zeros(n, dtype=bool)
    dirty[rows] = True
    old_rows = np.repeat(np.arange(n, dtype=np.int64), old_lengths)
    src = np.flatnonzero(~dirty[old_rows])
    if src.shape[0]:
        kept_rows = old_rows[src]
        pos = src - mat.indptr[kept_rows]
        dest = indptr[kept_rows] + pos
        indices[dest] = mat.indices[src]
        data[dest] = mat.data[src]
    if new_cols.shape[0]:
        seg_rows = np.repeat(rows, new_lengths)
        seg_ends = np.cumsum(new_lengths)
        pos = np.arange(new_cols.shape[0], dtype=np.int64) - np.repeat(
            seg_ends - new_lengths, new_lengths
        )
        dest = indptr[seg_rows] + pos
        indices[dest] = new_cols
        data[dest] = new_data
    return sp.csr_matrix((data, indices, indptr), shape=mat.shape)


def _require_delta(graph: Graph):
    if graph.delta is None:
        raise ValueError(
            "graph carries no GraphDelta; incremental patches need a graph "
            "produced by rewire_graph / add_edges / remove_edges"
        )
    return graph.delta


def _new_row_pairs(graph: Graph, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Row-major sorted ``(row, col)`` adjacency pairs of the *new* graph
    restricted to ``rows``, assembled from the base CSR plus the delta."""
    delta = graph.delta
    base_adj = delta.base.adjacency()
    nn = np.int64(graph.num_nodes)
    r0, c0 = _gather_segments(base_adj.indptr, base_adj.indices, rows)
    if delta.removed.shape[0] and r0.shape[0]:
        u = delta.removed // nn
        v = delta.removed % nn
        gone = np.concatenate([u * nn + v, v * nn + u])
        keep = np.isin(r0 * nn + c0, gone, invert=True)
        r0, c0 = r0[keep], c0[keep]
    if delta.added.shape[0]:
        u = delta.added // nn
        v = delta.added % nn
        in_rows = np.zeros(graph.num_nodes, dtype=bool)
        in_rows[rows] = True
        ar = np.concatenate([u[in_rows[u]], v[in_rows[v]]])
        ac = np.concatenate([v[in_rows[u]], u[in_rows[v]]])
        r0 = np.concatenate([r0, ar])
        c0 = np.concatenate([c0, ac])
    order = np.lexsort((c0, r0))
    return r0[order], c0[order]


# ---------------------------------------------------------------------------
# Patched propagation matrices
# ---------------------------------------------------------------------------
def patched_adjacency(graph: Graph) -> sp.csr_matrix:
    """``A_new`` spliced from the base adjacency via the graph's delta.

    Only the rows of delta-touched endpoints are rebuilt; every other
    row's segment is copied verbatim, so the result is bitwise identical
    to ``graph.adjacency()`` built from scratch.
    """
    delta = _require_delta(graph)
    base_adj = delta.base.adjacency()
    if delta.is_empty:
        return base_adj
    touched = delta.touched_nodes()
    rows, cols = _new_row_pairs(graph, touched)
    lengths = np.bincount(rows, minlength=graph.num_nodes)[touched]
    return _replace_rows(
        base_adj, touched, cols, np.ones(cols.shape[0]), lengths
    )


def _ensure_adjacency(graph: Graph) -> sp.csr_matrix:
    """The new graph's adjacency, patched into place if not yet built."""
    if graph._adj is None:
        graph._adj = patched_adjacency(graph)
    return graph._adj


def _new_degrees(graph: Graph) -> np.ndarray:
    delta = graph.delta
    return delta.base.degrees() + delta.degree_changes()


def _inv_sqrt_degrees(deg: np.ndarray, add_self_loops: bool) -> np.ndarray:
    """``D^{-1/2}`` factors, computed exactly as the fresh ``gcn_norm``
    build does (float power on the self-loop-augmented degrees) so
    respliced values are bitwise identical.  Shared by the full-matrix
    patch and the halo plans — the exactness contract depends on the two
    paths never diverging."""
    degv = (deg + 1 if add_self_loops else deg).astype(np.float64)
    inv = np.zeros_like(degv)
    nz = degv > 0
    inv[nz] = degv[nz] ** -0.5
    return inv


def _inv_degrees(deg: np.ndarray, add_self_loops: bool) -> np.ndarray:
    """``D^{-1}`` factors, the ``row_norm`` twin of
    :func:`_inv_sqrt_degrees` (same sharing rationale)."""
    degv = (deg + 1 if add_self_loops else deg).astype(np.float64)
    inv = np.zeros_like(degv)
    nz = degv > 0
    inv[nz] = 1.0 / degv[nz]
    return inv


def _with_self_loops(
    rows: np.ndarray, cols: np.ndarray, dirty: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Append a ``(r, r)`` entry for every dirty row and restore the
    row-major sorted order the splice/slice constructors require."""
    rows = np.concatenate([rows, dirty])
    cols = np.concatenate([cols, dirty])
    order = np.lexsort((cols, rows))
    return rows[order], cols[order]


def patched_gcn_norm(
    graph: Graph, add_self_loops: bool = True, cache_key: str = "gcn_norm"
) -> sp.csr_matrix:
    """``D^{-1/2}(A + I)D^{-1/2}`` of a delta-carrying graph by row/col patch.

    Entries can differ from the base matrix only in the rows of touched
    endpoints and of neighbours of degree-changed endpoints (the
    symmetric normalisation couples each entry to both endpoint degrees);
    exactly those rows are respliced with freshly scaled values, the rest
    is the base matrix's data verbatim.
    """
    delta = _require_delta(graph)
    base = delta.base
    builder = gcn_norm if add_self_loops else (
        lambda g: gcn_norm(g, add_self_loops=False)
    )
    base_mat = cached_matrix(base, cache_key, builder)
    if delta.is_empty:
        return base_mat

    inv_sqrt = _inv_sqrt_degrees(_new_degrees(graph), add_self_loops)

    touched = delta.touched_nodes()
    deg_changed = np.flatnonzero(delta.degree_changes())
    dirty = _union(touched, _neighbor_union(base.adjacency(), deg_changed))
    rows, cols = _new_row_pairs(graph, dirty)
    if add_self_loops:
        rows, cols = _with_self_loops(rows, cols, dirty)
    vals = inv_sqrt[rows] * inv_sqrt[cols]
    lengths = np.bincount(rows, minlength=graph.num_nodes)[dirty]
    return _replace_rows(base_mat, dirty, cols, vals, lengths)


def patched_row_norm(
    graph: Graph, add_self_loops: bool = False, cache_key: str = "row_norm"
) -> sp.csr_matrix:
    """``D^{-1} A`` of a delta-carrying graph by row patch.

    The row normalisation couples an entry to its *row* degree only, so
    just the touched endpoints' rows are respliced.
    """
    delta = _require_delta(graph)
    base = delta.base
    builder = (
        (lambda g: row_norm(g, add_self_loops=True)) if add_self_loops else row_norm
    )
    base_mat = cached_matrix(base, cache_key, builder)
    if delta.is_empty:
        return base_mat

    inv = _inv_degrees(_new_degrees(graph), add_self_loops)

    touched = delta.touched_nodes()
    rows, cols = _new_row_pairs(graph, touched)
    if add_self_loops:
        rows, cols = _with_self_loops(rows, cols, touched)
    vals = inv[rows]
    lengths = np.bincount(rows, minlength=graph.num_nodes)[touched]
    return _replace_rows(base_mat, touched, cols, vals, lengths)


def patched_two_hop(graph: Graph, cache_key: str = "two_hop") -> sp.csr_matrix:
    """Strict 2-hop adjacency patched via the delta's 2-hop closure.

    A row of ``A @ A`` can change only if the row's own neighbourhood
    changed or one of its (old or new) neighbours' did — i.e. inside the
    1-hop closure of the touched endpoints.  Those rows are recomputed as
    ``A_new[rows] @ A_new`` with the strict-2-hop cleanup (no ego, no
    one-hop overlap) and spliced into the base matrix.
    """
    delta = _require_delta(graph)
    base = delta.base
    base_mat = cached_matrix(base, cache_key, two_hop_adjacency)
    if delta.is_empty:
        return base_mat

    adj_new = _ensure_adjacency(graph)
    touched = delta.touched_nodes()
    closure = _union(
        touched,
        _neighbor_union(base.adjacency(), touched),
        _neighbor_union(adj_new, touched),
    )
    sub = (adj_new[closure] @ adj_new).tocoo()
    ego = closure[sub.row]
    col = sub.col.astype(np.int64)
    keep = col != ego
    if keep.any():
        lo = np.minimum(ego, col)
        hi = np.maximum(ego, col)
        keys = lo * np.int64(graph.num_nodes) + hi
        keep &= ~_member_sorted(keys, graph.edge_keys())
    local_rows = sub.row[keep].astype(np.int64)
    cols = col[keep]
    order = np.lexsort((cols, local_rows))
    local_rows, cols = local_rows[order], cols[order]
    rows = closure[local_rows]
    lengths = np.bincount(local_rows, minlength=closure.shape[0])
    return _replace_rows(
        base_mat, closure, cols, np.ones(cols.shape[0]), lengths
    )


def _row_slice_matrix(
    rows: np.ndarray,
    pair_rows: np.ndarray,
    pair_cols: np.ndarray,
    values: np.ndarray,
    num_cols: int,
) -> sp.csr_matrix:
    """A ``(len(rows), num_cols)`` CSR from row-major sorted pairs."""
    local = np.searchsorted(rows, pair_rows)
    lengths = np.bincount(local, minlength=rows.shape[0])
    indptr = np.empty(rows.shape[0] + 1, dtype=np.int64)
    indptr[0] = 0
    np.cumsum(lengths, out=indptr[1:])
    return sp.csr_matrix(
        (values, pair_cols, indptr), shape=(rows.shape[0], num_cols)
    )


def _halo_matrix(
    base_mat: sp.csr_matrix,
    halo: np.ndarray,
    dirty: np.ndarray,
    dirty_rows: sp.csr_matrix,
) -> sp.csr_matrix:
    """The new graph's propagation rows ``halo`` as a ``(|halo|, N)`` CSR.

    Halo rows outside the dirty set are *unchanged*, so they are extracted
    from the cached base matrix verbatim (bitwise-identical, C-speed fancy
    indexing); only the ``dirty`` rows — supplied as the freshly scaled
    ``dirty_rows`` slice — are respliced.  Per-step cost is proportional
    to the halo's adjacency volume, never to ``|E|``.
    """
    sub = base_mat[halo]
    return _replace_rows(
        sub,
        np.searchsorted(halo, dirty),
        dirty_rows.indices.astype(np.int64),
        dirty_rows.data,
        np.diff(dirty_rows.indptr).astype(np.int64),
    )


#: Cache key -> patcher for :func:`install_propagation_caches`.
_PATCHERS = {
    "gcn_norm": patched_gcn_norm,
    "h2gcn_a1": lambda g: patched_gcn_norm(
        g, add_self_loops=False, cache_key="h2gcn_a1"
    ),
    "row_norm": patched_row_norm,
    "two_hop": patched_two_hop,
}


def install_propagation_caches(
    graph: Graph, keys: Tuple[str, ...] = ("gcn_norm", "row_norm")
) -> None:
    """Populate ``graph.cache`` with delta-patched propagation matrices.

    Each requested matrix is spliced from the base graph's cached twin
    (built on demand) instead of being rebuilt from scratch — identical
    values, a fraction of the work.  Keys already present are left alone.
    """
    _require_delta(graph)
    for key in keys:
        if key not in graph.cache:
            graph.cache[key] = _PATCHERS[key](graph)


# ---------------------------------------------------------------------------
# Halo-restricted forward plans (two-layer linear-propagation backbones)
# ---------------------------------------------------------------------------
class _GCNPlan:
    """GCN: ``out = Â (relu(Â (X W1 + b1)) W2 + b2)`` (eval mode).

    ``X W1`` is graph-independent and cached per model version; dirty
    rows ``R`` of ``Â`` (touched endpoints plus degree-coupled neighbour
    rows) bound the hidden-layer changes, ``H = R ∪ N_new(R)`` the output
    changes.
    """

    matrix_keys = ("gcn_norm",)

    @staticmethod
    def base_state(model: GCN, graph: Graph) -> Dict[str, np.ndarray]:
        a_hat = cached_matrix(graph, "gcn_norm", gcn_norm)
        xw1 = model.lin1(Tensor(graph.features)).data
        h1 = np.asarray(a_hat @ xw1)
        h1 = h1 * (h1 > 0)
        z = model.lin2(Tensor(h1)).data
        out = np.asarray(a_hat @ z)
        return {"a_hat": a_hat, "xw1": xw1, "z": z, "out": out}

    @staticmethod
    def prepare(graph: Graph) -> Tuple[np.ndarray, np.ndarray, dict]:
        delta = graph.delta
        change = delta.degree_changes()
        touched = delta.touched_nodes()
        # Rows of Â that can change: edited endpoints plus neighbours of
        # degree-changed endpoints (the symmetric normalisation couples an
        # entry to both endpoint degrees).
        dirty = _union(
            touched,
            _neighbor_union(delta.base.adjacency(), np.flatnonzero(change)),
        )
        pairs = _new_row_pairs(graph, dirty)
        ctx = {"pairs": pairs, "deg": delta.base.degrees() + change}
        return dirty, _union(dirty, pairs[1]), ctx

    @staticmethod
    def logits(
        model: GCN,
        graph: Graph,
        state: Dict[str, np.ndarray],
        dirty: np.ndarray,
        halo: np.ndarray,
        ctx: dict,
    ) -> np.ndarray:
        inv_sqrt = _inv_sqrt_degrees(ctx["deg"], add_self_loops=True)
        pr, pc = _with_self_loops(*ctx["pairs"], dirty)
        a_dirty = _row_slice_matrix(
            dirty, pr, pc, inv_sqrt[pr] * inv_sqrt[pc], graph.num_nodes
        )
        a_halo = _halo_matrix(state["a_hat"], halo, dirty, a_dirty)
        h1 = ops.relu(ops.spmm(a_dirty, Tensor(state["xw1"]))).data
        z_rows = model.lin2(Tensor(h1)).data
        z = ops.scatter_patch_rows(Tensor(state["z"]), dirty, Tensor(z_rows)).data
        out_rows = ops.spmm(a_halo, Tensor(z)).data
        return ops.scatter_patch_rows(
            Tensor(state["out"]), halo, Tensor(out_rows)
        ).data


class _SAGEPlan:
    """GraphSAGE (mean aggregator): row-normalised ``M = D^{-1}A`` couples
    an entry only to its row degree, so the dirty rows are exactly the
    touched endpoints and ``H = D ∪ N_new(D)``.
    """

    matrix_keys = ("row_norm",)

    @staticmethod
    def base_state(model: GraphSAGE, graph: Graph) -> Dict[str, np.ndarray]:
        m = cached_matrix(graph, "row_norm", row_norm)
        x = Tensor(graph.features)
        s1x = model.self1(x).data
        h1 = s1x + model.neigh1(Tensor(np.asarray(m @ graph.features))).data
        h1 = h1 * (h1 > 0)
        out = (
            model.self2(Tensor(h1)).data
            + model.neigh2(Tensor(np.asarray(m @ h1))).data
        )
        return {"m": m, "s1x": s1x, "h1": h1, "out": out}

    @staticmethod
    def prepare(graph: Graph) -> Tuple[np.ndarray, np.ndarray, dict]:
        delta = graph.delta
        touched = delta.touched_nodes()
        pairs = _new_row_pairs(graph, touched)
        ctx = {"pairs": pairs, "deg": delta.base.degrees() + delta.degree_changes()}
        return touched, _union(touched, pairs[1]), ctx

    @staticmethod
    def logits(
        model: GraphSAGE,
        graph: Graph,
        state: Dict[str, np.ndarray],
        dirty: np.ndarray,
        halo: np.ndarray,
        ctx: dict,
    ) -> np.ndarray:
        inv = _inv_degrees(ctx["deg"], add_self_loops=False)
        pr, pc = ctx["pairs"]
        m_dirty = _row_slice_matrix(dirty, pr, pc, inv[pr], graph.num_nodes)
        m_halo = _halo_matrix(state["m"], halo, dirty, m_dirty)
        mx = ops.spmm(m_dirty, Tensor(graph.features)).data
        h1_rows = state["s1x"][dirty] + model.neigh1(Tensor(mx)).data
        h1_rows = h1_rows * (h1_rows > 0)
        h1 = ops.scatter_patch_rows(
            Tensor(state["h1"]), dirty, Tensor(h1_rows)
        ).data
        mh = ops.spmm(m_halo, Tensor(h1)).data
        out_rows = (
            model.self2(Tensor(h1[halo])).data + model.neigh2(Tensor(mh)).data
        )
        return ops.scatter_patch_rows(
            Tensor(state["out"]), halo, Tensor(out_rows)
        ).data


#: Backbones with an exact halo-restricted evaluation plan.
_PLANS = {GCN: _GCNPlan, GraphSAGE: _SAGEPlan}

#: Propagation caches worth delta-patching before a dense forward, for
#: backbones without a halo plan (GAT consumes an edge list, not a cached
#: matrix, so it has nothing to patch).
_FALLBACK_MATRIX_KEYS = {
    GCN: ("gcn_norm",),
    GraphSAGE: ("row_norm",),
    H2GCN: ("h2gcn_a1", "two_hop"),
    MixHop: ("gcn_norm",),
}


def supports_incremental(model: GNNBackbone) -> bool:
    """Whether ``model`` has a halo-restricted incremental forward plan."""
    return type(model) in _PLANS


# ---------------------------------------------------------------------------
# The evaluator the RL envs call per reward step
# ---------------------------------------------------------------------------
class IncrementalEvaluator:
    """Reward evaluation that re-computes only a rewire's halo.

    Bound to one model and one immutable base graph — the setting of the
    topology MDP, where every candidate is a small edit of the same base.
    Per model version (:meth:`invalidate` after any weight update) the
    evaluator caches the base graph's eval-mode activations; a
    delta-carrying graph is then scored by patching the cached propagation
    matrices (:func:`install_propagation_caches`) and re-running the
    forward on the edit's halo only.  Everything else — unsupported
    backbones, foreign graphs, halos above ``max_halo_frac`` of the nodes
    — falls back transparently to the dense full-graph evaluation, still
    delta-patching the backbone's known propagation caches first where
    possible (:data:`_FALLBACK_MATRIX_KEYS`).  ``stats`` counts which path
    each call took.
    """

    def __init__(
        self,
        model: GNNBackbone,
        base_graph: Graph,
        max_halo_frac: float = 0.5,
    ) -> None:
        self.model = model
        self.base_graph = base_graph
        self.max_halo_frac = float(max_halo_frac)
        self._plan = _PLANS.get(type(model))
        self._state: Optional[Dict[str, np.ndarray]] = None
        self.stats = {
            "base_hits": 0,
            "halo_evals": 0,
            "full_evals": 0,
            "invalidations": 0,
        }

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop the cached base activations (call after any weight update)."""
        self._state = None
        self.stats["invalidations"] += 1

    def _ensure_state(self) -> Dict[str, np.ndarray]:
        if self._state is None:
            self._state = self._plan.base_state(self.model, self.base_graph)
        return self._state

    def _eligible(self, graph: Graph) -> bool:
        return self._plan is not None and self._has_delta(graph)

    def _full_logits(self, graph: Graph) -> np.ndarray:
        self.stats["full_evals"] += 1
        return self.model.predict_logits(graph)

    def _has_delta(self, graph: Graph) -> bool:
        return graph.delta is not None and graph.delta.base is self.base_graph

    # ------------------------------------------------------------------
    def predict_logits(self, graph: Graph) -> np.ndarray:
        """Full-graph eval-mode logits of ``graph`` under the bound model."""
        if self._plan is not None and graph is self.base_graph:
            self.stats["base_hits"] += 1
            return self._ensure_state()["out"].copy()
        if not self._eligible(graph):
            if self._plan is None and self._has_delta(graph):
                # No halo plan for this backbone, but its propagation
                # caches can still be delta-patched before the dense
                # forward (H2GCN's A @ A rebuild is the big win here).
                keys = _FALLBACK_MATRIX_KEYS.get(type(self.model), ())
                if "h2gcn_a2" in graph.cache:
                    # The raw two-hop patch only feeds the normalized
                    # "h2gcn_a2" build; once that twin is memoised
                    # (revisited memo graphs, post-co-training re-scores)
                    # re-patching it would be pure waste.
                    keys = tuple(k for k in keys if k != "two_hop")
                if keys:
                    install_propagation_caches(graph, keys)
                    logits = self._full_logits(graph)
                    # Same rationale: drop the raw two-hop rather than
                    # retain the densest matrix twice per memoised graph.
                    if "two_hop" in keys:
                        graph.cache.pop("two_hop", None)
                    return logits
            return self._full_logits(graph)
        state = self._ensure_state()
        if graph.delta.is_empty:
            self.stats["base_hits"] += 1
            return state["out"].copy()
        dirty, halo, ctx = self._plan.prepare(graph)
        if halo.shape[0] > self.max_halo_frac * graph.num_nodes:
            # Too much of the graph is dirty for row slicing to pay off;
            # patch the full propagation matrices into the graph's cache
            # (cheaper than a rebuild) and run the dense forward.
            install_propagation_caches(graph, self._plan.matrix_keys)
            return self._full_logits(graph)
        self.stats["halo_evals"] += 1
        return self._plan.logits(self.model, graph, state, dirty, halo, ctx)

    def evaluate(
        self, graph: Graph, mask: np.ndarray, return_logits: bool = False
    ):
        """Eval-mode ``(accuracy, loss)`` on ``mask``.

        The twin of :func:`repro.gnn.trainer.evaluate`, computed from the
        incrementally patched logits through :func:`_masked_metrics` — the
        same float operations in the same order, without the autograd
        bookkeeping.  ``return_logits`` appends the full-graph logits to
        the tuple so callers needing both (the AUC reward) pay for one
        evaluation only.
        """
        logits = self.predict_logits(graph)
        acc, loss = _masked_metrics(logits, graph.labels, mask)
        if return_logits:
            return acc, loss, logits
        return acc, loss


def _masked_metrics(
    logits: np.ndarray, labels: np.ndarray, mask: np.ndarray
) -> Tuple[float, float]:
    """``(accuracy, cross-entropy)`` on ``mask`` from plain logits.

    Bitwise twin of ``evaluate``'s ``cross_entropy`` + ``accuracy`` pair:
    identical reductions in identical order (max-shifted log-softmax, sum
    along the class axis, pairwise sum then ``* (1/m)`` mean), minus the
    Tensor graph construction — the per-step fixed cost the reward loop
    does not need.
    """
    mask = np.asarray(mask)
    if mask.dtype == bool:
        mask = np.flatnonzero(mask)
    picked_logits = logits[mask]
    targets = np.asarray(labels, dtype=np.int64)[mask]
    m = targets.shape[0]
    if m == 0:
        return 0.0, 0.0
    shifted = picked_logits - picked_logits.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_z
    picked = log_probs[np.arange(m), targets]
    loss = -(picked.sum() * (1.0 / m))
    acc = float((picked_logits.argmax(axis=-1) == targets).mean())
    return acc, float(loss)
