"""Incremental reward engine: delta propagation updates + halo forwards.

The RL loop's per-step cost is dominated by the reward evaluation: every
rewired graph rebuilds its propagation matrices from scratch and the GNN
scores **all** ``N`` nodes, even though one ``(k, d)`` rewire edits a small
set of edges whose influence — for a two-layer backbone — cannot escape the
2-hop halo of the edited endpoints.  This module makes both observations
operational:

1. **Delta-based propagation updates.**  :func:`repro.core.rewire.
   rewire_graph` records the exact inserted/deleted edge keys on the
   rewired graph (:class:`~repro.graph.GraphDelta`).  Given the base
   graph's cached matrices, :func:`patched_adjacency`,
   :func:`patched_gcn_norm`, :func:`patched_row_norm` and
   :func:`patched_two_hop` splice only the rows whose entries can differ
   (touched endpoints, their degree-affected neighbour rows, and — for the
   strict two-hop matrix — the delta's 2-hop closure); every other row's
   index/data segment is copied verbatim, so unchanged entries are
   *byte-identical* to a from-scratch build.

2. **Halo-restricted forward.**  Every registered backbone carries a
   :class:`HaloPlan` — a per-backbone recipe that derives the rewire's
   *halo* (the node rows whose logits can change) from the backbone's
   receptive field and recomputes only those rows against cached
   base-graph activations:

   * **GCN / GraphSAGE** (two linear-propagation rounds): ``(|halo|, N)``
     propagation-row slices (base rows verbatim, dirty rows respliced)
     drive two row-subset :func:`repro.tensor.ops.spmm` stages whose
     results are patched into the cached activations.
   * **GAT**: halo-restricted edge-softmax re-normalisation — attention
     logits are recomputed only for edges incident to dirty rows, and
     softmax denominators are respliced for exactly the destination rows
     whose incoming edge set changed, reusing the cached per-node
     attention ingredients everywhere else (the backbone's
     ``eval_state`` hook captures them once per model version).
   * **H2GCN** (``K`` rounds of 1-hop + strict-2-hop aggregation, final
     concat): the normalised two-hop matrix is delta-patched through the
     shared raw ``two_hop`` cache (:func:`patched_h2gcn_a2`) and the halo
     grows round by round over the union of both aggregation supports.
   * **MixHop** (adjacency powers ``Â^0..Â^2`` per layer): the halo round
     count is the receptive field — max power times the number of layers.

   The halo radius is *derived*, not hardcoded: :func:`grow_halo` iterates
   each plan's per-round frontier, so a ``rounds=3`` H2GCN or a deeper
   user backbone (see ``examples/custom_backbone.py``) declares its own
   reach.  User backbones opt in by setting ``halo_plan`` on the class (or
   calling :func:`register_halo_plan`) and opt out with
   ``halo_plan = None``.

Exactness contract
------------------
See ``docs/equivalence-policy.md`` for the repository-wide policy this
module implements.  In short: the patched propagation matrices are
byte-identical to from-scratch builds (unchanged rows are copied
verbatim; respliced rows recompute the same scalar formula in the same
order).  Off-halo logit rows come from the cached base evaluation and are
byte-identical to a full re-evaluation: every op involved is row-local
(sparse row products sum in identical index order, dense GEMM rows depend
only on their own input row, and per-destination edge-softmax
accumulation preserves each segment's entry order).  Halo rows are
recomputed through row-*subset* GEMMs whose BLAS kernel may block the
inner dimension differently from the full-matrix call, so they are
guaranteed equal at float64 resolution only —
``np.allclose(..., rtol=1e-9, atol=1e-12)``, observed ulp-level
(``<= 3e-16``) in the test suite.  Tie policy: the reward's accuracy term
uses ``argmax`` over logits, so only a class-logit tie within that
tolerance could resolve differently — with continuous weights such ties
have measure zero, and the dense full-graph evaluation is kept as the
reference twin (``RareConfig.incremental_reward = False``).
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..graph import Graph
from ..graph.graph import _member_sorted
from ..graph.normalize import gcn_norm, row_norm, two_hop_adjacency
from ..graph.storage import MmapReleaser
from ..telemetry import SIZE_BUCKETS, Counter, StatsView, get_telemetry
from ..tensor import Tensor, ops
from ..tensor.backends import active_backend
from .base import GNNBackbone, cached_matrix
from .models import GAT, GCN, H2GCN, GraphSAGE, MixHop, _normalized_two_hop

__all__ = [
    "HaloPlan",
    "IncrementalEvaluator",
    "PropagationRowSource",
    "ScratchBuffers",
    "grow_halo",
    "install_propagation_caches",
    "patched_adjacency",
    "patched_gcn_norm",
    "patched_h2gcn_a2",
    "patched_row_norm",
    "patched_two_hop",
    "register_halo_plan",
    "resolve_halo_plan",
    "supports_incremental",
]


# ---------------------------------------------------------------------------
# Backend plumbing + per-evaluation scratch buffers
# ---------------------------------------------------------------------------
def _spmm(matrix: sp.spmatrix, dense: np.ndarray) -> np.ndarray:
    """Sparse-dense product through the active tensor backend.

    Every raw ``np.asarray(matrix @ dense)`` in the correction paths
    routes through here so the numba backend (when selected) serves the
    same sites as the reference — the numpy backend computes the exact
    historical expression, keeping the bitwise off-halo contract intact.
    """
    return active_backend().spmm(matrix, dense)


class ScratchBuffers:
    """A free-list of reusable boolean mask buffers, keyed by length.

    The correction-based halo plans (H2GCN, MixHop) allocate a handful of
    ``np.zeros(n, bool)`` masks per round — membership masks in
    :func:`_neighbor_mask`, per-round reach masks, halo accumulators.  At
    RL-loop rates that is pure allocator traffic: every evaluation frees
    exactly what it allocated.  The evaluator therefore owns one pool and
    leases buffers to the plan code for the duration of a single
    evaluation (:func:`_scratch_session`); leased buffers are zeroed on
    hand-out, so reuse can never leak one evaluation's marks into the
    next (regression-tested in ``tests/gnn/test_incremental.py``).

    Plan code never touches the pool directly — it calls
    :func:`_bool_scratch`, which falls back to a fresh allocation when no
    session is active (plans and patch helpers stay usable standalone).

    Examples
    --------
    >>> pool = ScratchBuffers()
    >>> with _scratch_session(pool):
    ...     mask = _bool_scratch(graph.num_nodes)   # leased, all-False
    >>> pool.bool_mask(4) is pool.bool_mask(4)      # fresh lease per call
    False
    """

    def __init__(self) -> None:
        self._free: Dict[int, List[np.ndarray]] = {}
        self._leased: List[np.ndarray] = []

    def bool_mask(self, n: int) -> np.ndarray:
        """Lease a zeroed boolean buffer of length ``n``."""
        free = self._free.get(n)
        if free:
            buf = free.pop()
            buf.fill(False)
        else:
            buf = np.zeros(n, dtype=bool)
        self._leased.append(buf)
        return buf

    def release_all(self) -> None:
        """Return every leased buffer to the free list (contents stale)."""
        for buf in self._leased:
            self._free.setdefault(buf.shape[0], []).append(buf)
        self._leased.clear()


_ACTIVE_SCRATCH: Optional[ScratchBuffers] = None


def _bool_scratch(n: int) -> np.ndarray:
    """A zeroed bool mask of length ``n`` — leased when a session is live."""
    if _ACTIVE_SCRATCH is not None:
        return _ACTIVE_SCRATCH.bool_mask(n)
    return np.zeros(n, dtype=bool)


@contextmanager
def _scratch_session(scratch: ScratchBuffers):
    """Activate ``scratch`` for the extent of one evaluation.

    On exit every leased buffer returns to the pool, so nothing handed
    out here may outlive the ``with`` block — plan return values are
    always ``flatnonzero`` copies or freshly assembled arrays, never the
    masks themselves.
    """
    global _ACTIVE_SCRATCH
    previous = _ACTIVE_SCRATCH
    _ACTIVE_SCRATCH = scratch
    try:
        yield scratch
    finally:
        _ACTIVE_SCRATCH = previous
        scratch.release_all()


# ---------------------------------------------------------------------------
# CSR row surgery primitives
# ---------------------------------------------------------------------------
def _union(*arrays: np.ndarray) -> np.ndarray:
    """Sorted unique union of int64 index arrays (empties welcome)."""
    parts = [np.asarray(a, dtype=np.int64) for a in arrays if len(a)]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(parts))


def _gather_segments(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flattened ``(row_ids, col_ids)`` of the CSR segments of ``rows``."""
    rows = np.asarray(rows, dtype=np.int64)
    counts = (indptr[rows + 1] - indptr[rows]).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    out_rows = np.repeat(rows, counts)
    starts = np.repeat(indptr[rows].astype(np.int64), counts)
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return out_rows, indices[starts + offsets].astype(np.int64)


def _neighbor_union(matrix: sp.csr_matrix, rows: np.ndarray) -> np.ndarray:
    """Unique column ids appearing in the CSR rows ``rows``."""
    return _neighbor_union_csr(matrix.indptr, matrix.indices, rows)


def _neighbor_union_csr(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """:func:`_neighbor_union` on raw CSR arrays — the form the
    bundle-backed paths use so a gather never forces the full adjacency
    matrix into existence."""
    if not len(rows):
        return np.empty(0, dtype=np.int64)
    _, cols = _gather_segments(indptr, indices, rows)
    return np.unique(cols)


def _base_csr_arrays(base: Graph) -> Tuple[np.ndarray, np.ndarray]:
    """``(indptr, indices)`` of ``base``'s adjacency for row gathers.

    Bundle-backed graphs that have not materialised their adjacency serve
    the stored CSR memmaps directly — a gather then faults in only the
    pages the requested rows live on — while plain (or already
    materialised) graphs hand out the cached matrix's arrays unchanged,
    so every caller sees identical column ids either way.
    """
    indptr = getattr(base, "_bundle_indptr", None)
    if indptr is not None and base._adj is None:
        return indptr, base._bundle_indices
    adj = base.adjacency()
    return adj.indptr, adj.indices


def _neighbor_mask(
    matrix: sp.csr_matrix, rows: np.ndarray, n: int
) -> np.ndarray:
    """Boolean membership mask of :func:`_neighbor_union` — O(n + volume)
    with no sort, the hot-path twin for the correction-based plans whose
    reachable sets grow toward ``n``.  The mask comes from the active
    scratch pool when an evaluation session is live."""
    mask = _bool_scratch(n)
    if len(rows):
        _, cols = _gather_segments(matrix.indptr, matrix.indices, rows)
        mask[cols] = True
    return mask


def _replace_rows(
    mat: sp.csr_matrix,
    rows: np.ndarray,
    new_cols: np.ndarray,
    new_data: np.ndarray,
    new_lengths: np.ndarray,
) -> sp.csr_matrix:
    """A copy of ``mat`` with the CSR segments of ``rows`` replaced.

    ``rows`` must be sorted unique; ``new_cols``/``new_data`` hold the
    replacement segments concatenated in that row order (columns sorted
    within each row); ``new_lengths[i]`` is the segment length of
    ``rows[i]``.  Untouched rows are copied verbatim — their float data is
    bitwise-preserved, which is what makes the patched matrices exact.
    """
    n = mat.shape[0]
    old_lengths = np.diff(mat.indptr).astype(np.int64)
    lengths = old_lengths.copy()
    lengths[rows] = new_lengths
    indptr = np.empty(n + 1, dtype=np.int64)
    indptr[0] = 0
    np.cumsum(lengths, out=indptr[1:])
    nnz = int(indptr[-1])
    indices = np.empty(nnz, dtype=np.int64)
    data = np.empty(nnz, dtype=mat.data.dtype)

    dirty = np.zeros(n, dtype=bool)
    dirty[rows] = True
    old_rows = np.repeat(np.arange(n, dtype=np.int64), old_lengths)
    src = np.flatnonzero(~dirty[old_rows])
    if src.shape[0]:
        kept_rows = old_rows[src]
        pos = src - mat.indptr[kept_rows]
        dest = indptr[kept_rows] + pos
        indices[dest] = mat.indices[src]
        data[dest] = mat.data[src]
    if new_cols.shape[0]:
        seg_rows = np.repeat(rows, new_lengths)
        seg_ends = np.cumsum(new_lengths)
        pos = np.arange(new_cols.shape[0], dtype=np.int64) - np.repeat(
            seg_ends - new_lengths, new_lengths
        )
        dest = indptr[seg_rows] + pos
        indices[dest] = new_cols
        data[dest] = new_data
    return sp.csr_matrix((data, indices, indptr), shape=mat.shape)


def _require_delta(graph: Graph):
    if graph.delta is None:
        raise ValueError(
            "graph carries no GraphDelta; incremental patches need a graph "
            "produced by rewire_graph / add_edges / remove_edges"
        )
    return graph.delta


def _new_row_pairs(graph: Graph, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Row-major sorted ``(row, col)`` adjacency pairs of the *new* graph
    restricted to ``rows``, assembled from the base CSR plus the delta."""
    delta = graph.delta
    base_indptr, base_indices = _base_csr_arrays(delta.base)
    nn = np.int64(graph.num_nodes)
    r0, c0 = _gather_segments(base_indptr, base_indices, rows)
    if delta.removed.shape[0] and r0.shape[0]:
        u = delta.removed // nn
        v = delta.removed % nn
        gone = np.concatenate([u * nn + v, v * nn + u])
        keep = np.isin(r0 * nn + c0, gone, invert=True)
        r0, c0 = r0[keep], c0[keep]
    if delta.added.shape[0]:
        u = delta.added // nn
        v = delta.added % nn
        in_rows = np.zeros(graph.num_nodes, dtype=bool)
        in_rows[rows] = True
        ar = np.concatenate([u[in_rows[u]], v[in_rows[v]]])
        ac = np.concatenate([v[in_rows[u]], u[in_rows[v]]])
        r0 = np.concatenate([r0, ar])
        c0 = np.concatenate([c0, ac])
    order = np.lexsort((c0, r0))
    return r0[order], c0[order]


# ---------------------------------------------------------------------------
# Patched propagation matrices
# ---------------------------------------------------------------------------
def patched_adjacency(graph: Graph) -> sp.csr_matrix:
    """``A_new`` spliced from the base adjacency via the graph's delta.

    Only the rows of delta-touched endpoints are rebuilt; every other
    row's segment is copied verbatim, so the result is bitwise identical
    to ``graph.adjacency()`` built from scratch.

    Examples
    --------
    >>> rewired = base.add_edges([(0, 5)])          # carries a GraphDelta
    >>> fast = patched_adjacency(rewired)
    >>> np.array_equal(fast.toarray(), rewired.adjacency().toarray())
    True
    """
    delta = _require_delta(graph)
    base_adj = delta.base.adjacency()
    if delta.is_empty:
        return base_adj
    touched = delta.touched_nodes()
    rows, cols = _new_row_pairs(graph, touched)
    lengths = np.bincount(rows, minlength=graph.num_nodes)[touched]
    return _replace_rows(
        base_adj, touched, cols, np.ones(cols.shape[0]), lengths
    )


def _ensure_adjacency(graph: Graph) -> sp.csr_matrix:
    """The new graph's adjacency, patched into place if not yet built."""
    if graph._adj is None:
        graph._adj = patched_adjacency(graph)
    return graph._adj


def _new_degrees(graph: Graph) -> np.ndarray:
    delta = graph.delta
    return delta.base.degrees() + delta.degree_changes()


def _inv_sqrt_degrees(deg: np.ndarray, add_self_loops: bool) -> np.ndarray:
    """``D^{-1/2}`` factors, computed exactly as the fresh ``gcn_norm``
    build does (float power on the self-loop-augmented degrees) so
    respliced values are bitwise identical.  Shared by the full-matrix
    patch and the halo plans — the exactness contract depends on the two
    paths never diverging."""
    degv = (deg + 1 if add_self_loops else deg).astype(np.float64)
    inv = np.zeros_like(degv)
    nz = degv > 0
    inv[nz] = degv[nz] ** -0.5
    return inv


def _inv_degrees(deg: np.ndarray, add_self_loops: bool) -> np.ndarray:
    """``D^{-1}`` factors, the ``row_norm`` twin of
    :func:`_inv_sqrt_degrees` (same sharing rationale)."""
    degv = (deg + 1 if add_self_loops else deg).astype(np.float64)
    inv = np.zeros_like(degv)
    nz = degv > 0
    inv[nz] = 1.0 / degv[nz]
    return inv


def _with_self_loops(
    rows: np.ndarray, cols: np.ndarray, dirty: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Append a ``(r, r)`` entry for every dirty row and restore the
    row-major sorted order the splice/slice constructors require."""
    rows = np.concatenate([rows, dirty])
    cols = np.concatenate([cols, dirty])
    order = np.lexsort((cols, rows))
    return rows[order], cols[order]


def patched_gcn_norm(
    graph: Graph, add_self_loops: bool = True, cache_key: str = "gcn_norm"
) -> sp.csr_matrix:
    """``D^{-1/2}(A + I)D^{-1/2}`` of a delta-carrying graph by row/col patch.

    Entries can differ from the base matrix only in the rows of touched
    endpoints and of neighbours of degree-changed endpoints (the
    symmetric normalisation couples each entry to both endpoint degrees);
    exactly those rows are respliced with freshly scaled values, the rest
    is the base matrix's data verbatim.

    Examples
    --------
    >>> rewired = rewire_graph(base, sequences, k, d)
    >>> fast = patched_gcn_norm(rewired)            # no O(E) rebuild
    >>> np.array_equal(fast.toarray(), gcn_norm(rewired).toarray())
    True
    """
    delta = _require_delta(graph)
    base = delta.base
    builder = gcn_norm if add_self_loops else (
        lambda g: gcn_norm(g, add_self_loops=False)
    )
    base_mat = cached_matrix(base, cache_key, builder)
    if delta.is_empty:
        return base_mat

    inv_sqrt = _inv_sqrt_degrees(_new_degrees(graph), add_self_loops)

    touched = delta.touched_nodes()
    deg_changed = np.flatnonzero(delta.degree_changes())
    dirty = _union(touched, _neighbor_union(base.adjacency(), deg_changed))
    rows, cols = _new_row_pairs(graph, dirty)
    if add_self_loops:
        rows, cols = _with_self_loops(rows, cols, dirty)
    vals = inv_sqrt[rows] * inv_sqrt[cols]
    lengths = np.bincount(rows, minlength=graph.num_nodes)[dirty]
    return _replace_rows(base_mat, dirty, cols, vals, lengths)


def patched_row_norm(
    graph: Graph, add_self_loops: bool = False, cache_key: str = "row_norm"
) -> sp.csr_matrix:
    """``D^{-1} A`` of a delta-carrying graph by row patch.

    The row normalisation couples an entry to its *row* degree only, so
    just the touched endpoints' rows are respliced.

    Examples
    --------
    >>> rewired = base.remove_edges([(2, 7)])
    >>> fast = patched_row_norm(rewired)
    >>> np.array_equal(fast.toarray(), row_norm(rewired).toarray())
    True
    """
    delta = _require_delta(graph)
    base = delta.base
    builder = (
        (lambda g: row_norm(g, add_self_loops=True)) if add_self_loops else row_norm
    )
    base_mat = cached_matrix(base, cache_key, builder)
    if delta.is_empty:
        return base_mat

    inv = _inv_degrees(_new_degrees(graph), add_self_loops)

    touched = delta.touched_nodes()
    rows, cols = _new_row_pairs(graph, touched)
    if add_self_loops:
        rows, cols = _with_self_loops(rows, cols, touched)
    vals = inv[rows]
    lengths = np.bincount(rows, minlength=graph.num_nodes)[touched]
    return _replace_rows(base_mat, touched, cols, vals, lengths)


def _two_hop_closure(graph: Graph) -> np.ndarray:
    """Rows of the strict two-hop matrix whose *structure* can change:
    the 1-hop closure (old and new neighbourhoods) of the touched
    endpoints."""
    delta = graph.delta
    touched = delta.touched_nodes()
    return _union(
        touched,
        _neighbor_union(delta.base.adjacency(), touched),
        _neighbor_union(_ensure_adjacency(graph), touched),
    )


def _strict_two_hop_rows(
    graph: Graph, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fresh strict-2-hop structure of the *new* graph for ``rows``.

    Returns row-major sorted ``(local_rows, cols, lengths)`` where
    ``local_rows`` indexes into ``rows``: the rows of ``A_new[rows] @
    A_new`` after the strict cleanup (no ego, no one-hop overlap).
    """
    adj_new = _ensure_adjacency(graph)
    sub = (adj_new[rows] @ adj_new).tocoo()
    ego = rows[sub.row]
    col = sub.col.astype(np.int64)
    keep = col != ego
    if keep.any():
        lo = np.minimum(ego, col)
        hi = np.maximum(ego, col)
        keys = lo * np.int64(graph.num_nodes) + hi
        keep &= ~_member_sorted(keys, graph.edge_keys())
    local_rows = sub.row[keep].astype(np.int64)
    cols = col[keep]
    order = np.lexsort((cols, local_rows))
    local_rows, cols = local_rows[order], cols[order]
    lengths = np.bincount(local_rows, minlength=rows.shape[0])
    return local_rows, cols, lengths


def patched_two_hop(graph: Graph, cache_key: str = "two_hop") -> sp.csr_matrix:
    """Strict 2-hop adjacency patched via the delta's 2-hop closure.

    A row of ``A @ A`` can change only if the row's own neighbourhood
    changed or one of its (old or new) neighbours' did — i.e. inside the
    1-hop closure of the touched endpoints.  Those rows are recomputed as
    ``A_new[rows] @ A_new`` with the strict-2-hop cleanup (no ego, no
    one-hop overlap) and spliced into the base matrix.

    Examples
    --------
    >>> rewired = base.add_edges([(0, 5)])          # carries a GraphDelta
    >>> fast = patched_two_hop(rewired)
    >>> (fast != two_hop_adjacency(rewired)).nnz    # bitwise identical
    0
    """
    delta = _require_delta(graph)
    base = delta.base
    base_mat = cached_matrix(base, cache_key, two_hop_adjacency)
    if delta.is_empty:
        return base_mat

    closure = _two_hop_closure(graph)
    local_rows, cols, lengths = _strict_two_hop_rows(graph, closure)
    return _replace_rows(
        base_mat, closure, cols, np.ones(cols.shape[0]), lengths
    )


def _two_hop_rescaling(
    graph: Graph,
) -> Tuple[sp.csr_matrix, np.ndarray, np.ndarray, np.ndarray, np.ndarray,
           np.ndarray, np.ndarray]:
    """Shared core of the strict-two-hop renormalisation.

    Returns ``(base_two, base_d2, closure, local_rows, cols, changed,
    inv2)``: the base raw two-hop matrix and its (memoised) degree
    vector, the structural closure with its fresh row structure
    (row-major sorted, ``local_rows`` indexing into ``closure``), the
    rows whose two-hop degree changed, and the new ``D2^{-1/2}`` scaling.
    Both the full-matrix patch (:func:`patched_h2gcn_a2`) and the H2GCN
    halo plan consume this — the engine's bitwise contract depends on
    the two paths never diverging on the degree/rescale arithmetic.
    """
    delta = graph.delta
    base = delta.base
    base_two = cached_matrix(base, "two_hop", two_hop_adjacency)
    base_d2 = cached_matrix(
        base, "two_hop_deg",
        lambda g: np.asarray(base_two.sum(axis=1)).ravel(),
    )
    closure = _two_hop_closure(graph)
    local_rows, cols, lengths = _strict_two_hop_rows(graph, closure)
    # New two-hop degrees: row sums change only where structure does.
    d2 = base_d2.copy()
    new_counts = lengths.astype(np.float64)
    changed = closure[d2[closure] != new_counts]
    d2[closure] = new_counts
    inv2 = np.zeros_like(d2)
    nz = d2 > 0
    inv2[nz] = d2[nz] ** -0.5
    return base_two, base_d2, closure, local_rows, cols, changed, inv2


def _h2gcn_a2_dirty(graph: Graph) -> Tuple[np.ndarray, sp.csr_matrix]:
    """Dirty rows of the *normalised* strict-two-hop matrix.

    Returns ``(dirty, rows_slice)``: the sorted dirty row ids and their
    freshly scaled ``(|dirty|, N)`` CSR rows.  Dirty rows split into the
    closure (structure changed) and base-structure rows that merely
    touch a column whose two-hop degree changed — the symmetric
    normalisation couples every entry to both endpoint degrees, exactly
    like :func:`patched_gcn_norm`.
    """
    base_two, _, closure, local_rows, cols, changed, inv = (
        _two_hop_rescaling(graph)
    )
    dirty = _union(closure, _neighbor_union(base_two, changed))
    extra = np.setdiff1d(dirty, closure)
    er, ec = _gather_segments(base_two.indptr, base_two.indices, extra)
    rr = np.concatenate([closure[local_rows], er])
    cc = np.concatenate([cols, ec])
    order = np.lexsort((cc, rr))
    rr, cc = rr[order], cc[order]
    rows_slice = _row_slice_matrix(
        dirty, rr, cc, inv[rr] * inv[cc], graph.num_nodes
    )
    return dirty, rows_slice


def patched_h2gcn_a2(
    graph: Graph, cache_key: str = "h2gcn_a2"
) -> sp.csr_matrix:
    """Normalised strict-two-hop matrix (H2GCN's ``A2``) by row patch.

    Splices ``D2^{-1/2} A2 D2^{-1/2}`` of a delta-carrying graph from the
    base graph's cached matrix: structural closure rows are rebuilt from
    the new adjacency, rows coupling to a changed two-hop degree are
    rescaled, everything else is the base data verbatim — bitwise equal to
    the fresh ``_normalized_two_hop`` build, at the cost of the closure's
    two-hop volume instead of a full ``A @ A``.

    Examples
    --------
    >>> rewired = base.add_edges([(0, 5)])
    >>> a2 = patched_h2gcn_a2(rewired)              # no full A @ A rebuild
    >>> np.array_equal(a2.toarray(), _normalized_two_hop(rewired).toarray())
    True
    """
    delta = _require_delta(graph)
    base = delta.base
    cached_matrix(base, "two_hop", two_hop_adjacency)
    base_mat = cached_matrix(base, cache_key, _normalized_two_hop)
    if delta.is_empty:
        return base_mat
    dirty, rows_slice = _h2gcn_a2_dirty(graph)
    return _replace_rows(
        base_mat,
        dirty,
        rows_slice.indices.astype(np.int64),
        rows_slice.data,
        np.diff(rows_slice.indptr).astype(np.int64),
    )


def _row_slice_matrix(
    rows: np.ndarray,
    pair_rows: np.ndarray,
    pair_cols: np.ndarray,
    values: np.ndarray,
    num_cols: int,
) -> sp.csr_matrix:
    """A ``(len(rows), num_cols)`` CSR from row-major sorted pairs."""
    local = np.searchsorted(rows, pair_rows)
    lengths = np.bincount(local, minlength=rows.shape[0])
    indptr = np.empty(rows.shape[0] + 1, dtype=np.int64)
    indptr[0] = 0
    np.cumsum(lengths, out=indptr[1:])
    return sp.csr_matrix(
        (values, pair_cols, indptr), shape=(rows.shape[0], num_cols)
    )


def _halo_matrix(
    base_mat: sp.csr_matrix,
    halo: np.ndarray,
    dirty: np.ndarray,
    dirty_rows: sp.csr_matrix,
) -> sp.csr_matrix:
    """The new graph's propagation rows ``halo`` as a ``(|halo|, N)`` CSR.

    Halo rows outside the dirty set are *unchanged*, so they are extracted
    from the cached base matrix verbatim (bitwise-identical, C-speed fancy
    indexing); only the ``dirty`` rows — supplied as the freshly scaled
    ``dirty_rows`` slice — are respliced.  Per-step cost is proportional
    to the halo's adjacency volume, never to ``|E|``.
    """
    sub = base_mat[halo]
    return _replace_rows(
        sub,
        np.searchsorted(halo, dirty),
        dirty_rows.indices.astype(np.int64),
        dirty_rows.data,
        np.diff(dirty_rows.indptr).astype(np.int64),
    )


#: Cache key -> patcher for :func:`install_propagation_caches`.
_PATCHERS = {
    "adjacency": patched_adjacency,
    "gcn_norm": patched_gcn_norm,
    "h2gcn_a1": lambda g: patched_gcn_norm(
        g, add_self_loops=False, cache_key="h2gcn_a1"
    ),
    "h2gcn_a2": patched_h2gcn_a2,
    "row_norm": patched_row_norm,
    "two_hop": patched_two_hop,
}


def install_propagation_caches(
    graph: Graph, keys: Tuple[str, ...] = ("gcn_norm", "row_norm")
) -> None:
    """Populate ``graph.cache`` with delta-patched propagation matrices.

    Each requested matrix is spliced from the base graph's cached twin
    (built on demand) instead of being rebuilt from scratch — identical
    values, a fraction of the work.  Keys already present are left alone.
    Valid keys: ``"adjacency"``, ``"gcn_norm"``, ``"row_norm"``,
    ``"two_hop"``, ``"h2gcn_a1"``, ``"h2gcn_a2"``.

    Examples
    --------
    >>> rewired = rewire_graph(base, sequences, k, d)   # records a delta
    >>> install_propagation_caches(rewired, ("gcn_norm", "h2gcn_a2"))
    >>> sorted(rewired.cache)                           # ready for forward
    ['gcn_norm', 'h2gcn_a2']
    """
    _require_delta(graph)
    tel = get_telemetry()
    for key in keys:
        if key not in graph.cache:
            tel.count(f"incremental.cache.build.{key}")
            graph.cache[key] = _PATCHERS[key](graph)
        else:
            tel.count(f"incremental.cache.hit.{key}")


# ---------------------------------------------------------------------------
# Halo-aware row loading: propagation rows straight from a graph bundle
# ---------------------------------------------------------------------------
class PropagationRowSource:
    """Serves base propagation-matrix rows from a graph's CSR pages.

    A lazy, read-only stand-in for the cached full ``sp.csr_matrix`` in
    the row-slice halo plans: ``source[rows]`` assembles the requested
    (sorted unique) rows of ``gcn_norm`` / ``row_norm`` / the plain
    adjacency from the graph's ``csr_neighbors()`` arrays plus its degree
    vector.  On a bundle-backed :class:`~repro.graph.storage.MemmapGraph`
    those arrays are the stored memmaps, so a gather faults in only the
    CSR pages the requested rows live on — the dirty-row closure of an
    edit, never ``O(E)``.  The float scaling replays the fresh build's
    exact operations (:func:`_inv_sqrt_degrees` / :func:`_inv_degrees`
    applied to the integer degrees, then one elementwise product), so
    every served row is bitwise identical to the corresponding row of the
    materialised matrix and :func:`_halo_matrix` accepts a source
    anywhere it accepts the matrix itself.

    Examples
    --------
    >>> mg = load_graph_bundle("cora.bundle")        # memmap-backed
    >>> src = PropagationRowSource(mg, "gcn_norm")
    >>> rows = np.array([3, 4, 17])                  # sorted unique ids
    >>> np.array_equal(src[rows].data, gcn_norm(mg)[rows].data)
    True
    """

    def __init__(self, graph: Graph, key: str) -> None:
        if key not in ("adjacency", "gcn_norm", "row_norm"):
            raise ValueError(
                f"unsupported propagation key for row streaming: {key!r}"
            )
        self.graph = graph
        self.key = key
        self.shape = (graph.num_nodes, graph.num_nodes)
        self._indptr, self._indices = graph.csr_neighbors()
        deg = graph.degrees()
        if key == "gcn_norm":
            self._scale = _inv_sqrt_degrees(deg, add_self_loops=True)
        elif key == "row_norm":
            self._scale = _inv_degrees(deg, add_self_loops=False)
        else:
            self._scale = None

    @property
    def add_self_loops(self) -> bool:
        """Whether served rows carry the spliced-in ``A + I`` diagonal."""
        return self.key == "gcn_norm"

    def __getitem__(self, rows: np.ndarray) -> sp.csr_matrix:
        """The ``(len(rows), N)`` CSR slice of the full matrix's ``rows``
        (sorted unique node ids), bitwise equal to ``full[rows]``."""
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols, lengths = self._gather(rows)
        return self._assemble(rows, cols, lengths)

    def row_block(self, lo: int, hi: int) -> sp.csr_matrix:
        """Contiguous row range ``[lo, hi)`` — one CSR page read."""
        return self[np.arange(lo, hi, dtype=np.int64)]

    # -- internals -----------------------------------------------------
    def _gather(
        self, rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        indptr, indices = self._indptr, self._indices
        if rows.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        starts = np.asarray(indptr[rows], dtype=np.int64)
        ends = np.asarray(indptr[rows + 1], dtype=np.int64)
        lengths = ends - starts
        # Consecutive rows share one contiguous indices window; coalesce
        # runs so a halo that is mostly contiguous costs few reads.
        breaks = np.flatnonzero(rows[1:] != rows[:-1] + 1)
        run_lo = np.r_[0, breaks + 1]
        run_hi = np.r_[breaks, rows.size - 1]
        parts = [
            np.asarray(indices[starts[a]:ends[b]], dtype=np.int64)
            for a, b in zip(run_lo, run_hi)
        ]
        cols = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        tel = get_telemetry()
        if tel.enabled:
            tel.count("storage.rows_streamed", rows.size)
            tel.count("storage.bytes_read", int(cols.nbytes))
        return cols, lengths

    def _assemble(
        self, rows: np.ndarray, cols: np.ndarray, lengths: np.ndarray
    ) -> sp.csr_matrix:
        if self.add_self_loops and rows.size:
            # Splice the diagonal entry into each row at its sorted slot —
            # exactly where the fresh build's ``adj + I`` lands it.
            entry_row = np.repeat(
                np.arange(rows.size, dtype=np.int64), lengths
            )
            below = cols < np.repeat(rows, lengths)
            counts = np.bincount(
                entry_row[below], minlength=rows.size
            ).astype(np.int64)
            offsets = np.empty(rows.size, dtype=np.int64)
            offsets[0] = 0
            np.cumsum(lengths[:-1], out=offsets[1:])
            cols = np.insert(cols, offsets + counts, rows)
            lengths = lengths + 1
        if self.key == "adjacency":
            data = np.ones(cols.shape[0], dtype=np.float64)
        elif self.key == "gcn_norm":
            data = self._scale[np.repeat(rows, lengths)] * self._scale[cols]
        else:  # row_norm
            # The materialised ``row_norm`` (one ``diag @ csr`` product)
            # stores each row's columns in *reverse*-sorted order — the
            # linked-list traversal of scipy's csr matmul — and spmm
            # accumulates in stored order, so the served rows replicate
            # that order to keep downstream products bitwise identical.
            # (``gcn_norm``'s two products reverse twice, back to sorted.)
            if cols.size:
                offsets = np.empty(rows.size, dtype=np.int64)
                offsets[0] = 0
                np.cumsum(lengths[:-1], out=offsets[1:])
                rep_off = np.repeat(offsets, lengths)
                rep_len = np.repeat(lengths, lengths)
                idx = np.arange(cols.shape[0], dtype=np.int64)
                cols = cols[2 * rep_off + rep_len - 1 - idx]
            data = np.repeat(self._scale[rows], lengths)
        indptr = np.empty(rows.size + 1, dtype=np.int64)
        indptr[0] = 0
        np.cumsum(lengths, out=indptr[1:])
        return sp.csr_matrix(
            (data, cols, indptr), shape=(rows.size, self.shape[1])
        )


def _chunked_rows(fn, array: np.ndarray, chunk_rows: int, release=None):
    """Apply a row-wise dense map over ``array`` one row chunk at a time.

    Row-blocked GEMMs reproduce the one-shot product bitwise on this
    repo's BLAS (K-ordered accumulation; asserted by the property suite),
    so the streamed base states stay on the exact contract while never
    holding more than ``chunk_rows`` rows of a memmapped operand.
    """
    n = array.shape[0]
    out = None
    for lo in range(0, n, chunk_rows):
        hi = min(lo + chunk_rows, n)
        block = fn(array[lo:hi])
        if out is None:
            out = np.empty((n, block.shape[1]), dtype=block.dtype)
        out[lo:hi] = block
        if release is not None:
            release.step()
    return out


def _streamed_spmm(
    source: PropagationRowSource,
    dense: np.ndarray,
    chunk_rows: int,
    transform=None,
    release=None,
) -> np.ndarray:
    """``source @ dense`` assembled row block by row block.

    CSR sparse-dense products are row-independent, so stitching
    block-wise results reproduces the full product bitwise while only
    one block of the propagation matrix exists at a time.  ``transform``
    fuses a following dense row map (GraphSAGE's ``neigh1``) so the full
    ``(N, d)`` neighbour aggregate never materialises either.
    """
    n = source.shape[0]
    out = None
    for lo in range(0, n, chunk_rows):
        hi = min(lo + chunk_rows, n)
        block = _spmm(source.row_block(lo, hi), dense)
        if transform is not None:
            block = transform(block)
        if out is None:
            out = np.empty((n, block.shape[1]), dtype=block.dtype)
        out[lo:hi] = block
        if release is not None:
            release.step()
    return out


#: Row-chunk size of the streamed base-state builders: large enough to
#: amortise per-block overhead, small enough that one block of features
#: plus its CSR pages stays far below any sensible memory budget.
STREAM_CHUNK_ROWS = 16_384


# ---------------------------------------------------------------------------
# Halo plans: per-backbone recipes for halo-restricted evaluation
# ---------------------------------------------------------------------------
class HaloPlan:
    """Per-backbone recipe for halo-restricted incremental evaluation.

    A plan answers three questions for its backbone: what to cache per
    model version (:meth:`base_state`), which rows a given edge delta can
    reach (:meth:`prepare`, usually via :func:`grow_halo` with a
    round count derived from the backbone's receptive field), and how to
    recompute exactly those rows against the cached state
    (:meth:`logits`).  Plans are registered per backbone class
    (:func:`register_halo_plan`) or declared on the class itself via the
    ``halo_plan`` attribute; ``halo_plan = None`` opts a backbone out (the
    evaluator then always runs the dense reference forward).

    Examples
    --------
    A user backbone declares its plan on the class (see
    ``examples/custom_backbone.py`` for a runnable version):

    >>> class MyPlan(HaloPlan):
    ...     matrix_keys = ("gcn_norm",)
    ...     @staticmethod
    ...     def base_state(model, graph): ...
    ...     @staticmethod
    ...     def prepare(model, graph): ...
    ...     @staticmethod
    ...     def logits(model, graph, state, dirty, halo, ctx): ...
    >>> class MyBackbone(GNNBackbone):
    ...     halo_plan = MyPlan
    """

    #: Propagation cache keys worth delta-patching before a dense forward
    #: (the oversized-halo fallback installs them via
    #: :func:`install_propagation_caches`).
    matrix_keys: Tuple[str, ...] = ()

    #: Optional hook: a dense evaluation that still reuses the cached
    #: per-model-version state (GAT re-normalises every destination from
    #: cached attention ingredients instead of rerunning the transforms).
    dense_from_state = None

    #: Optional hook: an out-of-core :meth:`base_state` twin taking
    #: ``(model, graph)`` for bundle-backed graphs.  Row-slice plans (GCN,
    #: GraphSAGE) build their state through :class:`PropagationRowSource`
    #: and :func:`_streamed_spmm` so neither the propagation matrix nor
    #: the feature matrix is ever fully resident; plans without one fall
    #: back to :meth:`base_state`, which on a
    #: :class:`~repro.graph.storage.MemmapGraph` still routes adjacency
    #: materialisation through the chunked streaming build.
    stream_base_state = None

    #: Whether a halo above ``max_halo_frac`` should fall back to the
    #: dense path.  Row-slice plans (GCN, GraphSAGE) keep ``True``;
    #: correction-based plans (H2GCN, MixHop) whose cost is bounded by
    #: the edit's column support — not the halo's row count — set
    #: ``False`` and always run incrementally.
    oversize_fallback = True

    #: Cache keys to evict after a fallback dense forward (e.g. the raw
    #: ``two_hop`` scaffold once the normalised twin is memoised).
    drop_after_dense: Tuple[str, ...] = ()

    @staticmethod
    def base_state(model: GNNBackbone, graph: Graph) -> Dict[str, np.ndarray]:
        """Eval-mode activations of the base graph, cached per model version."""
        raise NotImplementedError

    @staticmethod
    def prepare(
        model: GNNBackbone, graph: Graph
    ) -> Tuple[np.ndarray, np.ndarray, dict]:
        """``(dirty, halo, ctx)`` of a delta-carrying graph.

        ``dirty`` are the propagation rows whose entries change, ``halo``
        the full set of output rows that can differ (the evaluator sizes
        its fallback check on it), ``ctx`` whatever the plan wants to pass
        to :meth:`logits`.
        """
        raise NotImplementedError

    @staticmethod
    def logits(
        model: GNNBackbone,
        graph: Graph,
        state: Dict[str, np.ndarray],
        dirty: np.ndarray,
        halo: np.ndarray,
        ctx: dict,
    ) -> np.ndarray:
        """Full-graph logits with only the halo rows recomputed."""
        raise NotImplementedError


#: Backbone class -> HaloPlan registry (the ``halo_plan = "auto"`` lookup).
_PLANS: Dict[type, type] = {}


def register_halo_plan(model_cls: type, plan: type | None = None):
    """Register ``plan`` as the halo plan of ``model_cls``.

    Usable as a plain call or as a class decorator.  Registration is what
    ``halo_plan = "auto"`` (the :class:`~repro.gnn.base.GNNBackbone`
    default) resolves against; a ``halo_plan`` attribute set directly on
    a backbone class always wins, and ``None`` opts out.

    Examples
    --------
    >>> @register_halo_plan(MyBackbone)
    ... class MyPlan(HaloPlan):
    ...     ...
    """
    if plan is None:
        def decorate(p: type) -> type:
            _PLANS[model_cls] = p
            return p
        return decorate
    _PLANS[model_cls] = plan
    return plan


def resolve_halo_plan(model: GNNBackbone):
    """The halo plan bound to ``model``'s exact class, or ``None``.

    Resolution order: a ``halo_plan`` attribute declared *on the class
    itself* and not ``"auto"`` (so user backbones can declare a plan —
    or ``None`` to opt out — without touching the registry), then the
    exact-type :func:`register_halo_plan` registry.  Deliberately **not
    inherited**: a subclass usually overrides ``forward`` and with it
    the receptive field, so silently applying the parent's plan would
    produce wrong rewards with no error.  Subclasses whose forward *is*
    compatible re-declare the plan in one line.

    Examples
    --------
    >>> resolve_halo_plan(build_backbone("gat", 8, 2)) is not None
    True
    >>> class MyGAT(GAT): ...              # subclass: no silent inherit
    >>> resolve_halo_plan(MyGAT(8, 2)) is None
    True
    """
    cls_vars = vars(type(model))
    if "halo_plan" in cls_vars:
        declared = cls_vars["halo_plan"]
        if not (isinstance(declared, str) and declared == "auto"):
            return declared
    return _PLANS.get(type(model))


def grow_halo(dirty: np.ndarray, rounds: int, frontier) -> list:
    """Per-round reachable row sets of a ``rounds``-round propagation.

    ``S_1 = dirty`` and ``S_{r+1} = dirty ∪ frontier(S_r)`` — the rows a
    round-``r+1`` aggregation can change are the matrix's own dirty rows
    plus every row adjacent (under the *new* graph's propagation support,
    which is what ``frontier`` must implement) to a row that changed in
    round ``r``.  The round count is the backbone's receptive field:
    2 for GCN/GraphSAGE, ``K`` for H2GCN, max power times layers for
    MixHop.  The output halo is the union of all rounds.

    Examples
    --------
    >>> frontier = lambda rows: _neighbor_union(adj_new, rows)
    >>> sets = grow_halo(np.array([3, 7]), 2, frontier)
    >>> len(sets)
    2
    """
    sets = [np.asarray(dirty, dtype=np.int64)]
    for _ in range(rounds - 1):
        sets.append(_union(dirty, frontier(sets[-1])))
    return sets


class _GCNPlan(HaloPlan):
    """GCN: ``out = Â (relu(Â (X W1 + b1)) W2 + b2)`` (eval mode).

    ``X W1`` is graph-independent and cached per model version; dirty
    rows ``R`` of ``Â`` (touched endpoints plus degree-coupled neighbour
    rows) bound the hidden-layer changes, ``H = R ∪ N_new(R)`` the output
    changes (two propagation rounds, halo radius 2).
    """

    matrix_keys = ("gcn_norm",)

    @staticmethod
    def base_state(model: GCN, graph: Graph) -> Dict[str, np.ndarray]:
        a_hat = cached_matrix(graph, "gcn_norm", gcn_norm)
        xw1 = model.lin1(Tensor(graph.features)).data
        h1 = _spmm(a_hat, xw1)
        h1 = h1 * (h1 > 0)
        z = model.lin2(Tensor(h1)).data
        out = _spmm(a_hat, z)
        return {"a_hat": a_hat, "xw1": xw1, "z": z, "out": out}

    @staticmethod
    def stream_base_state(model: GCN, graph: Graph) -> Dict[str, np.ndarray]:
        """Out-of-core :meth:`base_state`: ``Â`` is served row-block by
        row-block from the bundle CSR (and kept as a
        :class:`PropagationRowSource` for the halo slices), features are
        pushed through ``lin1`` in row chunks with their pages released
        behind the cursor.  Bitwise equal to the in-RAM build — blocked
        GEMMs and row-independent spmm stitch to the same bits."""
        src = PropagationRowSource(graph, "gcn_norm")
        release = MmapReleaser(gather=[graph.features, src._indices])
        xw1 = _chunked_rows(
            lambda b: model.lin1(Tensor(b)).data,
            graph.features, STREAM_CHUNK_ROWS, release=release,
        )
        h1 = _streamed_spmm(src, xw1, STREAM_CHUNK_ROWS, release=release)
        h1 *= h1 > 0
        z = model.lin2(Tensor(h1)).data
        out = _streamed_spmm(src, z, STREAM_CHUNK_ROWS, release=release)
        release.flush()
        return {"a_hat": src, "xw1": xw1, "z": z, "out": out}

    @staticmethod
    def prepare(
        model: GNNBackbone, graph: Graph
    ) -> Tuple[np.ndarray, np.ndarray, dict]:
        delta = graph.delta
        change = delta.degree_changes()
        touched = delta.touched_nodes()
        # Rows of Â that can change: edited endpoints plus neighbours of
        # degree-changed endpoints (the symmetric normalisation couples an
        # entry to both endpoint degrees).
        dirty = _union(
            touched,
            _neighbor_union_csr(
                *_base_csr_arrays(delta.base), np.flatnonzero(change)
            ),
        )
        pairs = _new_row_pairs(graph, dirty)
        ctx = {"pairs": pairs, "deg": delta.base.degrees() + change}
        return dirty, _union(dirty, pairs[1]), ctx

    @staticmethod
    def logits(
        model: GCN,
        graph: Graph,
        state: Dict[str, np.ndarray],
        dirty: np.ndarray,
        halo: np.ndarray,
        ctx: dict,
    ) -> np.ndarray:
        inv_sqrt = _inv_sqrt_degrees(ctx["deg"], add_self_loops=True)
        pr, pc = _with_self_loops(*ctx["pairs"], dirty)
        a_dirty = _row_slice_matrix(
            dirty, pr, pc, inv_sqrt[pr] * inv_sqrt[pc], graph.num_nodes
        )
        a_halo = _halo_matrix(state["a_hat"], halo, dirty, a_dirty)
        h1 = ops.relu(ops.spmm(a_dirty, Tensor(state["xw1"]))).data
        z_rows = model.lin2(Tensor(h1)).data
        z = ops.scatter_patch_rows(Tensor(state["z"]), dirty, Tensor(z_rows)).data
        out_rows = ops.spmm(a_halo, Tensor(z)).data
        return ops.scatter_patch_rows(
            Tensor(state["out"]), halo, Tensor(out_rows)
        ).data


class _SAGEPlan(HaloPlan):
    """GraphSAGE (mean aggregator): row-normalised ``M = D^{-1}A`` couples
    an entry only to its row degree, so the dirty rows are exactly the
    touched endpoints and ``H = D ∪ N_new(D)`` (two rounds).
    """

    matrix_keys = ("row_norm",)

    @staticmethod
    def base_state(model: GraphSAGE, graph: Graph) -> Dict[str, np.ndarray]:
        m = cached_matrix(graph, "row_norm", row_norm)
        x = Tensor(graph.features)
        s1x = model.self1(x).data
        h1 = s1x + model.neigh1(Tensor(_spmm(m, graph.features))).data
        h1 = h1 * (h1 > 0)
        out = (
            model.self2(Tensor(h1)).data
            + model.neigh2(Tensor(_spmm(m, h1))).data
        )
        return {"m": m, "s1x": s1x, "h1": h1, "out": out}

    @staticmethod
    def stream_base_state(
        model: GraphSAGE, graph: Graph
    ) -> Dict[str, np.ndarray]:
        """Out-of-core :meth:`base_state`: the ``(N, d)`` neighbour
        aggregate ``M X`` never materialises — each row block is fused
        straight into ``neigh1`` — and ``M`` survives only as a
        :class:`PropagationRowSource`.  Bitwise equal to the in-RAM
        build (same blocked-GEMM argument as the GCN plan)."""
        src = PropagationRowSource(graph, "row_norm")
        release = MmapReleaser(gather=[graph.features, src._indices])
        s1x = _chunked_rows(
            lambda b: model.self1(Tensor(b)).data,
            graph.features, STREAM_CHUNK_ROWS, release=release,
        )
        h1 = s1x + _streamed_spmm(
            src, graph.features, STREAM_CHUNK_ROWS,
            transform=lambda t: model.neigh1(Tensor(t)).data,
            release=release,
        )
        h1 *= h1 > 0
        out = (
            model.self2(Tensor(h1)).data
            + model.neigh2(
                Tensor(_streamed_spmm(src, h1, STREAM_CHUNK_ROWS,
                                      release=release))
            ).data
        )
        release.flush()
        return {"m": src, "s1x": s1x, "h1": h1, "out": out}

    @staticmethod
    def prepare(
        model: GNNBackbone, graph: Graph
    ) -> Tuple[np.ndarray, np.ndarray, dict]:
        delta = graph.delta
        touched = delta.touched_nodes()
        pairs = _new_row_pairs(graph, touched)
        ctx = {"pairs": pairs, "deg": delta.base.degrees() + delta.degree_changes()}
        return touched, _union(touched, pairs[1]), ctx

    @staticmethod
    def logits(
        model: GraphSAGE,
        graph: Graph,
        state: Dict[str, np.ndarray],
        dirty: np.ndarray,
        halo: np.ndarray,
        ctx: dict,
    ) -> np.ndarray:
        inv = _inv_degrees(ctx["deg"], add_self_loops=False)
        pr, pc = ctx["pairs"]
        m_dirty = _row_slice_matrix(dirty, pr, pc, inv[pr], graph.num_nodes)
        m_halo = _halo_matrix(state["m"], halo, dirty, m_dirty)
        mx = ops.spmm(m_dirty, Tensor(graph.features)).data
        h1_rows = state["s1x"][dirty] + model.neigh1(Tensor(mx)).data
        h1_rows = h1_rows * (h1_rows > 0)
        h1 = ops.scatter_patch_rows(
            Tensor(state["h1"]), dirty, Tensor(h1_rows)
        ).data
        mh = ops.spmm(m_halo, Tensor(h1)).data
        out_rows = (
            model.self2(Tensor(h1[halo])).data + model.neigh2(Tensor(mh)).data
        )
        return ops.scatter_patch_rows(
            Tensor(state["out"]), halo, Tensor(out_rows)
        ).data


# ---------------------------------------------------------------------------
# GAT: halo-restricted edge-softmax re-normalisation
# ---------------------------------------------------------------------------
def _in_edges(
    adj: sp.csr_matrix, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sub-edge list ``(src, local_dst)`` for the destinations ``rows``.

    Per destination the order is sources ascending, then the self loop —
    exactly the per-segment entry order of the full forward's edge list
    (src-major COO plus a trailing self-loop block), so segment sums
    accumulate bitwise identically.
    """
    rows = np.asarray(rows, dtype=np.int64)
    counts = (adj.indptr[rows + 1] - adj.indptr[rows]).astype(np.int64)
    total = int(counts.sum())
    local = np.repeat(np.arange(rows.shape[0], dtype=np.int64), counts)
    starts = np.repeat(adj.indptr[rows].astype(np.int64), counts)
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    src = adj.indices[starts + offsets].astype(np.int64)
    local = np.concatenate([local, np.arange(rows.shape[0], dtype=np.int64)])
    src = np.concatenate([src, rows])
    return src, local


def _gat_layer_rows(
    layer,
    lstate: Dict[str, np.ndarray],
    adj: sp.csr_matrix,
    rows: np.ndarray,
    h: np.ndarray | None = None,
    asrc: np.ndarray | None = None,
    adst: np.ndarray | None = None,
) -> np.ndarray:
    """Output rows ``rows`` of one GAT layer under the new topology.

    The cached per-node attention ingredients (``lstate`` from the
    instrumented base forward) supply transformed features and attention
    coefficients; callers pass patched overrides when upstream rows
    changed.  Only the destinations in ``rows`` get their edge softmax
    re-normalised — per-edge logits are recomputed for exactly the edges
    incident to those rows, every other edge's contribution lives on in
    the cached layer output.  Given bitwise-identical inputs the
    recomputed rows are bitwise identical to the full forward
    (per-destination entry order is preserved, see :func:`_in_edges`).
    """
    h = lstate["h"] if h is None else h
    asrc = lstate["asrc"] if asrc is None else asrc
    adst = lstate["adst"] if adst is None else adst
    src, local = _in_edges(adj, rows)
    dim = layer.out_features
    adst_rows = adst[rows]
    outputs = []
    for head in range(layer.heads):
        cols = slice(head * dim, (head + 1) * dim)
        logit = asrc[src, head : head + 1] + adst_rows[local, head : head + 1]
        scale = np.where(logit > 0, 1.0, layer.negative_slope)
        att = ops.segment_softmax_array(logit * scale, local, rows.shape[0])
        messages = h[:, cols][src] * att
        outputs.append(ops.segment_sum_array(messages, local, rows.shape[0]))
    if layer.concat:
        return np.concatenate(outputs, axis=1)
    total = outputs[0]
    for o in outputs[1:]:
        total = total + o
    return total * (1.0 / layer.heads)


def _gat_patched_logits(
    model: GAT,
    graph: Graph,
    state: Dict[str, np.ndarray],
    touched: np.ndarray,
    out_rows: np.ndarray,
    adj: sp.csr_matrix,
) -> np.ndarray:
    """Full-graph GAT logits with layers re-normalised on ``out_rows``.

    Layer 1's per-node ingredients never change (they depend on the
    features only), so its softmax is respliced for exactly the
    ``touched`` destinations; layer 2's per-node ingredients are patched
    for those rows and its softmax re-normalised over ``out_rows``
    (the 2-hop halo — or every node for the dense-from-state fallback).
    """
    l1, l2 = state["layer1"], state["layer2"]
    z1_rows = _gat_layer_rows(model.layer1, l1, adj, touched)
    # ELU exactly as ops.elu (alpha = 1).
    act_rows = np.where(
        z1_rows > 0, z1_rows, np.exp(np.minimum(z1_rows, 0.0)) - 1.0
    )
    layer2 = model.layer2
    h2_rows = act_rows @ layer2.linear.weight.data
    h2 = l2["h"].copy()
    h2[touched] = h2_rows
    dim2 = layer2.out_features
    asrc_cols, adst_cols = [], []
    for head in range(layer2.heads):
        cols = slice(head * dim2, (head + 1) * dim2)
        head_rows = h2_rows[:, cols]
        asrc_cols.append(head_rows @ layer2.att_src.weight.data)
        adst_cols.append(head_rows @ layer2.att_dst.weight.data)
    asrc = l2["asrc"].copy()
    asrc[touched] = np.concatenate(asrc_cols, axis=1)
    adst = l2["adst"].copy()
    adst[touched] = np.concatenate(adst_cols, axis=1)
    patch = _gat_layer_rows(
        layer2, l2, adj, out_rows, h=h2, asrc=asrc, adst=adst
    )
    out = state["out"].copy()
    out[out_rows] = patch
    return out


@register_halo_plan(GAT)
class _GATPlan(HaloPlan):
    """GAT: cached per-node attention state + halo edge-softmax resplice.

    The touched endpoints are the only destinations whose incoming edge
    set changes, so layer 1 re-normalises exactly those rows; their
    changed activations reach layer 2's attention through ``H = T ∪
    N_new(T)`` — the standard 2-round halo, but grown through the
    attention coefficients rather than a propagation matrix.  GAT
    consumes an edge list, not a cached matrix, so there is nothing to
    delta-patch on fallback; instead :meth:`dense_from_state` re-derives
    every destination from the cached ingredients, skipping the feature
    transforms entirely.
    """

    matrix_keys = ()

    @staticmethod
    def base_state(model: GAT, graph: Graph) -> Dict[str, np.ndarray]:
        return model.eval_state(graph)

    @staticmethod
    def prepare(
        model: GAT, graph: Graph
    ) -> Tuple[np.ndarray, np.ndarray, dict]:
        touched = graph.delta.touched_nodes()
        adj_new = _ensure_adjacency(graph)
        frontier = lambda rows: _neighbor_union(adj_new, rows)  # noqa: E731
        rounds = grow_halo(touched, 2, frontier)
        return touched, _union(*rounds), {"adj": adj_new}

    @staticmethod
    def logits(
        model: GAT,
        graph: Graph,
        state: Dict[str, np.ndarray],
        dirty: np.ndarray,
        halo: np.ndarray,
        ctx: dict,
    ) -> np.ndarray:
        return _gat_patched_logits(model, graph, state, dirty, halo, ctx["adj"])

    @staticmethod
    def dense_from_state(
        model: GAT, graph: Graph, state: Dict[str, np.ndarray],
        dirty: np.ndarray, ctx: dict,
    ) -> np.ndarray:
        all_rows = np.arange(graph.num_nodes, dtype=np.int64)
        return _gat_patched_logits(
            model, graph, state, dirty, all_rows, ctx["adj"]
        )


# ---------------------------------------------------------------------------
# H2GCN: K rounds of 1-hop + strict-2-hop aggregation, final concat
# ---------------------------------------------------------------------------
@register_halo_plan(H2GCN)
class _H2GCNPlan(HaloPlan):
    """H2GCN: correction-based rounds over both aggregation supports.

    The two-hop degree renormalisation couples every entry of ``A2`` to
    both endpoint degrees, so a handful of edge edits *rescales* entries
    across a large fraction of rows — a row-sliced halo would cover most
    of the graph.  The exact work is nevertheless tiny, and the plan
    exploits that with column-restricted corrections against the cached
    round products: for every row whose ``A2`` *structure* is unchanged,

    ``(A2' c')[r] = (A2 c)[r] + (A2 (s ⊙ c' - c))[r]``

    where ``s = d2'^{-1/2} / d2^{-1/2}`` differs from 1 only on the rows
    whose two-hop degree changed (inside the structural closure) and
    ``c' - c`` is supported on the previous round's changed rows.  The
    sparse product touches only the columns in that union — cost scales
    with the *edit's* two-hop volume plus the spread of the previous
    round, never with ``|A2|`` — while the closure rows (changed
    structure) are recomputed directly from fresh two-hop rows.  ``A1``
    rows follow the same cached-product + column-correction scheme.  The
    final concat + classify is applied as a per-round block correction
    over the union of the row sets.  The cost is bounded by the
    correction supports (worst case ~ one dense forward, measured at or
    below the state-reusing dense twin in every regime), so the plan
    opts out of the oversized-halo fallback and always runs
    incrementally.
    """

    # No matrix_keys / drop_after_dense: with ``oversize_fallback``
    # off, the evaluator's dense-fallback branch never runs for this
    # plan (opted-out H2GCN subclasses are covered by
    # ``_FALLBACK_MATRIX_KEYS`` instead).
    oversize_fallback = False

    @staticmethod
    def base_state(model: H2GCN, graph: Graph) -> Dict[str, np.ndarray]:
        return model.eval_state(graph)

    @staticmethod
    def prepare(
        model: H2GCN, graph: Graph
    ) -> Tuple[np.ndarray, np.ndarray, dict]:
        delta = graph.delta
        base = delta.base
        change = delta.degree_changes()
        touched = delta.touched_nodes()
        # A1 dirty rows: symmetric normalisation without self loops.
        d1 = _union(
            touched,
            _neighbor_union(base.adjacency(), np.flatnonzero(change)),
        )
        pr, pc = _new_row_pairs(graph, d1)
        inv1 = _inv_sqrt_degrees(base.degrees() + change, add_self_loops=False)
        a1_rows = _row_slice_matrix(
            d1, pr, pc, inv1[pr] * inv1[pc], graph.num_nodes
        )
        # A2 structural closure: fresh strict-2-hop rows + new degrees
        # (shared core with the full-matrix patch).
        base_two, base_d2, closure, local_rows, cols, changed, inv2 = (
            _two_hop_rescaling(graph)
        )
        rr = closure[local_rows]
        a2_closure = _row_slice_matrix(
            closure, rr, cols, inv2[rr] * inv2[cols], graph.num_nodes
        )
        # Rescale factors: 1 everywhere except the degree-changed rows.
        s = np.ones(graph.num_nodes)
        old_nz = base_d2[changed] > 0
        s[changed[old_nz]] = (
            inv2[changed[old_nz]] / base_d2[changed[old_nz]] ** -0.5
        )

        # Per-round changed-row sets (structural supersets of the rows the
        # corrections can touch) — the output halo is their union.  Mask
        # arithmetic keeps this O(n + volume) as the sets grow.
        n = graph.num_nodes
        base_adj = base.adjacency()
        static_mask = _bool_scratch(n)
        static_mask[closure] = True
        static_mask[d1] = True
        changed_mask = _bool_scratch(n)
        changed_mask[changed] = True
        rounds = []
        prev = np.empty(0, dtype=np.int64)
        prev_mask = _bool_scratch(n)
        halo_mask = _bool_scratch(n)
        for _ in range(int(model.rounds)):
            supp = np.flatnonzero(changed_mask | prev_mask)
            mask = (
                static_mask
                | _neighbor_mask(base_two, supp, n)
                | _neighbor_mask(base_adj, prev, n)
            )
            prev = np.flatnonzero(mask)
            prev_mask = mask
            halo_mask |= mask
            rounds.append(prev)
        dirty = _union(d1, closure, changed)
        ctx = {
            # Diagnostic hook: logits recomputes the *actual* reached
            # sets; the structural per-round sets are kept for tests and
            # introspection (their union is the returned halo).
            "rounds": rounds,
            "d1": d1,
            "a1_rows": a1_rows,
            "closure": closure,
            "a2_closure": a2_closure,
            "changed": changed,
            "s": s,
        }
        return dirty, np.flatnonzero(halo_mask), ctx

    @staticmethod
    def logits(
        model: H2GCN,
        graph: Graph,
        state: Dict[str, np.ndarray],
        dirty: np.ndarray,
        halo: np.ndarray,
        ctx: dict,
    ) -> np.ndarray:
        reps = state["reps"]
        a1b, a2b = state["a1"], state["a2"]
        d1, a1_rows = ctx["d1"], ctx["a1_rows"]
        closure, a2_closure = ctx["closure"], ctx["a2_closure"]
        s = ctx["s"]
        n = reps[0].shape[0]
        a1_cols = a1_rows.tocsc()
        a2c_cols = a2_closure.tocsc()

        # Pure delta bookkeeping: round r is represented as the sparse
        # row set it changed plus the dense value delta on those rows —
        # patched representations are never materialised, so per-step
        # traffic scales with the spread of the edit, not with N * width.
        prev_rows = np.empty(0, dtype=np.int64)
        prev_delta: np.ndarray | None = None
        deltas = []
        for r in range(1, len(reps)):
            base_prev = reps[r - 1]
            width = base_prev.shape[1]
            rows_mask = _bool_scratch(n)
            rows_mask[d1] = True
            rows_mask[closure] = True
            # --- A1 block: column-restricted correction against the
            # cached product; dirty rows recomputed directly.
            if prev_rows.shape[0]:
                corr1 = _spmm(a1b[prev_rows].T, prev_delta)
                reach1 = np.flatnonzero(_neighbor_mask(a1b, prev_rows, n))
                rows_mask[reach1] = True
            direct1 = _spmm(a1_rows, base_prev)
            if prev_rows.shape[0]:
                direct1 += _spmm(a1_cols[:, prev_rows], prev_delta)
            # --- A2 block: rescale-aware correction (e = s ⊙ c' - c on
            # its support) + fresh closure rows.
            supp = _union(ctx["changed"], prev_rows)
            if supp.shape[0]:
                e_rows = (s[supp] - 1.0)[:, None] * base_prev[supp]
                if prev_rows.shape[0]:
                    pos = np.searchsorted(prev_rows, supp)
                    pos = np.minimum(pos, prev_rows.shape[0] - 1)
                    hit = prev_rows[pos] == supp
                    e_rows[hit] += (
                        s[supp[hit]][:, None] * prev_delta[pos[hit]]
                    )
                corr2 = _spmm(a2b[supp].T, e_rows)
                reach2 = np.flatnonzero(_neighbor_mask(a2b, supp, n))
                rows_mask[reach2] = True
            direct2 = _spmm(a2_closure, base_prev)
            if prev_rows.shape[0]:
                direct2 += _spmm(a2c_cols[:, prev_rows], prev_delta)
            # --- assemble this round's (rows, delta) pair.
            rows = np.flatnonzero(rows_mask)
            delta = np.zeros((rows.shape[0], 2 * width))
            if prev_rows.shape[0]:
                delta[np.searchsorted(rows, reach1), :width] = corr1[reach1]
            if supp.shape[0]:
                delta[np.searchsorted(rows, reach2), width:] = corr2[reach2]
            # Direct rows win over corrections (full recompute).
            delta[np.searchsorted(rows, d1), :width] = (
                direct1 - reps[r][d1, :width]
            )
            delta[np.searchsorted(rows, closure), width:] = (
                direct2 - reps[r][closure, width:]
            )
            deltas.append((rows, delta))
            prev_rows, prev_delta = rows, delta
        # Final classify as a per-round block correction: the concat
        # means out = out_base + sum_r delta_r @ W_r (rep 0 is
        # graph-independent and contributes nothing).
        out = state["out"].copy()
        weight = model.classify.weight.data
        offset = reps[0].shape[1]
        for (rows, delta) in deltas:
            out[rows] += delta @ weight[offset:offset + delta.shape[1]]
            offset += delta.shape[1]
        return out


# ---------------------------------------------------------------------------
# MixHop: adjacency powers Â^0..Â^2 per layer (receptive field 4)
# ---------------------------------------------------------------------------
@register_halo_plan(MixHop)
class _MixHopPlan(HaloPlan):
    """MixHop: correction-based power propagation over nested round sets.

    The receptive field is max adjacency power (2) times the number of
    layers (2), i.e. four propagation rounds.  ``Â`` carries self loops,
    so the per-round reachable sets nest and the output halo is the last
    one.  Each round patches the cached power product with (a) a direct
    recompute of the dirty ``Â`` rows and (b) a column-restricted
    correction ``Â[:, S_prev] @ Δ_prev`` against the cached product for
    every other reached row — work scales with the spread of the edit,
    never with ``|Â|`` rows (worst case ~ one dense forward), so the
    plan opts out of the oversized-halo fallback and always runs
    incrementally.
    """

    oversize_fallback = False

    @staticmethod
    def base_state(model: MixHop, graph: Graph) -> Dict[str, np.ndarray]:
        return model.eval_state(graph)

    @staticmethod
    def prepare(
        model: MixHop, graph: Graph
    ) -> Tuple[np.ndarray, np.ndarray, dict]:
        delta = graph.delta
        base = delta.base
        change = delta.degree_changes()
        touched = delta.touched_nodes()
        dirty = _union(
            touched,
            _neighbor_union(base.adjacency(), np.flatnonzero(change)),
        )
        pairs = _new_row_pairs(graph, dirty)
        inv = _inv_sqrt_degrees(base.degrees() + change, add_self_loops=True)
        pr, pc = _with_self_loops(*pairs, dirty)
        a_rows = _row_slice_matrix(
            dirty, pr, pc, inv[pr] * inv[pc], graph.num_nodes
        )
        # Non-dirty rows of Â are identical to the base matrix, so the
        # base structure (with its self-loop diagonal) drives the round
        # growth: S_{r+1} = dirty ∪ N_base(S_r) ⊇ S_r.  Mask arithmetic
        # keeps the growth O(n + volume) as the sets approach n.
        n = graph.num_nodes
        a_base = cached_matrix(base, "gcn_norm", gcn_norm)
        max_power = len(model.hop_linears1) - 1
        dirty_mask = _bool_scratch(n)
        dirty_mask[dirty] = True
        rounds = [dirty]
        for _ in range(2 * max_power - 1):
            mask = dirty_mask | _neighbor_mask(a_base, rounds[-1], n)
            rounds.append(np.flatnonzero(mask))
        return dirty, rounds[-1], {"rounds": rounds, "a_rows": a_rows}

    @staticmethod
    def logits(
        model: MixHop,
        graph: Graph,
        state: Dict[str, np.ndarray],
        dirty: np.ndarray,
        halo: np.ndarray,
        ctx: dict,
    ) -> np.ndarray:
        s11, s12, s21, s22 = ctx["rounds"]
        a_rows = ctx["a_rows"]
        ab = state["a_hat"]
        x = graph.features

        def affine(lin, rows):
            return rows @ lin.weight.data + lin.bias.data

        def corrected(cached, prev_new, prev_base, prev_rows):
            """Cached power product + column-restricted correction +
            direct dirty-row recompute."""
            cur = cached.copy()
            if prev_rows.shape[0]:
                delta_prev = prev_new[prev_rows] - prev_base[prev_rows]
                corr = _spmm(ab[prev_rows].T, delta_prev)
                reach = np.flatnonzero(
                    _neighbor_mask(ab, prev_rows, cur.shape[0])
                )
                cur[reach] += corr[reach]
            cur[dirty] = _spmm(a_rows, prev_new)
            return cur

        none = np.empty(0, dtype=np.int64)
        # Layer 1: Â x (x unchanged — direct rows only), then Â² x.
        p11 = corrected(state["props1"][0], x, x, none)
        p12 = corrected(state["props1"][1], p11, state["props1"][0], s11)
        lin1 = model.hop_linears1
        h_rows = np.concatenate(
            [affine(lin1[0], x[s12]), affine(lin1[1], p11[s12]),
             affine(lin1[2], p12[s12])],
            axis=1,
        )
        h_rows = h_rows * (h_rows > 0)
        h = state["h"].copy()
        h[s12] = h_rows
        # Layer 2: two more propagation rounds over the patched hidden.
        p21 = corrected(state["props2"][0], h, state["h"], s12)
        p22 = corrected(state["props2"][1], p21, state["props2"][0], s21)
        lin2 = model.hop_linears2
        out_rows = (
            affine(lin2[0], h[s22]) + affine(lin2[1], p21[s22])
            + affine(lin2[2], p22[s22])
        ) * (1.0 / 3.0)
        out = state["out"].copy()
        out[s22] = out_rows
        return out


register_halo_plan(GCN, _GCNPlan)
register_halo_plan(GraphSAGE, _SAGEPlan)

#: Propagation caches worth delta-patching before a dense forward, for
#: backbones without a halo plan (e.g. a user backbone that opted out via
#: ``halo_plan = None`` but still consumes a standard cached matrix).
_FALLBACK_MATRIX_KEYS = {
    GCN: ("gcn_norm",),
    GraphSAGE: ("row_norm",),
    H2GCN: ("h2gcn_a1", "two_hop"),
    MixHop: ("gcn_norm",),
}


def _fallback_keys(model: GNNBackbone) -> Tuple[str, ...]:
    """Propagation caches worth patching for a plan-less ``model``.

    Walks the MRO so a user subclass that opted out (``halo_plan = None``)
    still benefits from its parent's delta-patched matrices on the dense
    path.
    """
    for cls in type(model).__mro__:
        if cls in _FALLBACK_MATRIX_KEYS:
            return _FALLBACK_MATRIX_KEYS[cls]
    return ()


def supports_incremental(model: GNNBackbone) -> bool:
    """Whether ``model`` has a halo-restricted incremental forward plan.

    Examples
    --------
    >>> supports_incremental(build_backbone("gat", 8, 2))
    True
    >>> supports_incremental(build_backbone("mlp", 8, 2))
    False
    """
    return resolve_halo_plan(model) is not None


# ---------------------------------------------------------------------------
# The evaluator the RL envs call per reward step
# ---------------------------------------------------------------------------
#: Histogram boundaries for the halo-fraction distribution (0..1 in 5%
#: steps — the same axis ``max_halo_frac`` thresholds on).
_FRAC_BUCKETS = tuple(i / 20.0 for i in range(1, 21))


class IncrementalEvaluator:
    """Reward evaluation that re-computes only a rewire's halo.

    Bound to one model and one immutable base graph — the setting of the
    topology MDP, where every candidate is a small edit of the same base.
    Per model version (:meth:`invalidate` after any weight update) the
    evaluator caches the base graph's eval-mode activations; a
    delta-carrying graph is then scored by the backbone's
    :class:`HaloPlan`: cached propagation matrices are patched
    (:func:`install_propagation_caches`) and the forward re-runs on the
    edit's halo only.  Everything else — backbones without a plan, foreign
    graphs, halos above ``max_halo_frac`` of the nodes — falls back
    transparently to the dense full-graph evaluation, still reusing the
    per-model-version state where the plan supports it
    (``dense_from_state``; GAT re-normalises from cached attention
    ingredients instead of recomputing them each step) and delta-patching
    known propagation caches otherwise (:data:`_FALLBACK_MATRIX_KEYS`).
    ``stats`` counts which path each call took; it is a read-only
    :class:`~repro.telemetry.StatsView` over per-evaluator telemetry
    counters, and under an enabled telemetry session every path is also
    mirrored into the session registry (``incremental.*`` counters, halo
    size/fraction histograms, per-plan correction-time histograms and
    fallback counts by reason).

    Examples
    --------
    >>> inc = IncrementalEvaluator(model, base)
    >>> rewired = rewire_graph(base, sequences, k, d)
    >>> acc, loss = inc.evaluate(rewired, split.train)   # halo path
    >>> trainer.fit(base, split, epochs=2)               # weights moved
    >>> inc.invalidate()                                 # drop cached state
    """

    def __init__(
        self,
        model: GNNBackbone,
        base_graph: Graph,
        max_halo_frac: float = 0.5,
    ) -> None:
        self.model = model
        self.base_graph = base_graph
        self.max_halo_frac = float(max_halo_frac)
        self._plan = resolve_halo_plan(model)
        self._state: Optional[Dict[str, np.ndarray]] = None
        # Per-evaluator mask pool: the correction plans' per-round bool
        # masks are leased from here for the span of one evaluation and
        # recycled (zeroed on hand-out) instead of re-allocated per step.
        self._scratch = ScratchBuffers()
        # Per-evaluator counters behind the ``stats`` view keep exact
        # per-instance numbers in every mode; ``_bump`` mirrors them into
        # the active telemetry session (bound at construction) where they
        # aggregate across evaluators.
        self._tel = get_telemetry()
        self._counters = {
            key: Counter(f"incremental.{key}")
            for key in (
                "base_hits", "halo_evals", "full_evals", "state_fulls",
                "stream_states", "invalidations",
            )
        }
        self.stats = StatsView(self._counters)

    def _bump(self, key: str) -> None:
        self._counters[key].inc()
        self._tel.count(f"incremental.{key}")

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop the cached base activations (call after any weight update)."""
        self._state = None
        self._bump("invalidations")

    def _ensure_state(self) -> Dict[str, np.ndarray]:
        if self._state is None:
            stream = getattr(self._plan, "stream_base_state", None)
            if stream is not None and getattr(
                self.base_graph, "is_mmap", False
            ):
                self._bump("stream_states")
                self._state = stream(self.model, self.base_graph)
            else:
                self._state = self._plan.base_state(
                    self.model, self.base_graph
                )
        return self._state

    def _eligible(self, graph: Graph) -> bool:
        return self._plan is not None and self._has_delta(graph)

    def _full_logits(self, graph: Graph) -> np.ndarray:
        self._bump("full_evals")
        return self.model.predict_logits(graph)

    def _has_delta(self, graph: Graph) -> bool:
        return graph.delta is not None and graph.delta.base is self.base_graph

    # ------------------------------------------------------------------
    def predict_logits(self, graph: Graph) -> np.ndarray:
        """Full-graph eval-mode logits of ``graph`` under the bound model."""
        if self._plan is not None and graph is self.base_graph:
            self._bump("base_hits")
            return self._ensure_state()["out"].copy()
        if not self._eligible(graph):
            self._tel.count(
                "incremental.fallback.no_plan" if self._plan is None
                else "incremental.fallback.foreign_graph"
            )
            if self._plan is None and self._has_delta(graph):
                # No halo plan for this backbone, but its propagation
                # caches can still be delta-patched before the dense
                # forward (H2GCN's A @ A rebuild is the big win here).
                keys = _fallback_keys(self.model)
                if "h2gcn_a2" in graph.cache:
                    # The raw two-hop patch only feeds the normalized
                    # "h2gcn_a2" build; once that twin is memoised
                    # (revisited memo graphs, post-co-training re-scores)
                    # re-patching it would be pure waste.
                    keys = tuple(k for k in keys if k != "two_hop")
                if keys:
                    install_propagation_caches(graph, keys)
                    logits = self._full_logits(graph)
                    # Drop the raw two-hop rather than retain the densest
                    # matrix twice per memoised graph.
                    if "two_hop" in keys:
                        graph.cache.pop("two_hop", None)
                    return logits
            return self._full_logits(graph)
        state = self._ensure_state()
        if graph.delta.is_empty:
            self._bump("base_hits")
            return state["out"].copy()
        tel = self._tel
        with _scratch_session(self._scratch):
            dirty, halo, ctx = self._plan.prepare(self.model, graph)
            if tel.enabled:
                tel.observe(
                    "incremental.halo_size", halo.shape[0],
                    buckets=SIZE_BUCKETS,
                )
                tel.observe(
                    "incremental.halo_frac",
                    halo.shape[0] / max(graph.num_nodes, 1),
                    buckets=_FRAC_BUCKETS,
                )
            if (
                getattr(self._plan, "oversize_fallback", True)
                and halo.shape[0] > self.max_halo_frac * graph.num_nodes
            ):
                tel.count("incremental.fallback.oversize")
                # Too much of the graph is dirty for row slicing to pay
                # off.  Plans with a state-reusing dense path (GAT) still
                # evaluate from the per-model-version cache — the
                # satellite bugfix: attention state is
                # cached-and-invalidated once per version even on the
                # dense path, never recomputed per step.
                dense = getattr(self._plan, "dense_from_state", None)
                if dense is not None:
                    self._bump("state_fulls")
                    return dense(self.model, graph, state, dirty, ctx)
                # Otherwise patch the full propagation matrices into the
                # graph's cache (cheaper than a rebuild) and run dense.
                install_propagation_caches(graph, self._plan.matrix_keys)
                logits = self._full_logits(graph)
                for key in getattr(self._plan, "drop_after_dense", ()):
                    graph.cache.pop(key, None)
                return logits
            self._bump("halo_evals")
            if not tel.enabled:
                return self._plan.logits(
                    self.model, graph, state, dirty, halo, ctx
                )
            start = perf_counter()
            out = self._plan.logits(
                self.model, graph, state, dirty, halo, ctx
            )
            tel.observe(
                "incremental.correction_s."
                f"{type(self.model).__name__.lower()}",
                perf_counter() - start,
            )
            return out

    def evaluate(
        self, graph: Graph, mask: np.ndarray, return_logits: bool = False
    ):
        """Eval-mode ``(accuracy, loss)`` on ``mask``.

        The twin of :func:`repro.gnn.trainer.evaluate`, computed from the
        incrementally patched logits through :func:`_masked_metrics` — the
        same float operations in the same order, without the autograd
        bookkeeping.  ``return_logits`` appends the full-graph logits to
        the tuple so callers needing both (the AUC reward) pay for one
        evaluation only.
        """
        logits = self.predict_logits(graph)
        acc, loss = _masked_metrics(logits, graph.labels, mask)
        if return_logits:
            return acc, loss, logits
        return acc, loss


def _masked_metrics(
    logits: np.ndarray, labels: np.ndarray, mask: np.ndarray
) -> Tuple[float, float]:
    """``(accuracy, cross-entropy)`` on ``mask`` from plain logits.

    Bitwise twin of ``evaluate``'s ``cross_entropy`` + ``accuracy`` pair:
    identical reductions in identical order (max-shifted log-softmax, sum
    along the class axis, pairwise sum then ``* (1/m)`` mean), minus the
    Tensor graph construction — the per-step fixed cost the reward loop
    does not need.
    """
    mask = np.asarray(mask)
    if mask.dtype == bool:
        mask = np.flatnonzero(mask)
    picked_logits = logits[mask]
    targets = np.asarray(labels, dtype=np.int64)[mask]
    m = targets.shape[0]
    if m == 0:
        return 0.0, 0.0
    shifted = picked_logits - picked_logits.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_z
    picked = log_probs[np.arange(m), targets]
    loss = -(picked.sum() * (1.0 / m))
    acc = float((picked_logits.argmax(axis=-1) == targets).mean())
    return acc, float(loss)
