"""The churn engine: a live graph fed by external events + agent rewires.

:class:`StreamingGraph` owns the two-graph invariant every incremental
consumer relies on:

* ``root`` — an immutable, delta-free graph carrying the warm caches
  (propagation matrices, incremental-evaluator base state, halo plans);
* ``current`` — the live topology, always expressed as ``root`` plus ONE
  collapsed :class:`~repro.graph.graph.GraphDelta`.

External event batches fold in through
:func:`~repro.stream.events.apply_events`; agent rewires
(:func:`~repro.core.rewire.rewire_graph` against ``current``) collapse to
the same root by construction — both delta sources therefore keep every
root-bound cache eligible.  When the accumulated dirty-node fraction
crosses ``rebase_threshold`` the chained representation stops paying off:
:meth:`rebase` rebuilds ``current`` from scratch through the fully
validated :class:`~repro.graph.Graph` constructor, verifies the rebuild
is **bitwise identical** to the chained edge keys, and promotes it to the
new root (bumping :attr:`version` so memo keys derived from the old root
can never serve stale graphs).

Telemetry: ``stream.events`` / ``stream.rebases`` counters, a
``stream.apply`` span per batch (``stream.apply_s`` histogram),
``stream.rebase`` spans and a ``stream.dirty_frac`` gauge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..graph import Graph
from ..telemetry import get_telemetry
from .events import EdgeEvent, apply_events

__all__ = ["ChurnReport", "StreamingGraph"]


@dataclass
class ChurnReport:
    """What one :meth:`StreamingGraph.apply` call did."""

    applied: int
    """Events folded in (batch length)."""
    added_keys: np.ndarray = field(repr=False)
    """Canonical keys the batch actually inserted (net, sorted)."""
    removed_keys: np.ndarray = field(repr=False)
    """Canonical keys the batch actually deleted (net, sorted)."""
    dirty_fraction: float = 0.0
    """Touched-node fraction of the accumulated root delta *after* the
    batch (0.0 right after a rebase)."""
    rebased: bool = False
    """Whether the batch tripped the rebase threshold."""
    version: int = 0
    """Engine version after the batch; bumps on every effective apply
    and on every rebase, so ``(version, k, d)`` memo keys are exact."""


class StreamingGraph:
    """Maintains ``current = root + one collapsed delta`` under churn."""

    def __init__(
        self,
        graph: Graph,
        rebase_threshold: float = 0.25,
        tel=None,
    ) -> None:
        if not 0.0 < rebase_threshold <= 1.0:
            raise ValueError(
                f"rebase_threshold must be in (0, 1], got {rebase_threshold}"
            )
        self.rebase_threshold = float(rebase_threshold)
        self._tel = tel if tel is not None else get_telemetry()
        # A derived input graph is adopted as-is: its delta's base is the
        # shared root, so caches already bound there keep working.
        self.root: Graph = (
            graph.delta.base if graph.delta is not None else graph
        )
        self.current: Graph = graph
        self.version = 0
        self.rebases = 0
        self.events_applied = 0

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Node count of the live graph (fixed across churn)."""
        return self.current.num_nodes

    def dirty_fraction(self, graph: Optional[Graph] = None) -> float:
        """Touched-node fraction of ``graph`` (default: ``current``)
        relative to the root — the rebase trigger metric."""
        graph = self.current if graph is None else graph
        delta = graph.delta
        if delta is None or delta.is_empty:
            return 0.0
        return delta.touched_nodes().shape[0] / graph.num_nodes

    # ------------------------------------------------------------------
    def apply(self, events: Sequence[EdgeEvent]) -> ChurnReport:
        """Fold one external event batch into ``current``.

        Returns a :class:`ChurnReport` with the net inserted/deleted keys
        (exact integer inputs for incremental metric maintenance) and
        whether the batch triggered a bitwise-verified rebase.
        """
        with self._tel.span(
            "stream.apply", hist="stream.apply_s", events=len(events)
        ):
            before = self.current.edge_keys()
            self.current = apply_events(self.current, events)
            after = self.current.edge_keys()
            added = after[
                np.isin(after, before, assume_unique=True, invert=True)
            ]
            removed = before[
                np.isin(before, after, assume_unique=True, invert=True)
            ]
        self.events_applied += len(events)
        if len(events):
            self._tel.count("stream.events", len(events))
        if added.shape[0] or removed.shape[0]:
            # Only *effective* batches bump the version: a fully no-op
            # batch leaves the graph — and every version-keyed memo
            # entry — exactly as valid as before.
            self.version += 1
        dirty = self.dirty_fraction()
        self._tel.set_gauge("stream.dirty_frac", dirty)
        rebased = dirty > self.rebase_threshold
        if rebased:
            self.rebase()
            dirty = 0.0
        return ChurnReport(
            applied=len(events),
            added_keys=added,
            removed_keys=removed,
            dirty_fraction=dirty,
            rebased=rebased,
            version=self.version,
        )

    # ------------------------------------------------------------------
    def rebase(self) -> Graph:
        """Abandon the chained delta for a fresh, fully validated build.

        The rebuild goes through the *checked* :class:`Graph` constructor
        (re-sorting, re-deduplicating, re-validating every edge) and is
        verified **bitwise identical** to the chained edge keys before it
        replaces the root — a silently divergent fast path can never be
        promoted.  Consumers must re-bind root-addressed caches
        (evaluators, memo namespaces) after a rebase; :attr:`version`
        bumps so keyed caches invalidate automatically.
        """
        with self._tel.span("stream.rebase", hist="stream.rebase_s"):
            chained = self.current
            fresh = Graph(
                chained.num_nodes,
                chained.edge_array(),
                features=chained.features,
                labels=chained.labels,
            )
            if not np.array_equal(fresh.edge_keys(), chained.edge_keys()):
                raise AssertionError(
                    "rebase verification failed: fresh rebuild disagrees "
                    "with the chained-delta edge keys"
                )
        self.root = fresh
        self.current = fresh
        self.version += 1
        self.rebases += 1
        self._tel.count("stream.rebases")
        self._tel.set_gauge("stream.dirty_frac", 0.0)
        return fresh
