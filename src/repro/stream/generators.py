"""Deterministic synthetic churn streams: drift, burst, adversarial hubs.

Each generator owns a seeded :class:`numpy.random.Generator` plus a live
view of the *current* edge set (updated as it emits), so removes always
target existing edges and adds absent pairs.  Determinism contract: for a
fixed ``(graph, seed)`` the emitted event sequence is identical however
the consumer slices it — ``take(4)`` twice equals ``take(8)`` — which is
what lets the sequential and vectorized envs, and the serving soak test,
replay one churn trace bit for bit.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from ..graph import Graph
from .config import REGIMES, StreamConfig
from .events import ADD, REMOVE, EdgeEvent

__all__ = [
    "BurstStream",
    "ChurnStream",
    "DriftStream",
    "HubStream",
    "make_stream",
]


class ChurnStream:
    """Base class: seeded event source over a fixed node set.

    Subclasses implement :meth:`_emit` (one event, advancing the clock);
    this class maintains the canonical edge set mirror and the shared
    add/remove primitives.
    """

    def __init__(self, graph: Graph, seed: int = 0) -> None:
        self.num_nodes = graph.num_nodes
        self.rng = np.random.default_rng(np.random.SeedSequence(seed))
        self._present: Set[Tuple[int, int]] = set(
            map(tuple, graph.edge_array().tolist())
        )
        self.time = 0

    # ------------------------------------------------------------------
    def take(self, count: int) -> List[EdgeEvent]:
        """The next ``count`` events of the stream (advances the clock)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self._emit() for _ in range(count)]

    def _emit(self) -> EdgeEvent:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _record(self, kind: int, u: int, v: int) -> EdgeEvent:
        """Mirror the event into the tracked edge set and stamp it."""
        pair = (u, v) if u < v else (v, u)
        if kind == ADD:
            self._present.add(pair)
        else:
            self._present.discard(pair)
        event = EdgeEvent(self.time, kind, pair[0], pair[1])
        self.time += 1
        return event

    def _random_present(self) -> Tuple[int, int]:
        """A uniformly random existing edge (index into the sorted set,
        so the draw is independent of set-iteration order)."""
        edges = sorted(self._present)
        return edges[int(self.rng.integers(len(edges)))]

    def _random_absent(
        self, anchor: int | None = None, tries: int = 64
    ) -> Tuple[int, int] | None:
        """A random absent non-loop pair (optionally incident to
        ``anchor``); ``None`` when rejection sampling runs dry (dense
        graphs)."""
        n = self.num_nodes
        for _ in range(tries):
            u = anchor if anchor is not None else int(self.rng.integers(n))
            v = int(self.rng.integers(n))
            if u == v:
                continue
            pair = (u, v) if u < v else (v, u)
            if pair not in self._present:
                return pair
        return None

    def _drift_event(self, remove_p: float = 0.5) -> EdgeEvent:
        """The shared fallback move: remove an existing edge with
        probability ``remove_p``, otherwise add an absent pair."""
        do_remove = (
            bool(self._present) and self.rng.random() < remove_p
        )
        if not do_remove:
            pair = self._random_absent()
            if pair is not None:
                return self._record(ADD, *pair)
            do_remove = bool(self._present)
        if do_remove:
            return self._record(REMOVE, *self._random_present())
        # Pathological corner (empty near-complete graph): emit an
        # idempotent add so the stream never stalls.
        return self._record(ADD, 0, 1 if self.num_nodes > 1 else 0)


class DriftStream(ChurnStream):
    """Steady churn: each tick removes one random existing edge or adds
    one random absent pair, with equal probability — the edge set drifts
    while its size performs a random walk around the start size."""

    def _emit(self) -> EdgeEvent:
        return self._drift_event(remove_p=0.5)


class BurstStream(ChurnStream):
    """Quiet drift punctuated by bursts focused on one node.

    ``quiet_len`` drift events, then a burst: a focal node is drawn and
    ``burst_len`` consecutive events all touch it (rewiring its whole
    neighbourhood in a few ticks) — the shape that stresses micro-batch
    shedding and per-artifact invalidation in the serving layer.
    """

    def __init__(
        self,
        graph: Graph,
        seed: int = 0,
        quiet_len: int = 12,
        burst_len: int = 8,
    ) -> None:
        super().__init__(graph, seed)
        if quiet_len < 1 or burst_len < 1:
            raise ValueError("quiet_len and burst_len must be >= 1")
        self.quiet_len = quiet_len
        self.burst_len = burst_len
        self._phase_left = quiet_len
        self._focus: int | None = None

    def _emit(self) -> EdgeEvent:
        if self._phase_left == 0:
            if self._focus is None:  # entering a burst
                self._focus = int(self.rng.integers(self.num_nodes))
                self._phase_left = self.burst_len
            else:  # burst over, back to quiet
                self._focus = None
                self._phase_left = self.quiet_len
        self._phase_left -= 1
        if self._focus is None:
            return self._drift_event()
        return self._focused_event(self._focus)

    def _focused_event(self, focus: int) -> EdgeEvent:
        """One event incident to ``focus``: drop one of its edges or
        attach a new one, whichever the coin (and availability) says."""
        incident = sorted(p for p in self._present if focus in p)
        if incident and self.rng.random() < 0.5:
            pair = incident[int(self.rng.integers(len(incident)))]
            return self._record(REMOVE, *pair)
        pair = self._random_absent(anchor=focus)
        if pair is not None:
            return self._record(ADD, *pair)
        if incident:
            pair = incident[int(self.rng.integers(len(incident)))]
            return self._record(REMOVE, *pair)
        return self._drift_event()


class HubStream(ChurnStream):
    """Adversarial churn: every event is incident to a top-degree hub.

    Hubs (the top ``hub_frac`` of nodes by start-graph degree, at least
    one) concentrate the dirty-row set, so edit halos saturate and the
    dirty fraction climbs fastest — the regime that exercises the
    rebase fallback and the incremental engine's ``max_halo_frac``
    dense fallback.
    """

    def __init__(
        self, graph: Graph, seed: int = 0, hub_frac: float = 0.02
    ) -> None:
        super().__init__(graph, seed)
        if not 0.0 < hub_frac <= 1.0:
            raise ValueError(f"hub_frac must be in (0, 1], got {hub_frac}")
        count = max(1, int(round(hub_frac * graph.num_nodes)))
        order = np.argsort(graph.degrees(), kind="stable")[::-1]
        self.hubs = np.sort(order[:count].astype(np.int64))

    def _emit(self) -> EdgeEvent:
        hub = int(self.hubs[int(self.rng.integers(self.hubs.shape[0]))])
        incident = sorted(p for p in self._present if hub in p)
        if incident and self.rng.random() < 0.5:
            pair = incident[int(self.rng.integers(len(incident)))]
            return self._record(REMOVE, *pair)
        pair = self._random_absent(anchor=hub)
        if pair is not None:
            return self._record(ADD, *pair)
        if incident:
            pair = incident[int(self.rng.integers(len(incident)))]
            return self._record(REMOVE, *pair)
        return self._drift_event()


def make_stream(
    graph: Graph, config: StreamConfig | None = None, **overrides
) -> ChurnStream:
    """Build the churn stream a :class:`StreamConfig` describes.

    ``overrides`` replace individual config fields (e.g. a test passing
    ``seed=7`` on top of a default config).
    """
    cfg = config or StreamConfig()
    if overrides:
        from dataclasses import replace

        cfg = replace(cfg, **overrides)
    cfg.validate()
    if cfg.regime == "drift":
        return DriftStream(graph, seed=cfg.seed)
    if cfg.regime == "burst":
        return BurstStream(graph, seed=cfg.seed)
    if cfg.regime == "hubs":
        return HubStream(graph, seed=cfg.seed)
    raise ValueError(  # pragma: no cover - validate() already gates
        f"unknown regime {cfg.regime!r}; choose from {REGIMES}"
    )
