"""The timestamped edge-event model and its two application paths.

An external churn source is a sequence of :class:`EdgeEvent` records —
``(time, kind, u, v)`` with ``kind`` in ``{ADD, REMOVE}`` over the fixed
node set.  Two ways to fold a batch of events into a graph:

* :func:`replay_events` — the reference twin: one functional
  ``add_edges``/``remove_edges`` per event, in order.  Semantically
  obvious, builds one intermediate graph per event.
* :func:`apply_events` — the fast path: the batch collapses to its *net
  effect* (per canonical edge key, the last event wins), applied as one
  ``add_edges`` plus one ``remove_edges``.  The result carries a single
  :class:`~repro.graph.graph.GraphDelta` against the input graph's root
  (chained edits collapse, so caches bound to the root stay eligible).

The two are bitwise equal on edge keys for every event sequence —
including add-then-remove and remove-then-re-add of the same key inside
one batch — which the hypothesis suite in ``tests/stream`` pins down.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Sequence, Tuple

import numpy as np

from ..graph import Graph

__all__ = [
    "ADD",
    "REMOVE",
    "EdgeEvent",
    "apply_events",
    "event_arrays",
    "net_event_pairs",
    "replay_events",
    "validate_events",
]

#: Event kinds: insert / delete one undirected edge.
ADD = 1
REMOVE = -1


class EdgeEvent(NamedTuple):
    """One timestamped undirected edge edit from the external stream."""

    time: int
    """Monotone stream timestamp (ticks of the generator's clock)."""
    kind: int
    """``ADD`` (+1) or ``REMOVE`` (-1)."""
    u: int
    v: int


def event_arrays(
    events: Sequence[EdgeEvent],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(times, kinds, us, vs)`` int64 columns of an event batch."""
    if not events:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy(), empty.copy()
    arr = np.asarray(events, dtype=np.int64)
    return arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]


def _validate(events: Sequence[EdgeEvent], num_nodes: int) -> np.ndarray:
    """Kinds/endpoints sanity shared by both application paths.

    Returns the ``(len(events), 4)`` int64 matrix.  Self-loop events are
    tolerated (both paths skip them identically); out-of-range endpoints
    and unknown kinds raise, so the fast and reference paths can never
    diverge on malformed input.
    """
    arr = np.asarray(events, dtype=np.int64).reshape(-1, 4)
    if arr.shape[0]:
        bad_kind = ~np.isin(arr[:, 1], (ADD, REMOVE))
        if bad_kind.any():
            raise ValueError(
                f"unknown event kind {int(arr[bad_kind][0, 1])}; "
                f"expected ADD ({ADD}) or REMOVE ({REMOVE})"
            )
        uv = arr[:, 2:]
        out = (uv < 0) | (uv >= num_nodes)
        if out.any():
            u, v = (int(x) for x in uv[out.any(axis=1)][0])
            raise ValueError(
                f"event edge ({u}, {v}) out of range for N={num_nodes}"
            )
    return arr


def validate_events(events: Sequence[EdgeEvent], num_nodes: int) -> None:
    """Public validation hook: raise :class:`ValueError` on malformed
    events (unknown kind, out-of-range endpoint) without applying them —
    what the serving layer calls before a churn batch is enqueued."""
    _validate(events, num_nodes)


def net_event_pairs(
    events: Sequence[EdgeEvent], num_nodes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse a batch to its net effect: ``(add_pairs, remove_pairs)``.

    Per canonical edge key the **last** event in sequence order wins —
    an add-then-remove nets to a remove, a remove-then-re-add to an add —
    so applying the two disjoint pair sets in either order reproduces the
    sequential replay exactly.  Self-loop events are dropped (the replay
    path skips them too).
    """
    arr = _validate(events, num_nodes)
    if not arr.shape[0]:
        empty = np.empty((0, 2), dtype=np.int64)
        return empty, empty.copy()
    arr = arr[arr[:, 2] != arr[:, 3]]
    if not arr.shape[0]:
        empty = np.empty((0, 2), dtype=np.int64)
        return empty, empty.copy()
    lo = np.minimum(arr[:, 2], arr[:, 3])
    hi = np.maximum(arr[:, 2], arr[:, 3])
    keys = lo * np.int64(num_nodes) + hi
    # np.unique keeps the FIRST occurrence; reverse so it keeps the last.
    rev_keys = keys[::-1]
    uniq, first_rev = np.unique(rev_keys, return_index=True)
    last_kind = arr[:, 1][::-1][first_rev]
    n = np.int64(num_nodes)
    adds = uniq[last_kind == ADD]
    removes = uniq[last_kind == REMOVE]
    return (
        np.stack([adds // n, adds % n], axis=1),
        np.stack([removes // n, removes % n], axis=1),
    )


def apply_events(graph: Graph, events: Sequence[EdgeEvent]) -> Graph:
    """Fold an event batch into ``graph`` as one chained delta edit.

    The net effect (:func:`net_event_pairs`) lands as a single
    ``add_edges`` + ``remove_edges`` pair, so the result records ONE
    :class:`~repro.graph.graph.GraphDelta` — collapsed against the
    root when ``graph`` itself is a derived graph.  Bitwise equal on
    edge keys to :func:`replay_events` (the per-event reference).
    """
    adds, removes = net_event_pairs(events, graph.num_nodes)
    out = graph
    if adds.shape[0]:
        out = out.add_edges(adds)
    if removes.shape[0]:
        out = out.remove_edges(removes)
    return out


def replay_events(graph: Graph, events: Sequence[EdgeEvent]) -> Graph:
    """Reference twin of :func:`apply_events`: one edit per event, in
    order (add of a present edge and remove of an absent edge are the
    usual no-ops)."""
    arr = _validate(events, graph.num_nodes)
    out = graph
    for _, kind, u, v in arr.tolist():
        pair = [(u, v)]
        out = out.add_edges(pair) if kind == ADD else out.remove_edges(pair)
    return out


def events_from_pairs(
    pairs: Iterable[Tuple[int, int]], kind: int, start_time: int = 0
) -> List[EdgeEvent]:
    """Lift raw ``(u, v)`` pairs into a homogeneous event batch."""
    return [
        EdgeEvent(start_time + i, kind, int(u), int(v))
        for i, (u, v) in enumerate(pairs)
    ]
