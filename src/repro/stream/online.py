"""Online evaluation under churn: sliding-window metrics, exactly.

:class:`OnlineEvaluator` maintains per-event-batch metrics of a live
graph *incrementally* — the integer state (edge count, same-label edge
count, the degree vector) is updated from each batch's net
inserted/deleted keys, never rescanned — and keeps the last ``window``
records in a ring.  The float metrics derived from that state
(homophily, degree-distribution entropy) and the window aggregates are
**byte-identical** to recomputing every record from a fresh
fully-constructed graph, because both sides run the same float code over
the same exact integers; :meth:`verify` asserts that equality at any
window boundary (the bench asserts it in-run).

Model metrics (train accuracy / loss) ride along when a ``model`` and
``mask`` are bound: evaluated densely they are a pure function of the
edge keys and therefore also byte-identical between the chained live
graph and its fresh twin; through an
:class:`~repro.gnn.incremental.IncrementalEvaluator` they fall under the
halo equivalence class of ``docs/equivalence-policy.md`` (float64
resolution on halo rows) and are excluded from the bitwise check.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..graph import Graph

__all__ = ["OnlineEvaluator", "degree_entropy"]


def degree_entropy(degrees: np.ndarray) -> float:
    """Shannon entropy (nats) of the degree distribution.

    The one formula both the incremental path and the fresh-recompute
    twin call, so identical integer degree vectors give identical floats.
    Returns 0.0 for an edgeless graph.
    """
    total = int(degrees.sum())
    if total == 0:
        return 0.0
    p = degrees[degrees > 0].astype(np.float64) / np.float64(total)
    return float(-(p * np.log(p)).sum())


def _same_label_count(labels: Optional[np.ndarray], keys: np.ndarray, n: int) -> int:
    """How many of the canonical ``keys`` join same-label endpoints."""
    if labels is None or not keys.shape[0]:
        return 0
    nn = np.int64(n)
    return int((labels[keys // nn] == labels[keys % nn]).sum())


def _degree_increment(keys: np.ndarray, n: int) -> np.ndarray:
    """Per-node degree contribution of the canonical ``keys``."""
    if not keys.shape[0]:
        return np.zeros(n, dtype=np.int64)
    nn = np.int64(n)
    ends = np.concatenate([keys // nn, keys % nn])
    return np.bincount(ends, minlength=n).astype(np.int64)


class OnlineEvaluator:
    """Sliding-window metric maintenance over a churn stream."""

    def __init__(
        self,
        graph: Graph,
        window: int = 32,
        model=None,
        mask: Optional[np.ndarray] = None,
        evaluator=None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self.model = model
        self.mask = mask
        self.evaluator = evaluator
        self._n = graph.num_nodes
        self._labels = graph.labels
        self._features = graph.features
        # Exact integer state, maintained incrementally from net keys.
        keys = graph.edge_keys()
        self._num_edges = int(keys.shape[0])
        self._same = _same_label_count(self._labels, keys, self._n)
        self._degrees = _degree_increment(keys, self._n)
        # The ring: (record, edge_keys at record time).  Edge-key arrays
        # are shared with the live graphs (graphs are immutable), so the
        # ring holds references, not copies.
        self._ring: Deque[Tuple[Dict[str, float], np.ndarray]] = deque(
            maxlen=self.window
        )

    # ------------------------------------------------------------------
    def observe(
        self,
        graph: Graph,
        added_keys: Optional[np.ndarray] = None,
        removed_keys: Optional[np.ndarray] = None,
    ) -> Dict[str, float]:
        """Record the graph after one applied batch.

        ``added_keys``/``removed_keys`` are the batch's *net* canonical
        keys (a :class:`~repro.stream.engine.ChurnReport` provides them);
        when given, the integer state updates in ``O(|edit|)``.  Omitted,
        the state is rebuilt from the graph — the cold-start path.
        """
        if added_keys is None or removed_keys is None:
            keys = graph.edge_keys()
            self._num_edges = int(keys.shape[0])
            self._same = _same_label_count(self._labels, keys, self._n)
            self._degrees = _degree_increment(keys, self._n)
        else:
            added_keys = np.asarray(added_keys, dtype=np.int64)
            removed_keys = np.asarray(removed_keys, dtype=np.int64)
            self._num_edges += int(
                added_keys.shape[0] - removed_keys.shape[0]
            )
            self._same += _same_label_count(
                self._labels, added_keys, self._n
            ) - _same_label_count(self._labels, removed_keys, self._n)
            self._degrees = (
                self._degrees
                + _degree_increment(added_keys, self._n)
                - _degree_increment(removed_keys, self._n)
            )
        record = self._structural_record()
        if self.model is not None and self.mask is not None:
            record.update(self._model_record(graph))
        self._ring.append((record, graph.edge_keys()))
        return dict(record)

    def _structural_record(self) -> Dict[str, float]:
        """Float metrics derived from the exact integer state."""
        record = {
            "num_edges": float(self._num_edges),
            "degree_entropy": degree_entropy(self._degrees),
        }
        if self._labels is not None:
            record["homophily"] = (
                np.float64(self._same) / np.float64(self._num_edges)
                if self._num_edges
                else 0.0
            )
        return record

    def _model_record(self, graph: Graph) -> Dict[str, float]:
        if self.evaluator is not None:
            acc, loss = self.evaluator.evaluate(graph, self.mask)
        else:
            from ..gnn import evaluate

            acc, loss = evaluate(self.model, graph, self.mask)
        return {"acc": float(acc), "loss": float(loss)}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    def records(self) -> List[Dict[str, float]]:
        """The window's records, oldest first (copies)."""
        return [dict(rec) for rec, _ in self._ring]

    def window_metrics(self) -> Dict[str, float]:
        """Mean of every metric over the current window."""
        return self._aggregate([rec for rec, _ in self._ring])

    @staticmethod
    def _aggregate(records: List[Dict[str, float]]) -> Dict[str, float]:
        """The one aggregation both sides of the parity check run."""
        if not records:
            return {}
        out: Dict[str, float] = {"events": float(len(records))}
        for name in records[0]:
            vals = np.asarray(
                [rec[name] for rec in records], dtype=np.float64
            )
            out[f"{name}_mean"] = float(vals.mean())
            out[f"{name}_last"] = float(vals[-1])
        return out

    # ------------------------------------------------------------------
    def recompute_window(self) -> Dict[str, float]:
        """Full-recompute twin: rebuild each record from a fresh graph.

        Every ring entry's edge keys become a brand-new, fully validated
        :class:`Graph` (no delta, no caches); all metrics are recomputed
        from scratch and aggregated with the same code as
        :meth:`window_metrics`.
        """
        records: List[Dict[str, float]] = []
        for _, keys in self._ring:
            n = np.int64(self._n)
            pairs = np.stack([keys // n, keys % n], axis=1)
            fresh = Graph(
                self._n, pairs, features=self._features, labels=self._labels
            )
            fresh_keys = fresh.edge_keys()
            rec = {
                "num_edges": float(fresh_keys.shape[0]),
                "degree_entropy": degree_entropy(
                    _degree_increment(fresh_keys, self._n)
                ),
            }
            if self._labels is not None:
                same = _same_label_count(self._labels, fresh_keys, self._n)
                rec["homophily"] = (
                    np.float64(same) / np.float64(fresh_keys.shape[0])
                    if fresh_keys.shape[0]
                    else 0.0
                )
            if self.model is not None and self.mask is not None:
                from ..gnn import evaluate

                acc, loss = evaluate(self.model, fresh, self.mask)
                rec.update({"acc": float(acc), "loss": float(loss)})
            records.append(rec)
        return self._aggregate(records)

    def verify(self) -> Dict[str, float]:
        """Assert the window aggregates are byte-identical to the
        full-recompute twin; returns the (verified) aggregates.

        Model metrics computed through an incremental evaluator are
        checked at the documented float64 halo resolution instead of
        bitwise (``docs/equivalence-policy.md``).
        """
        online = self.window_metrics()
        fresh = self.recompute_window()
        assert set(online) == set(fresh), (set(online), set(fresh))
        for name, value in online.items():
            if self.evaluator is not None and (
                name.startswith("acc") or name.startswith("loss")
            ):
                assert abs(value - fresh[name]) <= 1e-9, (
                    name, value, fresh[name],
                )
                continue
            assert value == fresh[name] and np.float64(value).tobytes() == (
                np.float64(fresh[name]).tobytes()
            ), (name, value, fresh[name])
        return online
