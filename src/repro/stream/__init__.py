"""Live edge churn: streams, the churn engine, online evaluation.

The dynamic-graph workload class (the paper's future-work direction, per
``ROADMAP.md``): an external stream of timestamped add/remove edge
events (:mod:`~repro.stream.events`) folds into a live graph as chained
:class:`~repro.graph.graph.GraphDelta` edits
(:class:`~repro.stream.engine.StreamingGraph`), interleaved with the
agent's own rewires — both delta sources collapse to one shared root, so
propagation caches, halo plans and rewire memos stay valid until a
dirty-fraction threshold triggers a bitwise-verified fresh rebuild.
:class:`~repro.stream.online.OnlineEvaluator` maintains sliding-window
accuracy/entropy metrics incrementally, byte-identical to full
recomputation at every window boundary.  See ``docs/streaming.md``.
"""

from .config import REGIMES, StreamConfig
from .engine import ChurnReport, StreamingGraph
from .events import (
    ADD,
    REMOVE,
    EdgeEvent,
    apply_events,
    event_arrays,
    events_from_pairs,
    net_event_pairs,
    replay_events,
    validate_events,
)
from .generators import (
    BurstStream,
    ChurnStream,
    DriftStream,
    HubStream,
    make_stream,
)
from .online import OnlineEvaluator, degree_entropy

__all__ = [
    "ADD",
    "REMOVE",
    "REGIMES",
    "BurstStream",
    "ChurnReport",
    "ChurnStream",
    "DriftStream",
    "EdgeEvent",
    "HubStream",
    "OnlineEvaluator",
    "StreamConfig",
    "StreamingGraph",
    "apply_events",
    "degree_entropy",
    "event_arrays",
    "events_from_pairs",
    "make_stream",
    "net_event_pairs",
    "replay_events",
    "validate_events",
]
