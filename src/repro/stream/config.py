"""Configuration of the edge-churn stream (`RareConfig.stream`).

Kept dependency-free (a plain frozen dataclass) so both
:mod:`repro.core.config` and the stream engine can import it without
touching the package import graph.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The deterministic synthetic churn regimes :func:`repro.stream.make_stream`
#: knows how to build (see ``docs/streaming.md`` for their shapes).
REGIMES = ("drift", "burst", "hubs")


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of the live edge-churn subsystem (:mod:`repro.stream`).

    Attached to :class:`repro.core.config.RareConfig` as the ``stream``
    field (CLI: ``--churn``); both environments read it to interleave
    external edge events with the agent's own rewires.
    """

    regime: str = "drift"
    """Synthetic event generator: ``"drift"`` (steady random add/remove
    churn), ``"burst"`` (quiet phases punctuated by event bursts focused
    on one node), or ``"hubs"`` (adversarial: every event touches a
    top-degree hub, saturating edit halos)."""

    events_per_step: int = 4
    """External events drained from the stream before each env step."""

    rebase_threshold: float = 0.25
    """Dirty-node fraction (touched nodes of the accumulated delta over
    ``N``) above which the chained-delta representation is abandoned for
    a fresh, fully validated rebuild (bitwise-verified against the
    chained edge keys)."""

    window: int = 32
    """Sliding-window length (in recorded events/batches) of the online
    evaluator; window aggregates are byte-identical to recomputing every
    record from a fresh graph."""

    seed: int = 0
    """Seed of the synthetic event stream, independent of the run seed so
    the same churn trace can be replayed under different agents."""

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range fields (called by
        :class:`~repro.core.config.RareConfig.__post_init__`)."""
        if self.regime not in REGIMES:
            raise ValueError(
                f"stream regime must be one of {REGIMES}, got {self.regime!r}"
            )
        if self.events_per_step < 1:
            raise ValueError(
                f"events_per_step must be >= 1, got {self.events_per_step}"
            )
        if not 0.0 < self.rebase_threshold <= 1.0:
            raise ValueError(
                "rebase_threshold must be in (0, 1], got "
                f"{self.rebase_threshold}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
