"""GraphRARE reproduction: RL-enhanced GNNs with node relative entropy.

Reproduces Peng et al., "GraphRARE: Reinforcement Learning Enhanced Graph
Neural Network with Relative Entropy" (ICDE 2024) on a pure numpy/scipy
substrate.  The public surface:

* :mod:`repro.core` — the GraphRARE framework (entropy + PPO rewiring).
* :mod:`repro.gnn` — GNN backbones (GCN, GraphSAGE, GAT, H2GCN, MixHop).
* :mod:`repro.baselines` — heterophily-GNN baselines from the paper.
* :mod:`repro.datasets` — synthetic stand-ins for the seven benchmarks.
* :mod:`repro.entropy` — node relative entropy (feature + structural).
* :mod:`repro.rl` — PPO with multi-discrete actions.
* :mod:`repro.graph`, :mod:`repro.nn`, :mod:`repro.tensor` — substrates.
"""

from .core import GraphRARE, RareConfig, RareResult
from .datasets import load_dataset, planted_partition_graph
from .gnn import build_backbone, train_backbone
from .graph import Graph, geom_gcn_splits, homophily_ratio

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphRARE",
    "RareConfig",
    "RareResult",
    "__version__",
    "build_backbone",
    "geom_gcn_splits",
    "homophily_ratio",
    "load_dataset",
    "planted_partition_graph",
    "train_backbone",
]
