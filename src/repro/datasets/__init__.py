"""Synthetic stand-ins for the paper's seven benchmark datasets."""

from .registry import (
    ALL_DATASETS,
    HETEROPHILIC,
    HOMOPHILIC,
    SPECS,
    dataset_names,
    get_spec,
    load_dataset,
)
from .synthetic import (
    DatasetSpec,
    build_synthetic_graph,
    generate_features,
    generate_labels,
    planted_partition_graph,
    sample_edges,
)

__all__ = [
    "ALL_DATASETS",
    "DatasetSpec",
    "HETEROPHILIC",
    "HOMOPHILIC",
    "SPECS",
    "build_synthetic_graph",
    "dataset_names",
    "generate_features",
    "generate_labels",
    "get_spec",
    "load_dataset",
    "planted_partition_graph",
    "sample_edges",
]
