"""Synthetic graph generators standing in for the paper's public datasets.

The execution environment has no network access, so the seven benchmark
datasets (Table II) cannot be downloaded.  GraphRARE consumes only the
triple ``(A, X, y)`` and its behaviour is governed by

* the edge homophily ratio ``H`` (how noisy the original topology is),
* the degree distribution (Chameleon/Squirrel are dense and heavy-tailed),
* how informative the features are about the class (WebKB features are
  strong — MLP beats GCN there — while Squirrel features are weak).

The generator below reproduces those statistics: a degree-corrected
planted-partition edge sampler whose intra-class edge probability *is* the
target homophily, plus a class-prototype Bernoulli feature model with a
per-dataset signal strength.  Targets are validated in ``tests/datasets``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """Target statistics for one synthetic dataset (mirrors Table II)."""

    name: str
    num_nodes: int
    num_edges: int
    num_features: int
    num_classes: int
    homophily: float
    feature_signal: float = 0.15
    """Bernoulli bump for prototype dimensions; larger = easier for an MLP."""
    feature_noise: float = 0.02
    """Background on-probability for non-prototype dimensions."""
    degree_sigma: float = 0.8
    """Log-normal sigma of node propensities; larger = heavier degree tail."""
    class_degree_spread: float = 0.5
    """Log-normal sigma of per-class degree factors.  Real graphs have
    class-correlated degrees (e.g. WebKB's course pages are hubs), which is
    exactly the signal the paper's *structural* entropy (Eq. 5-8) exploits;
    zero makes degree profiles class-agnostic."""

    def scaled(self, scale: float, min_nodes: int = 40, min_features: int = 32) -> "DatasetSpec":
        """A proportionally smaller spec (constant mean degree and H)."""
        if scale <= 0 or scale > 1:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        if scale == 1.0:
            return self
        n = max(min_nodes, int(round(self.num_nodes * scale)))
        # Keep the mean degree: edges shrink with the node count.
        e = max(n, int(round(self.num_edges * n / self.num_nodes)))
        d = max(min_features, int(round(self.num_features * scale)))
        return DatasetSpec(
            name=self.name,
            num_nodes=n,
            num_edges=e,
            num_features=d,
            num_classes=self.num_classes,
            homophily=self.homophily,
            feature_signal=self.feature_signal,
            feature_noise=self.feature_noise,
            degree_sigma=self.degree_sigma,
            class_degree_spread=self.class_degree_spread,
        )


def generate_labels(
    num_nodes: int, num_classes: int, rng: np.random.Generator
) -> np.ndarray:
    """Roughly balanced labels with mild class-size variation."""
    weights = rng.dirichlet(np.full(num_classes, 8.0))
    labels = rng.choice(num_classes, size=num_nodes, p=weights)
    # Guarantee at least three nodes per class so 60/20/20 splits exist.
    for c in range(num_classes):
        short = 3 - int((labels == c).sum())
        if short > 0:
            donors = np.flatnonzero(np.bincount(labels, minlength=num_classes) > 3)
            for _ in range(short):
                candidates = np.flatnonzero(np.isin(labels, donors))
                labels[rng.choice(candidates)] = c
    return labels


def sample_edges(
    labels: np.ndarray,
    num_edges: int,
    homophily: float,
    rng: np.random.Generator,
    degree_sigma: float = 0.8,
    class_degree_spread: float = 0.5,
) -> set:
    """Degree-corrected planted-partition edge sampling.

    Each edge draws an endpoint ``u`` proportional to a log-normal node
    propensity (scaled by a per-class factor so degrees correlate with the
    class, as in real graphs), flips a coin with probability ``homophily``
    to decide whether the partner shares ``u``'s class, then draws the
    partner with the same propensities restricted to the chosen side.  The
    expected edge homophily therefore equals the target.
    """
    if not 0.0 <= homophily <= 1.0:
        raise ValueError(f"homophily must be in [0, 1], got {homophily}")
    n = len(labels)
    propensity = rng.lognormal(mean=0.0, sigma=degree_sigma, size=n)
    if class_degree_spread > 0:
        num_classes = int(labels.max()) + 1
        class_factor = rng.lognormal(0.0, class_degree_spread, size=num_classes)
        propensity = propensity * class_factor[labels]
    prob = propensity / propensity.sum()

    classes = np.unique(labels)
    members = {c: np.flatnonzero(labels == c) for c in classes}
    member_prob = {}
    for c in classes:
        w = propensity[members[c]]
        member_prob[c] = w / w.sum()

    # Sampling the "same class?" coin per edge and deduplicating biases the
    # realised homophily on small graphs (intra-class pairs collide more).
    # Targeting explicit intra/cross counts keeps H on target at every scale.
    target_intra = int(round(homophily * num_edges))
    target_cross = num_edges - target_intra
    class_index = {c: i for i, c in enumerate(classes)}

    def draw_partners(us: np.ndarray, partner_classes: np.ndarray) -> np.ndarray:
        """Vectorised partner draw: one propensity-weighted node per row."""
        vs = np.empty(len(us), dtype=np.int64)
        for c in classes:
            rows = np.flatnonzero(partner_classes == c)
            if rows.size:
                picks = rng.choice(len(members[c]), size=rows.size, p=member_prob[c])
                vs[rows] = members[c][picks]
        return vs

    intra: set = set()
    cross: set = set()
    rounds = 0
    max_rounds = 200
    while (len(intra) < target_intra or len(cross) < target_cross) and (
        rounds < max_rounds
    ):
        rounds += 1
        if len(intra) < target_intra:
            batch = max(256, int(1.5 * (target_intra - len(intra))))
            us = rng.choice(n, size=batch, p=prob)
            vs = draw_partners(us, labels[us])
            for u, v in zip(us, vs):
                if u != v:
                    intra.add((u, v) if u < v else (v, u))
                    if len(intra) >= target_intra:
                        break
        if len(cross) < target_cross and len(classes) > 1:
            batch = max(256, int(1.5 * (target_cross - len(cross))))
            us = rng.choice(n, size=batch, p=prob)
            # Shift each node's class by a random non-zero offset.
            offsets = rng.integers(1, len(classes), size=batch)
            u_class_ids = np.array([class_index[c] for c in labels[us]])
            partner_ids = (u_class_ids + offsets) % len(classes)
            vs = draw_partners(us, classes[partner_ids])
            for u, v in zip(us, vs):
                cross.add((u, v) if u < v else (v, u))
                if len(cross) >= target_cross:
                    break
    return intra | cross


def generate_features(
    labels: np.ndarray,
    num_features: int,
    rng: np.random.Generator,
    signal: float = 0.15,
    noise: float = 0.02,
    prototype_density: float = 0.08,
) -> np.ndarray:
    """Sparse binary bag-of-words-style features.

    Every class owns a random prototype subset of dimensions; a node turns a
    dimension on with probability ``noise`` plus ``signal`` when the
    dimension belongs to its class prototype.
    """
    num_classes = int(labels.max()) + 1
    proto_size = max(4, int(round(prototype_density * num_features)))
    prototypes = [
        rng.choice(num_features, size=proto_size, replace=False)
        for _ in range(num_classes)
    ]
    prob = np.full((len(labels), num_features), noise)
    for c in range(num_classes):
        rows = labels == c
        prob[np.ix_(rows, prototypes[c])] += signal
    features = (rng.random(prob.shape) < prob).astype(np.float64)
    # Avoid all-zero feature rows (they break row-normalisation downstream).
    empty = features.sum(axis=1) == 0
    if empty.any():
        cols = rng.integers(0, num_features, size=int(empty.sum()))
        features[np.flatnonzero(empty), cols] = 1.0
    return features


def build_synthetic_graph(spec: DatasetSpec, seed: int = 0) -> Graph:
    """Materialise a :class:`Graph` matching ``spec``'s target statistics."""
    rng = np.random.default_rng(seed)
    labels = generate_labels(spec.num_nodes, spec.num_classes, rng)
    edges = sample_edges(
        labels,
        spec.num_edges,
        spec.homophily,
        rng,
        degree_sigma=spec.degree_sigma,
        class_degree_spread=spec.class_degree_spread,
    )
    features = generate_features(
        labels,
        spec.num_features,
        rng,
        signal=spec.feature_signal,
        noise=spec.feature_noise,
    )
    return Graph(spec.num_nodes, edges, features=features, labels=labels)


def planted_partition_graph(
    num_nodes: int = 60,
    num_classes: int = 3,
    homophily: float = 0.8,
    mean_degree: float = 6.0,
    num_features: int = 16,
    feature_signal: float = 0.4,
    seed: int = 0,
) -> Graph:
    """A small, strongly-structured graph for tests and examples."""
    spec = DatasetSpec(
        name="planted",
        num_nodes=num_nodes,
        num_edges=int(num_nodes * mean_degree / 2),
        num_features=num_features,
        num_classes=num_classes,
        homophily=homophily,
        feature_signal=feature_signal,
        feature_noise=0.05,
        degree_sigma=0.3,
    )
    return build_synthetic_graph(spec, seed=seed)
