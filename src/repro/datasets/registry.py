"""Named dataset registry mirroring Table II of the paper.

``load_dataset(name)`` returns a synthetic graph whose node/edge/feature/
class counts and edge homophily match the published statistics.  The
``feature_signal`` knobs are calibrated so that the *relative* strengths of
an attribute-only MLP versus structure-based GNNs follow Table III (e.g. the
WebKB graphs have strong features and noisy topology, Squirrel the
opposite).
"""

from __future__ import annotations

from typing import Dict, List

from ..graph import Graph
from .synthetic import DatasetSpec, build_synthetic_graph

#: Table II statistics plus calibrated feature/degree parameters.
SPECS: Dict[str, DatasetSpec] = {
    "chameleon": DatasetSpec(
        name="chameleon",
        num_nodes=2277,
        num_edges=36101,
        num_features=2325,
        num_classes=5,
        homophily=0.23,
        feature_signal=0.09,
        feature_noise=0.015,
        degree_sigma=1.1,
        class_degree_spread=1.0,
    ),
    "squirrel": DatasetSpec(
        name="squirrel",
        num_nodes=5201,
        num_edges=217073,
        num_features=2089,
        num_classes=5,
        homophily=0.22,
        feature_signal=0.05,
        feature_noise=0.015,
        degree_sigma=1.2,
        class_degree_spread=1.0,
    ),
    "cornell": DatasetSpec(
        name="cornell",
        num_nodes=183,
        num_edges=295,
        num_features=1703,
        num_classes=5,
        homophily=0.30,
        feature_signal=0.20,
        feature_noise=0.015,
        degree_sigma=0.8,
    ),
    "texas": DatasetSpec(
        name="texas",
        num_nodes=183,
        num_edges=309,
        num_features=1703,
        num_classes=5,
        homophily=0.11,
        feature_signal=0.20,
        feature_noise=0.015,
        degree_sigma=0.8,
    ),
    "wisconsin": DatasetSpec(
        name="wisconsin",
        num_nodes=251,
        num_edges=499,
        num_features=1703,
        num_classes=5,
        homophily=0.21,
        feature_signal=0.20,
        feature_noise=0.015,
        degree_sigma=0.8,
    ),
    "cora": DatasetSpec(
        name="cora",
        num_nodes=2708,
        num_edges=5429,
        num_features=1433,
        num_classes=7,
        homophily=0.81,
        feature_signal=0.15,
        feature_noise=0.01,
        degree_sigma=0.6,
    ),
    "pubmed": DatasetSpec(
        name="pubmed",
        num_nodes=19717,
        num_edges=44338,
        num_features=500,
        num_classes=3,
        homophily=0.80,
        feature_signal=0.15,
        feature_noise=0.02,
        degree_sigma=0.6,
    ),
}

#: The paper's grouping, used by benches to iterate in table order.
HETEROPHILIC: List[str] = ["chameleon", "squirrel", "cornell", "texas", "wisconsin"]
HOMOPHILIC: List[str] = ["cora", "pubmed"]
ALL_DATASETS: List[str] = HETEROPHILIC + HOMOPHILIC


def dataset_names() -> List[str]:
    """All registered dataset names in Table II order."""
    return list(ALL_DATASETS)


def get_spec(name: str, scale: float = 1.0) -> DatasetSpec:
    """Look up (and optionally scale) a dataset spec."""
    try:
        spec = SPECS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {dataset_names()}"
        ) from None
    return spec.scaled(scale)


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Graph:
    """Build the synthetic stand-in for dataset ``name``.

    ``scale`` shrinks the graph proportionally (constant mean degree and
    homophily) so benchmark sweeps stay CPU-friendly; ``seed`` controls all
    randomness.
    """
    return build_synthetic_graph(get_spec(name, scale), seed=seed)
