"""Benchmark harness: experiment runners, paper values, scaled configs."""

from . import paper_values
from .harness import (
    MethodResult,
    format_table,
    paper_vs_measured_row,
    peak_rss_bytes,
    run_baseline_method,
    run_rare_method,
    save_results,
)
from .scaled import (
    BENCH_SCALES,
    BENCH_SPLITS,
    bench_dataset,
    bench_graph,
    bench_rare_config,
    bench_splits,
)
from .timing import time_entropy, time_epochs, time_rare_epoch
from .viz import ascii_curve, ascii_heatmap

__all__ = [
    "BENCH_SCALES",
    "BENCH_SPLITS",
    "MethodResult",
    "ascii_curve",
    "ascii_heatmap",
    "bench_dataset",
    "bench_graph",
    "bench_rare_config",
    "bench_splits",
    "format_table",
    "paper_values",
    "paper_vs_measured_row",
    "peak_rss_bytes",
    "run_baseline_method",
    "run_rare_method",
    "save_results",
    "time_entropy",
    "time_epochs",
    "time_rare_epoch",
]
