"""Published numbers from the paper, used as reference columns in benches.

All accuracies are percentages (mean over ten splits).  Sources: Table II
(dataset statistics), Table III (node classification), Table IV (lambda
sweep), Table V (ablations), Table VI (runtime), Fig. 7 (homophily ratios).
"""

from __future__ import annotations

DATASETS = ["chameleon", "squirrel", "cornell", "texas", "wisconsin", "cora", "pubmed"]

#: Table III — mean accuracy per method per dataset (percent).
TABLE3 = {
    "mlp": [46.51, 29.29, 80.81, 81.08, 84.12, 74.61, 86.63],
    "gcn": [59.08, 46.64, 55.73, 52.84, 56.04, 85.16, 87.18],
    "graphsage": [58.83, 41.44, 72.70, 75.68, 76.08, 84.53, 85.09],
    "gat": [54.34, 40.79, 54.22, 56.49, 54.45, 86.02, 86.55],
    "mixhop": [60.50, 43.80, 73.51, 77.84, 75.88, 83.10, 80.75],
    "h2gcn": [56.85, 32.20, 78.16, 79.70, 82.08, 86.26, 88.76],
    "geom_gcn": [60.90, 38.14, 60.81, 67.57, 64.12, 85.27, 90.05],
    "ugcn": [54.07, 34.39, 69.77, 71.72, 69.89, 84.00, 85.22],
    "simp_gcn": [62.61, 42.57, 84.05, 81.62, 85.49, 82.80, 81.10],
    "otgnet": [46.34, 35.39, 58.19, 65.81, 61.23, 73.31, 76.64],
    "gbk_gnn": [48.46, 36.69, 69.59, 75.59, 78.98, 82.65, 83.48],
    "polar_gnn": [64.0, 49.3, None, None, None, 83.1, 80.2],
    "hog_gcn": [54.01, 35.46, 84.32, 85.17, 86.67, 87.04, 88.79],
    "gcn-rare": [68.05, 55.90, 64.59, 58.38, 61.76, 87.24, 88.41],
    "graphsage-rare": [69.28, 52.84, 82.97, 82.16, 85.69, 87.08, 89.03],
    "gat-rare": [64.56, 49.99, 61.60, 58.11, 61.08, 86.60, 87.41],
    "h2gcn-rare": [58.09, 34.93, 87.84, 86.76, 90.00, 86.82, 90.07],
}

#: Average improvement of each RARE model over its backbone (Table III text).
TABLE3_IMPROVEMENTS = {
    "gcn": 5.95,
    "graphsage": 7.81,
    "gat": 5.14,
    "h2gcn": 4.23,
}

#: Table IV — lambda sweep for GCN-RARE (percent), rows are lambda values.
TABLE4_GCN_RARE = {
    0.1: [67.36, 54.89, 63.92, 57.83, 59.31, 87.34, 87.49],
    0.5: [67.56, 54.77, 63.77, 57.78, 58.93, 86.21, 87.62],
    1.0: [68.05, 55.90, 64.59, 58.38, 61.76, 87.24, 88.41],
    10.0: [67.73, 55.45, 63.54, 57.79, 58.82, 86.27, 87.77],
}

#: Table V — GCN-backbone ablations (percent).
TABLE5 = {
    "gcn": [59.08, 46.64, 55.73, 52.84, 56.04, 85.16, 87.18],
    "gcn-re[0..5]": [63.48, 48.03, 59.72, 55.43, 56.17, 84.32, 85.13],
    "gcn-re[0..10]": [60.89, 46.04, 61.35, 56.21, 59.49, 83.44, 84.52],
    "gcn-ra": [61.48, 47.50, 59.57, 54.57, 59.65, 84.98, 87.42],
    "gcn-rare-add": [66.43, 55.46, 58.11, 58.12, 59.22, 86.58, 88.02],
    "gcn-rare-remove": [67.52, 55.43, 60.95, 55.14, 61.37, 86.88, 87.95],
    "gcn-rare-reward": [66.54, 53.05, 60.64, 54.02, 58.74, 86.72, 87.74],
    "gcn-rare": [68.05, 55.90, 64.59, 58.38, 61.76, 87.24, 88.41],
}

#: Table VI — average training seconds per epoch (500-epoch runs) and the
#: one-off entropy computation cost, on the paper's A100 machine.
TABLE6_DATASETS = ["chameleon", "squirrel", "cornell", "texas", "wisconsin"]
TABLE6 = {
    "gcn": [11.36, 13.3, 9.00, 9.32, 9.32],
    "gat": [34.10, 57.16, 21.52, 20.68, 21.90],
    "graphsage": [12.68, 13.0, 11.04, 11.16, 12.70],
    "h2gcn": [25.52, 57.46, 13.58, 16.18, 15.62],
    "simp_gcn": [35.70, 44.86, 19.68, 18.64, 20.68],
    "hog_gcn": [77.28, 246.60, 56.46, 55.05, 53.34],
    "gcn-rare": [57.44, 186.12, 16.40, 19.38, 16.58],
    "gat-rare": [66.34, 209.88, 33.70, 26.98, 25.77],
    "graphsage-rare": [41.06, 95.04, 24.17, 28.72, 26.11],
    "h2gcn-rare": [70.61, 229.07, 22.04, 25.09, 31.29],
    "entropy": [28.67, 266.48, 0.0596, 0.0615, 0.1974],
}

#: Fig. 7 — original homophily ratios (Table II) and the paper's reported
#: average improvement per RARE model.
FIG7_ORIGINAL_H = [0.23, 0.22, 0.30, 0.11, 0.21, 0.81, 0.80]
FIG7_AVG_IMPROVEMENT = {
    "gcn-rare": 0.20,
    "graphsage-rare": 0.17,
    "gat-rare": 0.17,
    "h2gcn-rare": 0.18,
}

#: Fig. 6 — GCN-RARE on Cornell: accuracy rises and stabilises, homophily
#: ratio converges to ~0.63, DRL mean reward converges toward zero.
FIG6_CORNELL_FINAL_HOMOPHILY = 0.63
