"""Experiment harness shared by the benchmark modules.

Responsibilities: run a method over several splits and report mean ± std
test accuracy, format tables that show the paper's number next to ours, and
persist results as JSON for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..baselines import build_baseline
from ..core import GraphRARE, RareConfig
from ..gnn import train_backbone
from ..graph import Graph, Split

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "bench_results")


@dataclass
class MethodResult:
    """Mean/std accuracy of one method on one dataset."""

    method: str
    dataset: str
    mean: float
    std: float
    runs: List[float]

    def cell(self) -> str:
        return f"{100 * self.mean:.1f}±{100 * self.std:.1f}"


def run_baseline_method(
    name: str,
    graph: Graph,
    splits: Sequence[Split],
    hidden: int = 64,
    epochs: int = 80,
    patience: int = 15,
    lr: float = 0.05,
    seed: int = 0,
) -> MethodResult:
    """Train baseline ``name`` once per split; aggregate test accuracy."""
    runs = []
    for i, split in enumerate(splits):
        model = build_baseline(
            name, graph, split, hidden=hidden,
            rng=np.random.default_rng(seed + i),
        )
        result = train_backbone(
            model, graph, split, epochs=epochs, patience=patience, lr=lr
        )
        runs.append(result.test_acc)
    return MethodResult(
        method=name,
        dataset="",
        mean=float(np.mean(runs)),
        std=float(np.std(runs)),
        runs=runs,
    )


def run_rare_method(
    backbone: str,
    graph: Graph,
    splits: Sequence[Split],
    config: Optional[RareConfig] = None,
    seed: int = 0,
) -> MethodResult:
    """Run GraphRARE (one fit per split); aggregate test accuracy."""
    runs = []
    for i, split in enumerate(splits):
        cfg = config or RareConfig()
        cfg = RareConfig(**{**cfg.__dict__, "seed": seed + i})
        result = GraphRARE(backbone, cfg).fit(graph, split, train_baseline=False)
        runs.append(result.test_acc)
    return MethodResult(
        method=f"{backbone}-rare",
        dataset="",
        mean=float(np.mean(runs)),
        std=float(np.std(runs)),
        runs=runs,
    )


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------
def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """A plain aligned text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(str(cell)))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def paper_vs_measured_row(
    label: str, paper: Optional[float], measured: float, note: str = ""
) -> List[str]:
    """One 'paper vs ours' table row; accuracies in percent."""
    paper_cell = "-" if paper is None else f"{paper:.1f}"
    return [label, paper_cell, f"{measured:.1f}", note]


def _parse_vmhwm_kb(status_text: str) -> Optional[int]:
    """The ``VmHWM`` line of a ``/proc/<pid>/status`` dump, in KiB.

    Split out from :func:`peak_rss_bytes` so the parsing is unit-testable
    without faking ``/proc``.
    """
    for line in status_text.splitlines():
        if line.startswith("VmHWM:"):
            fields = line.split()
            if len(fields) >= 2 and fields[1].isdigit():
                return int(fields[1])
    return None


def peak_rss_bytes() -> Optional[int]:
    """This process's lifetime peak resident set size, in bytes.

    Primary source is ``resource.getrusage`` (``ru_maxrss`` is KiB on
    Linux); if the ``resource`` module is unavailable or reports nothing,
    falls back to the ``VmHWM`` field of ``/proc/self/status``.  Returns
    ``None`` only when neither source exists (non-Linux without
    ``resource``).  Note this is a monotone high-water mark: benches that
    want a per-phase number must measure in a fresh subprocess.
    """
    try:
        import resource
    except ImportError:
        resource = None
    if resource is not None:
        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if peak_kb > 0:
            return int(peak_kb) * 1024
    try:
        with open("/proc/self/status") as f:
            hwm_kb = _parse_vmhwm_kb(f.read())
    except OSError:
        return None
    return None if hwm_kb is None else hwm_kb * 1024


def save_results(name: str, payload: dict, telemetry=None) -> str:
    """Persist a bench's results to ``bench_results/<name>.json``.

    Every artifact is wrapped in a uniform envelope::

        {"schema": "repro-bench/v2", "bench": <name>,
         "telemetry": <counter/histogram snapshot or null>,
         "peak_rss_bytes": <process high-water mark or null>,
         "results": <payload>}

    ``telemetry`` may be a :class:`repro.telemetry.Telemetry` session (its
    :meth:`~repro.telemetry.Telemetry.snapshot` is embedded) or an
    already-built snapshot dict, so each contract bench ships the metric
    state it ran under next to its numbers.  ``peak_rss_bytes``
    (:func:`peak_rss_bytes`) records how much memory the bench process
    ever held — the number the out-of-core contract is written against.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    snapshot = telemetry.snapshot() if hasattr(telemetry, "snapshot") else telemetry
    envelope = {
        "schema": "repro-bench/v2",
        "bench": name,
        "telemetry": snapshot,
        "peak_rss_bytes": peak_rss_bytes(),
        "results": payload,
    }
    with open(path, "w") as f:
        json.dump(envelope, f, indent=2, default=float)
    return path
