"""Bench-scale dataset and loop configurations.

The paper's experiments ran on an A100 for hours; the benches shrink every
dataset (constant mean degree and homophily — see ``DatasetSpec.scaled``)
and the training budgets so the entire suite finishes on a laptop CPU.  The
scales below keep each stand-in in the 100-400-node range.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core import RareConfig
from ..datasets import load_dataset
from ..graph import Graph, Split, geom_gcn_splits

#: Per-dataset shrink factors for bench runs.
BENCH_SCALES = {
    "chameleon": 0.08,
    "squirrel": 0.04,
    "cornell": 0.60,
    "texas": 0.60,
    "wisconsin": 0.60,
    "cora": 0.08,
    "pubmed": 0.012,
}

#: Splits per dataset in bench runs (the paper uses ten).
BENCH_SPLITS = 3


def bench_graph(name: str, seed: int = 0) -> Graph:
    """The bench-scale synthetic stand-in for dataset ``name``."""
    return load_dataset(name, scale=BENCH_SCALES[name], seed=seed)


def bench_splits(graph: Graph, num: int = BENCH_SPLITS, seed: int = 0) -> List[Split]:
    return geom_gcn_splits(graph, num_splits=num, seed=seed)


def bench_dataset(name: str, seed: int = 0) -> Tuple[Graph, List[Split]]:
    """Graph plus its bench splits."""
    graph = bench_graph(name, seed=seed)
    return graph, bench_splits(graph, seed=seed)


def bench_rare_config(dataset: str, **overrides) -> RareConfig:
    """RARE loop budget tuned per dataset density.

    Dense wiki graphs (Chameleon/Squirrel) need larger edit budgets to move
    the needle; the sparse WebKB graphs need smaller ones.
    """
    dense = dataset in ("chameleon", "squirrel")
    base = dict(
        k_max=12 if dense else 6,
        d_max=16 if dense else 6,
        max_candidates=16 if dense else 12,
        episodes=4,
        horizon=6,
        co_train_epochs=6,
        co_train_patience=4,
        final_epochs=80,
        final_patience=15,
    )
    base.update(overrides)
    return RareConfig(**base)
