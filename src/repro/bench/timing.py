"""Timing utilities for the Table VI efficiency study."""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..baselines import build_baseline
from ..entropy import RelativeEntropy, build_entropy_sequences
from ..gnn import Trainer
from ..graph import Graph, Split


def time_epochs(
    name: str,
    graph: Graph,
    split: Split,
    epochs: int = 20,
    hidden: int = 64,
    seed: int = 0,
) -> float:
    """Average wall-clock seconds per training epoch for baseline ``name``."""
    model = build_baseline(
        name, graph, split, hidden=hidden, rng=np.random.default_rng(seed)
    )
    trainer = Trainer(model, lr=0.05)
    trainer.train_epoch(graph, split.train)  # warm-up (builds caches)
    start = time.perf_counter()
    for _ in range(epochs):
        trainer.train_epoch(graph, split.train)
    return (time.perf_counter() - start) / epochs


def time_rare_epoch(
    backbone: str,
    graph: Graph,
    split: Split,
    epochs: int = 10,
    hidden: int = 64,
    seed: int = 0,
    max_candidates: int = 12,
) -> float:
    """Average seconds per co-training step of the RARE loop.

    One "epoch" here is one MDP step: rewire, evaluate, one GNN epoch —
    the unit Table VI reports for the RARE variants.
    """
    from ..core import RareConfig, TopologyEnv

    entropy = RelativeEntropy.from_graph(graph, lam=1.0)
    sequences = build_entropy_sequences(graph, entropy, max_candidates=max_candidates)
    config = RareConfig(
        k_max=6, d_max=6, max_candidates=max_candidates, horizon=max(epochs, 2)
    )
    model = build_baseline(
        backbone, graph, split, hidden=hidden, rng=np.random.default_rng(seed)
    )
    trainer = Trainer(model, lr=0.05)
    env = TopologyEnv(graph, sequences, model, trainer, split, config,
                      co_train=False)
    rng = np.random.default_rng(seed)
    env.reset()
    start = time.perf_counter()
    for _ in range(epochs):
        env.step(rng.integers(0, 3, 2 * graph.num_nodes))
        trainer.train_epoch(env.current_graph, split.train)
    return (time.perf_counter() - start) / epochs


def time_entropy(graph: Graph, lam: float = 1.0, max_candidates: int = 12) -> float:
    """Seconds for the one-off relative entropy + sequence computation."""
    start = time.perf_counter()
    entropy = RelativeEntropy.from_graph(graph, lam=lam)
    build_entropy_sequences(graph, entropy, max_candidates=max_candidates)
    return time.perf_counter() - start
