"""Terminal visualisation helpers for the figure benches."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

_SHADES = " .:-=+*#%@"


def ascii_heatmap(
    matrix: np.ndarray,
    row_labels: Optional[Sequence[str]] = None,
    col_labels: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render a matrix as character shades (the Fig. 5 / Fig. 8 heatmaps)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    lo, hi = matrix.min(), matrix.max()
    span = hi - lo if hi > lo else 1.0
    norm = (matrix - lo) / span
    chars = np.vectorize(lambda v: _SHADES[min(int(v * (len(_SHADES) - 1)), len(_SHADES) - 1)])(norm)

    row_labels = list(row_labels or [str(i) for i in range(matrix.shape[0])])
    col_labels = list(col_labels or [str(j) for j in range(matrix.shape[1])])
    label_w = max(len(r) for r in row_labels)

    lines = []
    if title:
        lines.append(title)
    lines.append(" " * (label_w + 2) + " ".join(c[:3].rjust(3) for c in col_labels))
    for label, row, vals in zip(row_labels, chars, matrix):
        cells = " ".join((ch * 3) for ch in row)
        lines.append(f"{label.rjust(label_w)}  {cells}")
    lines.append(f"(scale: '{_SHADES[0]}'={lo:.3f} .. '{_SHADES[-1]}'={hi:.3f})")
    return "\n".join(lines)


def ascii_curve(
    values: Sequence[float], title: str = "", width: int = 60, height: int = 10
) -> str:
    """A tiny line plot for convergence curves (Fig. 6)."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return title + "\n(no data)"
    lo, hi = values.min(), values.max()
    span = hi - lo if hi > lo else 1.0
    # Resample to the target width.
    idx = np.linspace(0, len(values) - 1, min(width, len(values)))
    resampled = np.interp(idx, np.arange(len(values)), values)
    rows = ((resampled - lo) / span * (height - 1)).round().astype(int)

    canvas = [[" "] * len(resampled) for _ in range(height)]
    for x, y in enumerate(rows):
        canvas[height - 1 - y][x] = "*"
    lines = [title] if title else []
    lines.append(f"{hi:8.3f} ┤" + "".join(canvas[0]))
    for row in canvas[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{lo:8.3f} ┤" + "".join(canvas[-1]))
    lines.append(" " * 10 + f"0 .. {len(values) - 1} (steps)")
    return "\n".join(lines)
