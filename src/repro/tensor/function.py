"""The public custom-op API: :class:`Function`.

A ``Function`` is the single mechanism by which an operation registers
into the autograd graph — every op in :mod:`repro.tensor.ops` is built on
it, and user code (custom backbones, halo plans) subclasses it to add
differentiable ops without touching ``tensor/tensor.py`` internals.  The
shape follows MegEngine's imperative ``Function``: **one instance per
call**, with ``forward``/``backward`` overrides and instance attributes
as the saved state.

Lifecycle of ``out = MyOp(constants)(x, y)``:

1. the instance is constructed with op-specific *constants* (an axis, a
   sparse matrix, an index array — anything that is not differentiated);
2. ``__call__`` coerces the inputs to :class:`~repro.tensor.Tensor`,
   resolves the backend the op will compute with (the inputs' pinned
   backend, else the process-active one) into ``self.backend``, and
   rejects mixed-backend inputs with
   :class:`~repro.tensor.backends.BackendMismatchError`;
3. ``forward(*arrays)`` runs on the raw ``numpy`` payloads and returns
   the output array, stashing whatever backward needs via
   :meth:`Function.save_for_backward` or plain attributes (safe because
   the instance is never shared between calls);
4. if any input requires grad, the instance is wired into the graph;
   during backprop ``backward(grad)`` returns one gradient per input
   (``None`` for inputs that get nothing), which the engine accumulates.

See ``docs/custom-ops.md`` for a worked example and the backend
contract.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

import numpy as np

from .backends import BackendMismatchError, TensorBackend, active_backend
from .tensor import Tensor

__all__ = ["FUNCTION_REGISTRY", "Function"]

#: Every Function subclass ever defined, by class name — the gradcheck
#: sweep in ``tests/tensor`` uses this to assert the op surface stays
#: fully migrated (and fully checked).
FUNCTION_REGISTRY: Dict[str, Type["Function"]] = {}


class Function:
    """Base class for differentiable custom ops (one instance per call).

    Subclasses override :meth:`forward` and :meth:`backward`; the
    constructor is free for op constants.  Calling the instance with
    tensor (or array-like) inputs runs the op and returns the output
    ``Tensor`` wired into the autograd graph.

    Examples
    --------
    A residual sparse aggregation, ``matrix @ x + x``::

        class SpmmResidual(Function):
            def __init__(self, matrix):
                self.matrix = matrix.tocsr()

            def forward(self, x):
                return self.backend.spmm(self.matrix, x) + x

            def backward(self, grad):
                return self.backend.spmm(self.matrix.T.tocsr(), grad) + grad

        out = SpmmResidual(adj)(x)   # fresh instance every call
    """

    #: The backend this call computes with; set by ``__call__`` before
    #: ``forward`` runs and still valid when ``backward`` runs.
    backend: Optional[TensorBackend] = None

    _called: bool = False
    _saved: Tuple = ()
    _inputs: Tuple[Tensor, ...] = ()

    def __init_subclass__(cls, **kwargs) -> None:
        """Record the subclass in :data:`FUNCTION_REGISTRY`."""
        super().__init_subclass__(**kwargs)
        FUNCTION_REGISTRY[cls.__name__] = cls

    # ------------------------------------------------------------------
    # Subclass surface
    # ------------------------------------------------------------------
    def forward(self, *arrays: np.ndarray) -> np.ndarray:
        """Compute the output array from the inputs' raw arrays.

        Runs on plain ``numpy.ndarray`` payloads; fetch accelerated
        kernels from ``self.backend``.  Stash anything backward needs on
        ``self`` (or via :meth:`save_for_backward`).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement forward()"
        )

    def backward(self, grad: np.ndarray):
        """Map the output gradient to input gradients.

        Returns one array per ``__call__`` input, in order (a bare array
        is accepted for single-input ops); ``None`` entries mean "no
        gradient for this input".
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement backward()"
        )

    def save_for_backward(self, *arrays) -> None:
        """Stash values computed in ``forward`` for use in ``backward``."""
        self._saved = arrays

    @property
    def saved_for_backward(self) -> Tuple:
        """The values stashed by :meth:`save_for_backward` (a tuple)."""
        return self._saved

    # ------------------------------------------------------------------
    # Engine plumbing
    # ------------------------------------------------------------------
    def __call__(self, *inputs) -> Tensor:
        """Run the op on ``inputs`` and return the graph-wired output."""
        if self._called:
            raise RuntimeError(
                f"{type(self).__name__} instance called twice; Function "
                "instances hold per-call state — construct a fresh one "
                "for every call"
            )
        self._called = True
        tensors = tuple(
            x if isinstance(x, Tensor) else Tensor(x) for x in inputs
        )
        pinned: Optional[TensorBackend] = None
        for t in tensors:
            b = t.backend
            if b is None:
                continue
            if pinned is None:
                pinned = b
            elif b is not pinned:
                raise BackendMismatchError(
                    f"{type(self).__name__} got tensors pinned to "
                    f"different backends ({pinned.name!r} vs {b.name!r}); "
                    "keep one backend per computation or unpin "
                    "(backend=None) to follow the active backend"
                )
        self.backend = pinned if pinned is not None else active_backend()
        self._inputs = tensors
        out_data = self.forward(*(t.data for t in tensors))
        return Tensor._make(
            out_data, tensors, self._apply_backward, backend=pinned
        )

    def _apply_backward(self, grad: np.ndarray) -> None:
        grads = self.backward(grad)
        if not isinstance(grads, (tuple, list)):
            grads = (grads,)
        if len(grads) != len(self._inputs):
            raise RuntimeError(
                f"{type(self).__name__}.backward returned {len(grads)} "
                f"gradient(s) for {len(self._inputs)} input(s)"
            )
        for tensor, g in zip(self._inputs, grads):
            if g is not None:
                tensor._accumulate(g)
