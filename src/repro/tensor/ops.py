"""Functional operations on :class:`repro.tensor.Tensor`.

Each function builds the result tensor and wires a backward closure that
pushes gradients to its inputs.  Constant (non-``Tensor``) operands are
accepted wherever a scalar or array makes sense.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, unbroadcast


def _t(x) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(x)


# ---------------------------------------------------------------------------
# Elementwise binary ops
# ---------------------------------------------------------------------------
def add(a: Tensor, b: Tensor) -> Tensor:
    a, b = _t(a), _t(b)
    out_data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(unbroadcast(grad, a.shape))
        b._accumulate(unbroadcast(grad, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def sub(a: Tensor, b: Tensor) -> Tensor:
    a, b = _t(a), _t(b)
    out_data = a.data - b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(unbroadcast(grad, a.shape))
        b._accumulate(unbroadcast(-grad, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    a, b = _t(a), _t(b)
    out_data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(unbroadcast(grad * b.data, a.shape))
        b._accumulate(unbroadcast(grad * a.data, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def div(a: Tensor, b: Tensor) -> Tensor:
    a, b = _t(a), _t(b)
    out_data = a.data / b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(unbroadcast(grad / b.data, a.shape))
        b._accumulate(unbroadcast(-grad * a.data / (b.data**2), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise minimum; the gradient flows to the smaller operand.

    Ties route the gradient to ``a`` (consistent with a sub-gradient choice).
    """
    a, b = _t(a), _t(b)
    take_a = a.data <= b.data
    out_data = np.where(take_a, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(unbroadcast(grad * take_a, a.shape))
        b._accumulate(unbroadcast(grad * ~take_a, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum; ties route the gradient to ``a``."""
    a, b = _t(a), _t(b)
    take_a = a.data >= b.data
    out_data = np.where(take_a, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(unbroadcast(grad * take_a, a.shape))
        b._accumulate(unbroadcast(grad * ~take_a, b.shape))

    return Tensor._make(out_data, (a, b), backward)


# ---------------------------------------------------------------------------
# Elementwise unary ops
# ---------------------------------------------------------------------------
def neg(a: Tensor) -> Tensor:
    a = _t(a)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(-grad)

    return Tensor._make(-a.data, (a,), backward)


def pow(a: Tensor, exponent: float) -> Tensor:
    a = _t(a)
    out_data = a.data**exponent

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * exponent * a.data ** (exponent - 1))

    return Tensor._make(out_data, (a,), backward)


def exp(a: Tensor) -> Tensor:
    a = _t(a)
    out_data = np.exp(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * out_data)

    return Tensor._make(out_data, (a,), backward)


def log(a: Tensor) -> Tensor:
    a = _t(a)
    out_data = np.log(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad / a.data)

    return Tensor._make(out_data, (a,), backward)


def sqrt(a: Tensor) -> Tensor:
    return pow(a, 0.5)


def abs(a: Tensor) -> Tensor:  # noqa: A001 - mirrors numpy naming
    a = _t(a)
    sign = np.sign(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * sign)

    return Tensor._make(np.abs(a.data), (a,), backward)


def clamp(a: Tensor, lo: Optional[float] = None, hi: Optional[float] = None) -> Tensor:
    """Clamp values to ``[lo, hi]``; the gradient is zero where clipped."""
    a = _t(a)
    out_data = np.clip(a.data, lo, hi)
    passthrough = np.ones_like(a.data)
    if lo is not None:
        passthrough = passthrough * (a.data >= lo)
    if hi is not None:
        passthrough = passthrough * (a.data <= hi)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * passthrough)

    return Tensor._make(out_data, (a,), backward)


def relu(a: Tensor) -> Tensor:
    a = _t(a)
    mask = a.data > 0

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * mask)

    return Tensor._make(a.data * mask, (a,), backward)


def leaky_relu(a: Tensor, negative_slope: float = 0.2) -> Tensor:
    a = _t(a)
    scale = np.where(a.data > 0, 1.0, negative_slope)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * scale)

    return Tensor._make(a.data * scale, (a,), backward)


def elu(a: Tensor, alpha: float = 1.0) -> Tensor:
    a = _t(a)
    pos = a.data > 0
    neg_part = alpha * (np.exp(np.minimum(a.data, 0.0)) - 1.0)
    out_data = np.where(pos, a.data, neg_part)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * np.where(pos, 1.0, neg_part + alpha))

    return Tensor._make(out_data, (a,), backward)


def tanh(a: Tensor) -> Tensor:
    a = _t(a)
    out_data = np.tanh(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * (1.0 - out_data**2))

    return Tensor._make(out_data, (a,), backward)


def sigmoid(a: Tensor) -> Tensor:
    a = _t(a)
    out_data = 1.0 / (1.0 + np.exp(-a.data))

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (a,), backward)


# ---------------------------------------------------------------------------
# Reductions and shape ops
# ---------------------------------------------------------------------------
def sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    a = _t(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        g = grad
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.ndim for ax in axes):
                g = np.expand_dims(g, ax)
        a._accumulate(np.broadcast_to(g, a.shape).copy())

    return Tensor._make(out_data, (a,), backward)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    a = _t(a)
    if axis is None:
        count = a.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = int(np.prod([a.shape[ax] for ax in axes]))
    return sum(a, axis=axis, keepdims=keepdims) * (1.0 / count)


def reshape(a: Tensor, shape: tuple) -> Tensor:
    a = _t(a)
    old_shape = a.shape

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad.reshape(old_shape))

    return Tensor._make(a.data.reshape(shape), (a,), backward)


def transpose(a: Tensor) -> Tensor:
    a = _t(a)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad.T)

    return Tensor._make(a.data.T, (a,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [_t(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            t._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [_t(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.moveaxis(grad, axis, 0)
        for t, slab in zip(tensors, slabs):
            t._accumulate(slab)

    return Tensor._make(out_data, tensors, backward)


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------
def matmul(a: Tensor, b: Tensor) -> Tensor:
    a, b = _t(a), _t(b)
    out_data = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad @ b.data.T)
        b._accumulate(a.data.T @ grad)

    return Tensor._make(out_data, (a, b), backward)


def spmm(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Multiply a *constant* scipy sparse matrix by a dense tensor.

    The sparse operand carries no gradient (it encodes graph structure);
    the gradient w.r.t. ``x`` is ``matrix.T @ grad``.  The CSR transpose is
    only needed for that backward pass, so it is constructed lazily on the
    first backward call and memoised for the call's lifetime — eval-mode
    forwards (the reward evaluations dominating the RL loop) never build it.
    """
    x = _t(x)
    matrix = matrix.tocsr()
    out_data = np.asarray(matrix @ x.data)
    transposed: list = []

    def backward(grad: np.ndarray) -> None:
        if not transposed:
            transposed.append(matrix.T.tocsr())
        x._accumulate(np.asarray(transposed[0] @ grad))

    return Tensor._make(out_data, (x,), backward)


def spmm_rows(matrix: sp.spmatrix, rows: np.ndarray, x: Tensor) -> Tensor:
    """Selected rows of ``matrix @ x`` without forming the full product.

    Equivalent to ``gather_rows(spmm(matrix, x), rows)`` but only the
    requested rows are ever multiplied — the subset-*output* companion to
    :func:`scatter_patch_rows` for propagation models that only need a
    node subset's outputs (e.g. masked evaluation).  The halo evaluator's
    own stages pre-assemble delta-patched row slices and run plain
    :func:`spmm` over them (its dirty rows carry values no existing
    matrix holds), so this op is the caller-facing shorthand for the
    unmodified-matrix case.  The gradient w.r.t. ``x`` is
    ``matrix[rows].T @ grad`` (the transpose again built lazily, only
    under backward).
    """
    x = _t(x)
    rows = np.asarray(rows, dtype=np.int64)
    sub = matrix.tocsr()[rows]
    out_data = np.asarray(sub @ x.data)
    transposed: list = []

    def backward(grad: np.ndarray) -> None:
        if not transposed:
            transposed.append(sub.T.tocsr())
        x._accumulate(np.asarray(transposed[0] @ grad))

    return Tensor._make(out_data, (x,), backward)


def scatter_patch_rows(base: Tensor, rows: np.ndarray, patch: Tensor) -> Tensor:
    """Out-of-place row replacement: ``out[rows] = patch``, rest from ``base``.

    ``rows`` must be unique (each row has one source).  Gradients split
    accordingly: ``patch`` receives ``grad[rows]``, ``base`` receives the
    gradient with the patched rows zeroed — together the exact adjoint of
    the select.  This is the patch-back step of the incremental evaluator:
    recomputed halo rows are scattered into the cached base activations.
    """
    base, patch = _t(base), _t(patch)
    rows = np.asarray(rows, dtype=np.int64)
    if patch.shape[0] != rows.shape[0]:
        raise ValueError(
            f"patch has {patch.shape[0]} rows for {rows.shape[0]} indices"
        )
    out_data = base.data.copy()
    out_data[rows] = patch.data

    def backward(grad: np.ndarray) -> None:
        masked = grad.copy()
        masked[rows] = 0.0
        base._accumulate(masked)
        patch._accumulate(grad[rows])

    return Tensor._make(out_data, (base, patch), backward)


# ---------------------------------------------------------------------------
# Indexing
# ---------------------------------------------------------------------------
def gather_rows(x: Tensor, index: np.ndarray) -> Tensor:
    """Select rows ``x[index]``; duplicate indices are supported."""
    x = _t(x)
    index = np.asarray(index, dtype=np.int64)
    out_data = x.data[index]

    def backward(grad: np.ndarray) -> None:
        buf = np.zeros_like(x.data)
        np.add.at(buf, index, grad)
        x._accumulate(buf)

    return Tensor._make(out_data, (x,), backward)


def scatter_add_rows(src: Tensor, index: np.ndarray, num_rows: int) -> Tensor:
    """Sum rows of ``src`` into ``num_rows`` buckets given by ``index``.

    The inverse of :func:`gather_rows`: ``out[i] = sum_{j: index[j]=i} src[j]``.
    The forward values come from :func:`segment_sum_array`, the shared core
    the incremental engine's gradient-free twin uses.
    """
    src = _t(src)
    index = np.asarray(index, dtype=np.int64)
    out_data = segment_sum_array(src.data, index, num_rows)

    def backward(grad: np.ndarray) -> None:
        src._accumulate(grad[index])

    return Tensor._make(out_data, (src,), backward)


def gather_cols(x: Tensor, index) -> Tensor:
    """Select columns ``x[:, index]``; duplicate indices are supported.

    The column twin of :func:`gather_rows` (head slicing in GAT / MixHop
    block selection) without the transpose-gather-transpose dance.
    ``index`` may be an integer array or a ``slice``.
    """
    x = _t(x)
    if isinstance(index, slice):
        index = np.arange(*index.indices(x.shape[1]))
    index = np.asarray(index, dtype=np.int64)
    out_data = x.data[:, index]

    def backward(grad: np.ndarray) -> None:
        buf = np.zeros_like(x.data)
        np.add.at(buf.T, index, grad.T)
        x._accumulate(buf)

    return Tensor._make(out_data, (x,), backward)


# ---------------------------------------------------------------------------
# Softmax family
# ---------------------------------------------------------------------------
def log_softmax(a: Tensor, axis: int = -1) -> Tensor:
    a = _t(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    softmax_data = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad - softmax_data * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (a,), backward)


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    a = _t(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        a._accumulate(out_data * (grad - inner))

    return Tensor._make(out_data, (a,), backward)


def segment_softmax_array(
    data: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Plain-array segment softmax — the float core of :func:`segment_softmax`.

    Entries sharing a segment id are normalised together; the per-segment
    max is subtracted for numerical stability.  This is the exact float
    sequence the Tensor op runs (the op delegates here), exposed for
    gradient-free consumers: the incremental engine's halo-restricted
    edge-softmax re-normalisation feeds it sub-edge lists gathered for the
    dirty destination rows only, and relies on the two paths never
    diverging.  Per segment the accumulation order equals the order in
    which that segment's entries appear in ``data`` — gather sub-edges in
    the full forward's per-destination order to reproduce its sums
    bitwise.
    """
    data = np.asarray(data)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    seg_max = np.full((num_segments,) + data.shape[1:], -np.inf)
    np.maximum.at(seg_max, segment_ids, data)
    shifted = data - seg_max[segment_ids]
    e = np.exp(shifted)
    denom = np.zeros((num_segments,) + data.shape[1:])
    np.add.at(denom, segment_ids, e)
    return e / denom[segment_ids]


def segment_sum_array(
    data: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Plain-array segment sum — the float core of :func:`scatter_add_rows`.

    ``out[i] = sum_{j: segment_ids[j] = i} data[j]``, accumulated in the
    order the entries appear in ``data`` (the :func:`numpy.add.at`
    guarantee the incremental engine's bitwise off-halo contract builds
    on).
    """
    data = np.asarray(data)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out = np.zeros((num_segments,) + data.shape[1:])
    np.add.at(out, segment_ids, data)
    return out


def segment_softmax(logits: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax over variable-sized segments (edge-softmax for GAT).

    ``logits`` has shape ``(E,)`` or ``(E, H)``; entries sharing a segment id
    (destination node) are normalised together.  The per-segment max used for
    numerical stability is treated as a constant, which leaves the gradient
    of the softmax unchanged.  The forward values come from
    :func:`segment_softmax_array` so the gradient-free twin the incremental
    engine uses can never drift from this op.
    """
    logits = _t(logits)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_data = segment_softmax_array(logits.data, segment_ids, num_segments)

    def backward(grad: np.ndarray) -> None:
        weighted = grad * out_data
        seg_sum = np.zeros((num_segments,) + logits.shape[1:])
        np.add.at(seg_sum, segment_ids, weighted)
        logits._accumulate(weighted - out_data * seg_sum[segment_ids])

    return Tensor._make(out_data, (logits,), backward)


# ---------------------------------------------------------------------------
# Regularisation
# ---------------------------------------------------------------------------
def dropout(a: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero entries with probability ``p`` and rescale."""
    a = _t(a)
    if not training or p <= 0.0:
        return a
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(a.shape) >= p) / (1.0 - p)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * mask)

    return Tensor._make(a.data * mask, (a,), backward)


def max(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Max reduction; gradient flows to the (first) maximal entries."""
    a = _t(a)
    out_data = a.data.max(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        g = grad
        out = out_data
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.ndim for ax in axes):
                g = np.expand_dims(g, ax)
                out = np.expand_dims(out, ax)
        elif axis is None:
            g = np.asarray(g).reshape((1,) * a.ndim)
            out = np.asarray(out).reshape((1,) * a.ndim)
        mask = a.data == out
        # Split gradient across ties to keep the adjoint consistent.
        counts = mask.sum(
            axis=axis if axis is not None else None, keepdims=True
        )
        a._accumulate(np.broadcast_to(g, a.shape) * mask / counts)

    return Tensor._make(out_data, (a,), backward)


def min(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Min reduction (via max of the negation)."""
    return neg(max(neg(_t(a)), axis=axis, keepdims=keepdims))


def var(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Population variance (ddof=0), differentiable."""
    a = _t(a)
    mu = mean(a, axis=axis, keepdims=True)
    centered = a - mu
    return mean(centered * centered, axis=axis, keepdims=keepdims)


def std(a: Tensor, axis=None, keepdims: bool = False, eps: float = 1e-12) -> Tensor:
    """Standard deviation with a small epsilon for gradient stability."""
    return sqrt(var(a, axis=axis, keepdims=keepdims) + eps)


def log1p(a: Tensor) -> Tensor:
    """``log(1 + a)`` computed stably."""
    a = _t(a)
    out_data = np.log1p(a.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad / (1.0 + a.data))

    return Tensor._make(out_data, (a,), backward)


def softplus(a: Tensor) -> Tensor:
    """``log(1 + exp(a))`` with the overflow-safe formulation."""
    a = _t(a)
    out_data = np.logaddexp(0.0, a.data)
    with np.errstate(over="ignore"):
        sig = 1.0 / (1.0 + np.exp(-a.data))

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * sig)

    return Tensor._make(out_data, (a,), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select by a constant boolean mask."""
    a, b = _t(a), _t(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(unbroadcast(grad * condition, a.shape))
        b._accumulate(unbroadcast(grad * ~condition, b.shape))

    return Tensor._make(out_data, (a, b), backward)
