"""Functional operations on :class:`repro.tensor.Tensor`.

Every op here is a thin public wrapper over a private
:class:`repro.tensor.Function` subclass — the Function is the *single*
mechanism by which an operation registers into the autograd graph (one
instance per call, ``forward``/``backward`` overrides), and the wrapper
preserves the historical call signature.  Constant (non-``Tensor``)
operands are accepted wherever a scalar or array makes sense.

Hot kernels (sparse products, segment reductions, dense GEMM) are
fetched through the call's resolved backend (``self.backend`` inside a
Function; see :mod:`repro.tensor.backends`), so the same op runs on the
byte-identical numpy reference or the numba-accelerated kernels without
any call-site change.  A handful of ops (``sqrt``, ``mean``, ``min``,
``var``, ``std``) remain compositions of the primitives and therefore
ride the same machinery.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from .backends import active_backend
from .function import Function
from .tensor import Tensor, unbroadcast


def _t(x) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(x)


# ---------------------------------------------------------------------------
# Elementwise binary ops
# ---------------------------------------------------------------------------
class _Add(Function):
    def forward(self, a, b):
        self._shapes = (a.shape, b.shape)
        return a + b

    def backward(self, grad):
        sa, sb = self._shapes
        return unbroadcast(grad, sa), unbroadcast(grad, sb)


def add(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise ``a + b`` with numpy broadcasting."""
    return _Add()(a, b)


class _Sub(Function):
    def forward(self, a, b):
        self._shapes = (a.shape, b.shape)
        return a - b

    def backward(self, grad):
        sa, sb = self._shapes
        return unbroadcast(grad, sa), unbroadcast(-grad, sb)


def sub(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise ``a - b`` with numpy broadcasting."""
    return _Sub()(a, b)


class _Mul(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a * b

    def backward(self, grad):
        a, b = self.saved_for_backward
        return (
            unbroadcast(grad * b, a.shape),
            unbroadcast(grad * a, b.shape),
        )


def mul(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise ``a * b`` with numpy broadcasting."""
    return _Mul()(a, b)


class _Div(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a / b

    def backward(self, grad):
        a, b = self.saved_for_backward
        return (
            unbroadcast(grad / b, a.shape),
            unbroadcast(-grad * a / (b**2), b.shape),
        )


def div(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise ``a / b`` with numpy broadcasting."""
    return _Div()(a, b)


class _Minimum(Function):
    def forward(self, a, b):
        self._shapes = (a.shape, b.shape)
        self._take_a = a <= b
        return np.where(self._take_a, a, b)

    def backward(self, grad):
        sa, sb = self._shapes
        return (
            unbroadcast(grad * self._take_a, sa),
            unbroadcast(grad * ~self._take_a, sb),
        )


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise minimum; the gradient flows to the smaller operand.

    Ties route the gradient to ``a`` (consistent with a sub-gradient choice).
    """
    return _Minimum()(a, b)


class _Maximum(Function):
    def forward(self, a, b):
        self._shapes = (a.shape, b.shape)
        self._take_a = a >= b
        return np.where(self._take_a, a, b)

    def backward(self, grad):
        sa, sb = self._shapes
        return (
            unbroadcast(grad * self._take_a, sa),
            unbroadcast(grad * ~self._take_a, sb),
        )


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum; ties route the gradient to ``a``."""
    return _Maximum()(a, b)


# ---------------------------------------------------------------------------
# Elementwise unary ops
# ---------------------------------------------------------------------------
class _Neg(Function):
    def forward(self, a):
        return -a

    def backward(self, grad):
        return -grad


def neg(a: Tensor) -> Tensor:
    """Elementwise negation."""
    return _Neg()(a)


class _Pow(Function):
    def __init__(self, exponent: float) -> None:
        self._exponent = exponent

    def forward(self, a):
        self.save_for_backward(a)
        return a**self._exponent

    def backward(self, grad):
        (a,) = self.saved_for_backward
        return grad * self._exponent * a ** (self._exponent - 1)


def pow(a: Tensor, exponent: float) -> Tensor:  # noqa: A001
    """Elementwise power with a constant exponent."""
    return _Pow(exponent)(a)


class _Exp(Function):
    def forward(self, a):
        out = np.exp(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved_for_backward
        return grad * out


def exp(a: Tensor) -> Tensor:
    """Elementwise ``e**a``."""
    return _Exp()(a)


class _Log(Function):
    def forward(self, a):
        self.save_for_backward(a)
        return np.log(a)

    def backward(self, grad):
        (a,) = self.saved_for_backward
        return grad / a


def log(a: Tensor) -> Tensor:
    """Elementwise natural logarithm."""
    return _Log()(a)


def sqrt(a: Tensor) -> Tensor:
    """Elementwise square root (as ``a ** 0.5``)."""
    return pow(a, 0.5)


class _Abs(Function):
    def forward(self, a):
        self._sign = np.sign(a)
        return np.abs(a)

    def backward(self, grad):
        return grad * self._sign


def abs(a: Tensor) -> Tensor:  # noqa: A001 - mirrors numpy naming
    """Elementwise absolute value (zero gradient at 0)."""
    return _Abs()(a)


class _Clamp(Function):
    def __init__(self, lo: Optional[float], hi: Optional[float]) -> None:
        self._lo = lo
        self._hi = hi

    def forward(self, a):
        out = np.clip(a, self._lo, self._hi)
        passthrough = np.ones_like(a)
        if self._lo is not None:
            passthrough = passthrough * (a >= self._lo)
        if self._hi is not None:
            passthrough = passthrough * (a <= self._hi)
        self._passthrough = passthrough
        return out

    def backward(self, grad):
        return grad * self._passthrough


def clamp(a: Tensor, lo: Optional[float] = None, hi: Optional[float] = None) -> Tensor:
    """Clamp values to ``[lo, hi]``; the gradient is zero where clipped."""
    return _Clamp(lo, hi)(a)


class _Relu(Function):
    def forward(self, a):
        self._mask = a > 0
        return a * self._mask

    def backward(self, grad):
        return grad * self._mask


def relu(a: Tensor) -> Tensor:
    """Rectified linear unit."""
    return _Relu()(a)


class _LeakyRelu(Function):
    def __init__(self, negative_slope: float) -> None:
        self._slope = negative_slope

    def forward(self, a):
        self._scale = np.where(a > 0, 1.0, self._slope)
        return a * self._scale

    def backward(self, grad):
        return grad * self._scale


def leaky_relu(a: Tensor, negative_slope: float = 0.2) -> Tensor:
    """Leaky ReLU with the given negative-side slope."""
    return _LeakyRelu(negative_slope)(a)


class _Elu(Function):
    def __init__(self, alpha: float) -> None:
        self._alpha = alpha

    def forward(self, a):
        pos = a > 0
        neg_part = self._alpha * (np.exp(np.minimum(a, 0.0)) - 1.0)
        self._pos = pos
        self._neg_part = neg_part
        return np.where(pos, a, neg_part)

    def backward(self, grad):
        return grad * np.where(self._pos, 1.0, self._neg_part + self._alpha)


def elu(a: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit."""
    return _Elu(alpha)(a)


class _Tanh(Function):
    def forward(self, a):
        out = np.tanh(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved_for_backward
        return grad * (1.0 - out**2)


def tanh(a: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    return _Tanh()(a)


class _Sigmoid(Function):
    def forward(self, a):
        out = 1.0 / (1.0 + np.exp(-a))
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved_for_backward
        return grad * out * (1.0 - out)


def sigmoid(a: Tensor) -> Tensor:
    """Elementwise logistic sigmoid."""
    return _Sigmoid()(a)


# ---------------------------------------------------------------------------
# Reductions and shape ops
# ---------------------------------------------------------------------------
class _Sum(Function):
    def __init__(self, axis, keepdims: bool) -> None:
        self._axis = axis
        self._keepdims = keepdims

    def forward(self, a):
        self._shape = a.shape
        return a.sum(axis=self._axis, keepdims=self._keepdims)

    def backward(self, grad):
        g = grad
        ndim = len(self._shape)
        if self._axis is not None and not self._keepdims:
            axes = self._axis if isinstance(self._axis, tuple) else (self._axis,)
            for ax in sorted(ax % ndim for ax in axes):
                g = np.expand_dims(g, ax)
        return np.broadcast_to(g, self._shape).copy()


def sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Sum reduction over ``axis`` (all axes when ``None``)."""
    return _Sum(axis, keepdims)(a)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Mean reduction (composed from :func:`sum`)."""
    a = _t(a)
    if axis is None:
        count = a.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = int(np.prod([a.shape[ax] for ax in axes]))
    return sum(a, axis=axis, keepdims=keepdims) * (1.0 / count)


class _Reshape(Function):
    def __init__(self, shape: tuple) -> None:
        self._target = shape

    def forward(self, a):
        self._shape = a.shape
        return a.reshape(self._target)

    def backward(self, grad):
        return grad.reshape(self._shape)


def reshape(a: Tensor, shape: tuple) -> Tensor:
    """Reshape to ``shape`` (a view-compatible adjoint reshape on backward)."""
    return _Reshape(shape)(a)


class _Transpose(Function):
    def forward(self, a):
        return a.T

    def backward(self, grad):
        return grad.T


def transpose(a: Tensor) -> Tensor:
    """Matrix transpose (``a.T``)."""
    return _Transpose()(a)


class _Concat(Function):
    def __init__(self, axis: int) -> None:
        self._axis = axis

    def forward(self, *arrays):
        sizes = [arr.shape[self._axis] for arr in arrays]
        self._offsets = np.cumsum([0] + sizes)
        return np.concatenate(arrays, axis=self._axis)

    def backward(self, grad):
        grads = []
        offsets = self._offsets
        for start, stop in zip(offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[self._axis] = slice(start, stop)
            grads.append(grad[tuple(index)])
        return tuple(grads)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    return _Concat(axis)(*tensors)


class _Stack(Function):
    def __init__(self, axis: int) -> None:
        self._axis = axis

    def forward(self, *arrays):
        return np.stack(arrays, axis=self._axis)

    def backward(self, grad):
        return tuple(np.moveaxis(grad, self._axis, 0))


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    return _Stack(axis)(*tensors)


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------
class _Matmul(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return self.backend.matmul(a, b)

    def backward(self, grad):
        a, b = self.saved_for_backward
        return (
            self.backend.matmul(grad, b.T),
            self.backend.matmul(a.T, grad),
        )


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Dense matrix product ``a @ b``."""
    return _Matmul()(a, b)


class _Spmm(Function):
    def __init__(self, matrix: sp.spmatrix) -> None:
        self._matrix = matrix.tocsr()
        self._transposed: Optional[sp.spmatrix] = None

    def forward(self, x):
        return self.backend.spmm(self._matrix, x)

    def backward(self, grad):
        if self._transposed is None:
            self._transposed = self._matrix.T.tocsr()
        return self.backend.spmm(self._transposed, grad)


def spmm(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Multiply a *constant* scipy sparse matrix by a dense tensor.

    The sparse operand carries no gradient (it encodes graph structure);
    the gradient w.r.t. ``x`` is ``matrix.T @ grad``.  The CSR transpose is
    only needed for that backward pass, so it is constructed lazily on the
    first backward call and memoised for the call's lifetime — eval-mode
    forwards (the reward evaluations dominating the RL loop) never build it.
    """
    return _Spmm(matrix)(x)


class _SpmmRows(Function):
    def __init__(self, matrix: sp.spmatrix, rows: np.ndarray) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        self._sub = matrix.tocsr()[rows]
        self._transposed: Optional[sp.spmatrix] = None

    def forward(self, x):
        return self.backend.spmm(self._sub, x)

    def backward(self, grad):
        if self._transposed is None:
            self._transposed = self._sub.T.tocsr()
        return self.backend.spmm(self._transposed, grad)


def spmm_rows(matrix: sp.spmatrix, rows: np.ndarray, x: Tensor) -> Tensor:
    """Selected rows of ``matrix @ x`` without forming the full product.

    Equivalent to ``gather_rows(spmm(matrix, x), rows)`` but only the
    requested rows are ever multiplied — the subset-*output* companion to
    :func:`scatter_patch_rows` for propagation models that only need a
    node subset's outputs (e.g. masked evaluation).  The halo evaluator's
    own stages pre-assemble delta-patched row slices and run plain
    :func:`spmm` over them (its dirty rows carry values no existing
    matrix holds), so this op is the caller-facing shorthand for the
    unmodified-matrix case.  The gradient w.r.t. ``x`` is
    ``matrix[rows].T @ grad`` (the transpose again built lazily, only
    under backward).
    """
    return _SpmmRows(matrix, rows)(x)


class _ScatterPatchRows(Function):
    def __init__(self, rows: np.ndarray) -> None:
        self._rows = np.asarray(rows, dtype=np.int64)

    def forward(self, base, patch):
        if patch.shape[0] != self._rows.shape[0]:
            raise ValueError(
                f"patch has {patch.shape[0]} rows for "
                f"{self._rows.shape[0]} indices"
            )
        out = base.copy()
        out[self._rows] = patch
        return out

    def backward(self, grad):
        masked = grad.copy()
        masked[self._rows] = 0.0
        return masked, grad[self._rows]


def scatter_patch_rows(base: Tensor, rows: np.ndarray, patch: Tensor) -> Tensor:
    """Out-of-place row replacement: ``out[rows] = patch``, rest from ``base``.

    ``rows`` must be unique (each row has one source).  Gradients split
    accordingly: ``patch`` receives ``grad[rows]``, ``base`` receives the
    gradient with the patched rows zeroed — together the exact adjoint of
    the select.  This is the patch-back step of the incremental evaluator:
    recomputed halo rows are scattered into the cached base activations.
    """
    return _ScatterPatchRows(rows)(base, patch)


# ---------------------------------------------------------------------------
# Indexing
# ---------------------------------------------------------------------------
class _GatherRows(Function):
    def __init__(self, index: np.ndarray) -> None:
        self._index = np.asarray(index, dtype=np.int64)

    def forward(self, x):
        self._shape = x.shape
        return x[self._index]

    def backward(self, grad):
        buf = np.zeros(self._shape)
        np.add.at(buf, self._index, grad)
        return buf


def gather_rows(x: Tensor, index: np.ndarray) -> Tensor:
    """Select rows ``x[index]``; duplicate indices are supported."""
    return _GatherRows(index)(x)


class _ScatterAddRows(Function):
    def __init__(self, index: np.ndarray, num_rows: int) -> None:
        self._index = np.asarray(index, dtype=np.int64)
        self._num_rows = num_rows

    def forward(self, src):
        return self.backend.segment_sum(src, self._index, self._num_rows)

    def backward(self, grad):
        return grad[self._index]


def scatter_add_rows(src: Tensor, index: np.ndarray, num_rows: int) -> Tensor:
    """Sum rows of ``src`` into ``num_rows`` buckets given by ``index``.

    The inverse of :func:`gather_rows`: ``out[i] = sum_{j: index[j]=i} src[j]``.
    The forward values come from the active backend's ``segment_sum``
    kernel (:func:`segment_sum_array` is the same kernel exposed for
    gradient-free consumers), so the incremental engine's twin can never
    drift from this op.
    """
    return _ScatterAddRows(index, num_rows)(src)


class _GatherCols(Function):
    def __init__(self, index: np.ndarray) -> None:
        self._index = index

    def forward(self, x):
        self._shape = x.shape
        return x[:, self._index]

    def backward(self, grad):
        buf = np.zeros(self._shape)
        np.add.at(buf.T, self._index, grad.T)
        return buf


def gather_cols(x: Tensor, index) -> Tensor:
    """Select columns ``x[:, index]``; duplicate indices are supported.

    The column twin of :func:`gather_rows` (head slicing in GAT / MixHop
    block selection) without the transpose-gather-transpose dance.
    ``index`` may be an integer array or a ``slice``.
    """
    x = _t(x)
    if isinstance(index, slice):
        index = np.arange(*index.indices(x.shape[1]))
    index = np.asarray(index, dtype=np.int64)
    return _GatherCols(index)(x)


# ---------------------------------------------------------------------------
# Softmax family
# ---------------------------------------------------------------------------
class _LogSoftmax(Function):
    def __init__(self, axis: int) -> None:
        self._axis = axis

    def forward(self, a):
        shifted = a - a.max(axis=self._axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=self._axis, keepdims=True))
        out = shifted - log_z
        self.save_for_backward(np.exp(out))
        return out

    def backward(self, grad):
        (softmax_data,) = self.saved_for_backward
        return grad - softmax_data * grad.sum(axis=self._axis, keepdims=True)


def log_softmax(a: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(a))`` along ``axis``."""
    return _LogSoftmax(axis)(a)


class _Softmax(Function):
    def __init__(self, axis: int) -> None:
        self._axis = axis

    def forward(self, a):
        shifted = a - a.max(axis=self._axis, keepdims=True)
        e = np.exp(shifted)
        out = e / e.sum(axis=self._axis, keepdims=True)
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved_for_backward
        inner = (grad * out).sum(axis=self._axis, keepdims=True)
        return out * (grad - inner)


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    return _Softmax(axis)(a)


def segment_softmax_array(
    data: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Plain-array segment softmax — the float core of :func:`segment_softmax`.

    Entries sharing a segment id are normalised together; the per-segment
    max is subtracted for numerical stability.  This is the exact float
    sequence the Tensor op runs (both delegate to the active backend's
    ``segment_softmax`` kernel), exposed for gradient-free consumers: the
    incremental engine's halo-restricted edge-softmax re-normalisation
    feeds it sub-edge lists gathered for the dirty destination rows only,
    and relies on the two paths never diverging.  Per segment the
    accumulation order equals the order in which that segment's entries
    appear in ``data`` — gather sub-edges in the full forward's
    per-destination order to reproduce its sums bitwise (a guarantee of
    the numpy reference backend; the accelerated backend is allclose).
    """
    return active_backend().segment_softmax(data, segment_ids, num_segments)


def segment_sum_array(
    data: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Plain-array segment sum — the float core of :func:`scatter_add_rows`.

    ``out[i] = sum_{j: segment_ids[j] = i} data[j]``, accumulated in the
    order the entries appear in ``data`` (the entry-order guarantee the
    incremental engine's bitwise off-halo contract builds on; exact under
    the numpy reference backend).  Delegates to the active backend's
    ``segment_sum`` kernel.
    """
    return active_backend().segment_sum(data, segment_ids, num_segments)


class _SegmentSoftmax(Function):
    def __init__(self, segment_ids: np.ndarray, num_segments: int) -> None:
        self._segment_ids = np.asarray(segment_ids, dtype=np.int64)
        self._num_segments = num_segments

    def forward(self, logits):
        out = self.backend.segment_softmax(
            logits, self._segment_ids, self._num_segments
        )
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved_for_backward
        weighted = grad * out
        seg_sum = self.backend.segment_sum(
            weighted, self._segment_ids, self._num_segments
        )
        return weighted - out * seg_sum[self._segment_ids]


def segment_softmax(logits: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax over variable-sized segments (edge-softmax for GAT).

    ``logits`` has shape ``(E,)`` or ``(E, H)``; entries sharing a segment id
    (destination node) are normalised together.  The per-segment max used for
    numerical stability is treated as a constant, which leaves the gradient
    of the softmax unchanged.  The forward values come from the same backend
    kernel as :func:`segment_softmax_array` so the gradient-free twin the
    incremental engine uses can never drift from this op.
    """
    return _SegmentSoftmax(segment_ids, num_segments)(logits)


# ---------------------------------------------------------------------------
# Regularisation
# ---------------------------------------------------------------------------
class _Dropout(Function):
    def __init__(self, mask: np.ndarray) -> None:
        self._mask = mask

    def forward(self, a):
        return a * self._mask

    def backward(self, grad):
        return grad * self._mask


def dropout(a: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero entries with probability ``p`` and rescale."""
    a = _t(a)
    if not training or p <= 0.0:
        return a
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(a.shape) >= p) / (1.0 - p)
    return _Dropout(mask)(a)


class _Max(Function):
    def __init__(self, axis, keepdims: bool) -> None:
        self._axis = axis
        self._keepdims = keepdims

    def forward(self, a):
        out = a.max(axis=self._axis, keepdims=self._keepdims)
        self.save_for_backward(a, out)
        return out

    def backward(self, grad):
        a, out = self.saved_for_backward
        g = grad
        axis = self._axis
        if axis is not None and not self._keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            for ax in sorted(ax % a.ndim for ax in axes):
                g = np.expand_dims(g, ax)
                out = np.expand_dims(out, ax)
        elif axis is None:
            g = np.asarray(g).reshape((1,) * a.ndim)
            out = np.asarray(out).reshape((1,) * a.ndim)
        mask = a == out
        # Split gradient across ties to keep the adjoint consistent.
        counts = mask.sum(
            axis=axis if axis is not None else None, keepdims=True
        )
        return np.broadcast_to(g, a.shape) * mask / counts


def max(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Max reduction; gradient flows to the (first) maximal entries."""
    return _Max(axis, keepdims)(a)


def min(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Min reduction (via max of the negation)."""
    return neg(max(neg(_t(a)), axis=axis, keepdims=keepdims))


def var(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Population variance (ddof=0), differentiable."""
    a = _t(a)
    mu = mean(a, axis=axis, keepdims=True)
    centered = a - mu
    return mean(centered * centered, axis=axis, keepdims=keepdims)


def std(a: Tensor, axis=None, keepdims: bool = False, eps: float = 1e-12) -> Tensor:
    """Standard deviation with a small epsilon for gradient stability."""
    return sqrt(var(a, axis=axis, keepdims=keepdims) + eps)


class _Log1p(Function):
    def forward(self, a):
        self.save_for_backward(a)
        return np.log1p(a)

    def backward(self, grad):
        (a,) = self.saved_for_backward
        return grad / (1.0 + a)


def log1p(a: Tensor) -> Tensor:
    """``log(1 + a)`` computed stably."""
    return _Log1p()(a)


class _Softplus(Function):
    def forward(self, a):
        out = np.logaddexp(0.0, a)
        with np.errstate(over="ignore"):
            self._sig = 1.0 / (1.0 + np.exp(-a))
        return out

    def backward(self, grad):
        return grad * self._sig


def softplus(a: Tensor) -> Tensor:
    """``log(1 + exp(a))`` with the overflow-safe formulation."""
    return _Softplus()(a)


class _Where(Function):
    def __init__(self, condition: np.ndarray) -> None:
        self._condition = np.asarray(condition, dtype=bool)

    def forward(self, a, b):
        self._shapes = (a.shape, b.shape)
        return np.where(self._condition, a, b)

    def backward(self, grad):
        sa, sb = self._shapes
        return (
            unbroadcast(grad * self._condition, sa),
            unbroadcast(grad * ~self._condition, sb),
        )


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select by a constant boolean mask."""
    return _Where(condition)(a, b)
