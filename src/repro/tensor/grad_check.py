"""Numerical gradient checking for the autograd engine.

Used by the test-suite (including hypothesis property tests) to verify every
operation's backward pass against central finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    wrt: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    base = [np.asarray(x, dtype=np.float64).copy() for x in inputs]
    target = base[wrt]
    grad = np.zeros_like(target)
    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = target[idx]
        target[idx] = orig + eps
        plus = float(fn(*[Tensor(x) for x in base]).data.sum())
        target[idx] = orig - eps
        minus = float(fn(*[Tensor(x) for x in base]).data.sum())
        target[idx] = orig
        grad[idx] = (plus - minus) / (2.0 * eps)
        it.iternext()
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> bool:
    """Compare analytic gradients of ``sum(fn(*inputs))`` against numerical ones.

    Raises ``AssertionError`` with a diagnostic message on mismatch; returns
    ``True`` otherwise, so it can sit inside a bare ``assert``.
    """
    tensors = [Tensor(np.asarray(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = fn(*tensors)
    out.backward(np.ones_like(out.data))
    for i, t in enumerate(tensors):
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, [t.data for t in tensors], wrt=i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
