"""Pluggable tensor-kernel backends for the autograd substrate.

Every engine in the repository — the GNN backbones, the incremental halo
evaluator, the entropy screening kernels — ultimately bottoms out in a
small set of hot array kernels: CSR sparse-dense products, segment
softmax/sum over edge lists, and the tiled JS/KL divergence cores.  This
package makes that kernel surface *pluggable*:

* :class:`TensorBackend` names the kernel contract;
* :class:`~repro.tensor.backends.numpy_backend.NumpyBackend` is the
  byte-identical reference (the exact float sequences the repository's
  equivalence contracts are written against);
* ``"accel"`` is an optional numba-JIT backend
  (:mod:`repro.tensor.backends.accel`) that fuses the hot loops — it is
  *allclose*-equivalent to the reference (accumulation orders may
  differ), never byte-identical, and degrades gracefully to numpy when
  numba is not installed.

Selection is scoped, not global-mutable-by-accident: the active backend
defaults to numpy and is switched per run via :func:`use_backend` (what
``RareConfig.tensor_backend`` / ``--tensor-backend`` plumb through) or
process-wide via :func:`set_active_backend`.  ``"auto"`` selects the
accelerated backend when numba imports and silently keeps the reference
otherwise; requesting ``"accel"`` explicitly without numba falls back
with a :class:`BackendUnavailableWarning`.

Ops fetch kernels through :func:`active_backend` at call time, so a
custom :class:`repro.tensor.Function` written today runs on any backend
registered tomorrow (see ``docs/custom-ops.md`` for the contract).
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Union

import numpy as np
import scipy.sparse as sp

__all__ = [
    "BackendMismatchError",
    "BackendUnavailableWarning",
    "TensorBackend",
    "active_backend",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_active_backend",
    "use_backend",
]


class BackendUnavailableWarning(UserWarning):
    """An explicitly requested backend is unavailable; the reference is used."""


class BackendMismatchError(TypeError):
    """Tensors pinned to different backends met in one operation.

    Mixing backends inside one op would silently compute half the graph
    with one kernel set and half with another — the equivalence story
    (numpy bitwise, accel allclose) becomes unfalsifiable.  The fix is to
    keep one backend per computation: either stop pinning one of the
    operands (``backend=None`` follows the active backend) or convert
    explicitly by constructing a new ``Tensor`` under the target backend.
    """


class TensorBackend:
    """The kernel contract every backend implements.

    A backend is a *stateless* bundle of array kernels over plain numpy
    data — tensors always store ``numpy.ndarray`` payloads; backends only
    decide *how* the hot kernels compute.  The base class implements every
    kernel with the reference numpy/scipy sequence, so an accelerated
    backend overrides only the kernels it actually fuses and inherits the
    reference for the rest.

    Kernel semantics (shapes, zero-segment conventions, accumulation
    identities) are pinned by the reference implementations in
    :class:`~repro.tensor.backends.numpy_backend.NumpyBackend`; an
    override must be ``np.allclose``-equivalent on every input the
    equivalence suite generates (``tests/tensor/test_backends.py``).
    Only the numpy backend is *byte*-identical to the historical
    single-implementation ops — contracts that say "bitwise" hold under
    it alone.
    """

    #: Registry name; set by subclasses.
    name: str = "abstract"

    #: Whether the backend's kernels match the reference bitwise (True
    #: only for the numpy reference itself).
    bit_exact: bool = False

    # -- sparse-dense products -----------------------------------------
    def spmm(self, matrix: sp.spmatrix, dense: np.ndarray) -> np.ndarray:
        """``matrix @ dense`` for a scipy sparse matrix and a dense array."""
        return np.asarray(matrix @ dense)

    # -- segment reductions over edge lists ----------------------------
    def segment_softmax(
        self, data: np.ndarray, segment_ids: np.ndarray, num_segments: int
    ) -> np.ndarray:
        """Per-segment softmax with per-segment max subtraction.

        ``data`` has shape ``(E,)`` or ``(E, H)``; entries sharing a
        segment id are normalised together.  Per segment the accumulation
        order equals the order in which entries appear in ``data``.
        """
        data = np.asarray(data)
        segment_ids = np.asarray(segment_ids, dtype=np.int64)
        seg_max = np.full((num_segments,) + data.shape[1:], -np.inf)
        np.maximum.at(seg_max, segment_ids, data)
        shifted = data - seg_max[segment_ids]
        e = np.exp(shifted)
        denom = np.zeros((num_segments,) + data.shape[1:])
        np.add.at(denom, segment_ids, e)
        return e / denom[segment_ids]

    def segment_sum(
        self, data: np.ndarray, segment_ids: np.ndarray, num_segments: int
    ) -> np.ndarray:
        """``out[i] = sum_{j: segment_ids[j] = i} data[j]`` in entry order."""
        data = np.asarray(data)
        segment_ids = np.asarray(segment_ids, dtype=np.int64)
        out = np.zeros((num_segments,) + data.shape[1:])
        np.add.at(out, segment_ids, data)
        return out

    # -- dense linear algebra ------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Dense GEMM (already BLAS under numpy; rarely overridden)."""
        return a @ b

    # -- tiled divergence cores (the entropy engines' GEMM-shaped loops)
    def js_divergence_block(self, P: np.ndarray, Q: np.ndarray) -> np.ndarray:
        """Pairwise Jensen-Shannon divergence block ``(B, N)``."""
        P3 = P[:, None, :]
        Q3 = Q[None, :, :]
        m = 0.5 * (P3 + Q3)
        with np.errstate(divide="ignore", invalid="ignore"):
            kl_pm = np.where(P3 > 0, P3 * np.log2(P3 / m), 0.0).sum(axis=-1)
            kl_qm = np.where(Q3 > 0, Q3 * np.log2(Q3 / m), 0.0).sum(axis=-1)
        return 0.5 * (kl_pm + kl_qm)

    def kl_divergence_block(
        self, P: np.ndarray, Q: np.ndarray, eps: float = 1e-12
    ) -> np.ndarray:
        """Pairwise raw KL ``KL(P_i || Q_j)`` block ``(B, N)``."""
        P3 = P[:, None, :]
        Q3 = np.maximum(Q[None, :, :], eps)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(P3 > 0, P3 * np.log2(P3 / Q3), 0.0).sum(axis=-1)

    def symmetric_kl_divergence_block(
        self, P: np.ndarray, Q: np.ndarray, eps: float = 1e-12
    ) -> np.ndarray:
        """Symmetrised KL block via the folded ``(p - q)(Lp - Lq)`` form."""
        diff = P[:, None, :] - Q[None, :, :]
        logs = np.log2(np.maximum(P, eps))[:, None, :] - np.log2(
            np.maximum(Q, eps)
        )[None, :, :]
        logs *= diff
        return 0.5 * logs.sum(axis=-1)

    def __repr__(self) -> str:
        return f"<TensorBackend {self.name!r}>"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
#: name -> zero-arg factory.  Factories run once; instances are memoised.
_FACTORIES: Dict[str, Callable[[], TensorBackend]] = {}
_INSTANCES: Dict[str, TensorBackend] = {}
#: name -> import error message for backends that failed to load.
_UNAVAILABLE: Dict[str, str] = {}


def register_backend(name: str, factory: Callable[[], TensorBackend]) -> None:
    """Register a backend factory under ``name``.

    The factory is called lazily on first :func:`get_backend` and may
    raise ``ImportError`` — the backend is then recorded as unavailable
    (visible in :func:`backend_names` with ``available=False``) instead
    of poisoning imports, which is what keeps the accelerated backend
    optional.
    """
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)
    _UNAVAILABLE.pop(name, None)


def get_backend(name: str) -> TensorBackend:
    """The backend instance registered under ``name``.

    Raises ``KeyError`` for unknown names and ``ImportError`` when the
    backend's dependencies are missing (callers wanting a soft fallback
    use :func:`resolve_backend`).
    """
    if name in _INSTANCES:
        return _INSTANCES[name]
    if name in _UNAVAILABLE:
        raise ImportError(_UNAVAILABLE[name])
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown tensor backend {name!r}; registered: {sorted(_FACTORIES)}"
        )
    try:
        instance = _FACTORIES[name]()
    except ImportError as exc:
        _UNAVAILABLE[name] = (
            f"tensor backend {name!r} is unavailable: {exc}"
        )
        raise ImportError(_UNAVAILABLE[name]) from exc
    _INSTANCES[name] = instance
    return instance


def backend_names() -> List[str]:
    """Names of every registered backend (available or not)."""
    return sorted(_FACTORIES)


def available_backends() -> List[str]:
    """Names of the backends whose dependencies import on this machine."""
    out = []
    for name in backend_names():
        try:
            get_backend(name)
        except ImportError:
            continue
        out.append(name)
    return out


def resolve_backend(
    spec: Union[str, TensorBackend, None]
) -> TensorBackend:
    """Resolve a config-level backend spec to a backend instance.

    * ``None`` or ``"numpy"`` — the byte-identical reference;
    * ``"accel"`` — the numba backend, falling back to numpy with a
      :class:`BackendUnavailableWarning` when numba is missing (an
      explicit request deserves a visible downgrade);
    * ``"auto"`` — the accelerated backend when available, silently the
      reference otherwise;
    * a :class:`TensorBackend` instance — itself.

    Examples
    --------
    >>> resolve_backend("auto").name in ("numpy", "accel")
    True
    """
    if spec is None:
        return get_backend("numpy")
    if isinstance(spec, TensorBackend):
        return spec
    if spec == "auto":
        try:
            return get_backend("accel")
        except ImportError:
            return get_backend("numpy")
    if spec == "accel":
        try:
            return get_backend("accel")
        except ImportError as exc:
            warnings.warn(
                f"{exc}; falling back to the numpy reference backend",
                BackendUnavailableWarning,
                stacklevel=2,
            )
            return get_backend("numpy")
    return get_backend(spec)


# ---------------------------------------------------------------------------
# Active-backend state
# ---------------------------------------------------------------------------
_ACTIVE: Optional[TensorBackend] = None


def active_backend() -> TensorBackend:
    """The backend ops fetch kernels from right now (default: numpy)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = get_backend("numpy")
    return _ACTIVE


def set_active_backend(spec: Union[str, TensorBackend, None]) -> TensorBackend:
    """Switch the process-wide active backend; returns the instance.

    Prefer the scoped :func:`use_backend` in library code — the driver
    uses it so one run's backend choice never leaks into the next.
    """
    global _ACTIVE
    _ACTIVE = resolve_backend(spec)
    return _ACTIVE


@contextmanager
def use_backend(
    spec: Union[str, TensorBackend, None]
) -> Iterator[TensorBackend]:
    """Scoped backend selection: restores the previous backend on exit.

    Examples
    --------
    >>> with use_backend("auto") as backend:
    ...     logits = model.predict_logits(graph)   # kernels via `backend`
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = resolve_backend(spec)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


# ---------------------------------------------------------------------------
# Built-in registrations (lazy; accel may be unavailable)
# ---------------------------------------------------------------------------
def _numpy_factory() -> TensorBackend:
    from .numpy_backend import NumpyBackend

    return NumpyBackend()


def _accel_factory() -> TensorBackend:
    from .accel import AccelBackend

    return AccelBackend()


register_backend("numpy", _numpy_factory)
register_backend("accel", _accel_factory)
