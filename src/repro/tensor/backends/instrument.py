"""A telemetry-instrumented proxy around any :class:`TensorBackend`.

:class:`InstrumentedBackend` wraps an inner backend and times every hot
kernel into the bound telemetry session: each call bumps a
``tensor.<backend>.<kernel>.calls`` counter and observes its wall time
into a ``tensor.<backend>.<kernel>_s`` histogram.  The proxy reports the
*inner* backend's ``name`` and ``bit_exact`` flag, so equivalence
contracts and backend-sensitive call sites behave exactly as if the
inner backend were active.

The proxy is only ever installed when telemetry is enabled (the
framework wraps the active backend per run), so the instrumented path
records unconditionally — the disabled-telemetry overhead policy is
enforced by never constructing one.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np
import scipy.sparse as sp

from ...telemetry import Telemetry, get_telemetry
from . import TensorBackend

__all__ = ["InstrumentedBackend"]


class InstrumentedBackend(TensorBackend):
    """Per-kernel call counts and wall-time histograms for a backend.

    Parameters
    ----------
    inner:
        The backend whose kernels actually compute.
    telemetry:
        The session to record into; defaults to the ambient session at
        construction time (:func:`repro.telemetry.get_telemetry`).
    """

    def __init__(
        self, inner: TensorBackend, telemetry: Telemetry | None = None
    ) -> None:
        self.inner = inner
        self._tel = telemetry if telemetry is not None else get_telemetry()
        self.name = inner.name
        self.bit_exact = inner.bit_exact

    def _record(self, kernel: str, start: float) -> None:
        """Account one kernel call that began at ``start``."""
        elapsed = perf_counter() - start
        prefix = f"tensor.{self.name}.{kernel}"
        self._tel.count(f"{prefix}.calls")
        self._tel.observe(f"{prefix}_s", elapsed)

    # -- instrumented kernel surface -----------------------------------
    def spmm(self, matrix: sp.spmatrix, dense: np.ndarray) -> np.ndarray:
        """Timed delegate to the inner backend's ``spmm``."""
        start = perf_counter()
        out = self.inner.spmm(matrix, dense)
        self._record("spmm", start)
        return out

    def segment_softmax(
        self, data: np.ndarray, segment_ids: np.ndarray, num_segments: int
    ) -> np.ndarray:
        """Timed delegate to the inner backend's ``segment_softmax``."""
        start = perf_counter()
        out = self.inner.segment_softmax(data, segment_ids, num_segments)
        self._record("segment_softmax", start)
        return out

    def segment_sum(
        self, data: np.ndarray, segment_ids: np.ndarray, num_segments: int
    ) -> np.ndarray:
        """Timed delegate to the inner backend's ``segment_sum``."""
        start = perf_counter()
        out = self.inner.segment_sum(data, segment_ids, num_segments)
        self._record("segment_sum", start)
        return out

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Timed delegate to the inner backend's ``matmul``."""
        start = perf_counter()
        out = self.inner.matmul(a, b)
        self._record("matmul", start)
        return out

    def js_divergence_block(self, P: np.ndarray, Q: np.ndarray) -> np.ndarray:
        """Timed delegate to the inner backend's ``js_divergence_block``."""
        start = perf_counter()
        out = self.inner.js_divergence_block(P, Q)
        self._record("js_divergence_block", start)
        return out

    def kl_divergence_block(
        self, P: np.ndarray, Q: np.ndarray, eps: float = 1e-12
    ) -> np.ndarray:
        """Timed delegate to the inner backend's ``kl_divergence_block``."""
        start = perf_counter()
        out = self.inner.kl_divergence_block(P, Q, eps)
        self._record("kl_divergence_block", start)
        return out

    def symmetric_kl_divergence_block(
        self, P: np.ndarray, Q: np.ndarray, eps: float = 1e-12
    ) -> np.ndarray:
        """Timed delegate to ``symmetric_kl_divergence_block``."""
        start = perf_counter()
        out = self.inner.symmetric_kl_divergence_block(P, Q, eps)
        self._record("symmetric_kl_divergence_block", start)
        return out

    def __repr__(self) -> str:
        return f"<InstrumentedBackend over {self.inner!r}>"
