"""The byte-identical numpy reference backend.

Every kernel here IS the historical single implementation from
``repro.tensor.ops`` / ``repro.entropy.structural_entropy`` — the exact
float sequences the repository's bitwise equivalence contracts
(``docs/equivalence-policy.md``) are written against.  The implementations
live on the :class:`~repro.tensor.backends.TensorBackend` base class so
other backends can inherit any kernel they do not fuse; this subclass
only names and flags the reference.
"""

from __future__ import annotations

from . import TensorBackend


class NumpyBackend(TensorBackend):
    """Reference backend: pure numpy/scipy, bitwise-stable kernels.

    ``bit_exact`` is True — this is the only backend whose outputs are
    byte-identical to the pre-refactor single-implementation ops, and
    therefore the only backend under which "bitwise" contracts (the
    incremental engine's off-halo guarantee, the screening engine's
    certified pruning) are exact rather than allclose.
    """

    name = "numpy"
    bit_exact = True
