"""Optional numba-JIT accelerated backend.

Importing this module requires numba; the registry in
:mod:`repro.tensor.backends` catches the ``ImportError`` and records the
backend as unavailable, so nothing else in the repository gains a hard
numba dependency.

The kernels fuse the loops the numpy reference pays for in temporaries:

* ``spmm`` — row-parallel CSR product, no ``matrix @ dense`` dispatch
  overhead and no intermediate copies;
* ``segment_softmax`` / ``segment_sum`` — single sequential passes over
  the edge list, replacing ``np.maximum.at`` / ``np.add.at`` (whose
  element-at-a-time buffered fancy indexing is the dominant cost in the
  GAT edge softmax at scale);
* the JS/KL/symmetric-KL divergence blocks — ``(B, N)``-parallel fused
  reductions that never materialise the reference's ``(B, N, M)``
  broadcast intermediates.

Equivalence is *allclose*, not bitwise: parallel row partitioning and
fused accumulation reorder float additions.  The equivalence suite
(``tests/tensor/test_backends.py``) and the in-bench checks in
``benchmarks/bench_backend_kernels.py`` hold the backend to
``np.allclose`` against the reference on every kernel.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from numba import njit, prange

from . import TensorBackend


@njit(parallel=True, cache=True)
def _spmm_csr(indptr, indices, data, dense, out):  # pragma: no cover - jit
    n_rows = out.shape[0]
    n_cols = dense.shape[1]
    for i in prange(n_rows):
        for jj in range(indptr[i], indptr[i + 1]):
            j = indices[jj]
            v = data[jj]
            for k in range(n_cols):
                out[i, k] += v * dense[j, k]


@njit(cache=True)
def _segment_softmax_2d(data, seg, num_segments, out):  # pragma: no cover
    n_entries, width = data.shape
    seg_max = np.full((num_segments, width), -np.inf)
    for e in range(n_entries):
        s = seg[e]
        for h in range(width):
            if data[e, h] > seg_max[s, h]:
                seg_max[s, h] = data[e, h]
    denom = np.zeros((num_segments, width))
    for e in range(n_entries):
        s = seg[e]
        for h in range(width):
            val = np.exp(data[e, h] - seg_max[s, h])
            out[e, h] = val
            denom[s, h] += val
    for e in range(n_entries):
        s = seg[e]
        for h in range(width):
            out[e, h] /= denom[s, h]


@njit(cache=True)
def _segment_sum_2d(data, seg, num_segments, out):  # pragma: no cover - jit
    n_entries, width = data.shape
    for e in range(n_entries):
        s = seg[e]
        for h in range(width):
            out[s, h] += data[e, h]


@njit(parallel=True, cache=True)
def _js_block(P, Q, out):  # pragma: no cover - jit
    n_left, width = P.shape
    n_right = Q.shape[0]
    for i in prange(n_left):
        for j in range(n_right):
            acc = 0.0
            for k in range(width):
                p = P[i, k]
                q = Q[j, k]
                m = 0.5 * (p + q)
                if p > 0.0:
                    acc += p * np.log2(p / m)
                if q > 0.0:
                    acc += q * np.log2(q / m)
            out[i, j] = 0.5 * acc


@njit(parallel=True, cache=True)
def _kl_block(P, Q, eps, out):  # pragma: no cover - jit
    n_left, width = P.shape
    n_right = Q.shape[0]
    for i in prange(n_left):
        for j in range(n_right):
            acc = 0.0
            for k in range(width):
                p = P[i, k]
                if p > 0.0:
                    q = Q[j, k]
                    if q < eps:
                        q = eps
                    acc += p * np.log2(p / q)
            out[i, j] = acc


@njit(parallel=True, cache=True)
def _sym_kl_block(P, Q, eps, out):  # pragma: no cover - jit
    n_left, width = P.shape
    n_right = Q.shape[0]
    for i in prange(n_left):
        for j in range(n_right):
            acc = 0.0
            for k in range(width):
                p = P[i, k]
                q = Q[j, k]
                pc = p if p > eps else eps
                qc = q if q > eps else eps
                acc += (p - q) * (np.log2(pc) - np.log2(qc))
            out[i, j] = 0.5 * acc


def _as_c_float64(x: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(x, dtype=np.float64)


class AccelBackend(TensorBackend):
    """numba-JIT kernels for the hot loops; allclose to the reference.

    Inherits the reference implementation for anything not fused here
    (``matmul`` stays BLAS — numba cannot beat it).  Kernels compile
    lazily on first call; the one-off JIT cost is why benchmarks warm
    each kernel before timing.
    """

    name = "accel"
    bit_exact = False

    def spmm(self, matrix: sp.spmatrix, dense: np.ndarray) -> np.ndarray:
        """Row-parallel CSR ``matrix @ dense``."""
        csr = matrix.tocsr()
        dense = np.asarray(dense)
        squeeze = dense.ndim == 1
        dense2 = _as_c_float64(dense.reshape(dense.shape[0], -1))
        out = np.zeros((csr.shape[0], dense2.shape[1]))
        _spmm_csr(
            csr.indptr.astype(np.int64),
            csr.indices.astype(np.int64),
            _as_c_float64(csr.data),
            dense2,
            out,
        )
        return out[:, 0] if squeeze else out

    def segment_softmax(
        self, data: np.ndarray, segment_ids: np.ndarray, num_segments: int
    ) -> np.ndarray:
        """Fused three-pass segment softmax (entry-order accumulation)."""
        data = np.asarray(data)
        squeeze = data.ndim == 1
        data2 = _as_c_float64(data.reshape(data.shape[0], -1))
        seg = np.ascontiguousarray(segment_ids, dtype=np.int64)
        out = np.empty_like(data2)
        _segment_softmax_2d(data2, seg, num_segments, out)
        return out[:, 0] if squeeze else out.reshape(data.shape)

    def segment_sum(
        self, data: np.ndarray, segment_ids: np.ndarray, num_segments: int
    ) -> np.ndarray:
        """Single-pass segment sum (entry-order accumulation)."""
        data = np.asarray(data)
        squeeze = data.ndim == 1
        data2 = _as_c_float64(data.reshape(data.shape[0], -1))
        seg = np.ascontiguousarray(segment_ids, dtype=np.int64)
        out = np.zeros((num_segments, data2.shape[1]))
        _segment_sum_2d(data2, seg, num_segments, out)
        if squeeze:
            return out[:, 0]
        return out.reshape((num_segments,) + data.shape[1:])

    def js_divergence_block(self, P: np.ndarray, Q: np.ndarray) -> np.ndarray:
        """Fused pairwise JS block without the ``(B, N, M)`` intermediate."""
        P = _as_c_float64(P)
        Q = _as_c_float64(Q)
        out = np.empty((P.shape[0], Q.shape[0]))
        _js_block(P, Q, out)
        return out

    def kl_divergence_block(
        self, P: np.ndarray, Q: np.ndarray, eps: float = 1e-12
    ) -> np.ndarray:
        """Fused pairwise raw-KL block."""
        P = _as_c_float64(P)
        Q = _as_c_float64(Q)
        out = np.empty((P.shape[0], Q.shape[0]))
        _kl_block(P, Q, eps, out)
        return out

    def symmetric_kl_divergence_block(
        self, P: np.ndarray, Q: np.ndarray, eps: float = 1e-12
    ) -> np.ndarray:
        """Fused pairwise symmetrised-KL block (folded form)."""
        P = _as_c_float64(P)
        Q = _as_c_float64(Q)
        out = np.empty((P.shape[0], Q.shape[0]))
        _sym_kl_block(P, Q, eps, out)
        return out
