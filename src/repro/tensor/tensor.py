"""Reverse-mode automatic differentiation over numpy arrays.

This module is the substrate that replaces PyTorch in the GraphRARE
reproduction.  A :class:`Tensor` wraps a ``numpy.ndarray`` and records the
operations applied to it; calling :meth:`Tensor.backward` propagates
gradients to every tensor created with ``requires_grad=True``.

The engine is intentionally small: only the operations needed by the GNN
backbones, the PPO implementation, and the entropy module are provided (see
``repro.tensor.ops``).  Gradient correctness is property-tested against
numerical differentiation in ``tests/tensor``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _as_array(data: ArrayLike) -> np.ndarray:
    """Coerce ``data`` to a float64 numpy array (shared dtype of the engine)."""
    if isinstance(data, np.ndarray):
        if data.dtype != np.float64:
            return data.astype(np.float64)
        return data
    return np.asarray(data, dtype=np.float64)


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Used by binary-op backward functions: if an operand of shape ``shape``
    was broadcast up to ``grad.shape`` during the forward pass, the gradient
    contributions along the broadcast axes must be summed.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A node in the autodiff graph.

    Parameters
    ----------
    data:
        Array-like payload; stored as ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    backend:
        Optional backend pin (a name like ``"accel"`` or a
        ``TensorBackend`` instance).  ``None`` — the default — means
        "follow the process-active backend at each op call"
        (:func:`repro.tensor.backends.active_backend`).  Ops reject
        inputs pinned to *different* backends with a
        ``BackendMismatchError``; a pinned tensor combined with unpinned
        ones pins the result.
    """

    __slots__ = (
        "data", "grad", "requires_grad", "backend", "_backward", "_parents"
    )

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        backend=None,
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        if backend is not None and not hasattr(backend, "spmm"):
            from .backends import resolve_backend

            backend = resolve_backend(backend)
        self.backend = backend
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = ()

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """The single element of a scalar tensor, as a python float."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False, backend=self.backend)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
        backend=None,
    ) -> "Tensor":
        """Create a result tensor wired into the graph.

        ``backward`` receives the upstream gradient and is responsible for
        calling :meth:`_accumulate` on each parent that requires grad.
        ``backend`` propagates an input pin to the result (``None`` keeps
        the result following the active backend).
        """
        parents = tuple(parents)
        out = Tensor(
            data,
            requires_grad=any(p.requires_grad for p in parents),
            backend=backend,
        )
        if out.requires_grad:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (scalar outputs may omit it, matching the
        usual ``loss.backward()`` idiom).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor "
                    f"shape {self.data.shape}"
                )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic (delegates to repro.tensor.ops to avoid duplication)
    # ------------------------------------------------------------------
    def _coerce(self, other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other):
        from . import ops

        return ops.add(self, self._coerce(other))

    __radd__ = __add__

    def __sub__(self, other):
        from . import ops

        return ops.sub(self, self._coerce(other))

    def __rsub__(self, other):
        from . import ops

        return ops.sub(self._coerce(other), self)

    def __mul__(self, other):
        from . import ops

        return ops.mul(self, self._coerce(other))

    __rmul__ = __mul__

    def __truediv__(self, other):
        from . import ops

        return ops.div(self, self._coerce(other))

    def __rtruediv__(self, other):
        from . import ops

        return ops.div(self._coerce(other), self)

    def __neg__(self):
        from . import ops

        return ops.neg(self)

    def __pow__(self, exponent: float):
        from . import ops

        return ops.pow(self, exponent)

    def __matmul__(self, other):
        from . import ops

        return ops.matmul(self, self._coerce(other))

    # Convenience methods mirroring the functional API ------------------
    def sum(self, axis=None, keepdims: bool = False):
        """Alias for :func:`repro.tensor.ops.sum`."""
        from . import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        """Alias for :func:`repro.tensor.ops.mean`."""
        from . import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        """Alias for :func:`repro.tensor.ops.reshape` (shape may be splatted)."""
        from . import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self):
        """Alias for :func:`repro.tensor.ops.transpose` (2-D only)."""
        from . import ops

        return ops.transpose(self)

    @property
    def T(self):
        """Transposed view, like ``ndarray.T``."""
        return self.transpose()
