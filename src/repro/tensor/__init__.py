"""Autograd substrate for the GraphRARE reproduction (replaces PyTorch)."""

from . import ops
from .grad_check import gradcheck, numerical_gradient
from .tensor import Tensor, unbroadcast

__all__ = ["Tensor", "ops", "gradcheck", "numerical_gradient", "unbroadcast"]
