"""Autograd substrate for the GraphRARE reproduction (replaces PyTorch).

Three layers (see ``docs/architecture.md``):

* :mod:`repro.tensor.backends` — pluggable kernel backends (numpy
  reference, optional numba acceleration) selected per run;
* :class:`Function` — the public custom-op API every op registers
  through (see ``docs/custom-ops.md``);
* :mod:`repro.tensor.ops` — the op surface, thin wrappers over private
  ``Function`` subclasses.
"""

from . import backends, ops
from .backends import active_backend, resolve_backend, use_backend
from .function import Function
from .grad_check import gradcheck, numerical_gradient
from .tensor import Tensor, unbroadcast

__all__ = [
    "Function",
    "Tensor",
    "active_backend",
    "backends",
    "gradcheck",
    "numerical_gradient",
    "ops",
    "resolve_backend",
    "unbroadcast",
    "use_backend",
]
