"""Node structural entropy (Sec. IV-A.2, Eq. 5-8).

A node's local structure is summarised by the descending sequence of degrees
of the node and its one-hop neighbours (Eq. 5), normalised into a
distribution (Eq. 6).  The paper replaces [50]'s unbounded KL divergence
with the Jensen-Shannon divergence (Eq. 7-8), giving a structural entropy

    ``H_s(v, u) = 1 - JS(p(v), p(u))  in  [0, 1]``

that is symmetric and equals 1 exactly when the two degree profiles match.
An optional raw-KL variant is kept for the DESIGN.md ablation comparing the
paper's choice against [50].

All kernels here are batched numpy over the graph's CSR layout — profiles
are built by one scatter + one row sort, and divergences come in a
``(B, N)`` block form so callers never loop over nodes in Python.  The
original per-node loop survives as :func:`degree_profiles_reference` for the
equivalence property tests and the scaling benchmark.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph import Graph
from ..tensor.backends import active_backend


def degree_profiles(graph: Graph, max_len: Optional[int] = None) -> np.ndarray:
    """Normalised descending degree profiles ``p(v)``, shape ``(N, M)``.

    ``M`` is the maximum node degree plus one (the profile holds the node's
    own degree and its neighbours'; shorter profiles are zero-padded as in
    Eq. 5).  ``max_len`` truncates profiles (and renormalises) to bound the
    cost on heavy-tailed graphs; ranking quality degrades gracefully because
    profiles are sorted descending, so truncation drops the smallest degrees.

    Vectorised: one flat scatter of ``[deg_v, deg_{N1(v)}]`` into a dense
    ragged table, one ``sort(axis=1)``, no Python loop over nodes.  The
    dense table is ``max_degree + 1`` wide (sorting must see every entry
    before truncation), so rows are processed in chunks that cap its
    footprint — heavy-tailed graphs never materialise an ``(N, d_max)``
    intermediate.
    """
    deg = graph.degrees().astype(np.float64)
    n = graph.num_nodes
    full_len = int(deg.max()) + 1 if n else 1
    m = full_len if max_len is None else min(full_len, max_len)

    indptr, indices = graph.csr_neighbors()
    counts = np.diff(indptr) + 1  # own degree plus each neighbour's
    offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
    total = int(offsets[-1])

    values = np.empty(total)
    self_pos = offsets[:-1]
    values[self_pos] = deg
    neigh_mask = np.ones(total, dtype=bool)
    neigh_mask[self_pos] = False
    values[neigh_mask] = deg[indices]

    profiles = np.zeros((n, m))
    chunk = min(max(int(2_000_000 // full_len), 1), n)
    buf = np.zeros((chunk, full_len))
    for start in range(0, n, chunk):
        stop = min(n, start + chunk)
        b = stop - start
        lo, hi = int(offsets[start]), int(offsets[stop])
        rows = np.repeat(np.arange(b), counts[start:stop])
        cols = np.arange(lo, hi) - offsets[start:stop][rows]
        dense = buf[:b]
        dense.fill(0.0)
        dense[rows, cols] = values[lo:hi]
        dense.sort(axis=1)  # ascending: padding zeros first, degrees last
        profiles[start:stop] = dense[:, ::-1][:, :m]  # descending, padded

    totals = profiles.sum(axis=1, keepdims=True)
    totals[totals == 0] = 1.0
    return profiles / totals


def degree_profiles_reference(
    graph: Graph, max_len: Optional[int] = None
) -> np.ndarray:
    """The seed's per-node loop — kept as the equivalence/bench reference."""
    deg = graph.degrees().astype(np.float64)
    n = graph.num_nodes
    full_len = int(deg.max()) + 1 if n else 1
    m = full_len if max_len is None else min(full_len, max_len)
    profiles = np.zeros((n, m))
    for v in range(n):
        neigh = graph.neighbors(v)
        seq = np.sort(np.concatenate([[deg[v]], deg[neigh]]))[::-1][:m]
        profiles[v, : len(seq)] = seq
    totals = profiles.sum(axis=1, keepdims=True)
    totals[totals == 0] = 1.0
    return profiles / totals


def js_divergence(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Jensen-Shannon divergence between rows of ``p`` and ``q`` (Eq. 7).

    Accepts ``(M,)`` vs ``(M,)``, ``(M,)`` vs ``(N, M)`` or matching
    ``(N, M)`` shapes; zero entries contribute zero by convention.
    """
    scalar = np.ndim(p) == 1 and np.ndim(q) == 1
    p = np.atleast_2d(p)
    q = np.atleast_2d(q)
    m = 0.5 * (p + q)
    with np.errstate(divide="ignore", invalid="ignore"):
        kl_pm = np.where(p > 0, p * np.log2(p / m), 0.0).sum(axis=-1)
        kl_qm = np.where(q > 0, q * np.log2(q / m), 0.0).sum(axis=-1)
    out = 0.5 * (kl_pm + kl_qm)
    return out.reshape(()) if scalar else out


def js_divergence_block(P: np.ndarray, Q: np.ndarray) -> np.ndarray:
    """Pairwise JS between every row of ``P`` (B, M) and ``Q`` (N, M).

    Returns a ``(B, N)`` matrix; under the numpy reference backend it is
    bitwise-identical to stacking ``js_divergence(P[i], Q)`` row by row,
    without the Python loop.  Delegates to the active tensor backend
    (:mod:`repro.tensor.backends`): the reference materialises an
    ``O(B * N * M)`` broadcast intermediate — chunk ``P`` at the call
    site — while the accelerated backend fuses the reduction.
    """
    return active_backend().js_divergence_block(P, Q)


def kl_divergence(p: np.ndarray, q: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Raw KL divergence (the [50] variant kept for ablation)."""
    scalar = np.ndim(p) == 1 and np.ndim(q) == 1
    p = np.atleast_2d(p)
    q = np.atleast_2d(q)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(p > 0, p * np.log2(p / np.maximum(q, eps)), 0.0).sum(axis=-1)
    return out.reshape(()) if scalar else out


def kl_divergence_block(
    P: np.ndarray, Q: np.ndarray, eps: float = 1e-12
) -> np.ndarray:
    """Pairwise raw KL ``KL(P_i || Q_j)`` as a ``(B, N)`` block.

    Delegates to the active tensor backend's fused/reference kernel.
    """
    return active_backend().kl_divergence_block(P, Q, eps)


def symmetric_kl_divergence_block(
    P: np.ndarray, Q: np.ndarray, eps: float = 1e-12
) -> np.ndarray:
    """Symmetrised KL ``0.5 (KL(P_i || Q_j) + KL(Q_j || P_i))`` as ``(B, N)``.

    Algebraically identical to averaging the two clamped one-sided KLs, but
    folded into a single pass: with ``Lp = log2 max(p, eps)`` and
    ``Lq = log2 max(q, eps)``,

        ``p (Lp - Lq) + q (Lq - Lp) = (p - q)(Lp - Lq)``

    holds for every zero pattern under the ``0 log 0 = 0`` convention, so
    one broadcast difference and one clamped-log difference replace the two
    separate ``(B, N, M)`` ratio/where intermediates.  Delegates to the
    active tensor backend (the accelerated kernel fuses even those).
    """
    return active_backend().symmetric_kl_divergence_block(P, Q, eps)


def symmetric_kl_divergence_pairs(
    p: np.ndarray, q: np.ndarray, eps: float = 1e-12
) -> np.ndarray:
    """Symmetrised KL for aligned rows of ``p`` and ``q`` (same folding)."""
    p = np.atleast_2d(p)
    q = np.atleast_2d(q)
    diff = p - q
    logs = np.log2(np.maximum(p, eps)) - np.log2(np.maximum(q, eps))
    logs *= diff
    return 0.5 * logs.sum(axis=-1)


def structural_entropy_pairs(profiles: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    """``H_s(v, u) = 1 - JS`` for an array of pairs of shape ``(m, 2)``."""
    pairs = np.asarray(pairs)
    return 1.0 - js_divergence(profiles[pairs[:, 0]], profiles[pairs[:, 1]])


def structural_entropy_row(profiles: np.ndarray, v: int) -> np.ndarray:
    """``H_s(v, u)`` for one node against all others (vectorised)."""
    return 1.0 - js_divergence(profiles[v], profiles)


def structural_entropy_matrix(
    profiles: np.ndarray, block: int = 256
) -> np.ndarray:
    """Dense ``N x N`` structural-entropy matrix, built in row blocks."""
    n = profiles.shape[0]
    out = np.empty((n, n))
    for start in range(0, n, block):
        stop = min(n, start + block)
        out[start:stop] = 1.0 - js_divergence_block(
            profiles[start:stop], profiles
        )
    return out
