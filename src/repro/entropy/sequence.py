"""Node entropy sequence construction (Sec. IV-A.4).

For every node the framework needs two rankings derived from the relative
entropy:

* ``remote``  — non-adjacent candidate nodes sorted by *descending* entropy;
  the DRL agent connects the top-``k_v`` of these (informative remote nodes).
* ``neighbors`` — current one-hop neighbours sorted by *ascending* entropy;
  the agent removes the top-``d_v`` of these (noisy local edges).

Only the best ``max_candidates`` remote nodes are retained per node, which
bounds memory at ``O(N * max_candidates)`` while leaving plenty of headroom
for the DRL's ``k`` range.

Ranking ties are broken deterministically by ascending node id in both
directions, so the sequences are a pure function of the entropy values.

The default builder is fully vectorised and comes in two engines, both
executed as row-range shards on an optional worker pool (see
:mod:`repro.entropy.screening`):

* the *dense* engine scores every pair with a length-sorted tiled
  structural kernel — nodes are processed in descending profile-length
  order, every tile truncates at the longest nonzero profile it can see
  (padding columns collapse to precomputed suffix sums), and contiguous
  scratch buffers keep numpy's SIMD loops hot.  The kernel is
  parameterised over the divergence, so the paper's JS mode and the
  symmetrised-KL ablation share one code path (KL's cross term even
  reduces to two GEMMs over clamped log-profiles);
* the *screened* engine (default from ``SCREEN_AUTO_MIN`` nodes) prunes
  the ``O(N^2 L)`` structural work with the certified bound
  ``H <= H_f + lam * hs_max`` evaluated in feature-logit space, then
  rescores only the surviving superset exactly — identical rankings away
  from exact value ties at a fraction of the cost.

Neighbour rankings come from one exact pairwise-entropy pass over the CSR
edge list plus a single flat ``lexsort``.  Candidate selection replaces
full row sorts with a ``partition`` threshold plus an exact tie-respecting
``lexsort`` of the few surviving candidates.

The seed's per-node loop survives as
:func:`build_entropy_sequences_reference` for the equivalence property
tests and the scaling benchmark.  Feeding both builders the same
precomputed row matrix ``H`` makes their outputs byte-identical; when each
computes its own rows, values may differ in the last ulp (batched GEMM and
the decomposed JS are not bitwise equal to the per-row formulas) but every
ranking is identical away from exact value ties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..graph import Graph
from ..telemetry import get_telemetry
from .relative_entropy import RelativeEntropy
from .screening import (
    SCREEN_DEFAULT_SHARDS,
    _KL_EPS,
    _TINY,
    SCREEN_AUTO_MIN,
    EntropyShardPlan,
    PairEntropyScorer,
    _plogp,
    _suffix_sums,
    build_screen_state,
    run_sharded,
    screen_shard,
    select_topk_flat,
)


@dataclass
class EntropySequences:
    """Per-node entropy rankings backing the topology optimisation module."""

    remote: np.ndarray
    """``(N, max_candidates)`` int array; row v lists remote candidates in
    descending entropy order, padded with -1."""

    remote_scores: np.ndarray
    """Entropy values aligned with :attr:`remote` (``-inf`` padding)."""

    neighbors: List[np.ndarray]
    """Per-node one-hop neighbours, *ascending* entropy (worst first)."""

    neighbor_scores: List[np.ndarray]
    """Entropy values aligned with :attr:`neighbors`."""

    flat_neighbors: Optional[np.ndarray] = field(default=None, repr=False)
    """Flat CSR concatenation of :attr:`neighbors` (built lazily when the
    vectorised rewiring engine asks for it)."""

    neighbor_indptr: Optional[np.ndarray] = field(default=None, repr=False)
    """Row pointers into :attr:`flat_neighbors`."""

    @property
    def num_nodes(self) -> int:
        return self.remote.shape[0]

    @property
    def max_candidates(self) -> int:
        return self.remote.shape[1]

    def top_remote(self, v: int, k: int) -> np.ndarray:
        """The ``k`` best remote candidates for node ``v`` (may be fewer)."""
        row = self.remote[v]
        return row[: k][row[:k] >= 0]

    def worst_neighbors(self, v: int, d: int) -> np.ndarray:
        """The ``d`` lowest-entropy current neighbours of node ``v``."""
        return self.neighbors[v][:d]

    def neighbor_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Deletion-ordered neighbours as flat CSR ``(indptr, ids)`` arrays.

        ``ids[indptr[v]:indptr[v] + d]`` are node ``v``'s ``d`` worst
        neighbours — the layout the delta rewiring engine gathers from
        without touching the per-node Python lists.
        """
        if self.flat_neighbors is None:
            n = self.num_nodes
            lengths = np.fromiter(
                (len(a) for a in self.neighbors), dtype=np.int64, count=n
            )
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(lengths, out=indptr[1:])
            flat = (
                np.concatenate(self.neighbors).astype(np.int64)
                if indptr[-1]
                else np.empty(0, dtype=np.int64)
            )
            self.neighbor_indptr = indptr
            self.flat_neighbors = flat
        return self.neighbor_indptr, self.flat_neighbors


def assert_rankings_match(
    fast: "EntropySequences", ref: "EntropySequences", gap: float = 1e-9
) -> int:
    """Assert two builds' remote rankings agree away from exact value ties.

    The shared equivalence definition behind the fast-vs-reference and
    screened-vs-dense property tests and the screening benchmark's recall
    check: per row, the same finite pattern, scores within ``gap``, and
    identical candidate ids at every strictly separated rank.  Positions
    whose score is within ``gap`` of a neighbouring rank may legitimately
    resolve to a different — equally correct — candidate under a different
    float summation order, so they are excluded; the last filled slot of a
    *full* row is excluded too, since its score can tie with the first
    candidate *beyond* ``max_candidates`` (which ``remote_scores`` does
    not store).  Returns the number of strictly separated positions
    compared.
    """
    mc = fast.max_candidates
    compared = 0
    for v in range(fast.num_nodes):
        fs, rs = fast.remote_scores[v], ref.remote_scores[v]
        finite = np.isfinite(fs)
        np.testing.assert_array_equal(
            finite, np.isfinite(rs), err_msg=f"row {v}: pad mismatch"
        )
        np.testing.assert_allclose(
            fs[finite], rs[finite], atol=gap,
            err_msg=f"row {v}: scores diverge beyond the tie gap",
        )
        vals = rs[finite]
        sep = np.ones(len(vals), dtype=bool)
        if len(vals) > 1:
            strict = -np.diff(vals) > gap  # descending with a clear margin
            sep[1:] &= strict
            sep[:-1] &= strict
        if len(vals) == mc:
            sep[-1] = False  # boundary slot may tie with excluded ranks
        assert (fast.remote[v][finite][sep] == ref.remote[v][finite][sep]).all(), (
            f"row {v}: ranking mismatch at separated scores"
        )
        compared += int(sep.sum())
    return compared


# ---------------------------------------------------------------------------
# Vectorised building blocks
# ---------------------------------------------------------------------------
def _select_remote_block(
    masked: np.ndarray, col_ids: Optional[np.ndarray], mc: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact top-``mc`` per row of ``masked`` under (descending score,
    ascending id) order; ``-inf`` entries never qualify.

    ``col_ids`` maps column positions to node ids (``None`` = identity).
    A ``partition`` finds each row's value threshold, then only the few
    candidates at or above it are sorted — equivalent to a full stable
    ``argsort`` but an order of magnitude cheaper on wide rows.
    Returns ``(ids, scores)`` of shape ``(B, mc)`` padded with -1 / -inf.
    """
    b, n = masked.shape
    if n == 0 or mc == 0:
        return (
            np.full((b, mc), -1, dtype=np.int64),
            np.full((b, mc), -np.inf),
        )
    kth = min(mc, n) - 1
    thresh = -np.partition(-masked, kth, axis=1)[:, kth]
    cand = masked >= thresh[:, None]
    cand &= np.isfinite(masked)
    r, c = np.nonzero(cand)
    scores = masked[r, c]
    ids = col_ids[c] if col_ids is not None else c
    return select_topk_flat(r, ids, scores, b, mc)


def _build_from_rows(graph: Graph, rows_fn, max_candidates: int,
                     block_size: int) -> EntropySequences:
    """Generic blocked builder over entropy rows in original node order."""
    n = graph.num_nodes
    mc = max_candidates
    indptr, indices = graph.csr_neighbors()
    remote = np.full((n, mc), -1, dtype=np.int64)
    remote_scores = np.full((n, mc), -np.inf)
    flat_ids = np.empty(indptr[-1], dtype=np.int64)
    flat_scores = np.empty(indptr[-1])

    for start in range(0, n, block_size):
        stop = min(n, start + block_size)
        b = stop - start
        rows = rows_fn(start, stop)

        lo, hi = indptr[start], indptr[stop]
        nbr = indices[lo:hi]
        row_local = np.repeat(np.arange(b), np.diff(indptr[start : stop + 1]))
        vals = rows[row_local, nbr]

        # One-hop neighbours, ascending entropy; lexsort is stable, so
        # equal scores keep CSR order = ascending id.
        perm = np.lexsort((vals, row_local))
        flat_ids[lo:hi] = nbr[perm]
        flat_scores[lo:hi] = vals[perm]

        masked = np.array(rows, copy=True)
        masked[np.arange(b), np.arange(start, stop)] = -np.inf
        masked[row_local, nbr] = -np.inf
        ids, scores = _select_remote_block(masked, None, mc)
        remote[start:stop] = ids
        remote_scores[start:stop] = scores

    neighbors = list(np.split(flat_ids, indptr[1:-1]))
    neighbor_scores = list(np.split(flat_scores, indptr[1:-1]))
    return EntropySequences(
        remote=remote,
        remote_scores=remote_scores,
        neighbors=neighbors,
        neighbor_scores=neighbor_scores,
        flat_neighbors=flat_ids,
        neighbor_indptr=indptr.copy(),
    )


@dataclass
class _SortedState:
    """Length-sorted tiled-kernel state shared by every dense shard worker.

    Everything is a plain array (picklable), so the same payload drives
    thread and process pools; workers only read it.
    """

    mode: str
    n: int
    m_prof: int
    mc: int
    block_size: int
    tile_size: int
    lam: float
    log_den: float
    inv_scale: float
    perm: np.ndarray
    iperm: np.ndarray
    Pp: np.ndarray
    Ls: np.ndarray
    S: np.ndarray
    Zp: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    T: Optional[np.ndarray] = None   # js: suffix sums of f(p / 2)
    L2: Optional[np.ndarray] = None  # kl: log2(max(p, eps)), permuted
    PS: Optional[np.ndarray] = None  # kl: suffix sums of p, permuted


def _sorted_state(
    graph: Graph,
    entropy: RelativeEntropy,
    max_candidates: int,
    block_size: int,
    tile_size: int,
    scorer: Optional[PairEntropyScorer] = None,
) -> _SortedState:
    """Precompute the permuted structural/feature state once per build.

    ``scorer`` (when the caller already built one for neighbour ranking)
    donates its per-node ``lengths``/``S`` reductions; only the suffix-sum
    arrays are rebuilt here, because the tiled kernel needs them unfolded
    and C-ordered in permuted row order while the scorer keeps a folded
    Fortran-order layout for strided per-pair gathers.
    """
    n = graph.num_nodes
    indptr, indices = graph.csr_neighbors()
    P = entropy.profiles
    m_prof = P.shape[1]
    lengths = (
        scorer.lengths if scorer is not None else (P > 0).sum(axis=1)
    )
    perm = np.argsort(-lengths, kind="stable")
    iperm = np.empty(n, dtype=np.int64)
    iperm[perm] = np.arange(n)
    Pp = np.ascontiguousarray(P[perm])
    state = _SortedState(
        mode=entropy.structural_mode,
        n=n,
        m_prof=m_prof,
        mc=max_candidates,
        block_size=block_size,
        tile_size=tile_size,
        lam=entropy.lam,
        log_den=entropy.log_denominator,
        inv_scale=1.0 / entropy.feature_scale,
        perm=perm,
        iperm=iperm,
        Pp=Pp,
        Ls=lengths[perm],
        S=scorer.S[perm] if scorer is not None else _plogp(Pp).sum(axis=1),
        Zp=np.ascontiguousarray(entropy.Z[perm]),
        indptr=indptr,
        indices=indices,
    )
    if entropy.structural_mode == "kl":
        state.L2 = np.log2(np.maximum(Pp, _KL_EPS))
        state.PS = _suffix_sums(Pp)
    else:
        state.T = _suffix_sums(_plogp(Pp / 2))
    return state


def _sorted_divergence_block(
    state: _SortedState,
    Hb: np.ndarray,
    start: int,
    stop: int,
    tiles,
    buf_t: np.ndarray,
    buf_l: np.ndarray,
) -> None:
    """Fill ``Hb`` with the structural divergence of block ``start:stop``
    against all columns (both in permuted order), truncating every
    (block, tile) pair at ``K = min(block max length, tile max length)``.

    JS needs the elementwise ``(B, W, K)`` mixture pass; the symmetrised
    KL of the ablation decomposes into two ``(B, K) x (K, W)`` GEMMs over
    the clamped log-profiles, with the dropped columns collapsing to
    ``log2(eps)`` times the longer side's suffix mass.
    """
    b = stop - start
    max_lb = int(state.Ls[start])
    Pb = state.Pp[start:stop]
    S = state.S
    if state.mode == "kl":
        log_eps = np.log2(_KL_EPS)
        Lb = state.L2[start:stop]
        for ts, te, tile_max in tiles:
            k_cols = min(max_lb, tile_max)
            cross = Pb[:, :k_cols] @ state.L2[ts:te, :k_cols].T
            cross += Lb[:, :k_cols] @ state.Pp[ts:te, :k_cols].T
            if max_lb <= tile_max:
                suffix = state.PS[ts:te, k_cols][None, :]
            else:
                suffix = state.PS[start:stop, k_cols][:, None]
            # sym-KL = 0.5 (S_p + S_q - sum_k (p_k Lq_k + q_k Lp_k))
            Hb[:, ts:te] = 0.5 * (
                S[start:stop, None] + S[None, ts:te] - cross - log_eps * suffix
            )
        return
    for ts, te, tile_max in tiles:
        w = te - ts
        k_cols = min(max_lb, tile_max)
        t = buf_t[: b * w * k_cols].reshape(b, w, k_cols)
        ell = buf_l[: b * w * k_cols].reshape(b, w, k_cols)
        np.add(Pb[:, None, :k_cols], state.Pp[None, ts:te, :k_cols], out=t)
        t *= 0.5
        np.maximum(t, _TINY, out=t)
        np.log2(t, out=ell)
        t *= ell
        cross = t.sum(axis=-1)
        if max_lb <= tile_max:
            pure = state.T[ts:te, k_cols][None, :]
        else:
            pure = state.T[start:stop, k_cols][:, None]
        # JS = 0.5 (S_p + S_q) - sum_k f((p_k + q_k) / 2)
        Hb[:, ts:te] = 0.5 * (
            S[start:stop, None] + S[None, ts:te]
        ) - (cross + pure)


def _sorted_shard(args) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense worker: remote rankings for sorted-order rows ``[s0, s1)``.

    Returns ``(orig_rows, ids, scores)``; ``s0``/``s1`` are multiples of
    the block size, so any sharding produces the exact block boundaries of
    the sequential build and the merge is byte-identical for every worker
    count.
    """
    state, s0, s1 = args
    n, m_prof = state.n, state.m_prof
    block_size, tile_size = state.block_size, state.tile_size
    lam, mc = state.lam, state.mc
    tiles = [
        (ts, min(n, ts + tile_size), int(state.Ls[ts]))
        for ts in range(0, n, tile_size)
    ]
    buf_t = np.empty(block_size * tile_size * max(m_prof, 1))
    buf_l = np.empty(block_size * tile_size * max(m_prof, 1))
    H = np.empty((block_size, n))

    rows = s1 - s0
    out_rows = np.empty(rows, dtype=np.int64)
    out_ids = np.empty((rows, mc), dtype=np.int64)
    out_scores = np.empty((rows, mc))

    for start in range(s0, s1, block_size):
        stop = min(s1, start + block_size)
        b = stop - start
        Hb = H[:b]

        if lam > 0:
            _sorted_divergence_block(state, Hb, start, stop, tiles, buf_t, buf_l)
            # H_s contribution: lam * (1 - divergence), folded in place.
            Hb *= -lam
            Hb += lam
        else:
            Hb.fill(0.0)

        # Feature term H_f = -P log P from the block GEMM, folded in place.
        logits = state.Zp[start:stop] @ state.Zp.T
        logits -= state.log_den
        hf = np.exp(logits)
        hf *= logits
        hf *= -state.inv_scale
        Hb += hf

        # Mask self and current neighbours (columns live in perm order).
        Hb[np.arange(b), np.arange(start, stop)] = -np.inf
        orig_rows = state.perm[start:stop]
        for r, ov in enumerate(orig_rows):
            nb = state.indices[state.indptr[ov] : state.indptr[ov + 1]]
            Hb[r, state.iperm[nb]] = -np.inf

        ids, scores = _select_remote_block(Hb, state.perm, mc)
        out_rows[start - s0 : stop - s0] = orig_rows
        out_ids[start - s0 : stop - s0] = ids
        out_scores[start - s0 : stop - s0] = scores
    return out_rows, out_ids, out_scores


def _neighbor_ranking(
    graph: Graph, scorer: PairEntropyScorer
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Ascending-entropy neighbour ordering over the whole CSR edge list."""
    indptr, indices = graph.csr_neighbors()
    n = graph.num_nodes
    rows_flat = np.repeat(np.arange(n), np.diff(indptr))
    if indptr[-1]:
        pair_vals = scorer.score(rows_flat, indices)
    else:
        pair_vals = np.empty(0)
    perm_n = np.lexsort((pair_vals, rows_flat))
    return indptr, indices[perm_n], pair_vals[perm_n]


def _sorted_shard_ranges(n: int, num_workers: int, block_size: int):
    """Contiguous sorted-order row ranges aligned to ``block_size``."""
    shards = max(1, min(num_workers * 2 if num_workers > 1 else 1,
                        -(-n // block_size)))
    blocks = -(-n // shards)
    blocks = -(-blocks // block_size) * block_size
    return [(s, min(n, s + blocks)) for s in range(0, n, blocks)]


def _build_sorted(
    graph: Graph,
    entropy: RelativeEntropy,
    max_candidates: int,
    num_workers: int = 1,
    executor: str = "thread",
    block_size: int = 64,
    tile_size: int = 1024,
) -> EntropySequences:
    """Dense fast path: length-sorted tiled structural kernel (JS or
    symmetrised KL), executed as sorted-row-range shards on a worker pool.

    Nodes are processed in descending nonzero-profile-length order so every
    (row block, column tile) pair can truncate the divergence at
    ``K = min(block max length, tile max length)`` columns; the dropped
    columns, where one side of the pair is all padding, collapse to
    precomputed suffix sums.  Scratch buffers are carved from flat
    preallocations so every inner op runs on contiguous memory.
    """
    n = graph.num_nodes
    mc = max_candidates
    scorer = PairEntropyScorer.from_entropy(entropy)
    indptr, flat_ids, flat_scores = _neighbor_ranking(graph, scorer)

    state = _sorted_state(
        graph, entropy, mc, block_size, tile_size, scorer=scorer
    )
    tasks = _sorted_shard_ranges(n, num_workers, block_size)
    results = run_sharded(
        _sorted_shard, tasks, num_workers, executor, state=state
    )

    remote = np.full((n, mc), -1, dtype=np.int64)
    remote_scores = np.full((n, mc), -np.inf)
    for orig_rows, ids, scores in results:
        remote[orig_rows] = ids
        remote_scores[orig_rows] = scores

    neighbors = list(np.split(flat_ids, indptr[1:-1]))
    neighbor_scores = list(np.split(flat_scores, indptr[1:-1]))
    return EntropySequences(
        remote=remote,
        remote_scores=remote_scores,
        neighbors=neighbors,
        neighbor_scores=neighbor_scores,
        flat_neighbors=flat_ids,
        neighbor_indptr=indptr.copy(),
    )


def _build_screened(
    graph: Graph,
    entropy: Optional[RelativeEntropy],
    max_candidates: int,
    num_workers: int = 1,
    executor: str = "thread",
    shard_plan: Optional[EntropyShardPlan] = None,
    screen_size: Optional[int] = None,
    state_loader=None,
) -> EntropySequences:
    """Screen-then-rescore path: certified candidate pruning per shard.

    See :mod:`repro.entropy.screening` for the engine; rankings are
    identical to the dense builders away from exact value ties.  With
    ``state_loader`` (out-of-core builds) the per-worker screening state
    is assembled from a stored bundle instead of ``entropy``, which may
    then be ``None`` — the sidecar already holds the same arrays, so the
    results are byte-identical either way.
    """
    n = graph.num_nodes
    state = None
    if state_loader is None:
        state = build_screen_state(
            graph, entropy, max_candidates, screen_size=screen_size
        )
    if shard_plan is None:
        # Fixed over-decomposition: the plan must not depend on num_workers
        # or results would differ across worker counts (see the constant).
        shard_plan = EntropyShardPlan.build(graph, SCREEN_DEFAULT_SHARDS)
    elif shard_plan.num_nodes != n:
        raise ValueError(
            f"shard_plan built for N={shard_plan.num_nodes}, "
            f"got graph with N={n}"
        )
    results = run_sharded(
        screen_shard,
        shard_plan.ranges(),
        num_workers,
        executor,
        state=state,
        state_loader=state_loader,
    )

    mc = max_candidates
    remote = np.full((n, mc), -1, dtype=np.int64)
    remote_scores = np.full((n, mc), -np.inf)
    nbr_id_parts: List[np.ndarray] = []
    nbr_score_parts: List[np.ndarray] = []
    for r0, r1, ids, scores, nbr_ids, nbr_scores in results:
        remote[r0:r1] = ids
        remote_scores[r0:r1] = scores
        nbr_id_parts.append(nbr_ids)
        nbr_score_parts.append(nbr_scores)

    indptr = (
        state.indptr
        if state is not None
        else np.asarray(graph.csr_neighbors()[0], dtype=np.int64)
    )
    flat_ids = (
        np.concatenate(nbr_id_parts) if indptr[-1] else np.empty(0, dtype=np.int64)
    )
    flat_scores = (
        np.concatenate(nbr_score_parts) if indptr[-1] else np.empty(0)
    )
    neighbors = list(np.split(flat_ids, indptr[1:-1]))
    neighbor_scores = list(np.split(flat_scores, indptr[1:-1]))
    return EntropySequences(
        remote=remote,
        remote_scores=remote_scores,
        neighbors=neighbors,
        neighbor_scores=neighbor_scores,
        flat_neighbors=flat_ids,
        neighbor_indptr=indptr.copy(),
    )


# ---------------------------------------------------------------------------
# Public builders
# ---------------------------------------------------------------------------
def build_entropy_sequences(
    graph: Graph,
    entropy: Optional[RelativeEntropy],
    max_candidates: int = 16,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = False,
    block_size: int = 256,
    H: Optional[np.ndarray] = None,
    screening: str = "auto",
    num_workers: int = 1,
    executor: str = "thread",
    shard_plan: Optional[EntropyShardPlan] = None,
    state_loader=None,
) -> EntropySequences:
    """Rank every node's remote candidates and one-hop neighbours.

    ``shuffle=True`` randomises both rankings — the paper's "GraphRARE
    without relative entropy" ablation (Table V, GCN-RA); that path keeps
    the per-node loop so seeded draws match the reference exactly.

    ``H`` optionally supplies precomputed entropy rows (``(N, N)``); when
    given, blocks are sliced from it instead of recomputed — the hook the
    equivalence tests use to feed bit-identical inputs to both builders.

    ``screening`` selects the candidate engine: ``"off"`` runs the dense
    length-sorted tiled kernel over all ``N^2`` pairs, ``"on"`` the
    screen-then-rescore engine (a cheap feature-logit screen bounds
    ``H <= H_f + lam * hs_max`` and only certified survivors reach the
    exact kernel — same rankings away from exact value ties, an order of
    magnitude faster at large ``N``), and ``"auto"`` (default) switches
    the screen on from ``SCREEN_AUTO_MIN`` nodes.  Both engines shard the
    build and run the shards on ``num_workers`` pool workers (``executor``
    is ``"thread"`` or ``"process"``); results merge by range, so every
    worker count returns byte-identical sequences.  ``shard_plan``
    overrides the screened engine's row-range plan (the dense engine
    derives its own block-aligned sorted-order ranges).

    ``block_size`` tunes the generic blocked builder (the ``H``-provided
    path).  The sorted fast path ignores it: its row-block and column-tile
    sizes are fixed to keep the tiled structural kernel's scratch buffers
    cache-resident.

    ``state_loader`` activates the out-of-core screened build: a
    picklable zero-argument callable (usually a
    :class:`repro.graph.storage.ScreenStateLoader`) that assembles each
    worker's screening state from a stored bundle.  ``entropy`` may then
    be ``None`` — the bundle's entropy sidecar holds the byte-exact same
    arrays, so the sequences are identical to an in-RAM build with the
    same engine parameters.  Requires the screened engine
    (``screening`` must not be ``"off"``).
    """
    if max_candidates < 1:
        raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
    if screening not in ("auto", "on", "off"):
        raise ValueError(
            f"screening must be 'auto', 'on' or 'off', got {screening!r}"
        )
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    tel = get_telemetry()
    if state_loader is not None:
        if screening == "off" or shuffle or H is not None:
            raise ValueError(
                "state_loader requires the screened engine "
                "(screening='on'/'auto' without shuffle or provided rows)"
            )
        with tel.span(
            "entropy.sequences", engine="screened-streamed", workers=num_workers
        ):
            return _build_screened(
                graph,
                entropy,
                max_candidates,
                num_workers=num_workers,
                executor=executor,
                shard_plan=shard_plan,
                state_loader=state_loader,
            )
    if shuffle:
        with tel.span("entropy.sequences", engine="reference"):
            return build_entropy_sequences_reference(
                graph, entropy, max_candidates, rng=rng, shuffle=True, H=H
            )
    if H is not None:
        with tel.span("entropy.sequences", engine="provided_rows"):
            return _build_from_rows(
                graph, lambda s, e: H[s:e], max_candidates, block_size
            )
    if screening == "on" or (
        screening == "auto" and graph.num_nodes >= SCREEN_AUTO_MIN
    ):
        with tel.span(
            "entropy.sequences", engine="screened", workers=num_workers
        ):
            return _build_screened(
                graph,
                entropy,
                max_candidates,
                num_workers=num_workers,
                executor=executor,
                shard_plan=shard_plan,
            )
    with tel.span("entropy.sequences", engine="sorted", workers=num_workers):
        return _build_sorted(
            graph,
            entropy,
            max_candidates,
            num_workers=num_workers,
            executor=executor,
        )


def build_entropy_sequences_reference(
    graph: Graph,
    entropy: RelativeEntropy,
    max_candidates: int = 16,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = False,
    H: Optional[np.ndarray] = None,
) -> EntropySequences:
    """The seed's O(N * deg) per-node loop, with the same deterministic
    tie-breaking as the vectorised builder.  Kept as the ground truth for
    the equivalence property tests and as the baseline the scaling
    benchmark measures speedups against."""
    if max_candidates < 1:
        raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
    n = graph.num_nodes
    remote = np.full((n, max_candidates), -1, dtype=np.int64)
    remote_scores = np.full((n, max_candidates), -np.inf)
    neighbors: List[np.ndarray] = []
    neighbor_scores: List[np.ndarray] = []

    if shuffle and rng is None:
        rng = np.random.default_rng(0)

    for v in range(n):
        row = H[v] if H is not None else entropy.row(v)
        neigh = graph.neighbors(v)

        # --- one-hop neighbours, ascending entropy (deletion order) -----
        neigh_vals = row[neigh]
        order = np.argsort(neigh_vals, kind="stable")
        if shuffle:
            order = rng.permutation(len(neigh))
        neighbors.append(neigh[order])
        neighbor_scores.append(neigh_vals[order])

        # --- remote candidates, descending entropy (addition order) -----
        masked = row.copy()
        masked[v] = -np.inf
        masked[neigh] = -np.inf
        top = np.argsort(-masked, kind="stable")[:max_candidates]
        top = top[np.isfinite(masked[top])]
        if shuffle:
            pool = np.flatnonzero(np.isfinite(masked))
            take = min(max_candidates, n - 1 - len(neigh), len(pool))
            top = rng.choice(pool, size=max(take, 0), replace=False)
        remote[v, : len(top)] = top
        remote_scores[v, : len(top)] = masked[top]

    return EntropySequences(
        remote=remote,
        remote_scores=remote_scores,
        neighbors=neighbors,
        neighbor_scores=neighbor_scores,
    )
