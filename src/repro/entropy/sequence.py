"""Node entropy sequence construction (Sec. IV-A.4).

For every node the framework needs two rankings derived from the relative
entropy:

* ``remote``  — non-adjacent candidate nodes sorted by *descending* entropy;
  the DRL agent connects the top-``k_v`` of these (informative remote nodes).
* ``neighbors`` — current one-hop neighbours sorted by *ascending* entropy;
  the agent removes the top-``d_v`` of these (noisy local edges).

Only the best ``max_candidates`` remote nodes are retained per node, which
bounds memory at ``O(N * max_candidates)`` while leaving plenty of headroom
for the DRL's ``k`` range.

Ranking ties are broken deterministically by ascending node id in both
directions, so the sequences are a pure function of the entropy values.

The default builder is fully vectorised.  Neighbour rankings come from one
exact pairwise-entropy pass over the CSR edge list plus a single flat
``lexsort``.  Remote rankings are built from batched entropy rows; for the
paper's JS mode the structural term uses a tiled kernel that processes
nodes in descending profile-length order, truncates every tile at the
longest nonzero profile it can see (padding columns are handled by
precomputed suffix sums), and reuses contiguous scratch buffers so numpy's
SIMD loops stay hot — about an order of magnitude faster than broadcasting
the naive JS formula.  Candidate selection replaces full row sorts with a
``partition`` threshold plus an exact tie-respecting ``lexsort`` of the few
surviving candidates.

The seed's per-node loop survives as
:func:`build_entropy_sequences_reference` for the equivalence property
tests and the scaling benchmark.  Feeding both builders the same
precomputed row matrix ``H`` makes their outputs byte-identical; when each
computes its own rows, values may differ in the last ulp (batched GEMM and
the decomposed JS are not bitwise equal to the per-row formulas) but every
ranking is identical away from exact value ties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..graph import Graph
from .relative_entropy import RelativeEntropy

#: Clamp for ``log2`` inputs in the tiled JS kernel.  Padding zeros become
#: ``log2(_TINY) * 0 == -0.0`` — exactly zero contribution — while any real
#: profile value (>= 1/sum(degrees) >> 1e-300) passes through unchanged.
_TINY = 1e-300


@dataclass
class EntropySequences:
    """Per-node entropy rankings backing the topology optimisation module."""

    remote: np.ndarray
    """``(N, max_candidates)`` int array; row v lists remote candidates in
    descending entropy order, padded with -1."""

    remote_scores: np.ndarray
    """Entropy values aligned with :attr:`remote` (``-inf`` padding)."""

    neighbors: List[np.ndarray]
    """Per-node one-hop neighbours, *ascending* entropy (worst first)."""

    neighbor_scores: List[np.ndarray]
    """Entropy values aligned with :attr:`neighbors`."""

    flat_neighbors: Optional[np.ndarray] = field(default=None, repr=False)
    """Flat CSR concatenation of :attr:`neighbors` (built lazily when the
    vectorised rewiring engine asks for it)."""

    neighbor_indptr: Optional[np.ndarray] = field(default=None, repr=False)
    """Row pointers into :attr:`flat_neighbors`."""

    @property
    def num_nodes(self) -> int:
        return self.remote.shape[0]

    @property
    def max_candidates(self) -> int:
        return self.remote.shape[1]

    def top_remote(self, v: int, k: int) -> np.ndarray:
        """The ``k`` best remote candidates for node ``v`` (may be fewer)."""
        row = self.remote[v]
        return row[: k][row[:k] >= 0]

    def worst_neighbors(self, v: int, d: int) -> np.ndarray:
        """The ``d`` lowest-entropy current neighbours of node ``v``."""
        return self.neighbors[v][:d]

    def neighbor_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Deletion-ordered neighbours as flat CSR ``(indptr, ids)`` arrays.

        ``ids[indptr[v]:indptr[v] + d]`` are node ``v``'s ``d`` worst
        neighbours — the layout the delta rewiring engine gathers from
        without touching the per-node Python lists.
        """
        if self.flat_neighbors is None:
            n = self.num_nodes
            lengths = np.fromiter(
                (len(a) for a in self.neighbors), dtype=np.int64, count=n
            )
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(lengths, out=indptr[1:])
            flat = (
                np.concatenate(self.neighbors).astype(np.int64)
                if indptr[-1]
                else np.empty(0, dtype=np.int64)
            )
            self.neighbor_indptr = indptr
            self.flat_neighbors = flat
        return self.neighbor_indptr, self.flat_neighbors


# ---------------------------------------------------------------------------
# Vectorised building blocks
# ---------------------------------------------------------------------------
def _plogp(x: np.ndarray) -> np.ndarray:
    """Elementwise ``x * log2(x)`` with the ``0 log 0 = 0`` convention."""
    out = np.zeros_like(x)
    np.log2(x, out=out, where=x > 0)
    out *= x
    return out


def _select_remote_block(
    masked: np.ndarray, col_ids: Optional[np.ndarray], mc: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact top-``mc`` per row of ``masked`` under (descending score,
    ascending id) order; ``-inf`` entries never qualify.

    ``col_ids`` maps column positions to node ids (``None`` = identity).
    A ``partition`` finds each row's value threshold, then only the few
    candidates at or above it are sorted — equivalent to a full stable
    ``argsort`` but an order of magnitude cheaper on wide rows.
    Returns ``(ids, scores)`` of shape ``(B, mc)`` padded with -1 / -inf.
    """
    b, n = masked.shape
    out_ids = np.full((b, mc), -1, dtype=np.int64)
    out_scores = np.full((b, mc), -np.inf)
    if n == 0 or mc == 0:
        return out_ids, out_scores
    kth = min(mc, n) - 1
    thresh = -np.partition(-masked, kth, axis=1)[:, kth]
    cand = masked >= thresh[:, None]
    cand &= np.isfinite(masked)
    r, c = np.nonzero(cand)
    if not r.shape[0]:
        return out_ids, out_scores
    scores = masked[r, c]
    ids = col_ids[c] if col_ids is not None else c
    order = np.lexsort((ids, -scores, r))
    r, ids, scores = r[order], ids[order], scores[order]
    counts = np.bincount(r, minlength=b)
    offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]])
    rank = np.arange(r.shape[0]) - offsets[r]
    keep = rank < mc
    out_ids[r[keep], rank[keep]] = ids[keep]
    out_scores[r[keep], rank[keep]] = scores[keep]
    return out_ids, out_scores


def _build_from_rows(graph: Graph, rows_fn, max_candidates: int,
                     block_size: int) -> EntropySequences:
    """Generic blocked builder over entropy rows in original node order."""
    n = graph.num_nodes
    mc = max_candidates
    indptr, indices = graph.csr_neighbors()
    remote = np.full((n, mc), -1, dtype=np.int64)
    remote_scores = np.full((n, mc), -np.inf)
    flat_ids = np.empty(indptr[-1], dtype=np.int64)
    flat_scores = np.empty(indptr[-1])

    for start in range(0, n, block_size):
        stop = min(n, start + block_size)
        b = stop - start
        rows = rows_fn(start, stop)

        lo, hi = indptr[start], indptr[stop]
        nbr = indices[lo:hi]
        row_local = np.repeat(np.arange(b), np.diff(indptr[start : stop + 1]))
        vals = rows[row_local, nbr]

        # One-hop neighbours, ascending entropy; lexsort is stable, so
        # equal scores keep CSR order = ascending id.
        perm = np.lexsort((vals, row_local))
        flat_ids[lo:hi] = nbr[perm]
        flat_scores[lo:hi] = vals[perm]

        masked = np.array(rows, copy=True)
        masked[np.arange(b), np.arange(start, stop)] = -np.inf
        masked[row_local, nbr] = -np.inf
        ids, scores = _select_remote_block(masked, None, mc)
        remote[start:stop] = ids
        remote_scores[start:stop] = scores

    neighbors = list(np.split(flat_ids, indptr[1:-1]))
    neighbor_scores = list(np.split(flat_scores, indptr[1:-1]))
    return EntropySequences(
        remote=remote,
        remote_scores=remote_scores,
        neighbors=neighbors,
        neighbor_scores=neighbor_scores,
        flat_neighbors=flat_ids,
        neighbor_indptr=indptr.copy(),
    )


def _build_sorted_js(
    graph: Graph,
    entropy: RelativeEntropy,
    max_candidates: int,
    block_size: int = 64,
    tile_size: int = 1024,
) -> EntropySequences:
    """JS-mode fast path: length-sorted tiled structural kernel.

    Nodes are processed in descending nonzero-profile-length order so every
    (row block, column tile) pair can truncate the JS sum at
    ``K = min(block max length, tile max length)`` columns; the dropped
    columns, where one side of the pair is all padding, collapse to
    precomputed suffix sums via ``f((p + 0) / 2) = f(p / 2)``.  Scratch
    buffers are carved from flat preallocations so every inner op runs on
    contiguous memory.
    """
    n = graph.num_nodes
    mc = max_candidates
    indptr, indices = graph.csr_neighbors()

    # --- one-hop neighbours: exact pairwise entropy on the edge list -----
    total = int(indptr[-1])
    rows_flat = np.repeat(np.arange(n), np.diff(indptr))
    if total:
        pair_vals = entropy.pairs(np.stack([rows_flat, indices], axis=1))
    else:
        pair_vals = np.empty(0)
    perm_n = np.lexsort((pair_vals, rows_flat))
    flat_ids = indices[perm_n]
    flat_scores = pair_vals[perm_n]

    # --- permuted structural state ---------------------------------------
    P = entropy.profiles
    m_prof = P.shape[1]
    lengths = (P > 0).sum(axis=1)
    perm = np.argsort(-lengths, kind="stable")
    iperm = np.empty(n, dtype=np.int64)
    iperm[perm] = np.arange(n)
    Pp = np.ascontiguousarray(P[perm])
    Ls = lengths[perm]
    S = _plogp(Pp).sum(axis=1)
    T = np.zeros((n, m_prof + 1))
    T[:, :m_prof] = np.cumsum(_plogp(Pp / 2)[:, ::-1], axis=1)[:, ::-1]
    Zp = np.ascontiguousarray(entropy.Z[perm])

    lam = entropy.lam
    log_den = entropy.log_denominator
    inv_scale = 1.0 / entropy.feature_scale
    tiles = [
        (ts, min(n, ts + tile_size), int(Ls[ts])) for ts in range(0, n, tile_size)
    ]
    buf_t = np.empty(block_size * tile_size * max(m_prof, 1))
    buf_l = np.empty(block_size * tile_size * max(m_prof, 1))
    H = np.empty((block_size, n))

    remote = np.full((n, mc), -1, dtype=np.int64)
    remote_scores = np.full((n, mc), -np.inf)

    for start in range(0, n, block_size):
        stop = min(n, start + block_size)
        b = stop - start
        Hb = H[:b]

        if lam > 0:
            max_lb = int(Ls[start])
            Pb = Pp[start:stop]
            for ts, te, tile_max in tiles:
                w = te - ts
                k_cols = min(max_lb, tile_max)
                t = buf_t[: b * w * k_cols].reshape(b, w, k_cols)
                ell = buf_l[: b * w * k_cols].reshape(b, w, k_cols)
                np.add(Pb[:, None, :k_cols], Pp[None, ts:te, :k_cols], out=t)
                t *= 0.5
                np.maximum(t, _TINY, out=t)
                np.log2(t, out=ell)
                t *= ell
                cross = t.sum(axis=-1)
                if max_lb <= tile_max:
                    pure = T[ts:te, k_cols][None, :]
                else:
                    pure = T[start:stop, k_cols][:, None]
                # JS = 0.5 (S_p + S_q) - sum_k f((p_k + q_k) / 2)
                Hb[:, ts:te] = 0.5 * (
                    S[start:stop, None] + S[None, ts:te]
                ) - (cross + pure)
            # H_s contribution: lam * (1 - JS), folded in place.
            Hb *= -lam
            Hb += lam
        else:
            Hb.fill(0.0)

        # Feature term H_f = -P log P from the block GEMM, folded in place.
        logits = Zp[start:stop] @ Zp.T
        logits -= log_den
        hf = np.exp(logits)
        hf *= logits
        hf *= -inv_scale
        Hb += hf

        # Mask self and current neighbours (columns live in perm order).
        Hb[np.arange(b), np.arange(start, stop)] = -np.inf
        orig_rows = perm[start:stop]
        for r, ov in enumerate(orig_rows):
            nb = indices[indptr[ov] : indptr[ov + 1]]
            Hb[r, iperm[nb]] = -np.inf

        ids, scores = _select_remote_block(Hb, perm, mc)
        remote[orig_rows] = ids
        remote_scores[orig_rows] = scores

    neighbors = list(np.split(flat_ids, indptr[1:-1]))
    neighbor_scores = list(np.split(flat_scores, indptr[1:-1]))
    return EntropySequences(
        remote=remote,
        remote_scores=remote_scores,
        neighbors=neighbors,
        neighbor_scores=neighbor_scores,
        flat_neighbors=flat_ids,
        neighbor_indptr=indptr.copy(),
    )


# ---------------------------------------------------------------------------
# Public builders
# ---------------------------------------------------------------------------
def build_entropy_sequences(
    graph: Graph,
    entropy: RelativeEntropy,
    max_candidates: int = 16,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = False,
    block_size: int = 256,
    H: Optional[np.ndarray] = None,
) -> EntropySequences:
    """Rank every node's remote candidates and one-hop neighbours.

    ``shuffle=True`` randomises both rankings — the paper's "GraphRARE
    without relative entropy" ablation (Table V, GCN-RA); that path keeps
    the per-node loop so seeded draws match the reference exactly.

    ``H`` optionally supplies precomputed entropy rows (``(N, N)``); when
    given, blocks are sliced from it instead of recomputed — the hook the
    equivalence tests use to feed bit-identical inputs to both builders.

    ``block_size`` tunes the generic blocked builder (the ``H``-provided
    and KL-ablation paths).  The default JS fast path ignores it: its
    row-block and column-tile sizes are fixed to keep the tiled structural
    kernel's scratch buffers cache-resident.
    """
    if max_candidates < 1:
        raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
    if shuffle:
        return build_entropy_sequences_reference(
            graph, entropy, max_candidates, rng=rng, shuffle=True, H=H
        )
    if H is not None:
        return _build_from_rows(
            graph, lambda s, e: H[s:e], max_candidates, block_size
        )
    if entropy.structural_mode == "js":
        return _build_sorted_js(graph, entropy, max_candidates)
    # KL ablation mode: generic blocked rows (no length-sorted kernel).
    return _build_from_rows(graph, entropy.rows, max_candidates, block_size)


def build_entropy_sequences_reference(
    graph: Graph,
    entropy: RelativeEntropy,
    max_candidates: int = 16,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = False,
    H: Optional[np.ndarray] = None,
) -> EntropySequences:
    """The seed's O(N * deg) per-node loop, with the same deterministic
    tie-breaking as the vectorised builder.  Kept as the ground truth for
    the equivalence property tests and as the baseline the scaling
    benchmark measures speedups against."""
    if max_candidates < 1:
        raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
    n = graph.num_nodes
    remote = np.full((n, max_candidates), -1, dtype=np.int64)
    remote_scores = np.full((n, max_candidates), -np.inf)
    neighbors: List[np.ndarray] = []
    neighbor_scores: List[np.ndarray] = []

    if shuffle and rng is None:
        rng = np.random.default_rng(0)

    for v in range(n):
        row = H[v] if H is not None else entropy.row(v)
        neigh = graph.neighbors(v)

        # --- one-hop neighbours, ascending entropy (deletion order) -----
        neigh_vals = row[neigh]
        order = np.argsort(neigh_vals, kind="stable")
        if shuffle:
            order = rng.permutation(len(neigh))
        neighbors.append(neigh[order])
        neighbor_scores.append(neigh_vals[order])

        # --- remote candidates, descending entropy (addition order) -----
        masked = row.copy()
        masked[v] = -np.inf
        masked[neigh] = -np.inf
        top = np.argsort(-masked, kind="stable")[:max_candidates]
        top = top[np.isfinite(masked[top])]
        if shuffle:
            pool = np.flatnonzero(np.isfinite(masked))
            take = min(max_candidates, n - 1 - len(neigh), len(pool))
            top = rng.choice(pool, size=max(take, 0), replace=False)
        remote[v, : len(top)] = top
        remote_scores[v, : len(top)] = masked[top]

    return EntropySequences(
        remote=remote,
        remote_scores=remote_scores,
        neighbors=neighbors,
        neighbor_scores=neighbor_scores,
    )
