"""Node entropy sequence construction (Sec. IV-A.4).

For every node the framework needs two rankings derived from the relative
entropy:

* ``remote``  — non-adjacent candidate nodes sorted by *descending* entropy;
  the DRL agent connects the top-``k_v`` of these (informative remote nodes).
* ``neighbors`` — current one-hop neighbours sorted by *ascending* entropy;
  the agent removes the top-``d_v`` of these (noisy local edges).

Only the best ``max_candidates`` remote nodes are retained per node, which
bounds memory at ``O(N * max_candidates)`` while leaving plenty of headroom
for the DRL's ``k`` range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..graph import Graph
from .relative_entropy import RelativeEntropy


@dataclass
class EntropySequences:
    """Per-node entropy rankings backing the topology optimisation module."""

    remote: np.ndarray
    """``(N, max_candidates)`` int array; row v lists remote candidates in
    descending entropy order, padded with -1."""

    remote_scores: np.ndarray
    """Entropy values aligned with :attr:`remote` (``-inf`` padding)."""

    neighbors: List[np.ndarray]
    """Per-node one-hop neighbours, *ascending* entropy (worst first)."""

    neighbor_scores: List[np.ndarray]
    """Entropy values aligned with :attr:`neighbors`."""

    @property
    def num_nodes(self) -> int:
        return self.remote.shape[0]

    @property
    def max_candidates(self) -> int:
        return self.remote.shape[1]

    def top_remote(self, v: int, k: int) -> np.ndarray:
        """The ``k`` best remote candidates for node ``v`` (may be fewer)."""
        row = self.remote[v]
        return row[: k][row[:k] >= 0]

    def worst_neighbors(self, v: int, d: int) -> np.ndarray:
        """The ``d`` lowest-entropy current neighbours of node ``v``."""
        return self.neighbors[v][:d]


def build_entropy_sequences(
    graph: Graph,
    entropy: RelativeEntropy,
    max_candidates: int = 16,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = False,
) -> EntropySequences:
    """Rank every node's remote candidates and one-hop neighbours.

    ``shuffle=True`` randomises both rankings — the paper's "GraphRARE
    without relative entropy" ablation (Table V, GCN-RA).
    """
    if max_candidates < 1:
        raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
    n = graph.num_nodes
    remote = np.full((n, max_candidates), -1, dtype=np.int64)
    remote_scores = np.full((n, max_candidates), -np.inf)
    neighbors: List[np.ndarray] = []
    neighbor_scores: List[np.ndarray] = []

    if shuffle and rng is None:
        rng = np.random.default_rng(0)

    for v in range(n):
        row = entropy.row(v)
        neigh = graph.neighbors(v)

        # --- one-hop neighbours, ascending entropy (deletion order) -----
        neigh_vals = row[neigh]
        order = np.argsort(neigh_vals, kind="stable")
        if shuffle:
            order = rng.permutation(len(neigh))
        neighbors.append(neigh[order])
        neighbor_scores.append(neigh_vals[order])

        # --- remote candidates, descending entropy (addition order) -----
        masked = row.copy()
        masked[v] = -np.inf
        masked[neigh] = -np.inf
        m = min(max_candidates, n - 1 - len(neigh))
        if m <= 0:
            continue
        top = np.argpartition(masked, -m)[-m:]
        top = top[np.argsort(masked[top], kind="stable")[::-1]]
        top = top[np.isfinite(masked[top])]
        if shuffle:
            pool = np.flatnonzero(np.isfinite(masked))
            take = min(m, len(pool))
            top = rng.choice(pool, size=take, replace=False)
        remote[v, : len(top)] = top
        remote_scores[v, : len(top)] = masked[top]

    return EntropySequences(
        remote=remote,
        remote_scores=remote_scores,
        neighbors=neighbors,
        neighbor_scores=neighbor_scores,
    )
