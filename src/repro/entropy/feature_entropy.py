"""Node feature entropy (Sec. IV-A.1, Eq. 3-4).

The paper embeds raw features with a function ``phi`` (an MLP in their
implementation), turns every pairwise embedding dot product into a
probability with a softmax over *all* node pairs, and scores a pair by
``H_f(v, u) = -P(z_v, z_u) log P(z_v, z_u)``.

Because the pair probabilities are tiny (``P ~ 1/N^2 << 1/e``) the map
``P -> -P log P`` is strictly increasing on the relevant range, so a larger
dot product always means a larger feature entropy — the property the node
ranking relies on.  We compute the global log-normaliser with a chunked
log-sum-exp so the full ``N x N`` matrix never has to be materialised.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

EmbeddingFn = Union[str, Callable[[np.ndarray], np.ndarray]]


def embed_features(
    features: np.ndarray,
    method: EmbeddingFn = "normalize",
    dim: int = 64,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Apply the embedding function ``phi`` of Eq. 3.

    Methods
    -------
    ``"normalize"``
        L2-normalise rows of ``X`` (dot products become cosine similarities).
    ``"random_projection"``
        Seeded Gaussian projection to ``dim`` dimensions followed by tanh and
        L2 normalisation — a training-free stand-in for the paper's MLP
        ``phi`` (entropy is computed once *before* any training, so the MLP
        weights are untrained there as well).
    callable
        Any ``X -> Z`` map; rows are L2-normalised afterwards.
    """
    X = np.asarray(features, dtype=np.float64)
    if callable(method):
        Z = np.asarray(method(X), dtype=np.float64)
    elif method == "normalize":
        Z = X
    elif method == "random_projection":
        if rng is None:
            rng = np.random.default_rng(0)
        W = rng.standard_normal((X.shape[1], dim)) / np.sqrt(X.shape[1])
        Z = np.tanh(X @ W)
    else:
        raise ValueError(f"unknown embedding method {method!r}")
    norms = np.linalg.norm(Z, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return Z / norms


def log_pair_normalizer(Z: np.ndarray, chunk: int = 256) -> float:
    """``log sum_{i,j} exp(<z_i, z_j>)`` computed in row chunks (Eq. 4 denom)."""
    n = Z.shape[0]
    total = -np.inf
    for start in range(0, n, chunk):
        block = Z[start : start + chunk] @ Z.T  # (c, n)
        m = block.max()
        total = np.logaddexp(total, m + np.log(np.exp(block - m).sum()))
    return float(total)


def entropy_from_logits(logits: np.ndarray, log_denominator: float) -> np.ndarray:
    """Map dot products to ``-P log P`` given the global normaliser."""
    log_p = logits - log_denominator
    return -np.exp(log_p) * log_p


def feature_entropy_pairs(
    Z: np.ndarray, pairs: np.ndarray, log_denominator: Optional[float] = None
) -> np.ndarray:
    """``H_f(v, u)`` for an array of pairs of shape ``(m, 2)``."""
    pairs = np.asarray(pairs)
    if log_denominator is None:
        log_denominator = log_pair_normalizer(Z)
    logits = np.einsum("ij,ij->i", Z[pairs[:, 0]], Z[pairs[:, 1]])
    return entropy_from_logits(logits, log_denominator)


def feature_entropy_matrix(
    Z: np.ndarray, log_denominator: Optional[float] = None
) -> np.ndarray:
    """Dense ``N x N`` feature-entropy matrix (small graphs / Fig. 8 only)."""
    if log_denominator is None:
        log_denominator = log_pair_normalizer(Z)
    return entropy_from_logits(Z @ Z.T, log_denominator)
