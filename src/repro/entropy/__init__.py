"""Node relative entropy: the paper's metric for pairwise node importance."""

from .feature_entropy import (
    embed_features,
    entropy_from_logits,
    feature_entropy_matrix,
    feature_entropy_pairs,
    log_pair_normalizer,
)
from .relative_entropy import RelativeEntropy, class_pair_entropy
from .screening import (
    SCREEN_AUTO_MIN,
    EntropyShardPlan,
    PairEntropyScorer,
    feature_logit_threshold,
    run_sharded,
    select_topk_flat,
)
from .sequence import (
    EntropySequences,
    assert_rankings_match,
    build_entropy_sequences,
    build_entropy_sequences_reference,
)
from .structural_entropy import (
    degree_profiles,
    degree_profiles_reference,
    js_divergence,
    js_divergence_block,
    kl_divergence,
    kl_divergence_block,
    structural_entropy_matrix,
    structural_entropy_pairs,
    structural_entropy_row,
    symmetric_kl_divergence_block,
    symmetric_kl_divergence_pairs,
)

__all__ = [
    "SCREEN_AUTO_MIN",
    "EntropySequences",
    "EntropyShardPlan",
    "PairEntropyScorer",
    "RelativeEntropy",
    "assert_rankings_match",
    "build_entropy_sequences",
    "build_entropy_sequences_reference",
    "class_pair_entropy",
    "degree_profiles",
    "degree_profiles_reference",
    "embed_features",
    "entropy_from_logits",
    "feature_entropy_matrix",
    "feature_entropy_pairs",
    "feature_logit_threshold",
    "js_divergence",
    "js_divergence_block",
    "kl_divergence",
    "kl_divergence_block",
    "log_pair_normalizer",
    "run_sharded",
    "select_topk_flat",
    "structural_entropy_matrix",
    "structural_entropy_pairs",
    "structural_entropy_row",
    "symmetric_kl_divergence_block",
    "symmetric_kl_divergence_pairs",
]
