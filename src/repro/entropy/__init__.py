"""Node relative entropy: the paper's metric for pairwise node importance."""

from .feature_entropy import (
    embed_features,
    entropy_from_logits,
    feature_entropy_matrix,
    feature_entropy_pairs,
    log_pair_normalizer,
)
from .relative_entropy import RelativeEntropy, class_pair_entropy
from .sequence import EntropySequences, build_entropy_sequences
from .structural_entropy import (
    degree_profiles,
    js_divergence,
    kl_divergence,
    structural_entropy_matrix,
    structural_entropy_pairs,
    structural_entropy_row,
)

__all__ = [
    "EntropySequences",
    "RelativeEntropy",
    "build_entropy_sequences",
    "class_pair_entropy",
    "degree_profiles",
    "embed_features",
    "entropy_from_logits",
    "feature_entropy_matrix",
    "feature_entropy_pairs",
    "js_divergence",
    "kl_divergence",
    "log_pair_normalizer",
    "structural_entropy_matrix",
    "structural_entropy_pairs",
    "structural_entropy_row",
]
