"""Screen-then-rescore candidate engine for the entropy sequences.

The dense builders score every ``(v, u)`` pair — the ``O(N^2 * L)`` wall the
ROADMAP calls out at 100k+ nodes.  This module cracks it with a pruned
screening pass built on the bound

    ``H(v, u) = H_f(v, u) + lam * H_s(v, u)  <=  H_f(v, u) + lam * hs_max``

where ``hs_max = 1`` for the paper's JS structural entropy (``H_s = 1 - JS``
with ``JS in [0, 1]``) and ``1 + slack`` for the clamped symmetrised-KL
ablation.  Because ``H_f`` is a strictly increasing function of the feature
logit ``<z_v, z_u>`` on the relevant range, the whole screen runs on one
float32 GEMM — no ``N x N`` exponentials, no structural work:

1. *Seed*: per row, take the ~``screen_size`` highest-logit candidates via
   an adaptive Gaussian tail threshold (mean/std of the row + a normal
   quantile, widened for rows where the estimate under-collects, with an
   exact ``partition`` fallback) and rescore them exactly.
2. *Threshold*: ``tau_v`` = the ``mc``-th largest exact ``H`` among the
   seeds.  ``tau_v`` never exceeds the true ``mc``-th best, so the bound
   above gives a *certified* pruning rule: any ``u`` with
   ``H_f(v, u) + lam * hs_max < tau_v`` cannot enter the top ``mc``.
3. *Rescore*: the rule is evaluated in logit space by inverting ``H_f``
   with the Lambert-W function (one scalar per row); every surviving
   candidate is rescored exactly and the final top-``mc`` selection is the
   same (descending score, ascending id) order the dense builders use.

Exactness: every node whose exact ``H`` ties or beats the true ``mc``-th
value has an upper bound ``>= tau_v`` and is therefore rescored, so the
returned rankings match the dense builder's *identically away from exact
value ties* (a float32 safety margin on the logit threshold absorbs the
GEMM precision gap; all reported scores come from the float64 rescorer).

The engine executes as row-range shards: an :class:`EntropyShardPlan`
splits ``[0, N)`` into contiguous node ranges balanced by adjacency volume
(the same ranges map to contiguous slices of the graph's sorted int64
edge-key arrays), and :func:`run_sharded` runs one worker per shard on a
``concurrent.futures`` thread or process pool.  Results are merged by row
range, so the output is byte-identical for any worker count or executor —
the first concrete step of the dataset-sharding roadmap item.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.special import lambertw

from ..graph import Graph
from ..telemetry import SIZE_BUCKETS, Telemetry, get_telemetry, use_telemetry
from .relative_entropy import RelativeEntropy

#: ``build_entropy_sequences(screening="auto")`` turns the screen on at this
#: many nodes; below it the dense tiled builder is already fast and the
#: screen's fixed overhead is not worth paying.
SCREEN_AUTO_MIN = 4096

#: Default over-decomposition of the screened build.  Deliberately a fixed
#: constant, NOT a function of ``num_workers``: shard boundaries determine
#: batch groupings, and per-pair float summation order (e.g. the scorer's
#: batch-quantile evaluation width) shifts scores at the ULP level with the
#: grouping — so a worker-count-dependent plan would break the documented
#: "byte-identical for every worker count" contract.  Sixteen shards keep
#: any sane pool balanced while costing serial runs only scratch reuse.
SCREEN_DEFAULT_SHARDS = 16

#: Clamp for ``log2`` inputs in the flat JS kernel (see sequence.py).
_TINY = 1e-300

#: Zero-clamp of the symmetrised-KL convention (matches
#: ``structural_entropy.kl_divergence_block``).
_KL_EPS = 1e-12

#: float32 GEMM error allowance on the certified logit threshold.  Logits
#: are cosine-like dot products in [-1, 1]; a float32 accumulation over the
#: embedding dimension is accurate to ~1e-5, so 1e-4 is a safe superset
#: margin (a looser threshold only adds rescoring work, never drops a true
#: candidate).
_LOGIT_MARGIN = 1e-4


def _plogp(x: np.ndarray) -> np.ndarray:
    """Elementwise ``x * log2(x)`` with the ``0 log 0 = 0`` convention."""
    out = np.zeros_like(x)
    np.log2(x, out=out, where=x > 0)
    out *= x
    return out


def _suffix_sums(x: np.ndarray) -> np.ndarray:
    """Row-wise suffix sums, shape ``(n, m + 1)``; column ``k`` holds
    ``x[:, k:].sum(axis=1)`` (zero in the last column)."""
    n, m = x.shape
    out = np.zeros((n, m + 1))
    out[:, :m] = np.cumsum(x[:, ::-1], axis=1)[:, ::-1]
    return out


# ---------------------------------------------------------------------------
# Shard planning over row ranges / sorted edge-key ranges
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EntropyShardPlan:
    """Contiguous node row-ranges balanced by adjacency volume.

    The plan is the unit of work distribution for the entropy builders:
    shard ``i`` owns rows ``[starts[i], starts[i + 1])``, which map to one
    contiguous slice of the graph's sorted canonical edge-key array (see
    :meth:`Graph.edge_key_range` / :meth:`edge_key_ranges`).  Today's
    in-memory workers index shared CSR state directly; the range/slice
    contract is what the roadmap's disk-streaming step will hand each
    worker instead.  Merging shard outputs by range is order-independent,
    which keeps the parallel build seed-stable.
    """

    num_nodes: int
    starts: np.ndarray
    """``(num_shards + 1,)`` int64 row boundaries; ``starts[0] == 0`` and
    ``starts[-1] == num_nodes``."""

    @classmethod
    def build(
        cls, graph: Graph, num_shards: int, min_rows: int = 64
    ) -> "EntropyShardPlan":
        """Split ``[0, N)`` into up to ``num_shards`` ranges with roughly
        equal cost, estimated as adjacency entries plus a per-row constant
        (so dense hubs and long empty tails both spread evenly)."""
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        n = graph.num_nodes
        num_shards = max(1, min(num_shards, max(1, n // max(min_rows, 1))))
        indptr, _ = graph.csr_neighbors()
        cost = indptr.astype(np.float64) + np.arange(n + 1, dtype=np.float64)
        targets = np.linspace(0.0, cost[-1], num_shards + 1)[1:-1]
        cuts = np.searchsorted(cost, targets)
        starts = np.unique(
            np.concatenate([[0], cuts, [n]]).astype(np.int64)
        )
        return cls(num_nodes=n, starts=starts)

    @property
    def num_shards(self) -> int:
        return len(self.starts) - 1

    def ranges(self) -> List[Tuple[int, int]]:
        """Row ranges ``[(r0, r1), ...]`` covering ``[0, N)`` in order."""
        return [
            (int(self.starts[i]), int(self.starts[i + 1]))
            for i in range(self.num_shards)
        ]

    def edge_key_ranges(self, graph: Graph) -> List[Tuple[int, int]]:
        """Per-shard index ranges into ``graph.edge_keys()`` (contiguous,
        disjoint, covering every edge exactly once by smaller endpoint)."""
        if graph.num_nodes != self.num_nodes:
            raise ValueError(
                f"plan built for N={self.num_nodes}, got N={graph.num_nodes}"
            )
        return [graph.edge_key_range(r0, r1) for r0, r1 in self.ranges()]


_POOL_WORKER: Optional[Callable] = None
_POOL_STATE = None


def _pool_init(worker: Callable, state, state_loader: Optional[Callable] = None) -> None:
    """Process-pool initializer: receives the shared state once per worker
    process (pickled through ``initargs``) instead of once per task.

    When ``state_loader`` is given instead of ``state``, the worker
    process *builds* its state by calling it — the streaming path, where
    only a bundle path crosses the process boundary and the arrays are
    memmapped locally (:class:`repro.graph.storage.ScreenStateLoader`).
    """
    global _POOL_WORKER, _POOL_STATE
    _POOL_WORKER = worker
    _POOL_STATE = state_loader() if state_loader is not None else state


def _pool_run(task):
    return _POOL_WORKER((_POOL_STATE, *task))


class _TracedWorker:
    """Telemetry-capture shim wrapped around a shard worker.

    Pool workers — threads and processes alike — start with no active
    telemetry context (the session rides a ``ContextVar`` that executors
    do not propagate), so when the dispatching session is enabled each
    task instead runs under a fresh worker-local session and returns
    ``(result, snapshot)``.  ``run_sharded`` absorbs the snapshots back
    into the parent *positionally*, making the merged spans and metrics
    deterministic for every worker count and executor flavour.
    Instances are picklable whenever the wrapped worker is (the shard
    workers are module-level functions), so the shim also rides through
    the process-pool initializer.
    """

    def __init__(self, worker: Callable) -> None:
        self.worker = worker

    def __call__(self, task):
        local = Telemetry(enabled=True)
        with use_telemetry(local):
            with local.span("entropy.shard", hist="entropy.shard_s"):
                result = self.worker(task)
        return result, local.export_state()


def run_sharded(
    worker: Callable,
    tasks: Sequence,
    num_workers: int = 1,
    executor: str = "thread",
    state=None,
    state_loader: Optional[Callable] = None,
) -> list:
    """Run ``worker`` over ``tasks`` on a worker pool; results keep task
    order (the merge is positional, so parallel runs are deterministic).

    ``executor`` is ``"thread"`` (workers share read-only numpy state; BLAS
    and the elementwise kernels release the GIL) or ``"process"``
    (``ProcessPoolExecutor``; task payloads must be picklable).  With one
    worker or one task the pool is skipped entirely.

    ``state`` is an optional shared payload prepended to every task tuple
    before it reaches ``worker``.  On a process pool it is shipped once per
    worker via the pool initializer rather than pickled into each task —
    the screen/sorted states hold the full ``O(N * M)`` profile arrays, so
    per-task serialisation would dwarf the sharded compute at large ``N``.

    ``state_loader`` is the out-of-core alternative to ``state``: a small
    picklable zero-argument callable (typically a
    :class:`repro.graph.storage.ScreenStateLoader` holding a bundle path)
    that *builds* the shared state.  On a process pool each worker calls
    it inside the pool initializer, so no array ever crosses the process
    boundary; on a thread pool or a serial run it is called once here and
    the result shared.  Exactly one of ``state``/``state_loader`` may be
    given.

    When a telemetry session is active (``repro.telemetry``), each task
    runs under a worker-local capture (one ``entropy.shard`` span plus
    whatever the worker records) whose snapshot is merged back here in
    task order — the observability stream, like the results, is
    byte-for-byte independent of ``num_workers`` and ``executor``.
    """
    if executor not in ("thread", "process"):
        raise ValueError(
            f"executor must be 'thread' or 'process', got {executor!r}"
        )
    if state is not None and state_loader is not None:
        raise ValueError("pass either state or state_loader, not both")
    tasks = list(tasks)
    tel = get_telemetry()
    if tel.enabled:
        worker = _TracedWorker(worker)
    pooled = num_workers > 1 and len(tasks) > 1
    if pooled and executor == "process" and (
        state is not None or state_loader is not None
    ):
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=min(num_workers, len(tasks)),
            initializer=_pool_init,
            initargs=(worker, state, state_loader),
        ) as pool:
            results = list(pool.map(_pool_run, tasks))
    else:
        if state_loader is not None:
            state = state_loader()
        if state is not None:
            tasks = [(state, *t) for t in tasks]
        if not pooled:
            results = [worker(t) for t in tasks]
        else:
            if executor == "thread":
                from concurrent.futures import ThreadPoolExecutor as Pool
            else:
                from concurrent.futures import ProcessPoolExecutor as Pool
            with Pool(max_workers=min(num_workers, len(tasks))) as pool:
                results = list(pool.map(worker, tasks))
    if tel.enabled:
        merged = []
        for result, snapshot in results:
            tel.absorb(snapshot)
            merged.append(result)
        return merged
    return results


# ---------------------------------------------------------------------------
# Exact flat pair scoring (the rescore half of screen-then-rescore)
# ---------------------------------------------------------------------------
@dataclass
class PairEntropyScorer:
    """Vectorised exact ``H(v, u)`` for flat index arrays of node pairs.

    Equivalent to :meth:`RelativeEntropy.pairs` but built for bulk
    rescoring: the structural divergence is decomposed around precomputed
    per-node terms so each pair only touches ``K = min(len_v, len_u)``
    profile columns (pairs are processed in descending-``K`` buckets), and
    the cross term runs on fused contiguous scratch.  For JS,

        ``JS = 0.5 (S_v + S_u) - sum_{k<K} f((p_k + q_k) / 2)
               - T_v[K] - T_u[K]``

    with ``f(x) = x log2 x``, ``S`` the per-node ``sum f(p)`` and ``T`` the
    suffix sums of ``f(p / 2)`` (beyond ``K`` at most one side is nonzero).
    For symmetrised KL the cross term is ``p_v Lq + p_u Lv`` with clamped
    logs ``L`` and the suffix collapses to ``log2(eps) * suffix-mass``.
    """

    Z: np.ndarray
    log_denominator: float
    feature_scale: float
    lam: float
    mode: str
    profiles: np.ndarray
    lengths: np.ndarray
    S: np.ndarray
    """Per-node ``sum p log2 p`` — not read by the scorer itself (it is
    folded into :attr:`U`), but kept so builders that also need the
    unfolded term (the sorted tiled kernel) reuse one pass."""
    U: np.ndarray
    """Folded per-node suffix state, shape ``(n, m + 1)``: the divergence
    of a pair evaluated at width ``w`` is ``U[v, w] + U[u, w] - cross``
    (``- 0.5 * cross`` for KL), so each pair pays one strided gather per
    endpoint instead of separate ``S``/suffix lookups."""
    L: Optional[np.ndarray] = None       # kl: log2(max(p, eps))
    chunk_elements: int = 8_000_000

    @classmethod
    def from_entropy(cls, entropy: RelativeEntropy) -> "PairEntropyScorer":
        P = entropy.profiles
        lengths = (P > 0).sum(axis=1).astype(np.int64)
        S = _plogp(P).sum(axis=1)
        kw = dict(
            Z=entropy.Z,
            log_denominator=entropy.log_denominator,
            feature_scale=entropy.feature_scale,
            lam=entropy.lam,
            mode=entropy.structural_mode,
            profiles=P,
            lengths=lengths,
            S=S,
        )
        if entropy.structural_mode == "kl":
            kw["L"] = np.log2(np.maximum(P, _KL_EPS))
            U = 0.5 * (S[:, None] - np.log2(_KL_EPS) * _suffix_sums(P))
        else:
            U = 0.5 * S[:, None] - _suffix_sums(_plogp(P / 2.0))
        # Column-major: the scorer reads one width-column per chunk, so the
        # strided U[v, width] gathers stay inside a contiguous column.
        kw["U"] = np.asfortranarray(U)
        return cls(**kw)

    # ------------------------------------------------------------------
    def feature(self, v: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Exact float64 feature entropy ``H_f`` for aligned pair arrays."""
        logit = np.einsum("ij,ij->i", self.Z[v], self.Z[u])
        logit -= self.log_denominator
        hf = np.exp(logit)
        hf *= logit
        hf *= -1.0 / self.feature_scale
        return hf

    def _structural_chunk(
        self, v: np.ndarray, u: np.ndarray, width: int
    ) -> np.ndarray:
        """Divergence for a chunk of pairs evaluated at a common ``width``.

        Any ``width >= min(len_v, len_u)`` is exact: past the shorter
        profile at most one side is nonzero, so the dropped columns
        collapse to the precomputed suffix terms at ``width``.
        """
        P = self.profiles
        if self.mode == "kl":
            cross = np.einsum("ij,ij->i", P[v, :width], self.L[u, :width])
            cross += np.einsum("ij,ij->i", P[u, :width], self.L[v, :width])
            return self.U[v, width] + self.U[u, width] - 0.5 * cross
        t = P[v, :width] + P[u, :width]
        t *= 0.5
        np.maximum(t, _TINY, out=t)
        ell = np.log2(t)
        ell *= t
        cross = ell.sum(axis=1)
        return self.U[v, width] + self.U[u, width] - cross

    def structural(self, v: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Exact structural divergence for aligned pair arrays.

        Pairs are split into a *narrow* bucket evaluated at the 90th
        percentile of ``K = min(len_v, len_u)`` and a *wide* remainder at
        full profile width — typical heavy-tailed graphs have short
        profiles almost everywhere, so most pairs never pay full width,
        without any per-pair sorting.
        """
        m = v.shape[0]
        out = np.empty(m)
        if not m:
            return out
        max_m = self.profiles.shape[1]
        K = np.minimum(self.lengths[v], self.lengths[u])
        K = np.minimum(K, max_m)
        w0 = int(K[np.argpartition(K, (9 * m) // 10)[(9 * m) // 10]]) if m > 16 else int(K.max())
        narrow = np.flatnonzero(K <= w0)
        wide = np.flatnonzero(K > w0)
        for idx, width in ((narrow, w0), (wide, max_m)):
            chunk = max(1, self.chunk_elements // max(width, 1))
            for s in range(0, idx.shape[0], chunk):
                sub = idx[s : s + chunk]
                out[sub] = self._structural_chunk(v[sub], u[sub], width)
        return out

    def score(self, v: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Exact ``H(v, u) = H_f + lam * (1 - divergence)`` per pair."""
        v = np.asarray(v, dtype=np.int64)
        u = np.asarray(u, dtype=np.int64)
        out = np.empty(v.shape[0])
        chunk = max(1, self.chunk_elements // max(self.Z.shape[1], 1))
        for s in range(0, v.shape[0], chunk):
            sl = slice(s, s + chunk)
            out[sl] = self.feature(v[sl], u[sl])
        if self.lam > 0:
            out += self.lam
            div = self.structural(v, u)
            div *= self.lam
            out -= div
        return out


# ---------------------------------------------------------------------------
# Certified logit threshold (Lambert-W inversion of the feature entropy)
# ---------------------------------------------------------------------------
def feature_logit_threshold(
    h: np.ndarray, log_denominator: float, feature_scale: float
) -> np.ndarray:
    """Smallest feature logit whose entropy reaches ``h`` (elementwise).

    ``H_f(x) = -e^u u / scale`` with ``u = x - log_denominator`` is
    strictly increasing on the pair-probability range ``P = e^u < 1/e``, so
    ``H_f(x) >= h  <=>  x >= W_{-1}(-h * scale) + log_denominator``.
    Entries with ``h <= 0`` (or an untrustworthy normaliser on degenerate
    tiny graphs, where ``P < 1/e`` is not guaranteed) give ``-inf`` — the
    caller then rescans every candidate, trading speed for exactness.
    """
    h = np.atleast_1d(np.asarray(h, dtype=np.float64))
    out = np.full(h.shape, -np.inf)
    if log_denominator <= 2.0:
        return out
    pos = np.isfinite(h) & (h > 0)
    if pos.any():
        y = np.minimum(h[pos] * feature_scale, np.exp(-1.0))
        u = lambertw(-y, k=-1).real
        out[pos] = log_denominator + u
    # +inf thresholds (h above the attainable maximum) select nothing.
    out[np.isposinf(h)] = np.inf
    return out


# ---------------------------------------------------------------------------
# The screening shard worker
# ---------------------------------------------------------------------------
@dataclass
class ScreenState:
    """Read-only state shared by every screening shard worker (picklable,
    so the same payload drives thread and process pools)."""

    Z32: np.ndarray
    scorer: PairEntropyScorer
    indptr: np.ndarray
    indices: np.ndarray
    num_nodes: int
    max_candidates: int
    screen_size: int
    hs_max: float
    block_rows: int
    sample: np.ndarray
    """Fixed stratified column sample used for the per-row seed-threshold
    quantile estimate (part of the state so every shard sees the same
    sample and parallel builds stay byte-identical)."""

    release: Optional[object] = None
    """Optional page-release policy for memmap-backed state
    (:class:`repro.graph.storage.MmapReleaser`): ``release.step()`` runs
    after every screened row block, ``release.flush()`` at shard end, so
    a streaming worker's resident set stays bounded by one block's
    gathers.  ``None`` (in-RAM state) skips both calls."""


def select_topk_flat(
    r: np.ndarray,
    ids: np.ndarray,
    scores: np.ndarray,
    num_rows: int,
    k: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row top-``k`` of flat ``(row, id, score)`` triples under the
    builders' (descending score, ascending id) order.

    Returns ``(ids, scores)`` of shape ``(num_rows, k)`` padded with
    ``-1`` / ``-inf``; non-finite scores never qualify.
    """
    out_ids = np.full((num_rows, k), -1, dtype=np.int64)
    out_scores = np.full((num_rows, k), -np.inf)
    if not r.shape[0] or k == 0:
        return out_ids, out_scores
    keep = np.isfinite(scores)
    r, ids, scores = r[keep], ids[keep], scores[keep]
    if not r.shape[0]:
        return out_ids, out_scores
    order = np.lexsort((ids, -scores, r))
    r, ids, scores = r[order], ids[order], scores[order]
    counts = np.bincount(r, minlength=num_rows)
    offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]])
    rank = np.arange(r.shape[0]) - offsets[r]
    keep = rank < k
    out_ids[r[keep], rank[keep]] = ids[keep]
    out_scores[r[keep], rank[keep]] = scores[keep]
    return out_ids, out_scores


#: Sentinel written over masked (self / current-neighbour) logits.  True
#: logits are cosines in [-1, 1], so any threshold clamped to >= _MASK_CUT
#: excludes sentinels without a separate finite-mask pass.
_MASK_VAL = np.float32(-2.0)
_MASK_CUT = -1.5


def _extract_seeds(
    state: ScreenState,
    logits: np.ndarray,
    target: np.ndarray,
    mc: int,
    mask_buf: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Row-major ``(ri, ci, counts, thresholds)`` of the ~``target``
    best-logit candidates per row.

    Thresholds come from per-row tail quantiles of a sorted, fixed column
    sample (adapting to whatever shape the logit distribution has).  Rows
    whose seed count lands badly off target — below half of it (or below
    ``mc``, which τ quality really needs) or more than 3x above — are
    re-thresholded and re-extracted: first with a proportionally corrected
    sample quantile, then, for the rare rows the sample cannot serve, with
    the exact ``target``-th largest logit from a batched ``partition``
    (sentinels sort below every true logit, so the picked value is real).
    Seed-count accuracy only affects speed, never correctness — the
    certified rescan uses ``tau`` bounds, not these thresholds.
    """
    n = state.num_nodes
    b = logits.shape[0]
    ls = logits[:, state.sample]
    ls.sort(axis=1)
    ssize = ls.shape[1]
    ratio = ssize / max(n, 1)

    def quantile_for(rows: np.ndarray, want: np.ndarray) -> np.ndarray:
        # Index of the ~want-th largest full-row value inside the sample.
        above = np.clip(np.ceil(want * ratio).astype(np.int64) + 1, 1, ssize)
        return np.maximum(ls[rows, ssize - above], _MASK_CUT)

    t = quantile_for(np.arange(b), target.astype(np.float64))
    mask = np.greater_equal(logits, t[:, None], out=mask_buf[:b])
    ri, ci = np.nonzero(mask)
    counts = np.bincount(ri, minlength=b)
    floor = np.maximum(target // 2, np.minimum(mc, target))

    for attempt in (0, 1):
        bad = counts < floor
        if attempt == 0:
            bad |= counts > 3 * target
        redo = np.flatnonzero(bad)
        if not redo.size:
            break
        if attempt == 0:
            want = target[redo] * (
                target[redo].astype(np.float64) / np.maximum(counts[redo], 1.0)
            )
            t[redo] = quantile_for(redo, np.maximum(want, 1.0))
        else:
            for want_i in np.unique(target[redo]):
                rows = redo[target[redo] == want_i]
                if want_i <= 0:
                    t[rows] = np.inf
                    continue
                sub = np.partition(logits[rows], -int(want_i), axis=1)
                t[rows] = np.maximum(sub[:, -int(want_i)], _MASK_CUT)
        # Splice the re-extracted rows in; the stable sort restores the
        # row-major grouping the downstream rank bookkeeping needs.
        is_redo = np.zeros(b, dtype=bool)
        is_redo[redo] = True
        keep = ~is_redo[ri]
        ri2, ci2 = np.nonzero(logits[redo] >= t[redo, None])
        ri = np.concatenate([ri[keep], redo[ri2]])
        ci = np.concatenate([ci[keep], ci2])
        order = np.argsort(ri, kind="stable")
        ri, ci = ri[order], ci[order]
        counts = np.bincount(ri, minlength=b)
    return ri, ci, counts, t


def _screen_block(
    state: ScreenState,
    start: int,
    stop: int,
    scratch: Tuple[np.ndarray, np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Screen-then-rescore one row block; returns ``(ids, scores)`` of
    shape ``(stop - start, mc)`` in the dense builders' order.

    ``scratch`` holds the per-shard ``(block_rows, N)`` float32 logit and
    bool mask buffers — reused across blocks so the hot loop never goes
    back to the page allocator for its largest temporaries.
    """
    n = state.num_nodes
    mc = state.max_candidates
    scorer = state.scorer
    b = stop - start

    logit_buf, mask_buf = scratch
    logits = np.matmul(state.Z32[start:stop], state.Z32.T, out=logit_buf[:b])

    # Mask self and current neighbours before any selection.
    deg = np.diff(state.indptr[start : stop + 1])
    row_local = np.repeat(np.arange(b), deg)
    nbr = state.indices[state.indptr[start] : state.indptr[stop]]
    logits[np.arange(b), np.arange(start, stop)] = _MASK_VAL
    logits[row_local, nbr] = _MASK_VAL
    valid = (n - 1) - deg

    # --- seed: exact rescore of the ~screen_size best-logit candidates ----
    target = np.minimum(state.screen_size, valid)
    ri, ci, counts1, t = _extract_seeds(state, logits, target, mc, mask_buf)
    seed_scores = scorer.score(start + ri, ci)

    # --- threshold: tau = mc-th best exact H among the seeds --------------
    offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts1)[:-1]])
    rank = np.arange(ri.shape[0]) - offsets[ri]
    pad = np.full((b, max(int(counts1.max()) if counts1.size else 0, mc)), -np.inf)
    pad[ri, rank] = seed_scores
    tau = -np.partition(-pad, mc - 1, axis=1)[:, mc - 1]

    # --- certified survivors: H_f + lam * hs_max >= tau in logit space ----
    # The seed threshold usually sits below the certified bound already
    # (the seed pool is sized past the typical survivor count), so only
    # the rows where it does not get a second, banded extraction.
    need = tau - scorer.lam * state.hs_max
    bound = feature_logit_threshold(
        need, scorer.log_denominator, scorer.feature_scale
    )
    bound32 = np.maximum(bound - _LOGIT_MARGIN, _MASK_CUT).astype(np.float32)
    rescan = np.flatnonzero(bound32 < t)
    if rescan.size:
        sub = logits[rescan]
        band = sub >= bound32[rescan, None]
        band &= sub < t[rescan, None]
        rei, ce = np.nonzero(band)
        re_ = rescan[rei]
        extra_scores = scorer.score(start + re_, ce)
        ri = np.concatenate([ri, re_])
        ci = np.concatenate([ci, ce])
        seed_scores = np.concatenate([seed_scores, extra_scores])

    # Entries below tau can never reach the top mc; dropping them up front
    # keeps the exact tie-breaking lexsort tiny.
    keep = seed_scores >= tau[ri]

    tel = get_telemetry()
    if tel.enabled:
        tel.count("entropy.screen.rows", b)
        tel.count("entropy.screen.seed_pairs", int(counts1.sum()))
        tel.count("entropy.screen.rescored_pairs", int(seed_scores.shape[0]))
        tel.count("entropy.screen.survivor_pairs", int(keep.sum()))

    return select_topk_flat(ri[keep], ci[keep], seed_scores[keep], b, mc)


def screen_shard(args) -> Tuple[int, int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Worker: remote + neighbour rankings for one row-range shard.

    Returns ``(r0, r1, remote_ids, remote_scores, flat_neighbor_ids,
    flat_neighbor_scores)``; the neighbour arrays are the shard's slice of
    the CSR edge list reordered to ascending entropy per row.
    """
    state, r0, r1 = args
    mc = state.max_candidates
    rows = r1 - r0
    remote = np.full((rows, mc), -1, dtype=np.int64)
    remote_scores = np.full((rows, mc), -np.inf)
    block = min(state.block_rows, max(rows, 1))
    scratch = (
        np.empty((block, state.num_nodes), dtype=np.float32),
        np.empty((block, state.num_nodes), dtype=bool),
    )
    for start in range(r0, r1, state.block_rows):
        stop = min(r1, start + state.block_rows)
        ids, scores = _screen_block(state, start, stop, scratch)
        remote[start - r0 : stop - r0] = ids
        remote_scores[start - r0 : stop - r0] = scores
        if state.release is not None:
            state.release.step()

    lo, hi = int(state.indptr[r0]), int(state.indptr[r1])
    tel = get_telemetry()
    if tel.enabled:
        # Adjacency volume is the shard balancer's load proxy; recording
        # its distribution shows how even the decomposition really was.
        tel.observe("entropy.shard_volume", hi - lo, buckets=SIZE_BUCKETS)
    nbr = state.indices[lo:hi]
    rows_flat = np.repeat(
        np.arange(r0, r1), np.diff(state.indptr[r0 : r1 + 1])
    )
    vals = state.scorer.score(rows_flat, nbr) if nbr.size else np.empty(0)
    perm = np.lexsort((vals, rows_flat))
    nbr, vals = nbr[perm], vals[perm]
    if state.release is not None:
        state.release.flush()
    return r0, r1, remote, remote_scores, nbr, vals


def default_screen_params(
    n: int,
    max_candidates: int,
    screen_size: Optional[int] = None,
    block_rows: Optional[int] = None,
) -> Tuple[int, int]:
    """Resolve ``(screen_size, block_rows)`` defaults for a screen build.

    One shared formula for :func:`build_screen_state` and the bundle
    state loader (:class:`repro.graph.storage.ScreenStateLoader`): both
    paths must agree or the streamed and in-RAM screens would group rows
    differently and drift at the ULP level (the scorer's batch-quantile
    width depends on the block grouping).
    """
    if screen_size is None:
        screen_size = max(8 * max_candidates, 64)
    if block_rows is None:
        # Cap the (B, N) float32 logit block at ~128 MB.
        block_rows = int(min(1024, max(64, 32_000_000 // max(n, 1))))
    return int(screen_size), int(block_rows)


def screen_sample(n: int) -> np.ndarray:
    """Stratified column sample for the seed quantile estimate (every
    n-th node); deterministic, so all shards, worker counts and state
    construction paths (in-RAM or bundle-loaded) agree."""
    return np.unique(np.linspace(0, n - 1, min(n, 1024)).astype(np.int64))


def build_screen_state(
    graph: Graph,
    entropy: RelativeEntropy,
    max_candidates: int,
    screen_size: Optional[int] = None,
    block_rows: Optional[int] = None,
) -> ScreenState:
    """Assemble the shared screening state for one (graph, entropy) pair."""
    indptr, indices = graph.csr_neighbors()
    scorer = PairEntropyScorer.from_entropy(entropy)
    n = graph.num_nodes
    screen_size, block_rows = default_screen_params(
        n, max_candidates, screen_size, block_rows
    )
    sample = screen_sample(n)
    # The clamped symmetrised KL can dip a hair below zero (by at most
    # ``log2(1 + M * eps)``), so pad the structural upper bound for "kl".
    hs_max = 1.0 if entropy.structural_mode == "js" else 1.0 + 1e-9
    return ScreenState(
        Z32=np.ascontiguousarray(entropy.Z, dtype=np.float32),
        scorer=scorer,
        indptr=indptr,
        indices=indices,
        num_nodes=n,
        max_candidates=max_candidates,
        screen_size=int(screen_size),
        hs_max=hs_max,
        block_rows=int(block_rows),
        sample=sample,
    )
