"""Combined node relative entropy ``H(v, u) = H_f + lambda * H_s`` (Eq. 9)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..graph import Graph
from .feature_entropy import (
    EmbeddingFn,
    embed_features,
    entropy_from_logits,
    log_pair_normalizer,
)
from .structural_entropy import (
    degree_profiles,
    js_divergence,
    js_divergence_block,
    symmetric_kl_divergence_block,
    symmetric_kl_divergence_pairs,
)


@dataclass
class RelativeEntropy:
    """Precomputed state for relative-entropy queries on one graph.

    The paper computes entropy once before training (Sec. IV-A, complexity
    analysis); this object captures the reusable pieces: the feature
    embeddings ``Z``, the global softmax normaliser, and the degree
    profiles.  Rows are evaluated lazily and chunked so the full ``N x N``
    matrix is only materialised on demand (small graphs / Fig. 8).  The
    batched :meth:`rows` block is the workhorse of the vectorised
    entropy-sequence build — one GEMM plus one broadcast JS per block
    instead of ``N`` per-row passes.
    """

    Z: np.ndarray
    log_denominator: float
    profiles: np.ndarray
    lam: float
    feature_scale: float = 1.0
    """Divisor applied to the feature term so both entropies share the
    [0, 1] range.  The raw ``-P log P`` values are ``O(log(N^2)/N^2)`` while
    the JS-based structural entropy lives in [0, 1]; without rescaling,
    lambda=1 would make the feature term vanish, contradicting the paper's
    Table IV (where lambda=0.1 behaves like "feature entropy alone").  We
    divide by the maximum attainable value ``-P_max log P_max`` (reached at
    dot product 1 for unit-norm embeddings), a strictly monotone rescaling
    that preserves every ranking."""

    structural_mode: str = "js"
    """``"js"`` (the paper's bounded Jensen-Shannon form, Eq. 7-8) or
    ``"kl"`` (the unbounded symmetrised KL of [50], kept for the DESIGN.md
    ablation: the paper motivates JS precisely because raw KL "has no
    practical meaning when the value is too large")."""

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        lam: float = 1.0,
        embedding: EmbeddingFn = "normalize",
        embedding_dim: int = 64,
        max_profile_len: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        normalize_feature: bool = True,
        structural_mode: str = "js",
    ) -> "RelativeEntropy":
        """Precompute entropy state for ``graph`` with weight ``lam`` (Eq. 9)."""
        if graph.features is None:
            raise ValueError("relative entropy requires node features")
        if lam < 0:
            raise ValueError(f"lambda must be non-negative, got {lam}")
        if structural_mode not in ("js", "kl"):
            raise ValueError(
                f"structural_mode must be 'js' or 'kl', got {structural_mode!r}"
            )
        Z = embed_features(graph.features, embedding, dim=embedding_dim, rng=rng)
        log_denominator = log_pair_normalizer(Z)
        scale = 1.0
        if normalize_feature:
            scale = float(entropy_from_logits(np.array([1.0]), log_denominator)[0])
        return cls(
            Z=Z,
            log_denominator=log_denominator,
            profiles=degree_profiles(graph, max_len=max_profile_len),
            lam=lam,
            feature_scale=scale,
            structural_mode=structural_mode,
        )

    @property
    def num_nodes(self) -> int:
        return self.Z.shape[0]

    # ------------------------------------------------------------------
    def feature_row(self, v: int) -> np.ndarray:
        """``H_f(v, u)`` for all ``u`` (Eq. 4, rescaled by feature_scale)."""
        logits = self.Z @ self.Z[v]
        return entropy_from_logits(logits, self.log_denominator) / self.feature_scale

    def feature_rows(self, start: int, stop: int) -> np.ndarray:
        """``H_f`` for a contiguous block of nodes, shape ``(stop-start, N)``."""
        logits = self.Z[start:stop] @ self.Z.T
        return entropy_from_logits(logits, self.log_denominator) / self.feature_scale

    def _structural_divergence(self, p, q) -> np.ndarray:
        if self.structural_mode == "kl":
            # Symmetrised raw KL, as in [50]; unbounded above.
            out = symmetric_kl_divergence_pairs(p, q)
            return out.reshape(()) if np.ndim(p) == 1 and np.ndim(q) == 1 else out
        return js_divergence(p, q)

    def _structural_divergence_block(
        self, P: np.ndarray, Q: np.ndarray
    ) -> np.ndarray:
        """Pairwise divergence between block ``P`` (B, M) and all of ``Q``."""
        if self.structural_mode == "kl":
            return symmetric_kl_divergence_block(P, Q)
        return js_divergence_block(P, Q)

    def structural_row(self, v: int) -> np.ndarray:
        """``H_s(v, u)`` for all ``u`` (Eq. 8)."""
        return 1.0 - self._structural_divergence(self.profiles[v], self.profiles)

    def structural_rows(self, start: int, stop: int) -> np.ndarray:
        """``H_s`` for a contiguous block of nodes, shape ``(stop-start, N)``."""
        return 1.0 - self._structural_divergence_block(
            self.profiles[start:stop], self.profiles
        )

    def row(self, v: int) -> np.ndarray:
        """``H(v, u) = H_f + lam * H_s`` for all ``u`` (Eq. 9)."""
        return self.feature_row(v) + self.lam * self.structural_row(v)

    def rows(self, start: int, stop: int) -> np.ndarray:
        """Batched ``H`` rows for nodes ``start..stop``, shape ``(B, N)``.

        One GEMM + one broadcast divergence; keep ``stop - start`` modest
        (a few hundred) so the ``(B, N, M)`` JS intermediate stays in cache.
        """
        return self.feature_rows(start, stop) + self.lam * self.structural_rows(
            start, stop
        )

    def pairs(self, pairs: np.ndarray) -> np.ndarray:
        """``H(v, u)`` for an ``(m, 2)`` array of node pairs."""
        pairs = np.asarray(pairs)
        logits = np.einsum("ij,ij->i", self.Z[pairs[:, 0]], self.Z[pairs[:, 1]])
        hf = entropy_from_logits(logits, self.log_denominator) / self.feature_scale
        hs = 1.0 - self._structural_divergence(
            self.profiles[pairs[:, 0]], self.profiles[pairs[:, 1]]
        )
        return hf + self.lam * hs

    def matrix(self, block: int = 256) -> np.ndarray:
        """Dense ``N x N`` relative-entropy matrix, built in row blocks."""
        n = self.num_nodes
        out = np.empty((n, n))
        for start in range(0, n, block):
            stop = min(n, start + block)
            out[start:stop] = self.rows(start, stop)
        return out


def class_pair_entropy(
    entropy: RelativeEntropy,
    labels: np.ndarray,
    block: int = 256,
    num_classes: Optional[int] = None,
) -> np.ndarray:
    """Mean relative entropy per (class, class) pair — the Fig. 8 heatmap.

    Fully batched: each block of ``H`` rows is reduced with one matmul
    against the class-membership one-hot matrix; trivial self pairs are
    excluded exactly as in the per-node definition.

    Label arrays may have gaps (e.g. ids ``{0, 2}`` with no node of class
    1): cells involving an empty class have no pairs to average and come
    back as ``NaN`` instead of a silently misleading ``0.0``.  Labels must
    be non-negative integers of shape ``(N,)``; ``num_classes`` optionally
    widens the heatmap beyond ``labels.max() + 1``.
    """
    labels = np.asarray(labels)
    n = entropy.num_nodes
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} != ({n},)")
    if not np.issubdtype(labels.dtype, np.integer):
        raise ValueError(f"labels must be integers, got dtype {labels.dtype}")
    if labels.size and labels.min() < 0:
        raise ValueError(f"labels must be non-negative, got {labels.min()}")
    derived = int(labels.max()) + 1 if labels.size else 0
    if num_classes is None:
        num_classes = derived
    elif num_classes < derived:
        raise ValueError(
            f"num_classes ({num_classes}) < labels.max() + 1 ({derived})"
        )
    onehot = np.zeros((n, num_classes))
    onehot[np.arange(n), labels] = 1.0
    class_sizes = np.bincount(labels, minlength=num_classes).astype(np.float64)

    sums = np.zeros((num_classes, num_classes))
    for start in range(0, n, block):
        stop = min(n, start + block)
        H = entropy.rows(start, stop)
        lab = labels[start:stop]
        np.add.at(sums, lab, H @ onehot)
        # Exclude the trivial self pair H(v, v) from the diagonal cell.
        diag = H[np.arange(stop - start), np.arange(start, stop)]
        np.add.at(sums, (lab, lab), -diag)

    counts = np.outer(class_sizes, class_sizes) - np.diag(class_sizes)
    with np.errstate(invalid="ignore", divide="ignore"):
        out = sums / counts
    out[counts == 0] = np.nan
    return out
