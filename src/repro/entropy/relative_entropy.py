"""Combined node relative entropy ``H(v, u) = H_f + lambda * H_s`` (Eq. 9)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..graph import Graph
from .feature_entropy import (
    EmbeddingFn,
    embed_features,
    entropy_from_logits,
    feature_entropy_matrix,
    log_pair_normalizer,
)
from .structural_entropy import (
    degree_profiles,
    js_divergence,
    kl_divergence,
    structural_entropy_matrix,
)


@dataclass
class RelativeEntropy:
    """Precomputed state for relative-entropy queries on one graph.

    The paper computes entropy once before training (Sec. IV-A, complexity
    analysis); this object captures the reusable pieces: the feature
    embeddings ``Z``, the global softmax normaliser, and the degree
    profiles.  Rows are evaluated lazily and chunked so the full ``N x N``
    matrix is only materialised on demand (small graphs / Fig. 8).
    """

    Z: np.ndarray
    log_denominator: float
    profiles: np.ndarray
    lam: float
    feature_scale: float = 1.0
    """Divisor applied to the feature term so both entropies share the
    [0, 1] range.  The raw ``-P log P`` values are ``O(log(N^2)/N^2)`` while
    the JS-based structural entropy lives in [0, 1]; without rescaling,
    lambda=1 would make the feature term vanish, contradicting the paper's
    Table IV (where lambda=0.1 behaves like "feature entropy alone").  We
    divide by the maximum attainable value ``-P_max log P_max`` (reached at
    dot product 1 for unit-norm embeddings), a strictly monotone rescaling
    that preserves every ranking."""

    structural_mode: str = "js"
    """``"js"`` (the paper's bounded Jensen-Shannon form, Eq. 7-8) or
    ``"kl"`` (the unbounded symmetrised KL of [50], kept for the DESIGN.md
    ablation: the paper motivates JS precisely because raw KL "has no
    practical meaning when the value is too large")."""

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        lam: float = 1.0,
        embedding: EmbeddingFn = "normalize",
        embedding_dim: int = 64,
        max_profile_len: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        normalize_feature: bool = True,
        structural_mode: str = "js",
    ) -> "RelativeEntropy":
        """Precompute entropy state for ``graph`` with weight ``lam`` (Eq. 9)."""
        if graph.features is None:
            raise ValueError("relative entropy requires node features")
        if lam < 0:
            raise ValueError(f"lambda must be non-negative, got {lam}")
        if structural_mode not in ("js", "kl"):
            raise ValueError(
                f"structural_mode must be 'js' or 'kl', got {structural_mode!r}"
            )
        Z = embed_features(graph.features, embedding, dim=embedding_dim, rng=rng)
        log_denominator = log_pair_normalizer(Z)
        scale = 1.0
        if normalize_feature:
            scale = float(entropy_from_logits(np.array([1.0]), log_denominator)[0])
        return cls(
            Z=Z,
            log_denominator=log_denominator,
            profiles=degree_profiles(graph, max_len=max_profile_len),
            lam=lam,
            feature_scale=scale,
            structural_mode=structural_mode,
        )

    @property
    def num_nodes(self) -> int:
        return self.Z.shape[0]

    # ------------------------------------------------------------------
    def feature_row(self, v: int) -> np.ndarray:
        """``H_f(v, u)`` for all ``u`` (Eq. 4, rescaled by feature_scale)."""
        logits = self.Z @ self.Z[v]
        return entropy_from_logits(logits, self.log_denominator) / self.feature_scale

    def _structural_divergence(self, p, q) -> np.ndarray:
        if self.structural_mode == "kl":
            # Symmetrised raw KL, as in [50]; unbounded above.
            return 0.5 * (kl_divergence(p, q) + kl_divergence(q, p))
        return js_divergence(p, q)

    def structural_row(self, v: int) -> np.ndarray:
        """``H_s(v, u)`` for all ``u`` (Eq. 8)."""
        return 1.0 - self._structural_divergence(self.profiles[v], self.profiles)

    def row(self, v: int) -> np.ndarray:
        """``H(v, u) = H_f + lam * H_s`` for all ``u`` (Eq. 9)."""
        return self.feature_row(v) + self.lam * self.structural_row(v)

    def pairs(self, pairs: np.ndarray) -> np.ndarray:
        """``H(v, u)`` for an ``(m, 2)`` array of node pairs."""
        pairs = np.asarray(pairs)
        logits = np.einsum("ij,ij->i", self.Z[pairs[:, 0]], self.Z[pairs[:, 1]])
        hf = entropy_from_logits(logits, self.log_denominator) / self.feature_scale
        hs = 1.0 - self._structural_divergence(
            self.profiles[pairs[:, 0]], self.profiles[pairs[:, 1]]
        )
        return hf + self.lam * hs

    def matrix(self) -> np.ndarray:
        """Dense ``N x N`` relative-entropy matrix (small graphs only)."""
        feature = feature_entropy_matrix(self.Z, self.log_denominator)
        feature /= self.feature_scale
        if self.structural_mode == "js":
            structural = structural_entropy_matrix(self.profiles)
        else:
            n = self.profiles.shape[0]
            structural = np.empty((n, n))
            for v in range(n):
                structural[v] = 1.0 - self._structural_divergence(
                    self.profiles[v], self.profiles
                )
        return feature + self.lam * structural


def class_pair_entropy(
    entropy: RelativeEntropy, labels: np.ndarray
) -> np.ndarray:
    """Mean relative entropy per (class, class) pair — the Fig. 8 heatmap."""
    labels = np.asarray(labels)
    num_classes = int(labels.max()) + 1
    sums = np.zeros((num_classes, num_classes))
    counts = np.zeros((num_classes, num_classes))
    for v in range(entropy.num_nodes):
        row = entropy.row(v)
        for c in range(num_classes):
            members = labels == c
            members_sum = row[members].sum()
            # Exclude the trivial self pair when v belongs to class c.
            if labels[v] == c:
                members_sum -= row[v]
                counts[labels[v], c] += members.sum() - 1
            else:
                counts[labels[v], c] += members.sum()
            sums[labels[v], c] += members_sum
    counts[counts == 0] = 1.0
    return sums / counts
