"""The asyncio rewiring server: transport, dispatch, lifecycle.

One :class:`RewiringServer` owns a :class:`~repro.serve.session.SessionManager`
(tenants and their shared artifacts) and a
:class:`~repro.serve.batcher.MicroBatcher` (the fused execution path).
The event loop only parses frames, resolves sessions and awaits batch
futures — every numeric operation (artifact builds, rewires, stacked
forwards) runs on the batcher's single worker thread, so the loop stays
responsive at any batch size.

Connections speak the NDJSON protocol of :mod:`repro.serve.protocol`.
Requests on one connection are handled concurrently (each frame spawns
a task; responses are written under a per-connection lock), so a single
pipelining client can fill a whole micro-batch by itself.

Lifecycle: ``start()`` binds the socket, ``serve_forever()`` parks until
a ``shutdown`` request (or :meth:`request_shutdown`), ``stop()`` closes
the transport, fails queued requests with ``shutdown`` errors and joins
the worker — every path is awaitable and idempotent, so tests drive the
server in-process with plain ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple

from ..stream import EdgeEvent, validate_events
from ..telemetry import Telemetry, get_telemetry
from .batcher import MicroBatcher
from .config import ServeConfig
from .protocol import (
    BadRequestError,
    decode_array,
    decode_line,
    encode_line,
    error_response,
    ok_response,
)
from .session import SessionManager, SessionSpec

__all__ = ["RewiringServer"]

#: Frame size limit: room for dense ``k``/``d`` vectors at large N.
_STREAM_LIMIT = 16 * 1024 * 1024


class RewiringServer:
    """Long-lived NDJSON server for rewiring and scoring requests."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        tel: Optional[Telemetry] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self._tel = tel if tel is not None else get_telemetry()
        self.sessions = SessionManager(
            self.config.max_sessions, self.config.memo_entries
        )
        self.batcher = MicroBatcher(
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            max_queue=self.config.max_queue,
            tel=self._tel,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self.address: Optional[Tuple[str, int]] = None
        """``(host, port)`` actually bound (TCP only; after ``start``)."""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the batch collector (idempotent)."""
        if self._server is not None:
            return
        self._stop_event = asyncio.Event()
        await self.batcher.start()
        if self.config.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.config.unix_path,
                limit=_STREAM_LIMIT,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.config.host,
                port=self.config.port, limit=_STREAM_LIMIT,
            )
            self.address = self._server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        """Close the transport and drain the batcher (idempotent)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.stop()
        if self._stop_event is not None:
            self._stop_event.set()

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_forever` to return (from any task)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_forever(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`request_shutdown`),
        then stop cleanly."""
        await self.start()
        await self._stop_event.wait()
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._tel.count("serve.connections")
        write_lock = asyncio.Lock()
        tasks = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                # Each frame becomes its own task so a connection can
                # pipeline: its later requests join the same micro-batch
                # its earlier ones are waiting on.
                task = asyncio.get_running_loop().create_task(
                    self._serve_frame(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_frame(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        req_id: Any = None
        try:
            frame = decode_line(line)
            req_id = frame.get("id")
            result = await self._dispatch(frame)
            response = ok_response(req_id, result)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._tel.count("serve.errors")
            response = error_response(req_id, exc)
        async with write_lock:
            try:
                writer.write(encode_line(response))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        op = frame.get("op")
        self._tel.count("serve.requests")
        if op in ("rewire", "score"):
            return await self._op_batched(op, frame)
        if op == "churn":
            return await self._op_churn(frame)
        if op == "ping":
            return {"pong": True}
        if op == "open_session":
            return await self._op_open_session(frame)
        if op == "close_session":
            return self._op_close_session(frame)
        if op == "stats":
            return self._op_stats()
        if op == "shutdown":
            self.request_shutdown()
            return {"stopping": True}
        raise BadRequestError(f"unknown op {op!r}")

    async def _op_open_session(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        spec = SessionSpec.from_wire(frame.get("spec"))
        # The expensive build runs on the batcher's worker (serialized
        # with scoring); the registry mutation stays on the loop thread.
        artifact = await asyncio.get_running_loop().run_in_executor(
            self.batcher._executor,
            self.sessions.artifact_for, spec, self.config.max_batch,
        )
        session = self.sessions.register(artifact)
        return session.describe()

    def _op_close_session(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        session_id = frame.get("session")
        return {"closed": self.sessions.close(session_id)}

    async def _op_batched(
        self, op: str, frame: Dict[str, Any]
    ) -> Dict[str, Any]:
        session = self.sessions.get(frame.get("session"))
        if "k" not in frame or "d" not in frame:
            raise BadRequestError(f"{op} requires 'k' and 'd' vectors")
        k, d = session.artifact.clamp(
            decode_array(frame["k"]), decode_array(frame["d"])
        )
        deadline_ms = frame.get(
            "deadline_ms", self.config.default_deadline_ms
        )
        future = self.batcher.submit(
            op, session, k, d, deadline_ms=deadline_ms
        )
        return await future

    async def _op_churn(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Fold external edge events into the session's artifact.

        Events are ``[kind, u, v]`` (times auto-assigned in list order)
        or ``[time, kind, u, v]`` with ``kind`` +1 (add) / -1 (remove).
        Validation happens here on the loop thread; the application runs
        on the batcher's worker, serialized with scoring — churns within
        a micro-batch apply before any rewire or score in it.
        """
        session = self.sessions.get(frame.get("session"))
        raw = frame.get("events")
        if not isinstance(raw, list) or not raw:
            raise BadRequestError("churn requires a non-empty 'events' list")
        events = []
        for i, item in enumerate(raw):
            if not isinstance(item, (list, tuple)) or len(item) not in (3, 4):
                raise BadRequestError(
                    "each event must be [kind, u, v] or [time, kind, u, v]"
                )
            try:
                item = tuple(int(x) for x in item)
            except (TypeError, ValueError) as exc:
                raise BadRequestError(
                    f"event fields must be integers: {item!r}"
                ) from exc
            events.append(
                EdgeEvent(*item) if len(item) == 4 else EdgeEvent(i, *item)
            )
        try:
            validate_events(events, session.artifact.graph.num_nodes)
        except ValueError as exc:
            raise BadRequestError(str(exc)) from exc
        deadline_ms = frame.get(
            "deadline_ms", self.config.default_deadline_ms
        )
        future = self.batcher.submit(
            "churn", session, None, None,
            deadline_ms=deadline_ms, events=events,
        )
        return await future

    def _op_stats(self) -> Dict[str, Any]:
        """Service metrics: sessions, queue and ``serve.*`` telemetry."""
        snapshot = (
            self._tel.snapshot() if self._tel.enabled
            else {"counters": {}, "gauges": {}, "histograms": {}}
        )
        serve_only = {
            kind: {
                name: value
                for name, value in snapshot.get(kind, {}).items()
                if name.startswith("serve.")
            }
            for kind in ("counters", "gauges", "histograms")
        }
        return {
            "sessions": self.sessions.stats(),
            "queue_depth": len(self.batcher._queue),
            "telemetry": serve_only,
        }
