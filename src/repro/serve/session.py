"""Artifacts and multi-tenant sessions of the rewiring service.

Two tiers of shared state, mirroring what is expensive to build versus
what is per-tenant:

* :class:`GraphArtifact` — everything derived from a
  :class:`SessionSpec` alone: the loaded graph, its entropy sequences,
  a warmed GNN backbone and the
  :class:`~repro.rl.vector.stacked.StackedGraphBuilder` the batcher
  scores through.  Artifacts are memoised on the spec's key, so two
  sessions asking about the same dataset/config share one build (and
  one set of cached propagation matrices).
* :class:`GraphSession` — a tenant's handle: a reference to its
  artifact plus a private ``(k, d)`` rewire memo
  (:class:`~repro.core.lru.LRUCache`).  Sessions are cheap; the
  :class:`SessionManager` LRU-evicts the stalest when the configured
  bound would be exceeded.  In-flight requests hold strong session
  references, so eviction mid-request only prevents *new* lookups — the
  running batch completes safely against the evicted object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import RareConfig
from ..core.lru import LRUCache
from ..core.rewire import clamp_state, rewire_graph
from ..entropy import RelativeEntropy, build_entropy_sequences
from ..gnn import Trainer, build_backbone
from ..gnn.incremental import _masked_metrics
from ..graph import Graph, geom_gcn_splits
from ..rl.vector.stacked import StackedGraphBuilder
from ..telemetry import get_telemetry
from .protocol import BadRequestError, UnknownSessionError

__all__ = [
    "GraphArtifact",
    "GraphSession",
    "SessionManager",
    "SessionSpec",
    "build_artifact",
]


@dataclass(frozen=True)
class SessionSpec:
    """What a tenant asks to be served: dataset + model recipe.

    Frozen (hashable) on purpose — the spec *is* the artifact-dedup key,
    so two sessions opened with equal specs share one
    :class:`GraphArtifact`.
    """

    dataset: str = "cornell"
    """A :func:`repro.datasets.load_dataset` name, or ``"synthetic"`` for
    a planted-partition graph sized by ``num_nodes``/``num_features`` —
    the offline path tests and benches use (no dataset files needed)."""
    scale: float = 0.1
    seed: int = 0
    num_nodes: int = 600
    """Synthetic-graph size (``dataset="synthetic"`` only)."""
    num_features: int = 32
    """Synthetic-graph feature width (``dataset="synthetic"`` only)."""
    backbone: str = "gcn"
    hidden: int = 32
    lam: float = 1.0
    k_max: int = 4
    d_max: int = 4
    warmup_epochs: int = 8
    """Training epochs baked into the artifact so scores are informative
    from the first request (the co-training warm start's counterpart)."""
    incremental: bool = False
    """Score through halo-restricted incremental evaluation instead of
    dense stacked forwards.  Dense (default) is the byte-identical
    reference; incremental is ulp-level on edit halos (see
    ``docs/serving.md``)."""
    max_halo_frac: float = 0.5

    @classmethod
    def from_wire(cls, spec: Optional[Dict]) -> "SessionSpec":
        """Build from the ``open_session`` request's ``spec`` object."""
        spec = spec or {}
        unknown = set(spec) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise BadRequestError(
                f"unknown spec field(s): {', '.join(sorted(unknown))}"
            )
        try:
            return cls(**spec)
        except TypeError as exc:
            raise BadRequestError(f"invalid spec: {exc}") from exc


class GraphArtifact:
    """The spec-derived state every session on that spec shares.

    All heavy members are built once in :func:`build_artifact`; after
    construction the artifact mutates only under ``churn`` (live edge
    events fold into :attr:`graph` and bump :attr:`version`, see
    ``docs/streaming.md``) and through the stacked builder's internal
    caches — both only ever touched from the server's single scoring
    thread, so no locking is needed.
    """

    def __init__(
        self,
        spec: SessionSpec,
        graph: Graph,
        sequences,
        model,
        trainer: Trainer,
        split,
        stack: StackedGraphBuilder,
    ) -> None:
        self.spec = spec
        self.graph = graph
        self.sequences = sequences
        self.model = model
        self.trainer = trainer
        self.split = split
        self.stack = stack
        #: Bumps on every effective churn batch and on every rebase; the
        #: per-session rewire memos key on it, so a cached graph built
        #: against an older topology can never be served after a churn.
        self.version = 0
        self._stream = None  # lazy StreamingGraph, first churn builds it
        train = np.asarray(split.train)
        if train.dtype == bool:
            train = np.flatnonzero(train)
        self.train_idx = train.astype(np.int64)

    # ------------------------------------------------------------------
    def clamp(self, k, d) -> Tuple[np.ndarray, np.ndarray]:
        """Validate and clip a request's per-node counts to feasibility.

        Clamping also canonicalises the memo key: every infeasible
        variant of the same effective rewire maps to one cache entry.
        """
        n = self.graph.num_nodes
        k = np.asarray(k, dtype=np.int64)
        d = np.asarray(d, dtype=np.int64)
        if k.shape != (n,) or d.shape != (n,):
            raise BadRequestError(
                f"k and d must be length-{n} integer vectors, got "
                f"shapes {k.shape} and {d.shape}"
            )
        return clamp_state(
            k, d, self.graph, self.sequences, self.spec.k_max, self.spec.d_max
        )

    def memo_key(self, k: np.ndarray, d: np.ndarray) -> bytes:
        """Session-memo key of a clamped ``(k, d)``: the artifact version
        (invalidates exactly the entries churn made stale) + the state."""
        return self.version.to_bytes(8, "little") + k.tobytes() + d.tobytes()

    def rewired(self, k: np.ndarray, d: np.ndarray, memo: LRUCache) -> Graph:
        """The (memoised) entropy-guided rewire for clamped ``(k, d)``."""
        key = self.memo_key(k, d)
        graph = memo.get(key)
        if graph is None:
            graph = memo.put(
                key, rewire_graph(self.graph, self.sequences, k, d)
            )
        return graph

    def churn(self, events) -> Dict:
        """Fold external edge events into the live graph (worker thread).

        The first churn lazily wraps :attr:`graph` in a
        :class:`~repro.stream.StreamingGraph`; every batch then lands as
        one collapsed delta against the artifact's root, so the stacked
        builder's root-bound state stays valid until a rebase promotes a
        fresh bitwise-verified root — at which point the builder is
        rebuilt against it.  :attr:`version` tracks the stream's version,
        which bumps on every *effective* batch: a fully no-op batch
        leaves the graph, the version and every memoised rewire valid.
        """
        from ..stream import StreamingGraph

        if self._stream is None:
            self._stream = StreamingGraph(self.graph)
        report = self._stream.apply(events)
        self.graph = self._stream.current
        self.version = self._stream.version
        if report.rebased:
            self.stack = StackedGraphBuilder(
                self._stream.root, self.model,
                max_width=self.stack.max_width,
                incremental=self.spec.incremental,
                max_halo_frac=self.spec.max_halo_frac,
                cache_limit=self.stack.cache_limit,
            )
        return {
            "applied": report.applied,
            "added": int(report.added_keys.shape[0]),
            "removed": int(report.removed_keys.shape[0]),
            "num_edges": self.graph.num_edges,
            "dirty_fraction": report.dirty_fraction,
            "rebased": report.rebased,
            "version": self.version,
        }

    def score_blocks(
        self, graphs: List[Graph]
    ) -> List[Tuple[float, float]]:
        """Train-mask ``(accuracy, loss)`` of each graph from ONE forward.

        The graphs are stacked block-diagonally and scored in a single
        GNN forward; each block's full-node logits are then sliced out
        and reduced with :func:`repro.gnn.incremental._masked_metrics` —
        the bitwise twin of the dense ``evaluate`` path — so a batched
        score equals the unbatched score byte for byte (dense artifacts;
        incremental ones are ulp-level on edit halos).
        """
        per_block = self.stack.stacked_logits(graphs)
        labels = self.graph.labels
        return [
            _masked_metrics(per_block[b], labels, self.train_idx)
            for b in range(len(graphs))
        ]


def build_artifact(spec: SessionSpec, max_batch: int = 16) -> GraphArtifact:
    """Build everything :class:`GraphArtifact` holds, deterministically.

    One dataset load, one entropy-sequence build, one backbone warm-up —
    the costs the serving layer exists to amortise.  Fully seeded by
    ``spec.seed``, so equal specs build equal artifacts.
    """
    tel = get_telemetry()
    with tel.span("serve.build_artifact", dataset=spec.dataset,
                  backbone=spec.backbone, hist="serve.build_artifact_s"):
        if spec.dataset == "synthetic":
            from ..datasets import planted_partition_graph

            graph = planted_partition_graph(
                num_nodes=spec.num_nodes, num_classes=5, homophily=0.3,
                mean_degree=8.0, num_features=spec.num_features,
                seed=spec.seed,
            )
        else:
            from ..datasets import load_dataset

            graph = load_dataset(
                spec.dataset, scale=spec.scale, seed=spec.seed
            )
        split = geom_gcn_splits(graph, num_splits=1, seed=spec.seed)[0]
        rng = np.random.default_rng(spec.seed)
        entropy = RelativeEntropy.from_graph(graph, lam=spec.lam, rng=rng)
        sequences = build_entropy_sequences(
            graph, entropy, max_candidates=max(8, spec.k_max), rng=rng
        )
        config = RareConfig(
            lam=spec.lam,
            k_max=spec.k_max,
            d_max=spec.d_max,
            max_candidates=max(8, spec.k_max),
            hidden=spec.hidden,
            seed=spec.seed,
        )
        model = build_backbone(
            spec.backbone, graph.num_features, graph.num_classes,
            hidden=spec.hidden, dropout=config.dropout, rng=rng,
        )
        trainer = Trainer(
            model, lr=config.gnn_lr, weight_decay=config.gnn_weight_decay
        )
        if spec.warmup_epochs > 0:
            trainer.fit(graph, split, epochs=spec.warmup_epochs,
                        patience=max(2, spec.warmup_epochs // 2))
        stack = StackedGraphBuilder(
            graph, model, max_width=max_batch,
            incremental=spec.incremental,
            max_halo_frac=spec.max_halo_frac,
        )
        return GraphArtifact(
            spec, graph, sequences, model, trainer, split, stack
        )


class GraphSession:
    """One tenant's handle on an artifact plus its private rewire memo."""

    def __init__(
        self, session_id: str, artifact: GraphArtifact, memo_entries: int
    ) -> None:
        self.session_id = session_id
        self.artifact = artifact
        self.memo = LRUCache(
            memo_entries, counter_prefix="serve.session_memo"
        )
        self.requests = 0

    def describe(self) -> Dict:
        """The ``open_session`` result payload (plus ``stats`` reuse)."""
        graph = self.artifact.graph
        return {
            "session": self.session_id,
            "dataset": self.artifact.spec.dataset,
            "backbone": self.artifact.spec.backbone,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "k_max": self.artifact.spec.k_max,
            "d_max": self.artifact.spec.d_max,
            "incremental": self.artifact.spec.incremental,
        }


class SessionManager:
    """Bounded registry of open sessions with LRU eviction.

    Artifacts are memoised separately from sessions: closing (or
    evicting) the last session on a spec keeps the artifact warm, which
    is the cross-request reuse the service is named for.  ``get``
    refreshes a session's recency, so steady traffic never evicts an
    active tenant.
    """

    def __init__(self, max_sessions: int, memo_entries: int) -> None:
        self.max_sessions = int(max_sessions)
        self.memo_entries = int(memo_entries)
        self._tel = get_telemetry()
        self._sessions = LRUCache(
            max_sessions, counter_prefix="serve.sessions"
        )
        self._artifacts: Dict[SessionSpec, GraphArtifact] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def artifact_for(
        self, spec: SessionSpec, max_batch: int
    ) -> GraphArtifact:
        """The memoised artifact for ``spec`` (built on first use)."""
        artifact = self._artifacts.get(spec)
        if artifact is None:
            self._tel.count("serve.artifact_builds")
            artifact = build_artifact(spec, max_batch=max_batch)
            self._artifacts[spec] = artifact
        else:
            self._tel.count("serve.artifact_reuses")
        return artifact

    def open(self, spec: SessionSpec, max_batch: int) -> GraphSession:
        """Open a session on ``spec``; may LRU-evict the stalest one."""
        return self.register(self.artifact_for(spec, max_batch))

    def register(self, artifact: GraphArtifact) -> GraphSession:
        """Bind a fresh session to a prebuilt artifact (the server splits
        the build — worker thread — from this loop-thread registration)."""
        session_id = f"s{self._next_id}"
        self._next_id += 1
        session = GraphSession(session_id, artifact, self.memo_entries)
        self._sessions.put(session_id, session)
        self._tel.set_gauge("serve.sessions.open", len(self._sessions))
        return session

    def get(self, session_id: str) -> GraphSession:
        """The open session, recency-refreshed; raises when unknown."""
        session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(
                f"session {session_id!r} is not open (expired or never "
                "existed); open a new one"
            )
        session.requests += 1
        return session

    def close(self, session_id: str) -> bool:
        """Drop the session (its memo dies with it); False if unknown."""
        closed = self._sessions.pop(session_id) is not None
        self._tel.set_gauge("serve.sessions.open", len(self._sessions))
        return closed

    def stats(self) -> Dict:
        """Registry-level numbers for the ``stats`` operation."""
        return {
            "open_sessions": len(self._sessions),
            "artifacts": len(self._artifacts),
            "session_cache": dict(self._sessions.stats),
        }
