"""Async client for the rewiring service.

:class:`ServeClient` speaks the NDJSON protocol over TCP or a unix
socket, with full pipelining: every request gets a fresh ``id``, a
background reader task resolves responses by ``id``, and any number of
requests may be in flight at once — which is exactly what lets one
client fill a server-side micro-batch::

    client = await ServeClient.connect(port=8473)
    info = await client.open_session({"dataset": "cornell"})
    results = await asyncio.gather(*[
        client.score(info["session"], k, d) for k, d in candidates
    ])
    await client.close()

Wire errors re-raise as their :mod:`repro.serve.protocol` exception
classes; :meth:`ServeClient.score_with_retry` additionally honours the
``retry_after_ms`` hint on ``overloaded`` shed responses.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Sequence

from .protocol import (
    OverloadedError,
    ServeError,
    decode_line,
    encode_array,
    encode_line,
    raise_for_error,
)

__all__ = ["ServeClient"]


class ServeClient:
    """One connection to a :class:`~repro.serve.server.RewiringServer`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        self._next_id = 0
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 8473,
        unix_path: Optional[str] = None,
    ) -> "ServeClient":
        """Open a TCP (default) or unix-socket connection."""
        if unix_path is not None:
            reader, writer = await asyncio.open_unix_connection(unix_path)
        else:
            reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        """Close the connection; in-flight requests fail with a
        ``connection closed`` :class:`ServeError`."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        self._fail_pending(ServeError("connection closed"))

    # ------------------------------------------------------------------
    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _read_loop(self) -> None:
        """Resolve pipelined responses by their ``id``."""
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    self._fail_pending(
                        ServeError("server closed the connection")
                    )
                    return
                response = decode_line(line)
                future = self._pending.pop(response.get("id"), None)
                if future is None or future.done():
                    continue
                future.set_result(response)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail_pending(ServeError(f"read loop failed: {exc}"))

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and await its result payload.

        Raises the matching :mod:`repro.serve.protocol` exception class
        when the server responds with an error envelope.
        """
        if self._closed:
            raise ServeError("client is closed")
        req_id = self._next_id
        self._next_id += 1
        future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = future
        self._writer.write(encode_line({"id": req_id, "op": op, **fields}))
        await self._writer.drain()
        response = await future
        if not response.get("ok"):
            raise_for_error(response.get("error", {}))
        return response["result"]

    # ------------------------------------------------------------------
    # Convenience wrappers, one per operation
    # ------------------------------------------------------------------
    async def ping(self) -> Dict[str, Any]:
        """Liveness check."""
        return await self.request("ping")

    async def open_session(
        self, spec: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Open a tenant session; ``spec`` fields as in ``SessionSpec``."""
        return await self.request("open_session", spec=spec or {})

    async def rewire(
        self,
        session: str,
        k: Sequence[int],
        d: Sequence[int],
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Build (or fetch from the session memo) one rewired topology."""
        return await self.request(
            "rewire", session=session,
            k=encode_array(k), d=encode_array(d),
            **({"deadline_ms": deadline_ms} if deadline_ms is not None else {}),
        )

    async def score(
        self,
        session: str,
        k: Sequence[int],
        d: Sequence[int],
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Train-mask accuracy/loss of the ``(k, d)`` rewire."""
        return await self.request(
            "score", session=session,
            k=encode_array(k), d=encode_array(d),
            **({"deadline_ms": deadline_ms} if deadline_ms is not None else {}),
        )

    async def score_with_retry(
        self,
        session: str,
        k: Sequence[int],
        d: Sequence[int],
        max_attempts: int = 5,
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """:meth:`score`, backing off on ``overloaded`` shed responses by
        the server's own ``retry_after_ms`` hint."""
        for attempt in range(max_attempts):
            try:
                return await self.score(session, k, d, deadline_ms)
            except OverloadedError as exc:
                if attempt == max_attempts - 1:
                    raise
                await asyncio.sleep(max(exc.retry_after_ms, 1.0) / 1000.0)
        raise AssertionError("unreachable")

    async def churn(
        self,
        session: str,
        events: Sequence[Sequence[int]],
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Fold external add/remove edge events into the session's live
        graph.  Each event is ``(kind, u, v)`` (times auto-assigned in
        list order) or ``(time, kind, u, v)``; ``kind`` is +1 for add,
        -1 for remove.  Scores acknowledged after this call resolves are
        guaranteed to reflect the churned topology."""
        return await self.request(
            "churn", session=session,
            events=[[int(x) for x in e] for e in events],
            **({"deadline_ms": deadline_ms} if deadline_ms is not None else {}),
        )

    async def close_session(self, session: str) -> Dict[str, Any]:
        """Close a tenant session (its memo is dropped)."""
        return await self.request("close_session", session=session)

    async def stats(self) -> Dict[str, Any]:
        """Service metrics: sessions, queue depth, ``serve.*`` telemetry."""
        return await self.request("stats")

    async def shutdown(self) -> Dict[str, Any]:
        """Ask the server to stop after this response."""
        return await self.request("shutdown")
