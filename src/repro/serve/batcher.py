"""Request micro-batching: concurrent requests -> one stacked forward.

The batcher is the service's throughput engine.  Requests land in a
bounded intake queue; a collector task takes the first arrival, holds
the batch open for ``max_wait_ms`` (or until ``max_batch`` requests are
queued, whichever is first), then executes the whole batch on a
single-worker thread executor:

* every request's ``(k, d)`` rewire resolves through its session's memo
  (cross-request reuse: a candidate another request just built is free),
* all ``score`` requests sharing an artifact are fused into ONE
  block-diagonal GNN forward via the artifact's
  :class:`~repro.rl.vector.stacked.StackedGraphBuilder` and sliced back
  per request.

One worker thread is a feature, not a limitation: the GNN, the memos
and the stacked builder are not thread-safe, and CPU inference gains
nothing from thread fan-out — batching, not concurrency, is where the
throughput comes from.

Degradation is explicit at every stage: a full queue sheds new arrivals
with :class:`~repro.serve.protocol.OverloadedError` (plus a
``retry_after_ms`` hint sized to the current backlog), expired
deadlines are rejected both *before* execution (the request never costs
a forward) and *after* it (a response the client stopped waiting for is
not delivered as success), and session eviction mid-flight is safe
because each queued request holds a strong session reference.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..telemetry import Telemetry, get_telemetry
from .protocol import DeadlineExceededError, OverloadedError, ServeError
from .session import GraphSession

__all__ = ["MicroBatcher", "PendingRequest"]


@dataclass
class PendingRequest:
    """One queued ``rewire``/``score``/``churn`` awaiting a batch slot.

    ``deadline`` is absolute loop time (``None`` = no deadline); the
    strong ``session`` reference keeps the tenant's memo alive even if
    the session manager evicts it while this request waits.  ``churn``
    requests carry their event list in ``events`` and leave ``k``/``d``
    as ``None``.
    """

    op: str
    session: GraphSession
    k: Optional[np.ndarray]
    d: Optional[np.ndarray]
    future: "asyncio.Future[Dict[str, Any]]"
    enqueued: float
    deadline: Optional[float] = None
    events: Optional[List] = field(default=None, repr=False)
    result: Optional[Dict[str, Any]] = field(default=None, repr=False)
    error: Optional[Exception] = field(default=None, repr=False)


class MicroBatcher:
    """Collects concurrent requests and executes them as fused batches.

    Parameters
    ----------
    max_batch:
        Most requests per flush — also the width cap of the stacked
        forward, so it must not exceed the artifacts' ``max_width``.
    max_wait_ms:
        How long a batch stays open for co-travellers after its first
        request arrives.  The latency floor a lone request pays; ``0``
        flushes whatever one event-loop drain accumulated.
    max_queue:
        Intake bound; arrivals beyond it are shed with ``overloaded``.
    executor:
        The (single-worker) executor batches run on; owned and shut
        down by the batcher when it created one itself.
    """

    def __init__(
        self,
        max_batch: int = 16,
        max_wait_ms: float = 2.0,
        max_queue: int = 256,
        executor: Optional[ThreadPoolExecutor] = None,
        tel: Optional[Telemetry] = None,
    ) -> None:
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.max_queue = int(max_queue)
        self._own_executor = executor is None
        self._executor = executor or ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._tel = tel if tel is not None else get_telemetry()
        self._queue: List[PendingRequest] = []
        self._nonempty = asyncio.Event()
        self._full = asyncio.Event()
        self._running = False
        self._task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the collector task (idempotent)."""
        if self._running:
            return
        self._running = True
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Stop collecting; queued requests fail with ``shutdown``."""
        if not self._running:
            return
        self._running = False
        self._nonempty.set()
        self._full.set()
        if self._task is not None:
            await self._task
            self._task = None
        for req in self._queue:
            if not req.future.done():
                req.future.set_exception(
                    ServeError("server shutting down")
                )
        self._queue.clear()
        if self._own_executor:
            self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    def submit(
        self,
        op: str,
        session: GraphSession,
        k: Optional[np.ndarray],
        d: Optional[np.ndarray],
        deadline_ms: Optional[float] = None,
        events: Optional[List] = None,
    ) -> "asyncio.Future[Dict[str, Any]]":
        """Queue one request; resolves to its result payload.

        Raises :class:`OverloadedError` immediately when the intake
        queue is full — shedding at the door costs the caller one
        round-trip, not a slot in a batch it would time out of anyway.
        """
        loop = asyncio.get_running_loop()
        if len(self._queue) >= self.max_queue:
            backlog_batches = 1 + len(self._queue) // max(self.max_batch, 1)
            self._tel.count("serve.shed")
            raise OverloadedError(
                f"intake queue full ({self.max_queue} pending)",
                retry_after_ms=max(self.max_wait_ms, 1.0) * backlog_batches,
            )
        now = loop.time()
        req = PendingRequest(
            op=op, session=session, k=k, d=d, events=events,
            future=loop.create_future(), enqueued=now,
            deadline=(
                now + deadline_ms / 1000.0
                if deadline_ms is not None else None
            ),
        )
        self._queue.append(req)
        self._tel.set_gauge("serve.queue_depth", len(self._queue))
        self._nonempty.set()
        if len(self._queue) >= self.max_batch:
            self._full.set()
        return req.future

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        """Collector loop: wait, window, cut a batch, execute, deliver."""
        loop = asyncio.get_running_loop()
        while self._running:
            await self._nonempty.wait()
            if not self._running:
                break
            if self.max_wait_ms > 0 and len(self._queue) < self.max_batch:
                # Hold the batch open for co-travellers.
                try:
                    await asyncio.wait_for(
                        self._full.wait(), self.max_wait_ms / 1000.0
                    )
                except asyncio.TimeoutError:
                    pass
                if not self._running:
                    break
            batch = self._queue[: self.max_batch]
            del self._queue[: len(batch)]
            self._full.clear()
            if not self._queue:
                self._nonempty.clear()
            self._tel.set_gauge("serve.queue_depth", len(self._queue))

            now = loop.time()
            live: List[PendingRequest] = []
            for req in batch:
                if req.deadline is not None and now > req.deadline:
                    self._expire(req, "before execution")
                elif req.future.done():
                    pass  # client vanished (connection reset)
                else:
                    live.append(req)
            if not live:
                continue
            self._tel.count("serve.batches")
            self._tel.observe("serve.batch_size", len(live),
                              buckets=(1, 2, 4, 8, 16, 32, 64))
            try:
                await loop.run_in_executor(
                    self._executor, self._execute, live
                )
            except Exception as exc:  # worker-level failure: fail the batch
                for req in live:
                    if not req.future.done():
                        req.future.set_exception(exc)
                continue
            self._deliver(live, loop.time())

    def _expire(self, req: PendingRequest, where: str) -> None:
        self._tel.count("serve.deadline_expired")
        if not req.future.done():
            req.future.set_exception(
                DeadlineExceededError(f"deadline expired {where}")
            )

    def _deliver(self, batch: List[PendingRequest], now: float) -> None:
        """Resolve futures, honouring deadlines that expired mid-batch."""
        for req in batch:
            self._tel.observe(
                "serve.request_s", now - req.enqueued,
                buckets=(0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                         0.5, 1.0, 2.5, 5.0),
            )
            if req.future.done():
                continue
            if req.deadline is not None and now > req.deadline:
                self._expire(req, "during execution")
            elif req.error is not None:
                req.future.set_exception(req.error)
            else:
                req.future.set_result(req.result)

    # ------------------------------------------------------------------
    # Executor side (single worker thread; owns model/memo/builder access)
    # ------------------------------------------------------------------
    def _execute(self, batch: List[PendingRequest]) -> None:
        """Run one batch synchronously: memoised rewires, fused scoring.

        ``score`` requests are first *coalesced*: concurrent requests for
        the same artifact and the same clamped ``(k, d)`` are computed
        once and fanned out — a dedup the serial path cannot perform
        because it never sees two requests at once.  The surviving
        unique candidates per artifact are then scored in one
        block-diagonal forward each.  Fills each request's
        ``result``/``error`` in place; delivery happens back on the
        event loop so future callbacks run there.
        """
        # Churn batches apply FIRST: within one micro-batch every rewire
        # and score then executes against the post-churn topology, so a
        # response issued after a churn acknowledgement can never reflect
        # the pre-churn graph (the serving staleness guarantee; see
        # docs/streaming.md).
        for req in batch:
            if req.op != "churn":
                continue
            try:
                with self._tel.span(
                    "serve.churn", hist="serve.churn_s",
                    events=len(req.events or ()),
                ):
                    req.result = req.session.artifact.churn(req.events)
                self._tel.count("serve.churns")
            except Exception as exc:
                req.error = exc

        score_groups: Dict[Tuple[int, bytes], List[PendingRequest]] = {}
        for req in batch:
            if req.op == "churn":
                continue
            if req.op == "rewire":
                try:
                    memo = req.session.memo
                    artifact = req.session.artifact
                    cached = artifact.memo_key(req.k, req.d) in memo
                    graph = artifact.rewired(req.k, req.d, memo)
                    req.result = {
                        "num_edges": graph.num_edges,
                        "cached": cached,
                        "memo": dict(memo.stats),
                    }
                except Exception as exc:
                    req.error = exc
            else:
                key = (
                    id(req.session.artifact),
                    req.k.tobytes() + req.d.tobytes(),
                )
                score_groups.setdefault(key, []).append(req)

        by_artifact: Dict[int, List[List[PendingRequest]]] = {}
        for (artifact_id, _), reqs in score_groups.items():
            by_artifact.setdefault(artifact_id, []).append(reqs)
            if len(reqs) > 1:
                self._tel.count("serve.coalesced", len(reqs) - 1)

        for groups in by_artifact.values():
            artifact = groups[0][0].session.artifact
            graphs = []
            live_groups: List[List[PendingRequest]] = []
            total = sum(len(reqs) for reqs in groups)
            for reqs in groups:
                lead = reqs[0]
                try:
                    graphs.append(
                        artifact.rewired(lead.k, lead.d, lead.session.memo)
                    )
                    live_groups.append(reqs)
                except Exception as exc:
                    for req in reqs:
                        req.error = exc
            if not graphs:
                continue
            try:
                with self._tel.span(
                    "serve.batch_forward", hist="serve.batch_forward_s",
                    width=len(graphs),
                ):
                    metrics = artifact.score_blocks(graphs)
            except Exception as exc:
                for reqs in live_groups:
                    for req in reqs:
                        req.error = exc
                continue
            for reqs, graph, (acc, loss) in zip(
                live_groups, graphs, metrics
            ):
                result = {
                    "acc": acc,
                    "loss": loss,
                    "num_edges": graph.num_edges,
                    "batch_width": total,
                    "unique_width": len(graphs),
                }
                for req in reqs:
                    req.result = result
