"""Tunables of the rewiring service (transport, batching, bounds)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ServeConfig"]


@dataclass
class ServeConfig:
    """Knobs of one :class:`~repro.serve.server.RewiringServer`.

    The defaults favour latency-bounded interactive use: small batching
    window, bounded queue, modest session count.  Throughput-oriented
    deployments raise ``max_batch``/``max_wait_ms`` (the serving bench
    sweeps exactly these; see ``benchmarks/bench_serving.py``).
    """

    host: str = "127.0.0.1"
    """TCP bind address (ignored when ``unix_path`` is set)."""
    port: int = 8473
    """TCP port; ``0`` lets the OS pick (the bound port is on the server
    object after ``start()``)."""
    unix_path: Optional[str] = None
    """Serve on a unix domain socket at this path instead of TCP."""

    max_batch: int = 16
    """Most requests fused into one block-diagonal forward — also the
    ``max_width`` of every artifact's stacked builder."""
    max_wait_ms: float = 2.0
    """How long the batcher holds an open batch for co-travellers after
    the first request arrives.  ``0`` flushes as soon as the event loop
    drains whatever is already queued (batching without added latency)."""
    max_queue: int = 256
    """Bound of the intake queue; requests beyond it are shed with an
    ``overloaded`` error and a ``retry_after_ms`` hint."""
    default_deadline_ms: Optional[float] = None
    """Deadline applied to requests that do not carry their own
    ``deadline_ms``; ``None`` means no implicit deadline."""

    max_sessions: int = 8
    """Open sessions kept per server; the least-recently-used session is
    evicted (its memo dropped) when a new one would exceed the bound."""
    memo_entries: int = 256
    """Capacity of each session's ``(k, d)`` -> Graph rewire memo."""

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_sessions < 1:
            raise ValueError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )
        if self.memo_entries < 1:
            raise ValueError(
                f"memo_entries must be >= 1, got {self.memo_entries}"
            )
        if (
            self.default_deadline_ms is not None
            and self.default_deadline_ms <= 0
        ):
            raise ValueError(
                f"default_deadline_ms must be positive, got "
                f"{self.default_deadline_ms}"
            )
