"""Wire protocol of the rewiring service: newline-delimited JSON.

One request per line, one response per line, correlated by a
client-chosen ``id`` so clients may pipeline without waiting::

    -> {"id": 1, "op": "open_session", "spec": {"dataset": "cornell"}}
    <- {"id": 1, "ok": true, "result": {"session": "s0", "num_nodes": 140}}
    -> {"id": 2, "op": "score", "session": "s0", "k": [...], "d": [...]}
    <- {"id": 2, "ok": false, "error": {"code": "overloaded",
                                        "retry_after_ms": 12}}

Operations: ``ping``, ``open_session``, ``rewire``, ``score``,
``close_session``, ``stats``, ``shutdown`` (full field tables in
``docs/serving.md``).  Failures carry a stable machine-readable ``code``
plus any actionable hints (``retry_after_ms`` on shed requests); the
exception classes here are the in-process mirror of those codes, raised
by the server internals and re-raised by the client so local and remote
callers handle the same types.

Integer vectors (the per-node ``k``/``d`` of ``rewire``/``score``) may
be sent either as plain JSON lists or in the compact form
``{"b64": "<base64 of little-endian int64>"}`` — at serving rates the
JSON cost of thousands-of-ints lists dominates small-graph requests, so
the bundled client always sends compact (:func:`encode_array` /
:func:`decode_array`).
"""

from __future__ import annotations

import base64
import json
from typing import Any, Dict, Optional

import numpy as np

__all__ = [
    "DeadlineExceededError",
    "ERROR_CODES",
    "OverloadedError",
    "ServeError",
    "UnknownSessionError",
    "decode_array",
    "decode_line",
    "encode_array",
    "encode_line",
    "error_response",
    "ok_response",
]


class ServeError(Exception):
    """Base of every protocol-level failure; ``code`` is the wire code."""

    code = "error"

    def to_wire(self) -> Dict[str, Any]:
        """The ``error`` object sent on the wire for this failure."""
        return {"code": self.code, "message": str(self)}


class OverloadedError(ServeError):
    """The bounded intake queue is full; retry after ``retry_after_ms``."""

    code = "overloaded"

    def __init__(self, message: str, retry_after_ms: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_ms = float(retry_after_ms)

    def to_wire(self) -> Dict[str, Any]:
        """Error object plus the backoff hint clients should honour."""
        wire = super().to_wire()
        wire["retry_after_ms"] = self.retry_after_ms
        return wire


class DeadlineExceededError(ServeError):
    """The request's deadline expired before (or while) it executed."""

    code = "deadline_exceeded"


class UnknownSessionError(ServeError):
    """The request named a session that is not (or no longer) open."""

    code = "unknown_session"


class BadRequestError(ServeError):
    """The request line was malformed or named an unknown operation."""

    code = "bad_request"


#: Wire code -> exception class, the client's re-raise table.
ERROR_CODES = {
    cls.code: cls
    for cls in (
        ServeError,
        OverloadedError,
        DeadlineExceededError,
        UnknownSessionError,
        BadRequestError,
    )
}


def raise_for_error(error: Dict[str, Any]) -> None:
    """Re-raise a wire ``error`` object as its exception class."""
    code = error.get("code", "error")
    message = error.get("message", code)
    cls = ERROR_CODES.get(code, ServeError)
    if cls is OverloadedError:
        raise OverloadedError(message, error.get("retry_after_ms", 0.0))
    raise cls(message)


# ----------------------------------------------------------------------
# Array encoding
# ----------------------------------------------------------------------
def encode_array(values: np.ndarray) -> Dict[str, str]:
    """The compact wire form of an integer vector (little-endian int64).

    Examples
    --------
    >>> decode_array(encode_array(np.array([1, 2, 3]))).tolist()
    [1, 2, 3]
    """
    data = np.ascontiguousarray(values, dtype="<i8")
    return {"b64": base64.b64encode(data.tobytes()).decode("ascii")}


def decode_array(field: Any) -> np.ndarray:
    """An int64 vector from either wire form (list or ``{"b64": ...}``)."""
    if isinstance(field, dict):
        blob = field.get("b64")
        if not isinstance(blob, str):
            raise BadRequestError(
                "array object must carry a base64 string under 'b64'"
            )
        try:
            raw = base64.b64decode(blob, validate=True)
        except Exception as exc:
            raise BadRequestError(f"invalid base64 array: {exc}") from exc
        return np.frombuffer(raw, dtype="<i8").astype(np.int64)
    try:
        return np.asarray(field, dtype=np.int64)
    except (TypeError, ValueError) as exc:
        raise BadRequestError(
            f"array field must be an integer list or {{'b64': ...}}: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_line(obj: Dict[str, Any]) -> bytes:
    """One wire frame: compact JSON plus the terminating newline."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one frame; raises :class:`BadRequestError` on junk."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise BadRequestError(f"invalid JSON frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise BadRequestError(
            f"frame must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def ok_response(req_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    """A success envelope for request ``req_id``."""
    return {"id": req_id, "ok": True, "result": result}


def error_response(
    req_id: Any, exc: Exception, code: Optional[str] = None
) -> Dict[str, Any]:
    """A failure envelope; non-:class:`ServeError` exceptions map to
    ``internal`` so server bugs never leak tracebacks on the wire."""
    if isinstance(exc, ServeError):
        error = exc.to_wire()
    else:
        error = {"code": code or "internal", "message": str(exc)}
    return {"id": req_id, "ok": False, "error": error}
