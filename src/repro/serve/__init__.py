"""Rewiring-as-a-service: a stdlib-only asyncio serving layer.

Everything the training stack computes per rollout step — entropy-guided
rewires, GNN scoring of candidate topologies — exposed as a long-lived
network service, so interactive clients (dashboards, sweep drivers,
notebook users) share one warm process instead of each paying dataset
load, entropy build and model warm-up per question:

* **Sessions** (:mod:`repro.serve.session`) — ``open_session`` binds a
  client to a :class:`~repro.serve.session.GraphArtifact` (base graph +
  entropy sequences + warmed backbone), deduplicated across sessions so
  two tenants asking about the same dataset/config share one artifact.
  Each session carries its own ``(k, d)`` rewire memo (the shared
  :class:`~repro.core.lru.LRUCache`), and sessions themselves are
  LRU-evicted at the configured bound.
* **Micro-batching** (:mod:`repro.serve.batcher`) — concurrent ``score``
  requests that arrive within one collection window are stacked into a
  single block-diagonal forward
  (:class:`~repro.rl.vector.stacked.StackedGraphBuilder`), the same
  kernel the vectorized env uses, then sliced back per request.  Scores
  are byte-identical to unbatched single-graph evaluation (see
  ``docs/serving.md``).
* **Graceful degradation** — a bounded intake queue sheds load with a
  ``retry_after_ms`` hint instead of growing without bound; per-request
  deadlines are honoured even mid-batch; oversized halos fall back to
  dense evaluation inside the incremental engine.

Run it with ``python -m repro serve`` and talk to it with
:class:`~repro.serve.client.ServeClient` (newline-delimited JSON over
TCP or a unix socket; protocol in :mod:`repro.serve.protocol`).
"""

from .batcher import MicroBatcher
from .client import ServeClient
from .config import ServeConfig
from .protocol import (
    DeadlineExceededError,
    OverloadedError,
    ServeError,
    UnknownSessionError,
)
from .server import RewiringServer
from .session import (
    GraphArtifact,
    GraphSession,
    SessionManager,
    SessionSpec,
    build_artifact,
)

__all__ = [
    "DeadlineExceededError",
    "GraphArtifact",
    "GraphSession",
    "MicroBatcher",
    "OverloadedError",
    "RewiringServer",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "SessionManager",
    "SessionSpec",
    "UnknownSessionError",
    "build_artifact",
]
