"""Agent registry: swap the RL algorithm behind GraphRARE by name."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .a2c import A2C, A2CConfig
from .policy import NodePolicy
from .ppo import PPO, PPOConfig
from .reinforce import Reinforce, ReinforceConfig

Agent = Union[PPO, A2C, Reinforce]

AGENTS = {
    "ppo": (PPO, PPOConfig),
    "a2c": (A2C, A2CConfig),
    "reinforce": (Reinforce, ReinforceConfig),
}


def agent_names() -> list:
    return sorted(AGENTS)


def build_agent(
    name: str,
    policy: NodePolicy,
    config=None,
    rng: Optional[np.random.Generator] = None,
) -> Agent:
    """Instantiate an RL agent by name.

    ``config`` may be an instance of the agent's own config class or None
    (defaults).  A PPOConfig passed to a non-PPO agent is translated field
    by field where names overlap, so :class:`repro.core.RareConfig` can
    carry one config object regardless of the selected algorithm.
    """
    try:
        cls, cfg_cls = AGENTS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown RL algorithm {name!r}; choose from {agent_names()}"
        ) from None
    if config is not None and not isinstance(config, cfg_cls):
        shared = {
            field: getattr(config, field)
            for field in cfg_cls.__dataclass_fields__
            if hasattr(config, field)
        }
        config = cfg_cls(**shared)
    return cls(policy, config, rng=rng)
