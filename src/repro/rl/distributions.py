"""Probability distributions for the PPO policy.

The GraphRARE action space is multi-discrete: one ternary choice
(decrement / keep / increment) per node for ``k`` and for ``d``.  The joint
distribution factorises over components, so log-probabilities and entropies
are sums of per-component categorical terms.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, ops


class Categorical:
    """A batch of categorical distributions parameterised by logits.

    ``logits`` has shape ``(batch, num_choices)``; every method stays inside
    the autograd graph so PPO losses can backpropagate through it.
    """

    def __init__(self, logits: Tensor) -> None:
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
        self.logits = logits
        self.log_probs = ops.log_softmax(logits, axis=-1)

    @property
    def probs(self) -> np.ndarray:
        return np.exp(self.log_probs.data)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one choice per row (outside the autograd graph)."""
        p = self.probs
        cdf = p.cumsum(axis=-1)
        u = rng.random((p.shape[0], 1))
        return (u > cdf).sum(axis=-1).astype(np.int64)

    def log_prob(self, actions: np.ndarray) -> Tensor:
        """Per-row log-probability of ``actions`` (differentiable)."""
        actions = np.asarray(actions, dtype=np.int64)
        one_hot = np.zeros(self.log_probs.shape)
        one_hot[np.arange(len(actions)), actions] = 1.0
        return ops.sum(self.log_probs * Tensor(one_hot), axis=-1)

    def entropy(self) -> Tensor:
        """Per-row entropy (differentiable)."""
        p = ops.softmax(self.logits, axis=-1)
        return -ops.sum(p * self.log_probs, axis=-1)


class MultiDiscreteDistribution:
    """Independent categoricals sharing one logits tensor.

    ``logits`` has shape ``(num_components, num_choices)``; the joint
    log-probability of an action vector is the sum over components, and the
    joint entropy is likewise additive.
    """

    def __init__(self, logits: Tensor) -> None:
        self._cat = Categorical(logits)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return self._cat.sample(rng)

    def log_prob(self, actions: np.ndarray) -> Tensor:
        """Joint log-probability (scalar tensor)."""
        return ops.sum(self._cat.log_prob(actions))

    def entropy(self) -> Tensor:
        """Joint entropy (scalar tensor)."""
        return ops.sum(self._cat.entropy())

    @property
    def probs(self) -> np.ndarray:
        return self._cat.probs
