"""Advantage Actor-Critic (A2C), synchronous single-worker variant.

A middle ground between REINFORCE and PPO: a learned critic provides the
baseline and bootstrapping (via GAE), but the policy update is a single
unclipped gradient step per rollout.  Shares the rollout/update/learn API
with :class:`repro.rl.PPO` — including the vectorized collection path over
:class:`repro.rl.vector.VecEnv` batches and the collection-time truncation
bootstrap — so the GraphRARE framework can swap agents via
``RareConfig.rl_algorithm``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from ..nn import Adam
from .buffer import RolloutBuffer
from .env import Env
from .policy import NodePolicy
from .ppo import (
    AnyRolloutBuffer,
    PPOStats,
    learn_loop,
    mean_buffer_reward,
    rollout_advantages,
    rollout_samples,
)
from .vector.base import VecEnv
from .vector.buffer import BatchedRolloutBuffer
from .vector.rollout import collect_vectorized_rollout


@dataclass
class A2CConfig:
    """Hyper-parameters of the A2C update."""

    lr: float = 3e-3
    gamma: float = 0.99
    gae_lambda: float = 0.95
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    max_grad_norm: float = 0.5
    normalize_advantages: bool = True


class A2C:
    """Single-worker A2C with GAE advantages."""

    def __init__(
        self,
        policy: NodePolicy,
        config: Optional[A2CConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.policy = policy
        self.config = config or A2CConfig()
        self.rng = rng or np.random.default_rng(0)
        self.optimizer = Adam(policy.parameters(), lr=self.config.lr)
        self.history: List[PPOStats] = []
        self._last_obs = None

    # ------------------------------------------------------------------
    def collect_rollout(self, env: Env, num_steps: int) -> RolloutBuffer:
        buffer = RolloutBuffer(
            gamma=self.config.gamma, gae_lambda=self.config.gae_lambda
        )
        obs = env.reset()
        done = False
        for _ in range(num_steps):
            action, log_prob, value = self.policy.act(obs, self.rng)
            next_obs, reward, done, _ = env.step(action)
            buffer.add(obs, action, reward, value, log_prob, done)
            obs = env.reset() if done else next_obs
        self._last_obs = obs
        buffer.set_bootstrap(
            obs, 0.0 if done else self.policy.value(obs).item()
        )
        return buffer

    def collect_vectorized_rollout(
        self, venv: VecEnv, num_steps: int
    ) -> BatchedRolloutBuffer:
        """Batched collection: ``num_steps * B`` transitions in one pass."""
        return collect_vectorized_rollout(
            self.policy,
            venv,
            num_steps,
            self.rng,
            gamma=self.config.gamma,
            gae_lambda=self.config.gae_lambda,
        )

    def update(self, buffer: AnyRolloutBuffer) -> PPOStats:
        """One joint actor-critic gradient step over the rollout."""
        cfg = self.config
        advantages, returns = rollout_advantages(buffer)
        if cfg.normalize_advantages and len(advantages) > 1:
            advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
        observations, actions, _ = rollout_samples(buffer)

        policy_losses, value_losses, entropies = [], [], []
        for idx in range(len(buffer)):
            log_prob, entropy, value = self.policy.evaluate_actions(
                observations[idx], actions[idx]
            )
            policy_loss = -log_prob * advantages[idx]
            value_err = value - returns[idx]
            value_loss = value_err * value_err
            loss = (
                policy_loss + cfg.value_coef * value_loss
                - cfg.entropy_coef * entropy
            )
            self.optimizer.zero_grad()
            loss.backward()
            self._clip_gradients(cfg.max_grad_norm)
            self.optimizer.step()
            policy_losses.append(policy_loss.item())
            value_losses.append(value_loss.item())
            entropies.append(entropy.item())

        stats = PPOStats(
            mean_reward=mean_buffer_reward(buffer),
            policy_loss=float(np.mean(policy_losses)),
            value_loss=float(np.mean(value_losses)),
            entropy=float(np.mean(entropies)),
            num_steps=len(buffer),
        )
        self.history.append(stats)
        return stats

    def _clip_gradients(self, max_norm: float) -> None:
        if max_norm <= 0:
            return
        params = [p for p in self.policy.parameters() if p.grad is not None]
        total = sum(float((p.grad**2).sum()) for p in params)
        norm = np.sqrt(total)
        if norm > max_norm:
            scale = max_norm / (norm + 1e-12)
            for p in params:
                p.grad *= scale

    def learn(
        self,
        env: Union[Env, VecEnv],
        total_steps: int,
        rollout_steps: int = 16,
    ):
        """Alternate collection and updates; accepts plain or batched envs
        (see :meth:`PPO.learn`)."""
        return learn_loop(self, env, total_steps, rollout_steps)
