"""Advantage Actor-Critic (A2C), synchronous single-worker variant.

A middle ground between REINFORCE and PPO: a learned critic provides the
baseline and bootstrapping (via GAE), but the policy update is a single
unclipped gradient step per rollout.  Shares the rollout/update/learn API
with :class:`repro.rl.PPO` so the GraphRARE framework can swap agents via
``RareConfig.rl_algorithm``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..nn import Adam
from .buffer import RolloutBuffer
from .env import Env
from .policy import NodePolicy
from .ppo import PPOStats


@dataclass
class A2CConfig:
    """Hyper-parameters of the A2C update."""

    lr: float = 3e-3
    gamma: float = 0.99
    gae_lambda: float = 0.95
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    max_grad_norm: float = 0.5
    normalize_advantages: bool = True


class A2C:
    """Single-worker A2C with GAE advantages."""

    def __init__(
        self,
        policy: NodePolicy,
        config: Optional[A2CConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.policy = policy
        self.config = config or A2CConfig()
        self.rng = rng or np.random.default_rng(0)
        self.optimizer = Adam(policy.parameters(), lr=self.config.lr)
        self.history: List[PPOStats] = []
        self._last_obs = None

    # ------------------------------------------------------------------
    def collect_rollout(self, env: Env, num_steps: int) -> RolloutBuffer:
        buffer = RolloutBuffer(
            gamma=self.config.gamma, gae_lambda=self.config.gae_lambda
        )
        obs = env.reset()
        for _ in range(num_steps):
            action, log_prob, value = self.policy.act(obs, self.rng)
            next_obs, reward, done, _ = env.step(action)
            buffer.add(obs, action, reward, value, log_prob, done)
            obs = env.reset() if done else next_obs
        self._last_obs = obs
        return buffer

    def update(self, buffer: RolloutBuffer) -> PPOStats:
        """One joint actor-critic gradient step over the rollout."""
        cfg = self.config
        if buffer.dones and buffer.dones[-1]:
            last_value = 0.0
        else:
            last_value = self.policy.value(self._last_obs).item()
        advantages, returns = buffer.compute_advantages(last_value)
        if cfg.normalize_advantages and len(advantages) > 1:
            advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)

        policy_losses, value_losses, entropies = [], [], []
        for idx in range(len(buffer)):
            log_prob, entropy, value = self.policy.evaluate_actions(
                buffer.observations[idx], buffer.actions[idx]
            )
            policy_loss = -log_prob * advantages[idx]
            value_err = value - returns[idx]
            value_loss = value_err * value_err
            loss = (
                policy_loss + cfg.value_coef * value_loss
                - cfg.entropy_coef * entropy
            )
            self.optimizer.zero_grad()
            loss.backward()
            self._clip_gradients(cfg.max_grad_norm)
            self.optimizer.step()
            policy_losses.append(policy_loss.item())
            value_losses.append(value_loss.item())
            entropies.append(entropy.item())

        stats = PPOStats(
            mean_reward=float(np.mean(buffer.rewards)),
            policy_loss=float(np.mean(policy_losses)),
            value_loss=float(np.mean(value_losses)),
            entropy=float(np.mean(entropies)),
            num_steps=len(buffer),
        )
        self.history.append(stats)
        return stats

    def _clip_gradients(self, max_norm: float) -> None:
        if max_norm <= 0:
            return
        params = [p for p in self.policy.parameters() if p.grad is not None]
        total = sum(float((p.grad**2).sum()) for p in params)
        norm = np.sqrt(total)
        if norm > max_norm:
            scale = max_norm / (norm + 1e-12)
            for p in params:
                p.grad *= scale

    def learn(self, env: Env, total_steps: int, rollout_steps: int = 16):
        collected = 0
        while collected < total_steps:
            steps = min(rollout_steps, total_steps - collected)
            buffer = self.collect_rollout(env, steps)
            self.update(buffer)
            collected += steps
        return self.history
