"""Proximal Policy Optimization (Schulman et al., 2017) [35].

The clipped-surrogate variant with GAE, value-loss and entropy-bonus terms,
as implemented by Stable-Baselines3 [33], which the paper uses.  Works with
any :class:`repro.rl.env.Env` — and, through
:func:`repro.rl.vector.collect_vectorized_rollout`, with any
:class:`repro.rl.vector.VecEnv`: :meth:`PPO.learn` detects a batched env by
its ``num_envs`` attribute and collects ``B`` episodes per rollout in one
vectorized pass.  The GraphRARE topology environments live in
``repro.core`` (sequential) and ``repro.rl.vector`` (batched).

Truncation bootstrap: both collection paths record the value estimate of
the state *following* the final transition on the buffer itself
(:meth:`RolloutBuffer.set_bootstrap`), zeroed when that transition ended an
episode — a rollout cut mid-episode therefore bootstraps
``compute_advantages(last_value=...)`` from the value net rather than an
implicit 0.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..nn import Adam
from ..tensor import ops
from .buffer import RolloutBuffer
from .env import Env
from .policy import NodePolicy
from .vector.base import VecEnv
from .vector.buffer import BatchedRolloutBuffer
from .vector.rollout import collect_vectorized_rollout

AnyRolloutBuffer = Union[RolloutBuffer, BatchedRolloutBuffer]


@dataclass
class PPOConfig:
    """Hyper-parameters of the PPO update."""

    lr: float = 3e-3
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_range: float = 0.2
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    update_epochs: int = 4
    max_grad_norm: float = 0.5
    normalize_advantages: bool = True


@dataclass
class PPOStats:
    """Diagnostics from one learning iteration."""

    mean_reward: float
    policy_loss: float
    value_loss: float
    entropy: float
    num_steps: int


def rollout_samples(
    buffer: AnyRolloutBuffer,
) -> Tuple[Sequence, Sequence, Sequence]:
    """``(observations, actions, old_log_probs)`` as flat per-sample
    sequences, for either buffer flavour.

    Batched buffers flatten time-major (``i = t * B + b``); with ``B = 1``
    the sample order is exactly the single-env time order, so the two
    collection paths feed the update loop identical streams.
    """
    if isinstance(buffer, BatchedRolloutBuffer):
        return (
            buffer.flat_observations(),
            buffer.flat_actions(),
            buffer.flat_log_probs(),
        )
    return buffer.observations, buffer.actions, buffer.log_probs


def rollout_advantages(
    buffer: AnyRolloutBuffer,
) -> Tuple[np.ndarray, np.ndarray]:
    """Flat GAE ``(advantages, returns)`` with the truncation bootstrap.

    Collector-built buffers carry their bootstrap (recorded by
    ``set_bootstrap`` at collection time); a hand-built buffer without one
    gets the single-env default of 0.0.
    """
    if isinstance(buffer, BatchedRolloutBuffer):
        return buffer.compute_flat_advantages()
    last_value = buffer.last_value if buffer.last_value is not None else 0.0
    return buffer.compute_advantages(last_value)


def learn_loop(agent, env, total_steps: int, rollout_steps: int):
    """The shared collect/update driver behind ``PPO.learn``/``A2C.learn``.

    Dispatches on the env flavour: a plain :class:`Env` collects
    ``rollout_steps`` sequential transitions per iteration, a
    :class:`~repro.rl.vector.VecEnv` (detected by ``num_envs``) collects
    ``rollout_steps * B`` in one batched pass (the final iteration shrinks
    its step count so the batch never overshoots ``total_steps`` by more
    than ``B - 1`` transitions).
    """
    num_envs = getattr(env, "num_envs", None)
    collected = 0
    while collected < total_steps:
        if num_envs is None:
            steps = min(rollout_steps, total_steps - collected)
            buffer = agent.collect_rollout(env, steps)
        else:
            remaining = total_steps - collected
            steps = min(rollout_steps, -(-remaining // num_envs))
            buffer = agent.collect_vectorized_rollout(env, steps)
        agent.update(buffer)
        collected += len(buffer)
    return agent.history


def mean_buffer_reward(buffer: AnyRolloutBuffer) -> float:
    """Mean per-transition reward over everything stored."""
    if isinstance(buffer, BatchedRolloutBuffer):
        return float(buffer.flat_rewards().mean())
    return float(np.mean(buffer.rewards))


class PPO:
    """PPO driver: collect a rollout from an env, then update the policy."""

    def __init__(
        self,
        policy: NodePolicy,
        config: Optional[PPOConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.policy = policy
        self.config = config or PPOConfig()
        self.rng = rng or np.random.default_rng(0)
        self.optimizer = Adam(policy.parameters(), lr=self.config.lr)
        self.history: List[PPOStats] = []
        self._last_obs: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def collect_rollout(self, env: Env, num_steps: int) -> RolloutBuffer:
        """Run the policy in ``env`` for ``num_steps`` transitions."""
        buffer = RolloutBuffer(
            gamma=self.config.gamma, gae_lambda=self.config.gae_lambda
        )
        obs = env.reset()
        done = False
        for _ in range(num_steps):
            action, log_prob, value = self.policy.act(obs, self.rng)
            next_obs, reward, done, _ = env.step(action)
            buffer.add(obs, action, reward, value, log_prob, done)
            obs = env.reset() if done else next_obs
        self._last_obs = obs
        # Truncation bootstrap, recorded at collection time: zero when the
        # rollout ended exactly at an episode boundary, otherwise the value
        # net's estimate of the next (unfinished) state.
        buffer.set_bootstrap(
            obs, 0.0 if done else self.policy.value(obs).item()
        )
        return buffer

    def collect_vectorized_rollout(
        self, venv: VecEnv, num_steps: int
    ) -> BatchedRolloutBuffer:
        """Run the policy in a batched env for ``num_steps`` vector steps
        (``num_steps * B`` transitions)."""
        return collect_vectorized_rollout(
            self.policy,
            venv,
            num_steps,
            self.rng,
            gamma=self.config.gamma,
            gae_lambda=self.config.gae_lambda,
        )

    # ------------------------------------------------------------------
    def update(self, buffer: AnyRolloutBuffer) -> PPOStats:
        """One PPO learning phase over the collected rollout (either
        flavour)."""
        cfg = self.config
        advantages, returns = rollout_advantages(buffer)
        if cfg.normalize_advantages and len(advantages) > 1:
            advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
        observations, actions, old_log_probs = rollout_samples(buffer)

        policy_losses, value_losses, entropies = [], [], []
        for _ in range(cfg.update_epochs):
            order = self.rng.permutation(len(buffer))
            for idx in order:
                obs = observations[idx]
                action = actions[idx]
                old_log_prob = old_log_probs[idx]
                adv = advantages[idx]
                ret = returns[idx]

                log_prob, entropy, value = self.policy.evaluate_actions(obs, action)
                ratio = ops.exp(log_prob - old_log_prob)
                surr1 = ratio * adv
                surr2 = ops.clamp(ratio, 1.0 - cfg.clip_range, 1.0 + cfg.clip_range) * adv
                policy_loss = -ops.minimum(surr1, surr2)
                value_err = value - ret
                value_loss = value_err * value_err
                loss = (
                    policy_loss
                    + cfg.value_coef * value_loss
                    - cfg.entropy_coef * entropy
                )

                self.optimizer.zero_grad()
                loss.backward()
                self._clip_gradients(cfg.max_grad_norm)
                self.optimizer.step()

                policy_losses.append(policy_loss.item())
                value_losses.append(value_loss.item())
                entropies.append(entropy.item())

        stats = PPOStats(
            mean_reward=mean_buffer_reward(buffer),
            policy_loss=float(np.mean(policy_losses)),
            value_loss=float(np.mean(value_losses)),
            entropy=float(np.mean(entropies)),
            num_steps=len(buffer),
        )
        self.history.append(stats)
        return stats

    def _clip_gradients(self, max_norm: float) -> None:
        """Global-norm gradient clipping, as in SB3."""
        if max_norm <= 0:
            return
        total = 0.0
        params = [p for p in self.policy.parameters() if p.grad is not None]
        for p in params:
            total += float((p.grad**2).sum())
        norm = np.sqrt(total)
        if norm > max_norm:
            scale = max_norm / (norm + 1e-12)
            for p in params:
                p.grad *= scale

    # ------------------------------------------------------------------
    def learn(
        self,
        env: Union[Env, VecEnv],
        total_steps: int,
        rollout_steps: int = 16,
    ) -> List[PPOStats]:
        """Alternate rollout collection and updates until ``total_steps``.

        ``env`` may be a plain :class:`Env` or a batched
        :class:`~repro.rl.vector.VecEnv` (detected by ``num_envs``); a
        batched env collects ``rollout_steps * B`` transitions per
        iteration.
        """
        return learn_loop(self, env, total_steps, rollout_steps)
