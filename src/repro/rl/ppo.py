"""Proximal Policy Optimization (Schulman et al., 2017) [35].

The clipped-surrogate variant with GAE, value-loss and entropy-bonus terms,
as implemented by Stable-Baselines3 [33], which the paper uses.  Works with
any :class:`repro.rl.env.Env`; the GraphRARE topology environment lives in
``repro.core``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..nn import Adam
from ..tensor import Tensor, ops
from .buffer import RolloutBuffer
from .env import Env
from .policy import NodePolicy


@dataclass
class PPOConfig:
    """Hyper-parameters of the PPO update."""

    lr: float = 3e-3
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_range: float = 0.2
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    update_epochs: int = 4
    max_grad_norm: float = 0.5
    normalize_advantages: bool = True


@dataclass
class PPOStats:
    """Diagnostics from one learning iteration."""

    mean_reward: float
    policy_loss: float
    value_loss: float
    entropy: float
    num_steps: int


class PPO:
    """PPO driver: collect a rollout from an env, then update the policy."""

    def __init__(
        self,
        policy: NodePolicy,
        config: Optional[PPOConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.policy = policy
        self.config = config or PPOConfig()
        self.rng = rng or np.random.default_rng(0)
        self.optimizer = Adam(policy.parameters(), lr=self.config.lr)
        self.history: List[PPOStats] = []

    # ------------------------------------------------------------------
    def collect_rollout(self, env: Env, num_steps: int) -> RolloutBuffer:
        """Run the policy in ``env`` for ``num_steps`` transitions."""
        buffer = RolloutBuffer(
            gamma=self.config.gamma, gae_lambda=self.config.gae_lambda
        )
        obs = env.reset()
        for _ in range(num_steps):
            action, log_prob, value = self.policy.act(obs, self.rng)
            next_obs, reward, done, _ = env.step(action)
            buffer.add(obs, action, reward, value, log_prob, done)
            obs = env.reset() if done else next_obs
        self._last_obs = obs
        return buffer

    # ------------------------------------------------------------------
    def update(self, buffer: RolloutBuffer) -> PPOStats:
        """One PPO learning phase over the collected rollout."""
        cfg = self.config
        if buffer.dones and buffer.dones[-1]:
            last_value = 0.0
        else:
            last_value = self.policy.value(self._last_obs).item()
        advantages, returns = buffer.compute_advantages(last_value)
        if cfg.normalize_advantages and len(advantages) > 1:
            advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)

        policy_losses, value_losses, entropies = [], [], []
        for _ in range(cfg.update_epochs):
            order = self.rng.permutation(len(buffer))
            for idx in order:
                obs = buffer.observations[idx]
                action = buffer.actions[idx]
                old_log_prob = buffer.log_probs[idx]
                adv = advantages[idx]
                ret = returns[idx]

                log_prob, entropy, value = self.policy.evaluate_actions(obs, action)
                ratio = ops.exp(log_prob - old_log_prob)
                surr1 = ratio * adv
                surr2 = ops.clamp(ratio, 1.0 - cfg.clip_range, 1.0 + cfg.clip_range) * adv
                policy_loss = -ops.minimum(surr1, surr2)
                value_err = value - ret
                value_loss = value_err * value_err
                loss = (
                    policy_loss
                    + cfg.value_coef * value_loss
                    - cfg.entropy_coef * entropy
                )

                self.optimizer.zero_grad()
                loss.backward()
                self._clip_gradients(cfg.max_grad_norm)
                self.optimizer.step()

                policy_losses.append(policy_loss.item())
                value_losses.append(value_loss.item())
                entropies.append(entropy.item())

        stats = PPOStats(
            mean_reward=float(np.mean(buffer.rewards)),
            policy_loss=float(np.mean(policy_losses)),
            value_loss=float(np.mean(value_losses)),
            entropy=float(np.mean(entropies)),
            num_steps=len(buffer),
        )
        self.history.append(stats)
        return stats

    def _clip_gradients(self, max_norm: float) -> None:
        """Global-norm gradient clipping, as in SB3."""
        if max_norm <= 0:
            return
        total = 0.0
        params = [p for p in self.policy.parameters() if p.grad is not None]
        for p in params:
            total += float((p.grad**2).sum())
        norm = np.sqrt(total)
        if norm > max_norm:
            scale = max_norm / (norm + 1e-12)
            for p in params:
                p.grad *= scale

    # ------------------------------------------------------------------
    def learn(self, env: Env, total_steps: int, rollout_steps: int = 16) -> List[PPOStats]:
        """Alternate rollout collection and updates until ``total_steps``."""
        collected = 0
        while collected < total_steps:
            steps = min(rollout_steps, total_steps - collected)
            buffer = self.collect_rollout(env, steps)
            self.update(buffer)
            collected += steps
        return self.history
