"""Deep RL substrate: PPO/A2C/REINFORCE with multi-discrete actions
(replaces OpenAI Gym + Stable-Baselines3).

The :mod:`repro.rl.vector` subpackage adds the vectorized execution layer:
batched envs (:class:`VecEnv`, :class:`SyncVecEnv`, ``VecTopologyEnv``),
preallocated :class:`BatchedRolloutBuffer` storage with batch-axis GAE, and
the :func:`collect_vectorized_rollout` path PPO/A2C use to collect ``B``
episodes per rollout in one pass.
"""

from .a2c import A2C, A2CConfig
from .buffer import RolloutBuffer
from .distributions import Categorical, MultiDiscreteDistribution
from .env import Env, MultiDiscreteSpace
from .policy import NodePolicy
from .ppo import PPO, PPOConfig, PPOStats
from .registry import AGENTS, agent_names, build_agent
from .reinforce import Reinforce, ReinforceConfig
from .vector import (
    BatchedRolloutBuffer,
    SyncVecEnv,
    VecEnv,
    collect_vectorized_rollout,
)

__all__ = [
    "A2C",
    "A2CConfig",
    "AGENTS",
    "BatchedRolloutBuffer",
    "Categorical",
    "Env",
    "MultiDiscreteDistribution",
    "MultiDiscreteSpace",
    "NodePolicy",
    "PPO",
    "PPOConfig",
    "PPOStats",
    "Reinforce",
    "ReinforceConfig",
    "RolloutBuffer",
    "SyncVecEnv",
    "VecEnv",
    "VecTopologyEnv",
    "agent_names",
    "build_agent",
    "collect_vectorized_rollout",
]


def __getattr__(name: str):
    # Lazy: VecTopologyEnv pulls in repro.core, which imports this package.
    if name == "VecTopologyEnv":
        from .vector.topology import VecTopologyEnv

        return VecTopologyEnv
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
