"""Deep RL substrate: PPO/A2C/REINFORCE with multi-discrete actions
(replaces OpenAI Gym + Stable-Baselines3)."""

from .a2c import A2C, A2CConfig
from .buffer import RolloutBuffer
from .distributions import Categorical, MultiDiscreteDistribution
from .env import Env, MultiDiscreteSpace
from .policy import NodePolicy
from .ppo import PPO, PPOConfig, PPOStats
from .registry import AGENTS, agent_names, build_agent
from .reinforce import Reinforce, ReinforceConfig

__all__ = [
    "A2C",
    "A2CConfig",
    "AGENTS",
    "Categorical",
    "Env",
    "MultiDiscreteDistribution",
    "MultiDiscreteSpace",
    "NodePolicy",
    "PPO",
    "PPOConfig",
    "PPOStats",
    "Reinforce",
    "ReinforceConfig",
    "RolloutBuffer",
    "agent_names",
    "build_agent",
]
