"""Minimal environment interface (replaces OpenAI Gym [2]).

Only the pieces the paper's MDP needs: a reset/step contract and a
multi-discrete action space (``A = [a^k_1..a^k_N, a^d_1..a^d_N]`` with three
choices per component, Sec. IV-B).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np


class MultiDiscreteSpace:
    """A vector of independent discrete components.

    ``nvec[i]`` is the number of choices for component ``i``.  Observations
    of the GraphRARE topology MDP are per-node feature rows; actions are
    integer vectors with one entry per component.
    """

    def __init__(self, nvec) -> None:
        self.nvec = np.asarray(nvec, dtype=np.int64)
        if self.nvec.ndim != 1 or (self.nvec < 1).any():
            raise ValueError("nvec must be a 1-D vector of positive ints")

    @property
    def num_components(self) -> int:
        return len(self.nvec)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """A uniformly random action."""
        return rng.integers(0, self.nvec)

    def contains(self, action) -> bool:
        action = np.asarray(action)
        return (
            action.shape == self.nvec.shape
            and np.issubdtype(action.dtype, np.integer)
            and (action >= 0).all()
            and (action < self.nvec).all()
        )

    def __repr__(self) -> str:
        uniq = np.unique(self.nvec)
        if len(uniq) == 1:
            return f"MultiDiscrete({len(self.nvec)} x {uniq[0]})"
        return f"MultiDiscrete({self.nvec.tolist()})"


class Env:
    """The classic step/reset contract.

    Observations are arrays of shape ``(num_components_over_2?, features)``
    defined by the concrete environment; ``step`` returns
    ``(obs, reward, done, info)``.  Environments with internal randomness
    should accept an optional ``seed`` keyword on ``reset`` (gym-style) so
    the vectorized wrappers in :mod:`repro.rl.vector` can hand each episode
    an independent spawned stream.
    """

    action_space: MultiDiscreteSpace

    def reset(self) -> np.ndarray:
        raise NotImplementedError

    def step(self, action: np.ndarray) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        raise NotImplementedError
