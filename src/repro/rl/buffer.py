"""Rollout storage with Generalised Advantage Estimation.

The batched twin — preallocated ``(T, B, ...)`` storage with GAE vectorized
over the batch axis — lives in :mod:`repro.rl.vector.buffer`; its per-episode
results are byte-identical to this buffer's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass
class RolloutBuffer:
    """Trajectory storage for one or more episodes of the topology MDP."""

    gamma: float = 0.99
    gae_lambda: float = 0.95
    observations: List[np.ndarray] = field(default_factory=list)
    actions: List[np.ndarray] = field(default_factory=list)
    rewards: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    log_probs: List[float] = field(default_factory=list)
    dones: List[bool] = field(default_factory=list)
    last_obs: Optional[np.ndarray] = None
    """Observation following the final stored transition (set by the
    collectors; ``None`` for hand-built buffers)."""
    last_value: Optional[float] = None
    """Truncation bootstrap: the value estimate of :attr:`last_obs` at
    collection time, zero when the final transition ended an episode.
    ``None`` means no bootstrap was recorded (hand-built buffer)."""

    def set_bootstrap(self, last_obs: np.ndarray, last_value: float) -> None:
        """Record the truncation bootstrap at collection time.

        A rollout cut mid-episode must bootstrap the unfinished return from
        the value net; storing it here (instead of recomputing at update
        time from agent-private state) makes the buffer self-contained.
        """
        self.last_obs = np.asarray(last_obs)
        self.last_value = float(last_value)

    def add(
        self,
        obs: np.ndarray,
        action: np.ndarray,
        reward: float,
        value: float,
        log_prob: float,
        done: bool,
    ) -> None:
        self.observations.append(np.asarray(obs))
        self.actions.append(np.asarray(action))
        self.rewards.append(float(reward))
        self.values.append(float(value))
        self.log_probs.append(float(log_prob))
        self.dones.append(bool(done))

    def __len__(self) -> int:
        return len(self.rewards)

    def clear(self) -> None:
        for lst in (
            self.observations,
            self.actions,
            self.rewards,
            self.values,
            self.log_probs,
            self.dones,
        ):
            lst.clear()
        self.last_obs = None
        self.last_value = None

    def compute_advantages(self, last_value: float = 0.0) -> tuple:
        """GAE(lambda) advantages and discounted returns.

        ``last_value`` bootstraps the value of the state following the final
        transition (zero when that transition ended an episode).
        Returns ``(advantages, returns)`` as float arrays.
        """
        n = len(self)
        if n == 0:
            raise ValueError("cannot compute advantages of an empty buffer")
        advantages = np.zeros(n)
        gae = 0.0
        for t in reversed(range(n)):
            if self.dones[t]:
                next_value = 0.0
                next_non_terminal = 0.0
            else:
                next_value = self.values[t + 1] if t + 1 < n else last_value
                next_non_terminal = 1.0
            delta = (
                self.rewards[t]
                + self.gamma * next_value * next_non_terminal
                - self.values[t]
            )
            gae = delta + self.gamma * self.gae_lambda * next_non_terminal * gae
            advantages[t] = gae
        returns = advantages + np.asarray(self.values)
        return advantages, returns
