"""Rollout storage with Generalised Advantage Estimation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np


@dataclass
class RolloutBuffer:
    """Trajectory storage for one or more episodes of the topology MDP."""

    gamma: float = 0.99
    gae_lambda: float = 0.95
    observations: List[np.ndarray] = field(default_factory=list)
    actions: List[np.ndarray] = field(default_factory=list)
    rewards: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    log_probs: List[float] = field(default_factory=list)
    dones: List[bool] = field(default_factory=list)

    def add(
        self,
        obs: np.ndarray,
        action: np.ndarray,
        reward: float,
        value: float,
        log_prob: float,
        done: bool,
    ) -> None:
        self.observations.append(np.asarray(obs))
        self.actions.append(np.asarray(action))
        self.rewards.append(float(reward))
        self.values.append(float(value))
        self.log_probs.append(float(log_prob))
        self.dones.append(bool(done))

    def __len__(self) -> int:
        return len(self.rewards)

    def clear(self) -> None:
        for lst in (
            self.observations,
            self.actions,
            self.rewards,
            self.values,
            self.log_probs,
            self.dones,
        ):
            lst.clear()

    def compute_advantages(self, last_value: float = 0.0) -> tuple:
        """GAE(lambda) advantages and discounted returns.

        ``last_value`` bootstraps the value of the state following the final
        transition (zero when that transition ended an episode).
        Returns ``(advantages, returns)`` as float arrays.
        """
        n = len(self)
        if n == 0:
            raise ValueError("cannot compute advantages of an empty buffer")
        advantages = np.zeros(n)
        gae = 0.0
        for t in reversed(range(n)):
            if self.dones[t]:
                next_value = 0.0
                next_non_terminal = 0.0
            else:
                next_value = self.values[t + 1] if t + 1 < n else last_value
                next_non_terminal = 1.0
            delta = (
                self.rewards[t]
                + self.gamma * next_value * next_non_terminal
                - self.values[t]
            )
            gae = delta + self.gamma * self.gae_lambda * next_non_terminal * gae
            advantages[t] = gae
        returns = advantages + np.asarray(self.values)
        return advantages, returns
