"""Vectorized rollout subsystem: batched envs + batched GAE storage.

Public surface:

* :class:`VecEnv` — the batched step/reset/autoreset contract.
* :class:`SyncVecEnv` — reference twin: B plain envs stepped in a loop.
* :class:`VecTopologyEnv` — the batched GraphRARE topology MDP (shared
  base CSR, cross-env rewire memo, stacked reward evaluation).
* :class:`BatchedRolloutBuffer` — preallocated ``(T, B, ...)`` storage
  with vectorized GAE over the batch axis.
* :func:`collect_vectorized_rollout` — the collection loop PPO/A2C use.

``VecTopologyEnv`` is exported lazily: it depends on :mod:`repro.core`,
which itself imports :mod:`repro.rl` — deferring the import keeps the
package graph acyclic while ``from repro.rl.vector import VecTopologyEnv``
still works.
"""

from .base import VecEnv
from .buffer import BatchedRolloutBuffer
from .rollout import collect_vectorized_rollout
from .stacked import StackedGraphBuilder
from .sync import SyncVecEnv

__all__ = [
    "BatchedRolloutBuffer",
    "StackedGraphBuilder",
    "SyncVecEnv",
    "VecEnv",
    "VecTopologyEnv",
    "collect_vectorized_rollout",
]


def __getattr__(name: str):
    if name == "VecTopologyEnv":
        from .topology import VecTopologyEnv

        return VecTopologyEnv
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
