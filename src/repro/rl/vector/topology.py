"""Batched topology-optimisation MDP: ``B`` episodes as one rollout.

:class:`VecTopologyEnv` steps ``B`` independent episodes of the GraphRARE
MDP (Sec. IV-B) against one shared, immutable base-graph CSR.  What the
sequential :class:`~repro.core.env.TopologyEnv` does per episode in Python,
this layer does once per batched step:

* **Observations** — the static columns (degree, candidate availability,
  entropy summaries) are computed once via
  :func:`repro.core.env.observation_template`; each step only rewrites the
  two ``k``/``d`` state columns of the stacked ``(B, N, OBS_DIM)`` array.
* **State clamping** — one broadcasted
  :func:`repro.core.rewire.clamp_state_batch` call over ``(B, N)`` arrays.
* **Rewiring** — per-episode delta rewires against the shared base edge-key
  array, memoised in one cross-episode *and* cross-env ``(k, d)`` cache, so
  any episode revisiting a state another episode produced gets the exact
  same :class:`Graph` object (and its cached propagation matrices) free.
* **Reward evaluation** — one GNN forward over a block-diagonal stacked
  graph (``B * N`` nodes, per-episode blocks, shared tiled features) scores
  every live episode in a single call; per-episode accuracy and
  cross-entropy fall out of segment reductions on the stacked logits.
  With ``config.incremental_reward`` the stacked graph additionally
  carries the block-diagonal union of the per-episode edge deltas, so the
  incremental engine (:mod:`repro.gnn.incremental`) re-evaluates only the
  blocks' edit halos against cached stacked-base logits.
* **Autoreset** — gym-style: finished episodes restart immediately, the
  terminal observation and an episode summary ride along in the per-episode
  ``info`` dicts.

Batch semantics where the sequential env is inherently serial: all
episodes are scored under the model state at the start of the step; record
topologies (Algorithm 1 lines 10-13) are then processed in episode order,
each co-training burst bumping an internal model version.  With ``B = 1``
every step is byte-identical to ``TopologyEnv`` — the equivalence tests
hold the two paths together.  With ``B > 1`` the stacked forward may differ
from per-episode forwards in the last ulp (BLAS blocking over the larger
matrices); pass ``reward_batching="loop"`` for bit-exact per-episode
evaluation at batch width.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ...core.env import (
    fill_observation,
    observation_template,
    reward_metrics,
)
from ...core.lru import LRUCache
from ...core.rewire import clamp_state_batch, rewire_graph, state_bounds
from ...gnn.incremental import IncrementalEvaluator
from ...graph import Graph, homophily_ratio
from ...nn import macro_auc
from ...telemetry import get_telemetry
from ..env import MultiDiscreteSpace
from .base import VecEnv
from .stacked import STACKED_CACHE_LIMIT, StackedGraphBuilder


class VecTopologyEnv(VecEnv):
    """Vectorized :class:`~repro.core.env.TopologyEnv`.

    Parameters mirror the sequential env plus:

    num_envs:
        ``B``, the number of parallel episodes.
    seed:
        Base seed; per-episode generators are spawned from one
        :class:`numpy.random.SeedSequence`, so episode ``b``'s stream is
        identical for any batch width ``> b``.
    reward_batching:
        ``"auto"`` (stacked forward when ``B > 1``, per-episode loop at
        ``B = 1``), ``"stacked"``, or ``"loop"``.
    """

    def __init__(
        self,
        graph: Graph,
        sequences,
        model,
        trainer,
        split,
        config,
        num_envs: int = 1,
        co_train: bool = True,
        seed: Optional[int] = None,
        reward_batching: str = "auto",
    ) -> None:
        if num_envs < 1:
            raise ValueError(f"num_envs must be >= 1, got {num_envs}")
        if reward_batching not in ("auto", "stacked", "loop"):
            raise ValueError(
                f"unknown reward_batching {reward_batching!r}; "
                "choose from 'auto', 'stacked', 'loop'"
            )
        self.base_graph = graph
        self.sequences = sequences
        self.model = model
        self.trainer = trainer
        self.split = split
        self.config = config
        self.co_train = co_train
        self.num_envs = int(num_envs)
        self.reward_batching = reward_batching

        n = graph.num_nodes
        self.action_space = MultiDiscreteSpace([3] * (2 * n))
        self.seed(seed)

        # --- shared static structures ---------------------------------
        self._template = observation_template(graph, sequences, config)
        self._state_bounds = state_bounds(
            graph, sequences, config.k_max, config.d_max
        )
        train = np.asarray(split.train)
        if train.dtype == bool:
            train = np.flatnonzero(train)
        self._train_idx = train.astype(np.int64)
        self._train_labels = (
            graph.labels[self._train_idx] if graph.labels is not None else None
        )
        B = self.num_envs
        self._stacked_features = (
            np.tile(graph.features, (B, 1)) if graph.features is not None else None
        )
        self._stacked_labels = (
            np.tile(graph.labels, B) if graph.labels is not None else None
        )

        # --- shared cross-env/cross-episode rewire memo ---------------
        # One shared LRUCache (repro.core.lru) with the sequential env's
        # accounting: per-instance counters behind ``rewire_memo_stats``,
        # mirrored into the active session's ``env.rewire_memo.*``
        # aggregates; ``_rewire_hits`` / ``_rewire_misses`` remain as
        # read-only properties.  ``_rewire_cache_limit`` stays a mutable
        # attribute (tests shrink it post-construction) and is passed per
        # ``put`` call.
        self._tel = get_telemetry()
        self._rewire_cache_limit = config.rewire_memo_entries * self.num_envs
        self._rewire_cache = LRUCache(
            self._rewire_cache_limit,
            counter_prefix="env.rewire_memo",
            tel=self._tel,
        )
        self.rewire_memo_stats = self._rewire_cache.stats

        # --- incremental reward engine --------------------------------
        # One evaluator over the delta root (the base graph, or the graph
        # it was derived from — rewire deltas collapse to the root) for
        # per-episode scoring, and per-width stacked evaluators inside the
        # StackedGraphBuilder for the batched forward; both patch matrices
        # / halo-evaluate from the per-episode deltas the rewire engine
        # records, for any backbone with a registered halo plan (GCN,
        # GraphSAGE, GAT, H2GCN, MixHop, user plans) — no backbone gate;
        # plan-less backbones fall back inside the evaluator.  The stacked
        # root (B copies of its edge keys) and its evaluator are built
        # lazily on the first stacked evaluation — reward_batching="loop"
        # never pays for them.
        self._delta_root: Graph = (
            graph.delta.base if graph.delta is not None else graph
        )
        self._inc: Optional[IncrementalEvaluator] = (
            IncrementalEvaluator(
                model, self._delta_root,
                max_halo_frac=config.max_halo_frac,
            )
            if config.incremental_reward
            else None
        )
        self._stack = StackedGraphBuilder(
            graph, model, max_width=B,
            incremental=self._inc is not None,
            max_halo_frac=config.max_halo_frac,
            cache_limit=STACKED_CACHE_LIMIT,
        )
        self._stack.set_tiled(B, self._stacked_features, self._stacked_labels)

        # --- live churn (docs/streaming.md) ---------------------------
        # One shared stream for the whole batch (all episodes live on the
        # same drifting base); with a fixed StreamConfig seed the event
        # trace is identical to the sequential env's, which the churn
        # parity suite pins down.
        self._stream = None
        self._churn = None
        self._online = None
        if config.stream is not None:
            from ...stream import OnlineEvaluator, StreamingGraph, make_stream

            self._churn = make_stream(graph, config.stream)
            self._stream = StreamingGraph(
                graph,
                rebase_threshold=config.stream.rebase_threshold,
                tel=self._tel,
            )
            self._online = OnlineEvaluator(graph, window=config.stream.window)

        # --- global co-training record (one shared model) -------------
        self.best_acc = 0.0
        self.best_graph: Graph = graph
        self._model_version = 0
        self._base_metrics_cache: Optional[Tuple[int, float, float]] = None

        # --- per-episode logs (accumulate across episodes, like the
        #     sequential env's ``history``) ----------------------------
        self.histories: List[List[Dict[str, float]]] = [[] for _ in range(B)]
        self._steps_total = np.zeros(B, dtype=np.int64)

        self.reset()

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------
    def seed(self, seed: Optional[int] = None) -> List[np.random.Generator]:
        """Spawn one independent generator per episode from a base seed."""
        self._seed_seq = np.random.SeedSequence(seed)
        children = self._seed_seq.spawn(self.num_envs)
        self.rngs = [np.random.default_rng(c) for c in children]
        return self.rngs

    def sample_actions(self) -> np.ndarray:
        """One random action per episode from its own spawned stream."""
        return np.stack(
            [self.action_space.sample(rng) for rng in self.rngs]
        )

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def _rewire_hits(self) -> int:
        """Back-compat integer view of the memo hit counter."""
        return self._rewire_cache.hits

    @property
    def _rewire_misses(self) -> int:
        """Back-compat integer view of the memo miss counter."""
        return self._rewire_cache.misses

    def _metrics_single(self, graph: Graph) -> Tuple[float, float]:
        """Sequential-env-identical (score, loss) for one episode graph."""
        with self._tel.span("env.reward", hist="rl.reward_s"):
            return reward_metrics(
                self.model, graph, self.split.train, self.config.reward,
                self._inc,
            )

    def _base_metrics(self) -> Tuple[float, float]:
        """Metrics of the base graph under the current model, memoised per
        model version (resets re-score it after every co-training burst,
        never otherwise)."""
        cache = self._base_metrics_cache
        if cache is None or cache[0] != self._model_version:
            score, loss = self._metrics_single(self.base_graph)
            self._base_metrics_cache = (self._model_version, score, loss)
            return score, loss
        return cache[1], cache[2]

    def _stacked_graph(self, graphs: List[Graph]) -> Graph:
        """Block-diagonal union of the per-episode graphs (delegates to
        the shared :class:`~repro.rl.vector.stacked.StackedGraphBuilder`)."""
        return self._stack.stacked_graph(graphs)

    def _get_stacked_base(self) -> Graph:
        """``B`` block-diagonal copies of the delta root — the reference
        topology the stacked incremental evaluator caches logits for."""
        return self._stack.stacked_base(self.num_envs)

    @property
    def _inc_stacked(self) -> Optional[IncrementalEvaluator]:
        """The builder's stacked evaluator at batch width (``None`` until
        the first incremental stacked evaluation builds it)."""
        if self._inc is None:
            return None
        return self._stack._incs.get(self.num_envs)

    def _stacked_metrics(
        self, graphs: List[Graph]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(scores, losses) of every episode from one stacked forward."""
        per_env = self._stack.stacked_logits(graphs)

        B, n = self.num_envs, self.base_graph.num_nodes
        sub = per_env[:, self._train_idx, :]  # (B, M, C)
        y = self._train_labels
        m = self._train_idx.shape[0]
        if m == 0:
            return np.zeros(B), np.zeros(B)
        shifted = sub - sub.max(axis=-1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        log_probs = shifted - log_z
        losses = -log_probs[:, np.arange(m), y].mean(axis=1)
        if self.config.reward == "auc":
            scores = np.array(
                [
                    macro_auc(per_env[b], self.base_graph.labels, self._train_idx)
                    for b in range(B)
                ]
            )
        else:
            scores = (sub.argmax(axis=-1) == y[None, :]).mean(axis=1)
        return scores.astype(np.float64), losses.astype(np.float64)

    def _batch_metrics(
        self, graphs: List[Graph]
    ) -> Tuple[np.ndarray, np.ndarray]:
        mode = self.reward_batching
        if mode == "auto":
            mode = "stacked" if self.num_envs > 1 else "loop"
        if mode == "stacked":
            with self._tel.span(
                "env.reward", hist="rl.reward_s", batching="stacked"
            ):
                return self._stacked_metrics(graphs)
        # Per-episode loop, deduped on graph identity: episodes sharing a
        # memoised topology are scored once.
        scores = np.empty(self.num_envs)
        losses = np.empty(self.num_envs)
        seen: Dict[int, Tuple[float, float]] = {}
        for b, g in enumerate(graphs):
            got = seen.get(id(g))
            if got is None:
                got = self._metrics_single(g)
                seen[id(g)] = got
            scores[b], losses[b] = got
        return scores, losses

    # ------------------------------------------------------------------
    # Rewiring (shared memo)
    # ------------------------------------------------------------------
    def _rewired(self, k: np.ndarray, d: np.ndarray) -> Graph:
        key = k.tobytes() + d.tobytes()
        if self._stream is not None:
            # Same invariant as the sequential env: the memo key carries
            # the stream version so entries built against an older base
            # topology can never be served after churn.
            key = self._stream.version.to_bytes(8, "little") + key
        graph = self._rewire_cache.get(key)
        if graph is None:
            with self._tel.span("env.rewire", hist="rl.rewire_s"):
                graph = rewire_graph(
                    self.base_graph,
                    self.sequences,
                    k,
                    d,
                    add_edges=self.config.add_edges,
                    remove_edges=self.config.remove_edges,
                )
            self._rewire_cache.put(
                key, graph, capacity=self._rewire_cache_limit
            )
        return graph

    # ------------------------------------------------------------------
    # Live churn
    # ------------------------------------------------------------------
    def _advance_stream(self) -> None:
        """Fold one step's worth of external churn into the shared base.

        The vectorized twin of ``TopologyEnv._advance_stream``: one event
        batch per *batched* step (all episodes share the drifting base).
        A rebase promotes a fresh bitwise-verified root, so every
        root-addressed structure is re-bound: the per-episode incremental
        evaluator, the stacked-graph builder (its stacked base is B
        copies of the root's edge keys) and the delta root itself.  The
        clamp bounds are refreshed every churn step — degrees moved — and
        the memoised base metrics are dropped so autoresets re-score the
        current topology.
        """
        report = self._stream.apply(
            self._churn.take(self.config.stream.events_per_step)
        )
        self._online.observe(
            self._stream.current, report.added_keys, report.removed_keys
        )
        if report.rebased:
            root = self._stream.root
            self._delta_root = root
            if self._inc is not None:
                self._inc = IncrementalEvaluator(
                    self.model, root,
                    max_halo_frac=self.config.max_halo_frac,
                )
            self._stack = StackedGraphBuilder(
                root, self.model, max_width=self.num_envs,
                incremental=self._inc is not None,
                max_halo_frac=self.config.max_halo_frac,
                cache_limit=STACKED_CACHE_LIMIT,
            )
            self._stack.set_tiled(
                self.num_envs, self._stacked_features, self._stacked_labels
            )
        self.base_graph = self._stream.current
        self._state_bounds = state_bounds(
            self.base_graph, self.sequences,
            self.config.k_max, self.config.d_max,
        )
        self._base_metrics_cache = None

    def stream_metrics(self) -> Dict[str, float]:
        """Sliding-window aggregates of the churned base topology
        (empty dict outside streaming mode)."""
        if self._online is None:
            return {}
        return self._online.window_metrics()

    # ------------------------------------------------------------------
    # Reset / step
    # ------------------------------------------------------------------
    def _obs_batch(self) -> np.ndarray:
        out = np.empty((self.num_envs,) + self._template.shape)
        return fill_observation(
            self._template, self.k, self.d, self.config, out=out
        )

    def reset(self, seed: Optional[int] = None) -> np.ndarray:
        """Restart every episode: ``S_0 = 0`` on the shared base topology.

        Like the sequential env, :attr:`histories` and the per-episode step
        counters accumulate across episodes (:meth:`clear_history` drops
        them) and the rewire memo survives.
        """
        if seed is not None:
            self.seed(seed)
        B, n = self.num_envs, self.base_graph.num_nodes
        self.k = np.zeros((B, n), dtype=np.int64)
        self.d = np.zeros((B, n), dtype=np.int64)
        self.t = np.zeros(B, dtype=np.int64)
        self.current_graphs: List[Graph] = [self.base_graph] * B
        score, loss = self._base_metrics()
        self.prev_score = np.full(B, score)
        self.prev_loss = np.full(B, loss)
        self.episode_returns = np.zeros(B)
        self.episode_lengths = np.zeros(B, dtype=np.int64)
        return self._obs_batch()

    def clear_history(self) -> None:
        """Drop the accumulated per-episode logs and step counters."""
        self.histories = [[] for _ in range(self.num_envs)]
        self._steps_total[:] = 0

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Dict[str, Any]]]:
        with self._tel.span(
            "env.vec_step", hist="rl.vec_step_s", num_envs=self.num_envs
        ):
            return self._step(actions)

    def _step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Dict[str, Any]]]:
        """One batched transition; the body of :meth:`step` under its span."""
        actions = np.asarray(actions, dtype=np.int64)
        B, n = self.num_envs, self.base_graph.num_nodes
        if actions.shape != (B, 2 * n):
            raise ValueError(
                f"actions must have shape ({B}, {2 * n}), got {actions.shape}"
            )

        # Streaming mode: external events land before the agents' moves,
        # in the same position the sequential env applies them.
        if self._stream is not None:
            self._advance_stream()

        # Eq. 10 batched: S_{t+1} = S_t + A_t, clamped to feasibility.
        self.k = self.k + (actions[:, :n] - 1)
        self.d = self.d + (actions[:, n:] - 1)
        self.k, self.d = clamp_state_batch(
            self.k, self.d, self.base_graph, self.sequences,
            self.config.k_max, self.config.d_max,
            bounds=self._state_bounds,
        )

        graphs = [self._rewired(self.k[b], self.d[b]) for b in range(B)]
        self.current_graphs = graphs

        scores, losses = self._batch_metrics(graphs)
        # Eq. 11, one vector expression over all live episodes.
        rewards = (scores - self.prev_score) + self.config.lambda_r * (
            self.prev_loss - losses
        )

        # Algorithm 1 lines 10-13, processed in episode order against the
        # one shared model: each record co-trains once and is re-scored.
        for b in range(B):
            if scores[b] > self.best_acc:
                self.best_acc = float(scores[b])
                self.best_graph = graphs[b]
                if self.co_train:
                    with self._tel.span("env.co_train", hist="rl.cotrain_s"):
                        self.trainer.fit(
                            graphs[b],
                            self.split,
                            epochs=self.config.co_train_epochs,
                            patience=self.config.co_train_patience,
                        )
                    self._model_version += 1
                    if self._inc is not None:
                        self._inc.invalidate()
                    self._stack.invalidate()
                    scores[b], losses[b] = self._metrics_single(graphs[b])

        self.prev_score = scores
        self.prev_loss = losses
        self.t += 1
        self._steps_total += 1
        dones = self.t >= self.config.horizon
        obs = self._obs_batch()

        has_labels = self.base_graph.labels is not None
        infos: List[Dict[str, Any]] = []
        for b in range(B):
            info: Dict[str, Any] = {
                "train_score": float(scores[b]),
                "train_loss": float(losses[b]),
                "homophily": (
                    homophily_ratio(graphs[b]) if has_labels else 0.0
                ),
                "num_edges": graphs[b].num_edges,
                "mean_k": float(self.k[b].mean()),
                "mean_d": float(self.d[b].mean()),
            }
            if self._stream is not None:
                info["stream_version"] = self._stream.version
                info["stream_events"] = self._stream.events_applied
            self.histories[b].append(
                {
                    "step": int(self._steps_total[b]),
                    "reward": float(rewards[b]),
                    **info,
                }
            )
            infos.append(info)

        self.episode_returns += rewards
        self.episode_lengths += 1

        # Gym-style autoreset: finished episodes restart on the base graph;
        # the observation slot already holds the terminal state, so only the
        # two dynamic columns need zeroing after the state reset.
        done_idx = np.flatnonzero(dones)
        if done_idx.size:
            for b in done_idx:
                infos[b]["terminal_observation"] = obs[b].copy()
                infos[b]["episode"] = {
                    "r": float(self.episode_returns[b]),
                    "l": int(self.episode_lengths[b]),
                }
            score, loss = self._base_metrics()
            self.k[done_idx] = 0
            self.d[done_idx] = 0
            self.t[done_idx] = 0
            self.prev_score[done_idx] = score
            self.prev_loss[done_idx] = loss
            self.episode_returns[done_idx] = 0.0
            self.episode_lengths[done_idx] = 0
            for b in done_idx:
                self.current_graphs[b] = self.base_graph
            obs[done_idx, :, 0] = 0.0
            obs[done_idx, :, 1] = 0.0

        return obs, rewards, dones, infos
