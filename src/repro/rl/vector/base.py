"""The vectorized environment contract.

A :class:`VecEnv` steps ``B`` independent episodes of the same MDP at once:
observations are stacked along a leading batch axis, rewards/dones are
``(B,)`` arrays, and ``info`` is a list of ``B`` per-episode dicts.

Autoreset semantics (gym ``VectorEnv``-style): when episode ``b`` ends,
``step`` returns ``done[b] = True``, stores the final observation under
``info[b]["terminal_observation"]`` and an ``info[b]["episode"]`` summary
(``{"r": return, "l": length}``), and the returned ``obs[b]`` is already the
first observation of the *next* episode.  This matches the data stream the
single-env rollout loop produces with ``obs = env.reset() if done else
next_obs``, which is what makes the two collection paths drop-in
equivalents.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..env import MultiDiscreteSpace


class VecEnv:
    """Abstract batched step/reset contract.

    Attributes
    ----------
    num_envs:
        ``B``, the number of episodes stepped in parallel.
    action_space:
        The *per-episode* action space; ``step`` takes a ``(B, A)`` array
        with one row per episode.
    """

    num_envs: int
    action_space: MultiDiscreteSpace

    def reset(self, seed: int | None = None) -> np.ndarray:
        """Start fresh episodes in every slot; returns ``(B, *obs_shape)``."""
        raise NotImplementedError

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Dict[str, Any]]]:
        """Advance every episode one transition.

        Returns ``(obs, rewards, dones, infos)`` with shapes
        ``(B, *obs_shape)``, ``(B,)``, ``(B,)`` and a length-``B`` list.
        Finished episodes are automatically reset (see module docstring).
        """
        raise NotImplementedError

    def sample_actions(self) -> np.ndarray:
        """One uniformly random action per episode, ``(B, A)``."""
        raise NotImplementedError
