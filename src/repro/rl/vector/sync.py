"""Sequential vectorized wrapper around a list of single environments.

:class:`SyncVecEnv` is the reference twin of the batched execution layer:
it implements the :class:`~repro.rl.vector.base.VecEnv` contract by simply
stepping ``B`` ordinary :class:`~repro.rl.env.Env` instances in a Python
loop.  It earns no speed, but it defines the semantics — the equivalence
tests pit :class:`~repro.rl.vector.topology.VecTopologyEnv` against it, and
any toy env (the test-suite's ``CounterEnv``) can be vectorized with it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from ..env import Env
from .base import VecEnv


class SyncVecEnv(VecEnv):
    """Step ``B`` independent env instances sequentially with autoreset.

    Parameters
    ----------
    envs:
        The per-episode environments; all must share one action space
        layout.
    seed:
        Optional base seed.  When given, per-env seeds are spawned from one
        :class:`numpy.random.SeedSequence` and passed to ``env.reset(seed=
        ...)`` on the first reset — envs whose ``reset`` does not accept a
        seed may only be used unseeded.
    """

    def __init__(self, envs: Sequence[Env], seed: int | None = None) -> None:
        if not envs:
            raise ValueError("SyncVecEnv needs at least one environment")
        self.envs = list(envs)
        self.num_envs = len(self.envs)
        self.action_space = self.envs[0].action_space
        self._spawn_rngs(seed)
        self.episode_returns = np.zeros(self.num_envs)
        self.episode_lengths = np.zeros(self.num_envs, dtype=np.int64)

    def _spawn_rngs(self, seed: int | None) -> None:
        self._seed = seed
        children = np.random.SeedSequence(seed).spawn(self.num_envs)
        self.rngs = [np.random.default_rng(c) for c in children]
        # Deterministic per-env integer seeds for envs that accept
        # ``reset(seed=...)``; only materialised for an explicit base seed,
        # and consumed by exactly one reset — later resets let each env's
        # stream continue instead of replaying it.
        self._pending_env_seeds = (
            [int(c.generate_state(1)[0]) for c in children]
            if seed is not None
            else None
        )

    # ------------------------------------------------------------------
    def reset(self, seed: int | None = None) -> np.ndarray:
        if seed is not None:
            self._spawn_rngs(seed)
        self.episode_returns[:] = 0.0
        self.episode_lengths[:] = 0
        if self._pending_env_seeds is not None:
            obs = [
                env.reset(seed=s)
                for env, s in zip(self.envs, self._pending_env_seeds)
            ]
            self._pending_env_seeds = None
        else:
            obs = [env.reset() for env in self.envs]
        return np.stack(obs)

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Dict[str, Any]]]:
        actions = np.asarray(actions)
        if actions.shape[0] != self.num_envs:
            raise ValueError(
                f"expected {self.num_envs} action rows, got {actions.shape}"
            )
        obs_out, rewards, dones, infos = [], [], [], []
        for b, env in enumerate(self.envs):
            obs, reward, done, info = env.step(actions[b])
            self.episode_returns[b] += reward
            self.episode_lengths[b] += 1
            info = dict(info)
            if done:
                info["terminal_observation"] = obs
                info["episode"] = {
                    "r": float(self.episode_returns[b]),
                    "l": int(self.episode_lengths[b]),
                }
                self.episode_returns[b] = 0.0
                self.episode_lengths[b] = 0
                obs = env.reset()
            obs_out.append(obs)
            rewards.append(float(reward))
            dones.append(bool(done))
            infos.append(info)
        return (
            np.stack(obs_out),
            np.asarray(rewards),
            np.asarray(dones, dtype=bool),
            infos,
        )

    def sample_actions(self) -> np.ndarray:
        return np.stack(
            [self.action_space.sample(rng) for rng in self.rngs]
        )
