"""Block-diagonal stacking of graphs derived from one shared base.

The batched-forward kernel behind :class:`~repro.rl.vector.VecTopologyEnv`
— and, since the serving layer (:mod:`repro.serve`) micro-batches
concurrent requests into the same kernel, behind ``repro serve`` too —
extracted into one reusable builder:

* ``B`` graphs over the same ``N`` nodes are unioned into one
  ``B * N``-node graph whose per-episode blocks carry the per-graph
  edges (no edges cross blocks), so any propagation matrix of the union
  is the block-diagonal of the per-graph ones and **one** GNN forward
  scores all ``B`` graphs.
* Stacked graphs are cached FIFO on per-graph object identity — callers
  that memoise their rewires (the env/serving ``(k, d)`` memos) hand
  back shared objects, so repeated batch compositions (and their cached
  propagation matrices) are free.
* With ``incremental=True`` each stacked graph additionally carries the
  block-diagonal union of the per-graph
  :class:`~repro.graph.GraphDelta` edits against a stacked copy of the
  delta root, so a per-width
  :class:`~repro.gnn.IncrementalEvaluator` re-evaluates only the
  blocks' edit halos against cached stacked-base logits.

Unlike the env (which always stacks exactly ``num_envs`` graphs), the
builder accepts any batch width up to ``max_width`` — the serving
micro-batcher flushes partial batches when the collection window
closes, so per-width tiled features, stacked bases and incremental
evaluators are built lazily and memoised per width.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ...gnn.base import cached_matrix
from ...gnn.incremental import IncrementalEvaluator
from ...graph import Graph, GraphDelta
from ...graph.normalize import gcn_norm, row_norm
from ...tensor import Tensor

__all__ = ["STACKED_CACHE_LIMIT", "StackedGraphBuilder"]

#: Propagation-matrix cache keys whose stacked matrix is exactly the
#: block-diagonal of the per-graph ones (no edges cross blocks, so
#: degrees — and hence every normalisation — are per-block local).
#: Assembling from per-graph cached blocks skips the O(width * E) rebuild
#: a fresh stacked graph would otherwise pay on its first forward.
_BLOCK_DIAG_BUILDERS = {
    "gcn_norm": gcn_norm,
    "row_norm": row_norm,
    "h2gcn_a1": lambda g: gcn_norm(g, add_self_loops=False),
}

#: Stacked block-diagonal graphs kept alive (with their cached propagation
#: matrices).  Keys hold strong references to the per-episode graphs, so
#: ``id``-based keying stays valid for the lifetime of an entry.
STACKED_CACHE_LIMIT = 16


class StackedGraphBuilder:
    """Builds (and caches) block-diagonal unions of derived graphs.

    Parameters
    ----------
    base_graph:
        The shared topology every stacked graph's blocks derive from.
    model:
        The GNN scoring the stacked graphs (needed by
        :meth:`stacked_logits`; stacking alone works without it).
    max_width:
        Largest batch width this builder will be asked to stack.
    incremental:
        Record block-diagonal deltas and evaluate through per-width
        :class:`~repro.gnn.IncrementalEvaluator` instances instead of
        dense stacked forwards.
    max_halo_frac:
        Passed through to the incremental evaluators: halo fractions
        above it fall back to the dense stacked forward.
    cache_limit:
        Stacked graphs kept alive (FIFO on per-graph identity).

    Examples
    --------
    >>> stack = StackedGraphBuilder(base, model, max_width=8)
    >>> logits = stack.stacked_logits([g1, g2, g3])   # (3, N, C)
    """

    def __init__(
        self,
        base_graph: Graph,
        model=None,
        max_width: int = 1,
        incremental: bool = False,
        max_halo_frac: float = 0.5,
        cache_limit: int = STACKED_CACHE_LIMIT,
    ) -> None:
        if max_width < 1:
            raise ValueError(f"max_width must be >= 1, got {max_width}")
        self.base_graph = base_graph
        self.model = model
        self.max_width = int(max_width)
        self.incremental = bool(incremental)
        self.max_halo_frac = float(max_halo_frac)
        self.cache_limit = int(cache_limit)
        #: The delta root: rewires of a graph that is itself derived
        #: collapse to the root, so the stacked base must too.
        self.delta_root: Graph = (
            base_graph.delta.base if base_graph.delta is not None
            else base_graph
        )
        self._tiled: Dict[int, Tuple[Optional[np.ndarray], Optional[np.ndarray]]] = {}
        self._stacked_bases: Dict[int, Graph] = {}
        self._incs: Dict[int, IncrementalEvaluator] = {}
        self._cache: Dict[tuple, tuple] = {}
        #: Which propagation caches the model actually reads — learned
        #: from the first dense forward, then pre-seeded block-diagonally
        #: on every later stacked build (see ``_seed_norms``).
        self._seed_keys: Optional[Tuple[str, ...]] = None

    # ------------------------------------------------------------------
    def block_keys(
        self, u: np.ndarray, v: np.ndarray, block: int, width: int
    ) -> np.ndarray:
        """Canonical keys of edges ``(u, v)`` placed in block ``block`` of
        the ``width * N`` block-diagonal id space — the one encoding
        shared by the stacked graph, the stacked base and the stacked
        delta."""
        n = self.base_graph.num_nodes
        off = np.int64(block * n)
        big = np.int64(width * n)
        return (u + off) * big + (v + off)

    def tiled_arrays(
        self, width: int
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """``width`` copies of the base features/labels, memoised.

        Callers that already hold tiles (``VecTopologyEnv`` tiles eagerly
        at construction) may pre-seed via :meth:`set_tiled`.
        """
        got = self._tiled.get(width)
        if got is None:
            features = self.base_graph.features
            labels = self.base_graph.labels
            got = (
                np.tile(features, (width, 1)) if features is not None else None,
                np.tile(labels, width) if labels is not None else None,
            )
            self._tiled[width] = got
        return got

    def set_tiled(
        self,
        width: int,
        features: Optional[np.ndarray],
        labels: Optional[np.ndarray],
    ) -> None:
        """Pre-seed the tiled feature/label arrays for ``width``."""
        self._tiled[width] = (features, labels)

    # ------------------------------------------------------------------
    def stacked_base(self, width: int) -> Graph:
        """``width`` block-diagonal copies of the delta root — the
        reference topology the incremental evaluators cache logits for."""
        stacked = self._stacked_bases.get(width)
        if stacked is None:
            ea = self.delta_root.edge_array()
            if ea.shape[0]:
                keys = np.concatenate(
                    [
                        self.block_keys(ea[:, 0], ea[:, 1], b, width)
                        for b in range(width)
                    ]
                )
            else:
                keys = np.empty(0, dtype=np.int64)
            features, labels = self.tiled_arrays(width)
            stacked = Graph._from_keys(
                width * self.base_graph.num_nodes, keys, features, labels
            )
            self._stacked_bases[width] = stacked
        return stacked

    def incremental_for(self, width: int) -> Optional[IncrementalEvaluator]:
        """The per-width stacked evaluator (lazily built), or ``None``
        when the builder is not incremental or it was never needed."""
        if not self.incremental:
            return None
        inc = self._incs.get(width)
        if inc is None:
            inc = IncrementalEvaluator(
                self.model, self.stacked_base(width),
                max_halo_frac=self.max_halo_frac,
            )
            self._incs[width] = inc
        return inc

    def invalidate(self) -> None:
        """Drop every cached incremental base state (after weight updates)."""
        for inc in self._incs.values():
            inc.invalidate()

    # ------------------------------------------------------------------
    def stacked_graph(self, graphs: List[Graph]) -> Graph:
        """Block-diagonal union of ``graphs`` (cached on identity).

        Graph ``b``'s nodes occupy ids ``[b * N, (b + 1) * N)``; no edges
        cross blocks.  The FIFO cache entry pins the per-graph objects,
        keeping the id-based key valid for its lifetime.
        """
        width = len(graphs)
        if not 1 <= width <= self.max_width:
            raise ValueError(
                f"cannot stack {width} graphs (max_width={self.max_width})"
            )
        key = tuple(map(id, graphs))
        hit = self._cache.get(key)
        if hit is not None:
            return hit[1]
        parts = []
        for b, g in enumerate(graphs):
            ea = g.edge_array()
            if ea.shape[0]:
                parts.append(self.block_keys(ea[:, 0], ea[:, 1], b, width))
        keys = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        features, labels = self.tiled_arrays(width)
        stacked = Graph._from_keys(
            width * self.base_graph.num_nodes, keys, features, labels
        )
        if self.incremental:
            self._attach_delta(stacked, graphs)
        if self._seed_keys:
            self._seed_norms(stacked, graphs)
        while len(self._cache) >= self.cache_limit:
            self._cache.pop(next(iter(self._cache)))
        # The entry pins the per-episode graphs, keeping the id-key valid.
        self._cache[key] = (list(graphs), stacked)
        return stacked

    def _assemble_norm(self, key: str, graphs: List[Graph]) -> sp.csr_matrix:
        """Block-diagonal propagation matrix from per-graph cached blocks.

        Each block is memoised on *its* graph (built once per candidate
        lifetime, reused by every later batch containing it); the
        assembly is pure concatenation, preserving every block's row
        order entry for entry.
        """
        builder = _BLOCK_DIAG_BUILDERS[key]
        blocks = [cached_matrix(g, key, builder) for g in graphs]
        if len(blocks) == 1:
            return blocks[0]
        # Direct CSR concatenation — scipy's ``block_diag`` detours
        # through COO (rebuild + validation), which costs more than the
        # normalisation it would replace at serving batch rates.
        n = self.base_graph.num_nodes
        width = len(blocks)
        total = sum(int(b.nnz) for b in blocks)
        idx_dtype = (
            np.int64 if max(width * n, total) >= np.iinfo(np.int32).max
            else np.int32
        )
        data = np.concatenate([b.data for b in blocks])
        indices = np.empty(total, dtype=idx_dtype)
        indptr = np.empty(width * n + 1, dtype=idx_dtype)
        indptr[0] = 0
        pos = 0
        for i, block in enumerate(blocks):
            nnz = int(block.nnz)
            np.add(
                block.indices, idx_dtype(i * n),
                out=indices[pos:pos + nnz], casting="unsafe",
            )
            np.add(
                block.indptr[1:], idx_dtype(pos),
                out=indptr[1 + i * n: 1 + (i + 1) * n], casting="unsafe",
            )
            pos += nnz
        return sp.csr_matrix(
            (data, indices, indptr), shape=(width * n, width * n)
        )

    def _seed_norms(self, stacked: Graph, graphs: List[Graph]) -> None:
        """Pre-seed the stacked graph's propagation caches block-diagonally.

        Only keys that passed :meth:`_validated_seed_keys` are seeded, so
        every seeded matrix is bitwise what the from-scratch build would
        have produced — at concatenation cost instead of normalisation
        cost.
        """
        for key in self._seed_keys:
            stacked.cache[key] = self._assemble_norm(key, graphs)

    def _validated_seed_keys(
        self, stacked: Graph, graphs: List[Graph]
    ) -> Tuple[str, ...]:
        """Which propagation caches the first dense forward populated AND
        whose block-diagonal assembly reproduces the from-scratch matrix
        exactly (indptr, indices and data, byte for byte).

        Validating against the direct build keeps the pre-seed strictly
        an optimisation: a backbone whose normalisation comes out of
        scipy's SpGEMM with a different within-row entry order (summation
        order is rounding-visible in the forward) simply never seeds.
        """
        keys = []
        for key in _BLOCK_DIAG_BUILDERS:
            direct = stacked.cache.get(key)
            if direct is None:
                continue
            mat = self._assemble_norm(key, graphs)
            if (
                np.array_equal(mat.indptr, direct.indptr)
                and np.array_equal(mat.indices, direct.indices)
                and mat.data.tobytes() == direct.data.tobytes()
            ):
                keys.append(key)
        return tuple(keys)

    def _attach_delta(self, stacked: Graph, graphs: List[Graph]) -> None:
        """Record the stacked graph's edge delta against the stacked base.

        The block-diagonal union of per-graph deltas (offset into each
        block's node range) *is* the stacked delta, so the stacked
        forward inherits the halo-restricted path for free.  Graphs of
        unknown provenance (no delta against the shared root) leave the
        stacked graph delta-less — the evaluator then falls back to the
        dense stacked forward.
        """
        width = len(graphs)
        n = self.base_graph.num_nodes
        added: List[np.ndarray] = []
        removed: List[np.ndarray] = []
        for b, g in enumerate(graphs):
            if g is self.delta_root:
                continue
            delta = g.delta
            if delta is None or delta.base is not self.delta_root:
                return
            for keys, out in ((delta.added, added), (delta.removed, removed)):
                if keys.shape[0]:
                    out.append(
                        self.block_keys(keys // n, keys % n, b, width)
                    )
        empty = np.empty(0, dtype=np.int64)
        stacked.delta = GraphDelta(
            self.stacked_base(width),
            np.concatenate(added) if added else empty,
            np.concatenate(removed) if removed else empty,
        )

    # ------------------------------------------------------------------
    def stacked_logits(self, graphs: List[Graph]) -> np.ndarray:
        """Eval-mode logits of every graph from one stacked forward.

        Returns shape ``(B, N, C)``: row ``b`` holds graph ``b``'s
        full-graph logits, bitwise equal to a single-graph forward on
        this BLAS (row-independent CSR spmm + row-chunk-stable GEMM; see
        ``docs/equivalence-policy.md``).  With ``incremental=True`` only
        the blocks' edit halos are re-scored against the cached
        stacked-base logits (ulp-level on the halo, byte-identical off
        it).
        """
        stacked = self.stacked_graph(graphs)
        width = len(graphs)
        if self.incremental:
            logits = self.incremental_for(width).predict_logits(stacked)
        else:
            features, _ = self.tiled_arrays(width)
            was_training = self.model.training
            self.model.eval()
            logits = self.model(stacked, Tensor(features)).data
            if was_training:
                self.model.train()
            if self._seed_keys is None:
                # Learn which propagation caches this backbone populates
                # (and assembles reproducibly); later stacked builds
                # pre-seed exactly those block-diagonally.
                self._seed_keys = self._validated_seed_keys(stacked, graphs)
        return logits.reshape(width, self.base_graph.num_nodes, -1)
