"""Preallocated ``(T, B, ...)`` rollout storage with batched GAE.

The single-env :class:`~repro.rl.buffer.RolloutBuffer` appends Python lists;
this twin preallocates dense numpy arrays for a fixed-length vectorized
rollout and computes GAE(lambda) over the whole batch axis in one backward
sweep.  Row ``b`` of the batched advantage/return arrays is byte-identical
to what ``RolloutBuffer.compute_advantages`` produces for episode ``b``
collected alone (the property tests assert exact equality, including every
done-mask edge case) — the arithmetic is the same float64 expression
evaluated per batch column instead of per scalar.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class BatchedRolloutBuffer:
    """Fixed-capacity trajectory storage for ``B`` parallel episodes.

    Parameters
    ----------
    num_steps:
        ``T``, the rollout length (transitions per environment).
    num_envs:
        ``B``, the batch width.
    obs_shape:
        Per-env observation shape (e.g. ``(N, OBS_DIM)``).
    action_dim:
        Flat per-env action length (``2N`` for the topology MDP).
    """

    def __init__(
        self,
        num_steps: int,
        num_envs: int,
        obs_shape: tuple,
        action_dim: int,
        gamma: float = 0.99,
        gae_lambda: float = 0.95,
    ) -> None:
        if num_steps < 1 or num_envs < 1:
            raise ValueError("num_steps and num_envs must be >= 1")
        self.num_steps = int(num_steps)
        self.num_envs = int(num_envs)
        self.gamma = gamma
        self.gae_lambda = gae_lambda
        T, B = self.num_steps, self.num_envs
        self.observations = np.zeros((T, B) + tuple(obs_shape))
        self.actions = np.zeros((T, B, int(action_dim)), dtype=np.int64)
        self.rewards = np.zeros((T, B))
        self.values = np.zeros((T, B))
        self.log_probs = np.zeros((T, B))
        self.dones = np.zeros((T, B), dtype=bool)
        self.pos = 0
        self.last_obs: Optional[np.ndarray] = None
        self.last_values: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def add(
        self,
        obs: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        values: np.ndarray,
        log_probs: np.ndarray,
        dones: np.ndarray,
    ) -> None:
        """Record one batched transition (arrays with leading dim ``B``)."""
        if self.pos >= self.num_steps:
            raise ValueError(
                f"buffer full: capacity {self.num_steps} steps"
            )
        t = self.pos
        self.observations[t] = obs
        self.actions[t] = actions
        self.rewards[t] = rewards
        self.values[t] = values
        self.log_probs[t] = log_probs
        self.dones[t] = dones
        self.pos = t + 1

    def set_bootstrap(
        self, last_obs: np.ndarray, last_values: np.ndarray
    ) -> None:
        """Store the truncation bootstrap: the observation following the
        final transition and its value estimates (zeroed where the final
        transition ended an episode)."""
        self.last_obs = np.asarray(last_obs)
        self.last_values = np.asarray(last_values, dtype=np.float64)

    def __len__(self) -> int:
        """Total stored transitions across the batch (``pos * B``)."""
        return self.pos * self.num_envs

    @property
    def full(self) -> bool:
        return self.pos == self.num_steps

    # ------------------------------------------------------------------
    def compute_advantages(
        self, last_values: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched GAE(lambda); returns ``(advantages, returns)`` of shape
        ``(pos, B)``.

        ``last_values`` bootstraps the state following each episode's final
        transition; defaults to the stored bootstrap (or zeros, matching
        the single-env buffer's default).  Done masking is per column: a
        ``done`` at ``(t, b)`` zeroes both the bootstrap term and the GAE
        carry-over for that episode only.
        """
        T = self.pos
        if T == 0:
            raise ValueError("cannot compute advantages of an empty buffer")
        B = self.num_envs
        if last_values is None:
            last_values = (
                self.last_values
                if self.last_values is not None
                else np.zeros(B)
            )
        last_values = np.asarray(last_values, dtype=np.float64)
        if last_values.shape != (B,):
            raise ValueError(
                f"last_values must have shape ({B},), got {last_values.shape}"
            )
        advantages = np.zeros((T, B))
        gae = np.zeros(B)
        for t in reversed(range(T)):
            non_terminal = 1.0 - self.dones[t]
            next_values = self.values[t + 1] if t + 1 < T else last_values
            delta = (
                self.rewards[t]
                + self.gamma * next_values * non_terminal
                - self.values[t]
            )
            gae = delta + self.gamma * self.gae_lambda * non_terminal * gae
            advantages[t] = gae
        returns = advantages + self.values[:T]
        return advantages, returns

    # ------------------------------------------------------------------
    # Flat (time-major) views for the per-sample update loops.  Index
    # ``i = t * B + b``; with ``B = 1`` this is exactly the single-env
    # time order, which is what makes the B=1 learning trajectory
    # byte-identical to the sequential reference path.
    # ------------------------------------------------------------------
    def flat_observations(self) -> np.ndarray:
        T = self.pos
        return self.observations[:T].reshape(
            (T * self.num_envs,) + self.observations.shape[2:]
        )

    def flat_actions(self) -> np.ndarray:
        T = self.pos
        return self.actions[:T].reshape(T * self.num_envs, -1)

    def flat_log_probs(self) -> np.ndarray:
        return self.log_probs[: self.pos].reshape(-1)

    def flat_rewards(self) -> np.ndarray:
        return self.rewards[: self.pos].reshape(-1)

    def compute_flat_advantages(self) -> Tuple[np.ndarray, np.ndarray]:
        """Time-major flattened ``(advantages, returns)`` using the stored
        bootstrap values."""
        advantages, returns = self.compute_advantages()
        return advantages.reshape(-1), returns.reshape(-1)
