"""Batched rollout collection: one policy forward per vectorized step.

:func:`collect_vectorized_rollout` is the execution core PPO/A2C delegate
to: it drives a :class:`~repro.rl.vector.base.VecEnv` for ``T`` steps with
:meth:`NodePolicy.act_batch` (a single trunk pass over all ``B * N`` node
rows), records into a :class:`BatchedRolloutBuffer`, and finishes with the
truncation bootstrap — value estimates of the observations following the
final transition, zeroed for episodes that ended exactly there.

With ``B = 1`` the collected buffer is byte-identical to the sequential
``collect_rollout`` loop: the policy consumes the same ``rng.random((2N,
1))`` stream per step, autoreset reproduces ``obs = env.reset() if done
else next_obs``, and the bootstrap mirrors the single-path rule.
"""

from __future__ import annotations

import numpy as np

from .base import VecEnv
from .buffer import BatchedRolloutBuffer


def collect_vectorized_rollout(
    policy,
    venv: VecEnv,
    num_steps: int,
    rng: np.random.Generator,
    gamma: float = 0.99,
    gae_lambda: float = 0.95,
) -> BatchedRolloutBuffer:
    """Run ``policy`` in ``venv`` for ``num_steps`` batched transitions.

    Returns a full :class:`BatchedRolloutBuffer` (``num_steps * B``
    transitions) with the bootstrap already attached.
    """
    if num_steps < 1:
        raise ValueError(f"num_steps must be >= 1, got {num_steps}")
    obs = venv.reset()
    buffer = BatchedRolloutBuffer(
        num_steps,
        venv.num_envs,
        obs_shape=obs.shape[1:],
        action_dim=venv.action_space.num_components,
        gamma=gamma,
        gae_lambda=gae_lambda,
    )
    for _ in range(num_steps):
        actions, log_probs, values = policy.act_batch(obs, rng)
        next_obs, rewards, dones, _ = venv.step(actions)
        buffer.add(obs, actions, rewards, values, log_probs, dones)
        obs = next_obs
    # Truncation bootstrap (value of the state after the final transition);
    # zero where that transition ended an episode — ``obs`` is then already
    # the next episode's start and must not leak into this one's return.
    final_dones = buffer.dones[buffer.pos - 1]
    if final_dones.all():
        last_values = np.zeros(venv.num_envs)
    else:
        last_values = np.where(final_dones, 0.0, policy.value_batch(obs))
    buffer.set_bootstrap(obs, last_values)
    return buffer
