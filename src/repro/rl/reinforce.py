"""REINFORCE (Monte-Carlo policy gradient) with a moving-average baseline.

The paper notes (Sec. IV-B) that "in addition to the PPO algorithm, other
reinforcement learning algorithms can also be conveniently applied to the
proposed framework"; this module and :mod:`repro.rl.a2c` make that claim
concrete.  REINFORCE is the simplest possible agent: no critic, whole-
episode returns, a scalar baseline to cut variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..nn import Adam
from .buffer import RolloutBuffer
from .env import Env
from .policy import NodePolicy
from .ppo import PPOStats


@dataclass
class ReinforceConfig:
    """Hyper-parameters of the REINFORCE update."""

    lr: float = 3e-3
    gamma: float = 0.99
    entropy_coef: float = 0.01
    baseline_decay: float = 0.9
    """Exponential moving-average factor for the scalar return baseline."""


class Reinforce:
    """Episodic policy-gradient agent with the same driver API as PPO."""

    def __init__(
        self,
        policy: NodePolicy,
        config: Optional[ReinforceConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.policy = policy
        self.config = config or ReinforceConfig()
        self.rng = rng or np.random.default_rng(0)
        self.optimizer = Adam(policy.parameters(), lr=self.config.lr)
        self.history: List[PPOStats] = []
        self._baseline = 0.0
        self._baseline_initialised = False

    # ------------------------------------------------------------------
    def collect_rollout(self, env: Env, num_steps: int) -> RolloutBuffer:
        """Run the policy for ``num_steps`` transitions (value slot unused)."""
        buffer = RolloutBuffer(gamma=self.config.gamma)
        obs = env.reset()
        for _ in range(num_steps):
            action, log_prob, _ = self.policy.act(obs, self.rng)
            next_obs, reward, done, _ = env.step(action)
            buffer.add(obs, action, reward, 0.0, log_prob, done)
            obs = env.reset() if done else next_obs
        return buffer

    def _returns(self, buffer: RolloutBuffer) -> np.ndarray:
        """Discounted returns-to-go, restarting at episode boundaries."""
        n = len(buffer)
        returns = np.zeros(n)
        running = 0.0
        for t in reversed(range(n)):
            if buffer.dones[t]:
                running = 0.0
            running = buffer.rewards[t] + self.config.gamma * running
            returns[t] = running
        return returns

    def update(self, buffer: RolloutBuffer) -> PPOStats:
        """One REINFORCE gradient step over the rollout."""
        cfg = self.config
        returns = self._returns(buffer)

        mean_return = float(returns.mean())
        if not self._baseline_initialised:
            self._baseline = mean_return
            self._baseline_initialised = True
        else:
            self._baseline = (
                cfg.baseline_decay * self._baseline
                + (1.0 - cfg.baseline_decay) * mean_return
            )
        advantages = returns - self._baseline

        # One batched gradient step per rollout: per-sample Adam steps make
        # REINFORCE collapse (later samples see a policy already moved by
        # earlier ones while their advantages are stale).
        policy_losses, entropies = [], []
        self.optimizer.zero_grad()
        scale = 1.0 / max(len(buffer), 1)
        for idx in range(len(buffer)):
            log_prob, entropy, _ = self.policy.evaluate_actions(
                buffer.observations[idx], buffer.actions[idx]
            )
            loss = (-log_prob * advantages[idx] - cfg.entropy_coef * entropy) * scale
            loss.backward()
            policy_losses.append(-log_prob.item() * advantages[idx])
            entropies.append(entropy.item())
        self.optimizer.step()

        stats = PPOStats(
            mean_reward=float(np.mean(buffer.rewards)),
            policy_loss=float(np.mean(policy_losses)),
            value_loss=0.0,
            entropy=float(np.mean(entropies)),
            num_steps=len(buffer),
        )
        self.history.append(stats)
        return stats

    def learn(self, env: Env, total_steps: int, rollout_steps: int = 16):
        """Alternate rollouts and updates until ``total_steps``."""
        collected = 0
        while collected < total_steps:
            steps = min(rollout_steps, total_steps - collected)
            buffer = self.collect_rollout(env, steps)
            self.update(buffer)
            collected += steps
        return self.history
