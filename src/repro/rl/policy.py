"""Actor-critic network for the multi-discrete topology MDP.

The paper's PPO policy is an MLP (Sec. V-C).  Because the action has two
ternary components *per node*, we share the MLP across nodes: each node's
observation row passes through a common trunk, then two linear heads emit
the (dec / keep / inc) logits for ``k`` and ``d``.  The critic mean-pools
trunk features and predicts a scalar state value.  Parameter sharing keeps
the network size independent of the graph size, exactly like SB3's handling
of ``MultiDiscrete([3] * 2N)`` up to weight tying.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..nn import MLP, Linear, Module
from ..tensor import Tensor, ops
from .distributions import MultiDiscreteDistribution


class NodePolicy(Module):
    """Per-node actor-critic with a shared trunk.

    Parameters
    ----------
    obs_dim:
        Number of features in each node's observation row.
    num_choices:
        Choices per action component (3: decrement / keep / increment).
    hidden:
        Trunk width.
    """

    def __init__(
        self,
        obs_dim: int,
        num_choices: int = 3,
        hidden: int = 64,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.obs_dim = obs_dim
        self.num_choices = num_choices
        self.trunk = MLP(obs_dim, [hidden], hidden, rng, activation="tanh")
        self.k_head = Linear(hidden, num_choices, rng)
        self.d_head = Linear(hidden, num_choices, rng)
        self.value_head = Linear(hidden, 1, rng)

    # ------------------------------------------------------------------
    def _trunk_features(self, obs: np.ndarray) -> Tensor:
        obs = np.asarray(obs, dtype=np.float64)
        if obs.ndim != 2 or obs.shape[1] != self.obs_dim:
            raise ValueError(
                f"observation must be (num_nodes, {self.obs_dim}), got {obs.shape}"
            )
        return ops.tanh(self.trunk(Tensor(obs)))

    def distribution(self, obs: np.ndarray) -> MultiDiscreteDistribution:
        """Joint action distribution for one observation."""
        feats = self._trunk_features(obs)
        logits = ops.concat([self.k_head(feats), self.d_head(feats)], axis=0)
        return MultiDiscreteDistribution(logits)

    def value(self, obs: np.ndarray) -> Tensor:
        """Scalar state-value estimate (mean-pooled node values)."""
        feats = self._trunk_features(obs)
        return ops.mean(self.value_head(feats))

    # ------------------------------------------------------------------
    def act(
        self, obs: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, float, float]:
        """Sample an action; returns ``(action, log_prob, value)``.

        ``action`` is a flat int vector of length ``2 * num_nodes``: the
        first half are the ``k`` choices, the second half the ``d`` choices.
        """
        dist = self.distribution(obs)
        action = dist.sample(rng)
        log_prob = dist.log_prob(action).item()
        value = self.value(obs).item()
        return action, log_prob, value

    def evaluate_actions(
        self, obs: np.ndarray, action: np.ndarray
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Differentiable ``(log_prob, entropy, value)`` for a PPO update."""
        dist = self.distribution(obs)
        return dist.log_prob(action), dist.entropy(), self.value(obs)

    # ------------------------------------------------------------------
    # Batched rollout path (repro.rl.vector): one trunk pass over all
    # B * N node rows, one uniform draw over all 2 * B * N components.
    # ------------------------------------------------------------------
    def _batched_logits(self, obs_batch: np.ndarray) -> Tuple[Tensor, Tensor]:
        """``(logits, node_values)`` for a ``(B, N, obs_dim)`` batch.

        ``logits`` has shape ``(2 * B * N, num_choices)`` in per-env order
        — env ``b``'s ``k``-bank rows, then its ``d``-bank rows — the same
        layout :meth:`distribution` uses per env, so with ``B = 1`` the
        logits tensor is identical to the single-env one.
        """
        obs_batch = np.asarray(obs_batch, dtype=np.float64)
        if obs_batch.ndim != 3 or obs_batch.shape[2] != self.obs_dim:
            raise ValueError(
                f"batched observation must be (B, N, {self.obs_dim}), "
                f"got {obs_batch.shape}"
            )
        b, n, _ = obs_batch.shape
        feats = ops.tanh(self.trunk(Tensor(obs_batch.reshape(b * n, -1))))
        stacked = ops.concat([self.k_head(feats), self.d_head(feats)], axis=0)
        # Interleave [env0 k-rows, env0 d-rows, env1 k-rows, ...]: the
        # k rows of env b sit at [b*n, (b+1)*n), its d rows at b*n + B*n.
        idx = (
            np.arange(b)[:, None, None] * n
            + np.array([0, b * n])[None, :, None]
            + np.arange(n)[None, None, :]
        ).reshape(-1)
        return ops.gather_rows(stacked, idx), self.value_head(feats)

    def act_batch(
        self, obs_batch: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample one action per env; ``(actions, log_probs, values)``.

        ``actions`` is ``(B, 2N)`` int, ``log_probs`` and ``values`` are
        ``(B,)`` floats.  With ``B = 1`` the rng consumption (one
        ``rng.random((2N, 1))`` draw) and every returned number are
        byte-identical to :meth:`act` — the vectorized collection path is a
        drop-in twin of the sequential one.
        """
        b = obs_batch.shape[0]
        n = obs_batch.shape[1]
        logits, node_values = self._batched_logits(obs_batch)
        log_probs = ops.log_softmax(logits, axis=-1).data
        probs = np.exp(log_probs)
        cdf = probs.cumsum(axis=-1)
        u = rng.random((probs.shape[0], 1))
        actions = (u > cdf).sum(axis=-1).astype(np.int64)
        picked = log_probs[np.arange(actions.shape[0]), actions]
        joint_log_probs = picked.reshape(b, 2 * n).sum(axis=-1)
        values = node_values.data.reshape(b, n).mean(axis=1)
        return actions.reshape(b, 2 * n), joint_log_probs, values

    def value_batch(self, obs_batch: np.ndarray) -> np.ndarray:
        """Per-env state values ``(B,)`` for a ``(B, N, obs_dim)`` batch."""
        obs_batch = np.asarray(obs_batch, dtype=np.float64)
        b, n = obs_batch.shape[0], obs_batch.shape[1]
        feats = ops.tanh(self.trunk(Tensor(obs_batch.reshape(b * n, -1))))
        return self.value_head(feats).data.reshape(b, n).mean(axis=1)
