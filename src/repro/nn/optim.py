"""Optimizers (SGD with momentum, Adam with decoupled weight decay)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self, params: Sequence[Parameter], lr: float, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum > 0:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam with (decoupled) weight decay, matching the paper's optimiser.

    The paper trains all GNNs with Adam, learning rate 0.05 and weight decay
    in {5e-5, 5e-6}.
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bc1
            v_hat = v / bc2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay > 0:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update


class RMSprop(Optimizer):
    """RMSprop: adaptive per-parameter learning rates without momentum bias."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.alpha = alpha
        self.eps = eps
        self.weight_decay = weight_decay
        self._sq = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, sq in zip(self.params, self._sq):
            if p.grad is None:
                continue
            grad = p.grad
            sq *= self.alpha
            sq += (1.0 - self.alpha) * grad**2
            update = grad / (np.sqrt(sq) + self.eps)
            if self.weight_decay > 0:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update
