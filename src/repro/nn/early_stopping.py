"""Early-stopping helper used during GNN (co-)training.

The paper trains the GNN "for a few more epochs" on a promising topology and
"to prevent overfitting on G_t, an early stopping strategy is implemented"
(Sec. IV-B).  This class tracks the best validation score and signals when
patience is exhausted; it also snapshots the best model state so the caller
can restore it.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .module import Module


class EarlyStopping:
    """Stop when a maximised metric fails to improve for ``patience`` steps."""

    def __init__(self, patience: int = 20, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.patience = patience
        self.min_delta = min_delta
        self.best_score: float = -np.inf
        self.best_state: Optional[Dict[str, np.ndarray]] = None
        self.counter = 0

    def step(self, score: float, model: Optional[Module] = None) -> bool:
        """Record ``score``; return True when training should stop."""
        if score > self.best_score + self.min_delta:
            self.best_score = score
            self.counter = 0
            if model is not None:
                self.best_state = model.state_dict()
            return False
        self.counter += 1
        return self.counter >= self.patience

    def restore(self, model: Module) -> None:
        """Load the best snapshot back into ``model`` (no-op if none taken)."""
        if self.best_state is not None:
            model.load_state_dict(self.best_state)
