"""Loss functions and classification metrics."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, ops


def cross_entropy(
    logits: Tensor, targets: np.ndarray, mask: Optional[np.ndarray] = None
) -> Tensor:
    """Mean cross-entropy of integer ``targets`` given unnormalised ``logits``.

    ``mask`` (boolean or index array) restricts the loss to a node subset —
    the usual semi-supervised node-classification setting.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if mask is not None:
        mask = np.asarray(mask)
        if mask.dtype == bool:
            mask = np.flatnonzero(mask)
        logits = ops.gather_rows(logits, mask)
        targets = targets[mask]
    if len(targets) == 0:
        # Empty selection (e.g. a class too small to reach the test split):
        # zero loss, no gradient.
        return Tensor(0.0)
    log_probs = ops.log_softmax(logits, axis=-1)
    one_hot = np.zeros(log_probs.shape)
    one_hot[np.arange(len(targets)), targets] = 1.0
    picked = ops.sum(log_probs * Tensor(one_hot), axis=-1)
    return -ops.mean(picked)


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    diff = pred - Tensor(np.asarray(target, dtype=np.float64))
    return ops.mean(diff * diff)


def accuracy(
    logits: np.ndarray, targets: np.ndarray, mask: Optional[np.ndarray] = None
) -> float:
    """Classification accuracy of argmax predictions on ``mask``."""
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if mask is not None:
        mask = np.asarray(mask)
        if mask.dtype == bool:
            mask = np.flatnonzero(mask)
        logits = logits[mask]
        targets = targets[mask]
    if len(targets) == 0:
        return 0.0
    return float((logits.argmax(axis=-1) == targets).mean())


def macro_auc(
    logits: np.ndarray, targets: np.ndarray, mask: Optional[np.ndarray] = None
) -> float:
    """One-vs-rest macro-averaged ROC-AUC.

    Used by the Table V ablation row ``GCN-RARE-reward``, which swaps the
    accuracy/loss reward (Eq. 11) for an AUC-based one.
    """
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if mask is not None:
        mask = np.asarray(mask)
        if mask.dtype == bool:
            mask = np.flatnonzero(mask)
        logits = logits[mask]
        targets = targets[mask]
    shifted = logits - logits.max(axis=-1, keepdims=True)
    probs = np.exp(shifted)
    probs /= probs.sum(axis=-1, keepdims=True)

    aucs = []
    for c in range(logits.shape[1]):
        pos = targets == c
        neg = ~pos
        n_pos, n_neg = int(pos.sum()), int(neg.sum())
        if n_pos == 0 or n_neg == 0:
            continue
        # Mann-Whitney U via rank sums (ties get average ranks).
        order = probs[:, c].argsort(kind="mergesort")
        ranks = np.empty(len(order))
        scores = probs[order, c]
        i = 0
        while i < len(scores):
            j = i
            while j + 1 < len(scores) and scores[j + 1] == scores[i]:
                j += 1
            ranks[i : j + 1] = 0.5 * (i + j) + 1.0
            i = j + 1
        rank_of = np.empty(len(order))
        rank_of[order] = ranks
        u = rank_of[pos].sum() - n_pos * (n_pos + 1) / 2.0
        aucs.append(u / (n_pos * n_neg))
    return float(np.mean(aucs)) if aucs else 0.5


def cross_entropy_label_smoothing(
    logits: Tensor,
    targets: np.ndarray,
    smoothing: float = 0.1,
    mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Cross-entropy against smoothed targets.

    Each target distribution puts ``1 - smoothing`` on the true class and
    spreads ``smoothing`` uniformly over the rest — a common regulariser
    for the small, noisy training sets of the WebKB graphs.
    """
    if not 0.0 <= smoothing < 1.0:
        raise ValueError(f"smoothing must be in [0, 1), got {smoothing}")
    targets = np.asarray(targets, dtype=np.int64)
    if mask is not None:
        mask = np.asarray(mask)
        if mask.dtype == bool:
            mask = np.flatnonzero(mask)
        logits = ops.gather_rows(logits, mask)
        targets = targets[mask]
    if len(targets) == 0:
        return Tensor(0.0)
    log_probs = ops.log_softmax(logits, axis=-1)
    n, c = log_probs.shape
    smooth = np.full((n, c), smoothing / (c - 1) if c > 1 else 0.0)
    smooth[np.arange(n), targets] = 1.0 - smoothing
    picked = ops.sum(log_probs * Tensor(smooth), axis=-1)
    return -ops.mean(picked)
