"""Dense layers and elementwise modules (Linear, MLP, activations, Dropout)."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..tensor import Tensor, ops
from . import init
from .module import Module, Parameter

ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "relu": ops.relu,
    "tanh": ops.tanh,
    "sigmoid": ops.sigmoid,
    "elu": ops.elu,
    "leaky_relu": ops.leaky_relu,
    "identity": lambda x: x,
}


def get_activation(name: str) -> Callable[[Tensor], Tensor]:
    """Look up an activation function by name."""
    try:
        return ACTIVATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; choose from {sorted(ACTIVATIONS)}"
        ) from None


class Linear(Module):
    """Affine map ``y = x W + b`` with Glorot-initialised weights."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform(in_features, out_features, rng))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = ops.matmul(x, self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Dropout(Module):
    """Inverted dropout module; a no-op in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return ops.dropout(x, self.p, self._rng, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class MLP(Module):
    """Multi-layer perceptron with configurable hidden sizes.

    Used both as a classifier baseline and as the embedding function
    ``phi(.)`` in the node feature entropy (Eq. 3) as well as the PPO
    policy/value trunks.
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        rng: np.random.Generator,
        activation: str = "relu",
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        sizes = [in_features, *hidden, out_features]
        self.layers = [
            Linear(a, b, rng) for a, b in zip(sizes[:-1], sizes[1:])
        ]
        self.activation = activation
        self._act = get_activation(activation)
        self.dropout: Optional[Dropout] = Dropout(dropout, rng) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1:
                x = self._act(x)
                if self.dropout is not None:
                    x = self.dropout(x)
        return x

    def __repr__(self) -> str:
        shape = " -> ".join(
            [str(self.layers[0].in_features)] + [str(l.out_features) for l in self.layers]
        )
        return f"MLP({shape}, activation={self.activation})"
