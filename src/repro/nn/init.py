"""Weight initialisation schemes (Glorot/Xavier and He/Kaiming)."""

from __future__ import annotations

import numpy as np


def glorot_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Xavier/Glorot uniform initialisation, the PyG default for GNN layers."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation for ReLU networks."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros(*shape: int) -> np.ndarray:
    return np.zeros(shape)
