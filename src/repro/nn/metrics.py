"""Classification metrics beyond accuracy.

Used by the examples and the extended evaluation utilities: per-class
precision / recall / F1, their macro averages, and the confusion matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


def confusion_matrix(
    predictions: np.ndarray, targets: np.ndarray, num_classes: Optional[int] = None
) -> np.ndarray:
    """``M[i, j]`` counts nodes of true class ``i`` predicted as ``j``."""
    predictions = np.asarray(predictions, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs "
            f"targets {targets.shape}"
        )
    if num_classes is None:
        num_classes = int(max(predictions.max(initial=0), targets.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (targets, predictions), 1)
    return matrix


@dataclass(frozen=True)
class ClassificationReport:
    """Per-class and macro-averaged precision / recall / F1."""

    precision: np.ndarray
    recall: np.ndarray
    f1: np.ndarray
    support: np.ndarray
    accuracy: float

    @property
    def macro_precision(self) -> float:
        return float(self.precision.mean())

    @property
    def macro_recall(self) -> float:
        return float(self.recall.mean())

    @property
    def macro_f1(self) -> float:
        return float(self.f1.mean())

    def summary(self) -> str:
        lines = [f"{'class':>6} {'prec':>7} {'recall':>7} {'f1':>7} {'n':>6}"]
        for c in range(len(self.precision)):
            lines.append(
                f"{c:>6} {self.precision[c]:>7.3f} {self.recall[c]:>7.3f} "
                f"{self.f1[c]:>7.3f} {self.support[c]:>6d}"
            )
        lines.append(
            f"{'macro':>6} {self.macro_precision:>7.3f} "
            f"{self.macro_recall:>7.3f} {self.macro_f1:>7.3f} "
            f"{int(self.support.sum()):>6d}"
        )
        lines.append(f"accuracy: {self.accuracy:.3f}")
        return "\n".join(lines)


def classification_report(
    logits: np.ndarray,
    targets: np.ndarray,
    mask: Optional[np.ndarray] = None,
    num_classes: Optional[int] = None,
) -> ClassificationReport:
    """Compute a full per-class report from logits."""
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if mask is not None:
        mask = np.asarray(mask)
        if mask.dtype == bool:
            mask = np.flatnonzero(mask)
        logits = logits[mask]
        targets = targets[mask]
    if num_classes is None:
        num_classes = logits.shape[1]
    predictions = logits.argmax(axis=-1)
    matrix = confusion_matrix(predictions, targets, num_classes)

    true_pos = np.diag(matrix).astype(np.float64)
    predicted = matrix.sum(axis=0).astype(np.float64)
    actual = matrix.sum(axis=1).astype(np.float64)

    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, true_pos / predicted, 0.0)
        recall = np.where(actual > 0, true_pos / actual, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)

    total = matrix.sum()
    accuracy = float(true_pos.sum() / total) if total else 0.0
    return ClassificationReport(
        precision=precision,
        recall=recall,
        f1=f1,
        support=actual.astype(np.int64),
        accuracy=accuracy,
    )
