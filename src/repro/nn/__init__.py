"""Minimal neural-network library built on ``repro.tensor``."""

from .early_stopping import EarlyStopping
from .layers import ACTIVATIONS, MLP, Dropout, Linear, get_activation
from .loss import (
    accuracy,
    cross_entropy,
    cross_entropy_label_smoothing,
    macro_auc,
    mse_loss,
)
from .module import Module, Parameter
from .metrics import ClassificationReport, classification_report, confusion_matrix
from .optim import SGD, Adam, Optimizer, RMSprop
from .scheduler import CosineAnnealingLR, LinearWarmupLR, LRScheduler, StepLR

__all__ = [
    "ACTIVATIONS",
    "Adam",
    "Dropout",
    "EarlyStopping",
    "Linear",
    "MLP",
    "Module",
    "Optimizer",
    "Parameter",
    "RMSprop",
    "SGD",
    "StepLR",
    "LRScheduler",
    "LinearWarmupLR",
    "CosineAnnealingLR",
    "ClassificationReport",
    "classification_report",
    "confusion_matrix",
    "cross_entropy_label_smoothing",
    "accuracy",
    "cross_entropy",
    "get_activation",
    "macro_auc",
    "mse_loss",
]
