"""Learning-rate schedulers for the optimizers in :mod:`repro.nn.optim`."""

from __future__ import annotations

import numpy as np

from .optim import Optimizer


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.epoch += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base learning rate to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_epochs < 1:
            raise ValueError(f"total_epochs must be >= 1, got {total_epochs}")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def get_lr(self) -> float:
        progress = min(self.epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + np.cos(np.pi * progress)
        )


class LinearWarmupLR(LRScheduler):
    """Linear ramp from 0 to the base rate over ``warmup_epochs`` epochs."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int):
        super().__init__(optimizer)
        if warmup_epochs < 1:
            raise ValueError(f"warmup_epochs must be >= 1, got {warmup_epochs}")
        self.warmup_epochs = warmup_epochs

    def get_lr(self) -> float:
        return self.base_lr * min(1.0, self.epoch / self.warmup_epochs)
