"""Module/Parameter abstractions, mirroring the torch.nn API surface the
GraphRARE implementation relies on (parameters(), train/eval mode, state
dicts for checkpointing the best model during early stopping).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as trainable state of a :class:`Module`."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for neural-network components.

    Sub-modules and parameters assigned as attributes are discovered
    automatically, as in PyTorch.  Modules carry a ``training`` flag that
    toggles dropout behaviour.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Parameter / submodule discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).items():
            pass
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    # ------------------------------------------------------------------
    # Gradient / state management
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter's data, keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{p.data.shape} vs {state[name].shape}"
                )
            p.data = state[name].copy()

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
