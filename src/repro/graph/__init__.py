"""Graph substrate: containers, metrics, normalisations and splits."""

from .algorithms import (
    connected_components,
    from_networkx,
    k_hop_neighbors,
    laplacian,
    largest_component,
    num_connected_components,
    shortest_path_lengths,
    subgraph,
    to_networkx,
    within_k_hops,
)
from .graph import Edge, Graph, GraphDelta, canonical_edge
from .io import load_edge_list, load_graph, save_edge_list, save_graph
from .metrics import class_distribution, degree_statistics, homophily_ratio
from .normalize import adjacency_from_matrix, gcn_norm, row_norm, two_hop_adjacency
from .splits import Split, geom_gcn_splits, random_split
from .storage import (
    GraphBundle,
    MemmapGraph,
    ScreenStateLoader,
    load_graph_bundle,
    save_entropy_sidecar,
    save_graph_bundle,
)

__all__ = [
    "Edge",
    "Graph",
    "GraphBundle",
    "GraphDelta",
    "MemmapGraph",
    "ScreenStateLoader",
    "Split",
    "adjacency_from_matrix",
    "canonical_edge",
    "class_distribution",
    "connected_components",
    "from_networkx",
    "k_hop_neighbors",
    "laplacian",
    "largest_component",
    "load_edge_list",
    "load_graph",
    "load_graph_bundle",
    "save_entropy_sidecar",
    "save_graph_bundle",
    "num_connected_components",
    "save_edge_list",
    "save_graph",
    "shortest_path_lengths",
    "subgraph",
    "to_networkx",
    "within_k_hops",
    "degree_statistics",
    "gcn_norm",
    "geom_gcn_splits",
    "homophily_ratio",
    "random_split",
    "row_norm",
    "two_hop_adjacency",
]
