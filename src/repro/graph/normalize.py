"""Propagation-matrix constructions shared by the GNN backbones."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .graph import Graph


def gcn_norm(graph: Graph, add_self_loops: bool = True) -> sp.csr_matrix:
    """Symmetric GCN normalisation ``D^{-1/2} (A + I) D^{-1/2}`` (Kipf-Welling).

    With ``add_self_loops=False`` the plain ``D^{-1/2} A D^{-1/2}`` is
    returned (H2GCN aggregates *without* the ego connection).
    """
    adj = graph.adjacency()
    if add_self_loops:
        adj = (adj + sp.eye(graph.num_nodes, format="csr")).tocsr()
    deg = np.asarray(adj.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(deg)
    nz = deg > 0
    inv_sqrt[nz] = deg[nz] ** -0.5
    d_half = sp.diags(inv_sqrt)
    return (d_half @ adj @ d_half).tocsr()


def row_norm(graph: Graph, add_self_loops: bool = False) -> sp.csr_matrix:
    """Row-normalised adjacency ``D^{-1} A`` (mean aggregation, GraphSAGE)."""
    adj = graph.adjacency()
    if add_self_loops:
        adj = (adj + sp.eye(graph.num_nodes, format="csr")).tocsr()
    deg = np.asarray(adj.sum(axis=1)).ravel()
    inv = np.zeros_like(deg)
    nz = deg > 0
    inv[nz] = 1.0 / deg[nz]
    return (sp.diags(inv) @ adj).tocsr()


def two_hop_adjacency(graph: Graph) -> sp.csr_matrix:
    """Strict 2-hop adjacency: reachable in exactly two hops, excluding
    one-hop neighbours and the ego node (the H2GCN neighbourhood N2)."""
    adj = graph.adjacency()
    two = (adj @ adj).tocsr()
    two.setdiag(0)
    two.eliminate_zeros()
    two.data = np.ones_like(two.data)
    # Remove entries that are also one-hop edges.
    overlap = two.multiply(adj)
    two = (two - overlap).tocsr()
    two.eliminate_zeros()
    return two


def adjacency_from_matrix(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Binarise and symmetrise an arbitrary sparse matrix (kNN graphs)."""
    m = matrix.tocsr()
    m.data = np.ones_like(m.data)
    sym = ((m + m.T) > 0).astype(np.float64).tocsr()
    sym.setdiag(0)
    sym.eliminate_zeros()
    return sym
