"""Graph persistence: a single-file ``.npz`` format plus plain edge lists.

The npz layout stores the edge list, features and labels; it round-trips
exactly and keeps synthetic datasets reusable across benchmark runs.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from .graph import Graph


def save_graph(graph: Graph, path: str) -> str:
    """Write ``graph`` to ``path`` (``.npz`` appended if missing)."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    edges = graph.edge_array().reshape(-1, 2)
    payload = {
        "num_nodes": np.array([graph.num_nodes], dtype=np.int64),
        "edges": edges,
    }
    if graph.features is not None:
        payload["features"] = graph.features
    if graph.labels is not None:
        payload["labels"] = graph.labels
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_graph(path: str) -> Graph:
    """Read a graph previously written by :func:`save_graph`."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        num_nodes = int(data["num_nodes"][0])
        edges = [tuple(e) for e in data["edges"]]
        features = data["features"] if "features" in data else None
        labels = data["labels"] if "labels" in data else None
    return Graph(num_nodes, edges, features=features, labels=labels)


def save_edge_list(graph: Graph, path: str) -> str:
    """Write a whitespace-separated ``u v`` edge list (one edge per line)."""
    with open(path, "w") as f:
        f.write(f"# num_nodes={graph.num_nodes}\n")
        for u, v in graph.edge_array().tolist():
            f.write(f"{u} {v}\n")
    return path


def load_edge_list(
    path: str,
    num_nodes: Optional[int] = None,
    features: Optional[np.ndarray] = None,
    labels: Optional[np.ndarray] = None,
) -> Graph:
    """Read an edge list; node count comes from the header comment, the
    ``num_nodes`` argument, or the maximum node id seen."""
    edges = []
    header_nodes = None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "num_nodes=" in line:
                    header_nodes = int(line.split("num_nodes=")[1])
                continue
            u, v = line.split()[:2]
            edges.append((int(u), int(v)))
    if num_nodes is None:
        num_nodes = header_nodes
    if num_nodes is None:
        num_nodes = 1 + max((max(u, v) for u, v in edges), default=0)
    return Graph(num_nodes, edges, features=features, labels=labels)
