"""Graph persistence: a single-file ``.npz`` format plus plain edge lists.

The npz layout stores the edge set, features and labels; it round-trips
exactly and keeps synthetic datasets reusable across benchmark runs.

Format versions
---------------
``version 1`` (legacy, no ``version`` field)
    ``num_nodes`` plus a dense ``(E, 2)`` ``edges`` pair array.  Still
    readable; never written anymore.
``version 2`` (current)
    ``num_nodes``, ``version`` and the sorted canonical ``edge_keys``
    vector (``u * N + v`` with ``u < v``) — the graph's primary state
    written as-is, so :func:`save_graph` no longer materialises the
    dense pair view at all (``np.savez`` streams the array to the
    archive in buffered chunks, which keeps memmap-backed key vectors
    out of RAM).  Files claiming a newer version are rejected with a
    clear error instead of being misread.

For the out-of-core directory layout (per-array ``.npy`` files that
``Graph`` can run on without loading), see
:mod:`repro.graph.storage`.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from .graph import Graph

#: Newest ``.npz`` layout version this build writes and understands.
FORMAT_VERSION = 2


def save_graph(graph: Graph, path: str) -> str:
    """Write ``graph`` to ``path`` (``.npz`` appended if missing)."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    payload = {
        "version": np.array([FORMAT_VERSION], dtype=np.int64),
        "num_nodes": np.array([graph.num_nodes], dtype=np.int64),
        "edge_keys": np.asarray(graph.edge_keys(), dtype=np.int64),
    }
    if graph.features is not None:
        payload["features"] = graph.features
    if graph.labels is not None:
        payload["labels"] = graph.labels
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_graph(path: str) -> Graph:
    """Read a graph previously written by :func:`save_graph`.

    Understands every layout up to :data:`FORMAT_VERSION`; files written
    by a newer build raise ``ValueError`` rather than loading garbage.
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        version = int(data["version"][0]) if "version" in data else 1
        if version > FORMAT_VERSION:
            raise ValueError(
                f"graph file {path!r} uses format version {version}, but "
                f"this build reads at most version {FORMAT_VERSION}; "
                "upgrade the library or re-export the graph"
            )
        num_nodes = int(data["num_nodes"][0])
        features = data["features"] if "features" in data else None
        labels = data["labels"] if "labels" in data else None
        if version >= 2:
            keys = np.asarray(data["edge_keys"], dtype=np.int64)
        else:
            keys = _keys_from_pairs(data["edges"], num_nodes, path)
    return Graph._from_keys(num_nodes, keys, features=features, labels=labels)


def _keys_from_pairs(
    edges: np.ndarray, num_nodes: int, path: str
) -> np.ndarray:
    """Canonical sorted keys from a legacy ``(E, 2)`` pair array —
    vectorised (the v1 reader built a Python tuple list per edge)."""
    pairs = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if pairs.size:
        if pairs.min() < 0 or pairs.max() >= num_nodes:
            raise ValueError(
                f"graph file {path!r}: edge endpoint out of range "
                f"[0, {num_nodes})"
            )
        if (pairs[:, 0] == pairs[:, 1]).any():
            raise ValueError(f"graph file {path!r}: self-loop edge")
    u = pairs.min(axis=1)
    v = pairs.max(axis=1)
    return np.unique(u * np.int64(num_nodes) + v)


def save_edge_list(graph: Graph, path: str) -> str:
    """Write a whitespace-separated ``u v`` edge list (one edge per line)."""
    with open(path, "w") as f:
        f.write(f"# num_nodes={graph.num_nodes}\n")
        for u, v in graph.edge_array().tolist():
            f.write(f"{u} {v}\n")
    return path


def load_edge_list(
    path: str,
    num_nodes: Optional[int] = None,
    features: Optional[np.ndarray] = None,
    labels: Optional[np.ndarray] = None,
) -> Graph:
    """Read an edge list; node count comes from the header comment, the
    ``num_nodes`` argument, or the maximum node id seen."""
    edges = []
    header_nodes = None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "num_nodes=" in line:
                    header_nodes = int(line.split("num_nodes=")[1])
                continue
            u, v = line.split()[:2]
            edges.append((int(u), int(v)))
    if num_nodes is None:
        num_nodes = header_nodes
    if num_nodes is None:
        num_nodes = 1 + max((max(u, v) for u, v in edges), default=0)
    return Graph(num_nodes, edges, features=features, labels=labels)
