"""Train/validation/test splits.

The paper adopts the Geom-GCN protocol: ten random splits with 60%/20%/20%
of the nodes *per class* assigned to train/val/test.  Splits are seeded and
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .graph import Graph


@dataclass(frozen=True)
class Split:
    """Index arrays for one train/val/test partition."""

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray

    def masks(self, num_nodes: int) -> tuple:
        """Boolean masks (train, val, test) of length ``num_nodes``."""
        out = []
        for idx in (self.train, self.val, self.test):
            mask = np.zeros(num_nodes, dtype=bool)
            mask[idx] = True
            out.append(mask)
        return tuple(out)


def random_split(
    labels: np.ndarray,
    rng: np.random.Generator,
    train_frac: float = 0.6,
    val_frac: float = 0.2,
) -> Split:
    """One per-class stratified split with the given fractions."""
    if train_frac + val_frac >= 1.0:
        raise ValueError("train_frac + val_frac must leave room for a test set")
    labels = np.asarray(labels)
    train, val, test = [], [], []
    for c in np.unique(labels):
        members = np.flatnonzero(labels == c)
        members = rng.permutation(members)
        n_train = max(1, int(round(train_frac * len(members))))
        n_val = max(1, int(round(val_frac * len(members))))
        n_train = min(n_train, max(1, len(members) - 2))
        n_val = min(n_val, max(1, len(members) - n_train - 1))
        train.append(members[:n_train])
        val.append(members[n_train : n_train + n_val])
        test.append(members[n_train + n_val :])
    return Split(
        train=np.sort(np.concatenate(train)),
        val=np.sort(np.concatenate(val)),
        test=np.sort(np.concatenate(test)),
    )


def geom_gcn_splits(
    graph: Graph,
    num_splits: int = 10,
    seed: int = 0,
    train_frac: float = 0.6,
    val_frac: float = 0.2,
) -> List[Split]:
    """The paper's ten 60/20/20 random splits, deterministically seeded."""
    if graph.labels is None:
        raise ValueError("splits require node labels")
    rng = np.random.default_rng(seed)
    return [
        random_split(graph.labels, rng, train_frac, val_frac)
        for _ in range(num_splits)
    ]
