"""The :class:`Graph` container used across the library.

A graph is ``G = (V, E, X, A)`` as in the paper's Table I: node features
``X`` (dense ``N x d``), integer labels ``y``, and an undirected, unweighted
adjacency stored as an edge set plus a cached ``scipy.sparse`` matrix.
Self-loops are disallowed in the edge set (propagation rules add their own
self-connections where the layer definition calls for them).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set, Tuple

import numpy as np
import scipy.sparse as sp

Edge = Tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """Return the undirected edge ``{u, v}`` in sorted-tuple form."""
    return (u, v) if u < v else (v, u)


class Graph:
    """An attributed, undirected graph.

    Parameters
    ----------
    num_nodes:
        ``N``, the number of nodes.
    edges:
        Iterable of ``(u, v)`` pairs; direction and duplicates are ignored,
        self-loops are rejected.
    features:
        Dense node-feature matrix ``X`` of shape ``(N, d)``.
    labels:
        Integer class labels ``y`` of shape ``(N,)`` (optional for unlabeled
        graphs).
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Edge],
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = int(num_nodes)

        edge_set: Set[Edge] = set()
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v:
                raise ValueError(f"self-loop ({u}, {v}) is not allowed")
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise ValueError(f"edge ({u}, {v}) out of range for N={num_nodes}")
            edge_set.add(canonical_edge(u, v))
        self._edges: FrozenSet[Edge] = frozenset(edge_set)

        if features is not None:
            features = np.asarray(features, dtype=np.float64)
            if features.shape[0] != num_nodes:
                raise ValueError(
                    f"features have {features.shape[0]} rows for N={num_nodes}"
                )
        self.features = features

        if labels is not None:
            labels = np.asarray(labels, dtype=np.int64)
            if labels.shape != (num_nodes,):
                raise ValueError(f"labels shape {labels.shape} != ({num_nodes},)")
        self.labels = labels

        self._adj: Optional[sp.csr_matrix] = None
        self.cache: dict = {}
        """Scratch space for derived structures (propagation matrices, ...).

        Graphs are immutable, so anything derived from the topology can be
        memoised here; rewiring produces a new ``Graph`` with a fresh cache.
        """

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def edges(self) -> FrozenSet[Edge]:
        """The canonical undirected edge set."""
        return self._edges

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def num_features(self) -> int:
        return 0 if self.features is None else self.features.shape[1]

    @property
    def num_classes(self) -> int:
        return 0 if self.labels is None else int(self.labels.max()) + 1

    def has_edge(self, u: int, v: int) -> bool:
        return canonical_edge(u, v) in self._edges

    # ------------------------------------------------------------------
    # Derived structures (cached)
    # ------------------------------------------------------------------
    def adjacency(self) -> sp.csr_matrix:
        """Symmetric binary adjacency matrix ``A`` (no self-loops)."""
        if self._adj is None:
            if self._edges:
                rows, cols = zip(*self._edges)
                rows, cols = np.array(rows), np.array(cols)
                data = np.ones(len(rows))
                upper = sp.coo_matrix(
                    (data, (rows, cols)), shape=(self.num_nodes, self.num_nodes)
                )
                self._adj = (upper + upper.T).tocsr()
            else:
                self._adj = sp.csr_matrix((self.num_nodes, self.num_nodes))
        return self._adj

    def degrees(self) -> np.ndarray:
        """Node degree vector ``d_v``."""
        return np.asarray(self.adjacency().sum(axis=1)).ravel().astype(np.int64)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted one-hop neighbour ids ``N1(v)``."""
        adj = self.adjacency()
        return adj.indices[adj.indptr[v] : adj.indptr[v + 1]].astype(np.int64)

    def edge_index(self) -> np.ndarray:
        """Directed edge list of shape ``(2, 2|E|)`` with both orientations.

        Row 0 holds source ids, row 1 destination ids — the COO layout the
        GAT layer consumes.
        """
        adj = self.adjacency().tocoo()
        return np.vstack([adj.row, adj.col]).astype(np.int64)

    # ------------------------------------------------------------------
    # Functional updates (graphs are treated as immutable)
    # ------------------------------------------------------------------
    def with_edges(self, edges: Iterable[Edge]) -> "Graph":
        """A copy of this graph with a replaced edge set (shared X, y)."""
        return Graph(self.num_nodes, edges, self.features, self.labels)

    def add_edges(self, new_edges: Iterable[Edge]) -> "Graph":
        """A copy with ``new_edges`` added (self-loops rejected)."""
        merged = set(self._edges)
        for u, v in new_edges:
            if u == v:
                continue
            merged.add(canonical_edge(int(u), int(v)))
        return self.with_edges(merged)

    def remove_edges(self, gone_edges: Iterable[Edge]) -> "Graph":
        """A copy with ``gone_edges`` removed (absent edges ignored)."""
        removed = {canonical_edge(int(u), int(v)) for u, v in gone_edges}
        return self.with_edges(self._edges - removed)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Graph(N={self.num_nodes}, |E|={self.num_edges}, "
            f"d={self.num_features}, C={self.num_classes})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        same_features = (
            (self.features is None and other.features is None)
            or (
                self.features is not None
                and other.features is not None
                and np.array_equal(self.features, other.features)
            )
        )
        same_labels = (
            (self.labels is None and other.labels is None)
            or (
                self.labels is not None
                and other.labels is not None
                and np.array_equal(self.labels, other.labels)
            )
        )
        return (
            self.num_nodes == other.num_nodes
            and self._edges == other._edges
            and same_features
            and same_labels
        )
