"""The :class:`Graph` container used across the library.

A graph is ``G = (V, E, X, A)`` as in the paper's Table I: node features
``X`` (dense ``N x d``), integer labels ``y``, and an undirected, unweighted
adjacency.  The *primary* topology state is a sorted, deduplicated array of
canonical edge keys (``u * N + v`` with ``u < v``) — a compiled CSR-style
representation that every derived structure (adjacency, degrees, neighbour
slices) is built from with vectorised numpy, never per-edge Python loops.
The historical frozen-set edge API is kept as a lazily materialised
compatibility view.  Self-loops are disallowed (propagation rules add their
own self-connections where the layer definition calls for them).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

import numpy as np
import scipy.sparse as sp

Edge = Tuple[int, int]


class GraphDelta:
    """The edge-level difference between a graph and the base it came from.

    Functional updates (:func:`repro.core.rewire.rewire_graph`,
    :meth:`Graph.add_edges`, :meth:`Graph.remove_edges`) already know exactly
    which canonical edge keys they inserted and deleted; recording that
    knowledge on the derived graph lets downstream consumers — the
    incremental reward engine above all — patch cached propagation matrices
    and re-evaluate only the edit's halo instead of rebuilding from scratch.

    ``base`` is a live reference: it keeps the root graph (and whatever is
    memoised in its ``cache``) alive for the derived graph's lifetime.
    That is exactly what the reward loop wants — every rewire shares one
    immutable base — but a caller deriving a graph only to discard the
    original can sever the link with ``derived.delta = None``.

    Attributes
    ----------
    base:
        The graph this delta is measured against (shared, not copied).
    added:
        Sorted canonical keys (``u * N + v``, ``u < v``) present in the
        derived graph but not in ``base``.
    removed:
        Sorted canonical keys present in ``base`` but not in the derived
        graph.
    """

    __slots__ = ("base", "added", "removed")

    def __init__(
        self, base: "Graph", added: np.ndarray, removed: np.ndarray
    ) -> None:
        self.base = base
        self.added = np.asarray(added, dtype=np.int64)
        self.removed = np.asarray(removed, dtype=np.int64)

    @property
    def num_edits(self) -> int:
        """Total number of inserted plus deleted edges."""
        return int(self.added.shape[0] + self.removed.shape[0])

    @property
    def is_empty(self) -> bool:
        return self.num_edits == 0

    def edit_pairs(self) -> np.ndarray:
        """All edited edges as an ``(num_edits, 2)`` canonical-pair array."""
        keys = np.concatenate([self.added, self.removed])
        n = np.int64(self.base.num_nodes)
        return np.stack([keys // n, keys % n], axis=1)

    def touched_nodes(self) -> np.ndarray:
        """Sorted unique endpoints of every inserted or deleted edge."""
        if self.is_empty:
            return np.empty(0, dtype=np.int64)
        return np.unique(self.edit_pairs().ravel())

    def degree_changes(self) -> np.ndarray:
        """Per-node signed degree difference (derived minus base)."""
        n = self.base.num_nodes
        change = np.zeros(n, dtype=np.int64)
        nn = np.int64(n)
        if self.added.shape[0]:
            pairs = np.stack([self.added // nn, self.added % nn], axis=1)
            change += np.bincount(pairs.ravel(), minlength=n)
        if self.removed.shape[0]:
            pairs = np.stack([self.removed // nn, self.removed % nn], axis=1)
            change -= np.bincount(pairs.ravel(), minlength=n)
        return change

    def __repr__(self) -> str:
        return (
            f"GraphDelta(+{self.added.shape[0]} edges, "
            f"-{self.removed.shape[0]} edges)"
        )


def _member_sorted(keys: np.ndarray, sorted_keys: np.ndarray) -> np.ndarray:
    """Membership of ``keys`` in the sorted unique ``sorted_keys`` via
    binary search — O(len(keys) log E), no concat-sort like ``np.isin``."""
    if not sorted_keys.shape[0]:
        return np.zeros(keys.shape[0], dtype=bool)
    pos = np.minimum(
        np.searchsorted(sorted_keys, keys), sorted_keys.shape[0] - 1
    )
    return sorted_keys[pos] == keys


def _collapsed_delta(base: "Graph", keys: np.ndarray) -> GraphDelta:
    """Delta of the key set ``keys`` against ``base``'s *root* graph.

    When ``base`` itself carries a delta, the new delta is recorded
    against that delta's base instead — iterative edits
    (``g = g.add_edges(...)`` in a loop) therefore never build a chain of
    back-references pinning every intermediate graph (and its
    propagation-matrix cache) in memory, and a consumer bound to the root
    (the incremental evaluator) stays eligible across chained edits.
    """
    root = base.delta.base if base.delta is not None else base
    root_keys = root.edge_keys()
    return GraphDelta(
        root,
        keys[np.isin(keys, root_keys, assume_unique=True, invert=True)],
        root_keys[np.isin(root_keys, keys, assume_unique=True, invert=True)],
    )


def canonical_edge(u: int, v: int) -> Edge:
    """Return the undirected edge ``{u, v}`` in sorted-tuple form."""
    return (u, v) if u < v else (v, u)


def _edges_to_array(edges: Iterable[Edge]) -> np.ndarray:
    """Coerce any iterable of ``(u, v)`` pairs into an ``(E, 2)`` int array."""
    if isinstance(edges, np.ndarray):
        arr = np.asarray(edges, dtype=np.int64)
    else:
        pairs = list(edges)
        if not pairs:
            return np.empty((0, 2), dtype=np.int64)
        arr = np.asarray(pairs, dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"edges must be (u, v) pairs, got shape {arr.shape}")
    return arr


class Graph:
    """An attributed, undirected graph.

    Parameters
    ----------
    num_nodes:
        ``N``, the number of nodes.
    edges:
        Iterable of ``(u, v)`` pairs; direction and duplicates are ignored,
        self-loops are rejected.
    features:
        Dense node-feature matrix ``X`` of shape ``(N, d)``.
    labels:
        Integer class labels ``y`` of shape ``(N,)`` (optional for unlabeled
        graphs).
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Edge],
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = int(num_nodes)

        arr = _edges_to_array(edges)
        if arr.shape[0]:
            loops = arr[:, 0] == arr[:, 1]
            if loops.any():
                u = int(arr[loops][0, 0])
                raise ValueError(f"self-loop ({u}, {u}) is not allowed")
            bad = (arr < 0) | (arr >= num_nodes)
            if bad.any():
                u, v = (int(x) for x in arr[bad.any(axis=1)][0])
                raise ValueError(f"edge ({u}, {v}) out of range for N={num_nodes}")
            lo = np.minimum(arr[:, 0], arr[:, 1])
            hi = np.maximum(arr[:, 0], arr[:, 1])
            keys = np.unique(lo * np.int64(self.num_nodes) + hi)
        else:
            keys = np.empty(0, dtype=np.int64)
        self._edge_keys = keys

        if features is not None:
            features = np.asarray(features, dtype=np.float64)
            if features.shape[0] != num_nodes:
                raise ValueError(
                    f"features have {features.shape[0]} rows for N={num_nodes}"
                )
        self.features = features

        if labels is not None:
            labels = np.asarray(labels, dtype=np.int64)
            if labels.shape != (num_nodes,):
                raise ValueError(f"labels shape {labels.shape} != ({num_nodes},)")
        self.labels = labels

        self._init_derived()

    def _init_derived(self) -> None:
        self._edges_view: Optional[FrozenSet[Edge]] = None
        self._edge_array: Optional[np.ndarray] = None
        self._adj: Optional[sp.csr_matrix] = None
        self._deg: Optional[np.ndarray] = None
        self.delta: Optional[GraphDelta] = None
        """Edge delta against the graph this one was derived from, when the
        constructing operation knows it (see :class:`GraphDelta`)."""
        self.cache: dict = {}
        """Scratch space for derived structures (propagation matrices, ...).

        Graphs are immutable, so anything derived from the topology can be
        memoised here; rewiring produces a new ``Graph`` with a fresh cache.
        """

    # ------------------------------------------------------------------
    # Trusted fast constructor
    # ------------------------------------------------------------------
    @classmethod
    def _from_keys(
        cls,
        num_nodes: int,
        keys: np.ndarray,
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
    ) -> "Graph":
        """Unchecked rebuild from sorted, unique, canonical edge keys.

        Internal fast path for rewiring: ``keys`` must already be validated
        (``u * N + v`` with ``0 <= u < v < N``, strictly increasing).
        Features and labels are shared, not copied.
        """
        g = cls.__new__(cls)
        g.num_nodes = int(num_nodes)
        g._edge_keys = keys
        g.features = features
        g.labels = labels
        g._init_derived()
        return g

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def edge_keys(self) -> np.ndarray:
        """Sorted unique canonical edge keys ``u * N + v`` (read-only)."""
        return self._edge_keys

    def edge_array(self) -> np.ndarray:
        """Canonical edges as an ``(E, 2)`` int64 array, lexicographically
        sorted (equivalent to ``sorted(graph.edges)``)."""
        if self._edge_array is None:
            n = np.int64(self.num_nodes)
            self._edge_array = np.stack(
                [self._edge_keys // n, self._edge_keys % n], axis=1
            )
        return self._edge_array

    @property
    def edges(self) -> FrozenSet[Edge]:
        """The canonical undirected edge set (compatibility view)."""
        if self._edges_view is None:
            self._edges_view = frozenset(map(tuple, self.edge_array().tolist()))
        return self._edges_view

    @property
    def num_edges(self) -> int:
        return int(self._edge_keys.shape[0])

    @property
    def num_features(self) -> int:
        return 0 if self.features is None else self.features.shape[1]

    @property
    def num_classes(self) -> int:
        return 0 if self.labels is None else int(self.labels.max()) + 1

    def has_edge(self, u: int, v: int) -> bool:
        u, v = (u, v) if u < v else (v, u)
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            return False
        key = np.int64(u) * self.num_nodes + v
        i = int(np.searchsorted(self._edge_keys, key))
        return i < self._edge_keys.shape[0] and self._edge_keys[i] == key

    # ------------------------------------------------------------------
    # Derived structures (cached)
    # ------------------------------------------------------------------
    def adjacency(self) -> sp.csr_matrix:
        """Symmetric binary adjacency matrix ``A`` (no self-loops)."""
        if self._adj is None:
            n = self.num_nodes
            if self.num_edges:
                ea = self.edge_array()
                rows = np.concatenate([ea[:, 0], ea[:, 1]])
                cols = np.concatenate([ea[:, 1], ea[:, 0]])
                data = np.ones(rows.shape[0])
                self._adj = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
            else:
                self._adj = sp.csr_matrix((n, n))
        return self._adj

    def degrees(self) -> np.ndarray:
        """Node degree vector ``d_v``."""
        if self._deg is None:
            ea = self.edge_array()
            self._deg = np.bincount(
                ea.ravel(), minlength=self.num_nodes
            ).astype(np.int64)
        return self._deg

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted one-hop neighbour ids ``N1(v)``."""
        adj = self.adjacency()
        return adj.indices[adj.indptr[v] : adj.indptr[v + 1]].astype(np.int64)

    def csr_neighbors(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR ``(indptr, indices)`` of the adjacency, both int64.

        The flat neighbour layout every vectorised kernel consumes:
        node ``v``'s sorted neighbours are
        ``indices[indptr[v]:indptr[v + 1]]``.
        """
        adj = self.adjacency()
        return adj.indptr.astype(np.int64), adj.indices.astype(np.int64)

    # ------------------------------------------------------------------
    # Row-range shard/slice helpers (the entropy shard planner's substrate)
    # ------------------------------------------------------------------
    def edge_key_range(self, lo: int, hi: int) -> Tuple[int, int]:
        """Index range ``(i0, i1)`` into :meth:`edge_keys` for the edges
        whose *canonical* (smaller) endpoint lies in ``[lo, hi)``.

        Because keys are ``u * N + v`` with ``u < v`` and sorted, a node
        row-range maps to one contiguous key slice — the property the
        entropy shard planner exploits to stream edge ranges per worker.
        """
        if not (0 <= lo <= hi <= self.num_nodes):
            raise ValueError(
                f"row range [{lo}, {hi}) out of bounds for N={self.num_nodes}"
            )
        n = np.int64(self.num_nodes)
        i0 = int(np.searchsorted(self._edge_keys, np.int64(lo) * n))
        i1 = int(np.searchsorted(self._edge_keys, np.int64(hi) * n))
        return i0, i1

    def edge_key_slice(self, lo: int, hi: int) -> np.ndarray:
        """Sorted canonical edge keys with smaller endpoint in ``[lo, hi)``."""
        i0, i1 = self.edge_key_range(lo, hi)
        return self._edge_keys[i0:i1]

    def csr_row_slice(self, lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
        """Adjacency CSR restricted to rows ``[lo, hi)``.

        Returns ``(indptr_local, indices)`` where
        ``indices[indptr_local[v - lo]:indptr_local[v - lo + 1]]`` are node
        ``v``'s sorted neighbours.  The in-memory entropy engines index the
        shared full CSR directly; this zero-based per-range layout is the
        slicing contract for the roadmap's next sharding step (streaming
        shards from disk, where no global CSR exists).
        """
        if not (0 <= lo <= hi <= self.num_nodes):
            raise ValueError(
                f"row range [{lo}, {hi}) out of bounds for N={self.num_nodes}"
            )
        indptr, indices = self.csr_neighbors()
        local = indptr[lo : hi + 1] - indptr[lo]
        return local, indices[indptr[lo] : indptr[hi]]

    def edge_index(self) -> np.ndarray:
        """Directed edge list of shape ``(2, 2|E|)`` with both orientations.

        Row 0 holds source ids, row 1 destination ids — the COO layout the
        GAT layer consumes.
        """
        adj = self.adjacency().tocoo()
        return np.vstack([adj.row, adj.col]).astype(np.int64)

    # ------------------------------------------------------------------
    # Functional updates (graphs are treated as immutable)
    # ------------------------------------------------------------------
    def with_edges(self, edges: Iterable[Edge]) -> "Graph":
        """A copy of this graph with a replaced edge set (shared X, y)."""
        return Graph(self.num_nodes, edges, self.features, self.labels)

    def add_edges(self, new_edges: Iterable[Edge]) -> "Graph":
        """A copy with ``new_edges`` added (self-loops silently skipped).

        The result carries a :class:`GraphDelta` against this graph's root
        (see :func:`_collapsed_delta`) recording the genuinely new keys.
        """
        empty = np.empty(0, dtype=np.int64)
        arr = _edges_to_array(new_edges)
        arr = arr[arr[:, 0] != arr[:, 1]]
        if not arr.shape[0]:
            keys = self._edge_keys
            added = empty
        else:
            bad = (arr < 0) | (arr >= self.num_nodes)
            if bad.any():
                u, v = (int(x) for x in arr[bad.any(axis=1)][0])
                raise ValueError(
                    f"edge ({u}, {v}) out of range for N={self.num_nodes}"
                )
            lo = np.minimum(arr[:, 0], arr[:, 1])
            hi = np.maximum(arr[:, 0], arr[:, 1])
            new_keys = np.unique(lo * np.int64(self.num_nodes) + hi)
            added = new_keys[~_member_sorted(new_keys, self._edge_keys)]
            keys = np.union1d(self._edge_keys, new_keys)
        g = Graph._from_keys(self.num_nodes, keys, self.features, self.labels)
        # O(|edits| log E) delta on the common unchained case; collapse to
        # the root otherwise so chains never pin intermediates.
        if self.delta is None:
            g.delta = GraphDelta(self, added, empty)
        else:
            g.delta = _collapsed_delta(self, keys)
        return g

    def remove_edges(self, gone_edges: Iterable[Edge]) -> "Graph":
        """A copy with ``gone_edges`` removed (absent edges ignored).

        The result carries a :class:`GraphDelta` against this graph's root
        (see :func:`_collapsed_delta`) recording the keys actually present
        and removed.
        """
        empty = np.empty(0, dtype=np.int64)
        arr = _edges_to_array(gone_edges)
        if arr.shape[0]:
            # Out-of-range pairs cannot be present, but their lo*N+hi key
            # could alias a real edge's — drop them before keying.
            arr = arr[((arr >= 0) & (arr < self.num_nodes)).all(axis=1)]
        if not arr.shape[0]:
            keys = self._edge_keys
            removed = empty
        else:
            lo = np.minimum(arr[:, 0], arr[:, 1])
            hi = np.maximum(arr[:, 0], arr[:, 1])
            gone = np.unique(lo * np.int64(self.num_nodes) + hi)
            removed = gone[_member_sorted(gone, self._edge_keys)]
            keys = self._edge_keys[~_member_sorted(self._edge_keys, removed)]
        g = Graph._from_keys(self.num_nodes, keys, self.features, self.labels)
        # O(|edits| log E) delta on the common unchained case; collapse to
        # the root otherwise so chains never pin intermediates.
        if self.delta is None:
            g.delta = GraphDelta(self, empty, removed)
        else:
            g.delta = _collapsed_delta(self, keys)
        return g

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Graph(N={self.num_nodes}, |E|={self.num_edges}, "
            f"d={self.num_features}, C={self.num_classes})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        same_features = (
            (self.features is None and other.features is None)
            or (
                self.features is not None
                and other.features is not None
                and np.array_equal(self.features, other.features)
            )
        )
        same_labels = (
            (self.labels is None and other.labels is None)
            or (
                self.labels is not None
                and other.labels is not None
                and np.array_equal(self.labels, other.labels)
            )
        )
        return (
            self.num_nodes == other.num_nodes
            and np.array_equal(self._edge_keys, other._edge_keys)
            and same_features
            and same_labels
        )
