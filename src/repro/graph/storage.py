"""Out-of-core graph storage: versioned on-disk bundles + memmap graphs.

A *graph bundle* is a directory holding one ``.npy`` file per array —
sorted canonical edge keys, the adjacency CSR (``indptr``/``indices``),
features and labels — plus a ``bundle.json`` manifest carrying the format
version and shape metadata.  The layout is chosen so every consumer can
open the arrays with ``np.load(..., mmap_mode="r")`` and read only the
pages it touches:

* :class:`MemmapGraph` is a :class:`~repro.graph.Graph` whose primary
  state lives on such memmaps.  Binary searches over the edge keys, CSR
  row slices and degree lookups never materialise the arrays;
  :meth:`~repro.graph.Graph.adjacency` (the dense fallback some consumers
  still need) is built through a chunked streaming copy and counted in
  telemetry so accidental re-materialisation is visible.
* The *entropy sidecar* (``entropy/`` inside the bundle) persists the
  screen-then-rescore engine's read-only state — embeddings, degree
  profiles and the scorer's folded suffix arrays — so shard workers can
  assemble a :class:`~repro.entropy.screening.ScreenState` from a path
  instead of receiving pickled arrays (:class:`ScreenStateLoader`, the
  payload for ``run_sharded(..., state_loader=...)``).
* :func:`advise_dontneed` drops the clean file-backed pages of a memmap
  back to the page cache, which is what bounds a streaming run's peak RSS
  to its working set instead of the bundle size.

Everything stored is the byte-exact output of the in-RAM builders, so a
bundle-backed pipeline and an in-RAM pipeline given the same engine
parameters produce byte-identical screening and rewiring results (see
``docs/out-of-core.md`` for the full contract).
"""

from __future__ import annotations

import json
import mmap
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..telemetry import get_telemetry
from .graph import Graph

#: On-disk format version of the bundle directory layout.  Readers reject
#: bundles written by a newer layout with a clear error instead of
#: misinterpreting the arrays.
BUNDLE_VERSION = 1

#: Manifest file name inside a bundle directory.
BUNDLE_META = "bundle.json"

#: Manifest file name of the entropy sidecar (inside ``<bundle>/entropy``).
ENTROPY_META = "entropy.json"

#: Rows copied per step by the chunked array writers/readers.  Sized so a
#: float64 feature chunk stays a few MB — small enough never to matter for
#: peak RSS, large enough that the copy loop is all memcpy.
DEFAULT_CHUNK_ROWS = 65_536


# ---------------------------------------------------------------------------
# Page-residency control
# ---------------------------------------------------------------------------
def _backing_mmap(arr) -> Optional[mmap.mmap]:
    """The ``mmap`` object backing ``arr`` (walking views), or ``None``."""
    seen = 0
    while arr is not None and seen < 16:
        candidate = getattr(arr, "_mmap", None)
        if isinstance(candidate, mmap.mmap):
            return candidate
        arr = getattr(arr, "base", None)
        seen += 1
    return None


def advise_dontneed(*arrays) -> int:
    """Drop the resident pages of each memmap-backed array.

    ``MADV_DONTNEED`` on a read-only file mapping releases the process's
    page-table entries (the data stays in the OS page cache, so the next
    access is a cheap minor fault).  This is the primitive the streaming
    pipeline uses to keep peak RSS bounded by its working set.  Arrays
    that are not memmap-backed are ignored; returns how many mappings
    were actually advised.
    """
    if not hasattr(mmap, "MADV_DONTNEED"):  # non-Linux fallback: no-op
        return 0
    dropped = 0
    seen = set()
    for arr in arrays:
        m = _backing_mmap(arr)
        if m is None or id(m) in seen:
            continue
        seen.add(id(m))
        try:
            m.madvise(mmap.MADV_DONTNEED)
            dropped += 1
        except (OSError, ValueError):  # closed / unsupported mapping
            continue
    return dropped


class MmapReleaser:
    """Two-tier page-release policy for a streaming shard worker.

    ``step()`` is called once per row block and drops the *gather* arrays
    (scorer state read at random row offsets, whose residency would
    otherwise grow to the full array) every ``every`` calls; ``flush()``
    runs at shard end and additionally drops the arrays that must stay
    resident across blocks (the screen's GEMM operand, the CSR).
    ``every=0`` disables the per-block tier.
    """

    def __init__(self, gather: Sequence, persistent: Sequence = (), every: int = 1):
        self.gather = [a for a in gather if a is not None]
        self.persistent = [a for a in persistent if a is not None]
        self.every = int(every)
        self._calls = 0

    def step(self) -> None:
        if not self.every:
            return
        self._calls += 1
        if self._calls % self.every:
            return
        n = advise_dontneed(*self.gather)
        tel = get_telemetry()
        if tel.enabled:
            tel.count("storage.page_releases", n)

    def flush(self) -> None:
        n = advise_dontneed(*self.gather, *self.persistent)
        tel = get_telemetry()
        if tel.enabled:
            tel.count("storage.page_releases", n)


# ---------------------------------------------------------------------------
# Chunked .npy writers
# ---------------------------------------------------------------------------
def _write_array_chunked(
    path: str,
    arr: np.ndarray,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    fortran_order: bool = False,
) -> int:
    """Write ``arr`` to ``path`` as ``.npy`` by row chunks; returns nbytes.

    The destination is an ``open_memmap``, so no second in-RAM copy of the
    array is ever made — the source may itself be a memmap (re-saving a
    bundle) or a live array.
    """
    out = np.lib.format.open_memmap(
        path,
        mode="w+",
        dtype=arr.dtype,
        shape=arr.shape,
        fortran_order=fortran_order,
    )
    if arr.ndim == 0 or not arr.shape[0]:
        out.flush()
        nbytes = int(out.nbytes)
        del out
        return nbytes
    for start in range(0, arr.shape[0], max(chunk_rows, 1)):
        stop = min(arr.shape[0], start + chunk_rows)
        out[start:stop] = arr[start:stop]
    out.flush()
    nbytes = int(out.nbytes)
    del out
    return nbytes


# ---------------------------------------------------------------------------
# The bundle container
# ---------------------------------------------------------------------------
class GraphBundle:
    """Handle on an on-disk graph bundle directory.

    Thin and stateless apart from the parsed manifest: arrays are opened
    on demand (memmapped by default) and nothing is cached here, so a
    bundle can be shared across processes by path alone.
    """

    def __init__(self, path: str, meta: Dict) -> None:
        self.path = path
        self.meta = meta

    # -- open / manifest ------------------------------------------------
    @classmethod
    def open(cls, path: str) -> "GraphBundle":
        """Open an existing bundle, validating format and version."""
        meta_path = os.path.join(path, BUNDLE_META)
        if not os.path.isfile(meta_path):
            raise FileNotFoundError(
                f"{path!r} is not a graph bundle (missing {BUNDLE_META})"
            )
        with open(meta_path) as f:
            meta = json.load(f)
        if meta.get("format") != "repro-graph-bundle":
            raise ValueError(
                f"{path!r} is not a graph bundle "
                f"(format={meta.get('format')!r})"
            )
        version = meta.get("version")
        if version != BUNDLE_VERSION:
            raise ValueError(
                f"unsupported graph-bundle version {version!r} at {path!r}; "
                f"this build reads version {BUNDLE_VERSION} — re-create the "
                f"bundle with save_graph_bundle"
            )
        return cls(path, meta)

    def array_path(self, name: str) -> str:
        return os.path.join(self.path, f"{name}.npy")

    def has(self, name: str) -> bool:
        return name in self.meta["arrays"]

    def load(self, name: str, mmap_arrays: bool = True) -> np.ndarray:
        """Open one stored array (memmapped unless ``mmap_arrays=False``)."""
        if not self.has(name):
            raise KeyError(f"bundle {self.path!r} has no array {name!r}")
        tel = get_telemetry()
        if not tel.enabled:
            return np.load(
                self.array_path(name), mmap_mode="r" if mmap_arrays else None
            )
        with tel.span("storage.load", hist="io.read_s", array=name):
            arr = np.load(
                self.array_path(name), mmap_mode="r" if mmap_arrays else None
            )
        if not mmap_arrays:
            tel.count("storage.bytes_read", int(arr.nbytes))
        return arr

    def nbytes(self, name: str) -> int:
        """Stored size of one array (from the manifest, no file access)."""
        return int(self.meta["arrays"][name]["nbytes"])

    # -- accounting -----------------------------------------------------
    def materialized_nbytes(self) -> int:
        """Bytes an in-RAM run of the same pipeline holds resident.

        The sum of every stored array plus the derived structures a
        :class:`~repro.graph.Graph` materialises on top of them — the
        ``(E, 2)`` canonical pair view, the scipy CSR adjacency (float64
        data + int32 indices/indptr) and the degree vector.  This is the
        denominator of the out-of-core RSS contract
        (``docs/out-of-core.md``).
        """
        total = sum(int(a["nbytes"]) for a in self.meta["arrays"].values())
        n = int(self.meta["num_nodes"])
        e = int(self.meta["num_edges"])
        total += 2 * e * 8              # edge_array (E, 2) int64
        total += 2 * e * 8              # adjacency data (2E float64)
        total += 2 * e * 4 + (n + 1) * 4  # adjacency indices/indptr int32
        total += n * 8                  # degrees int64
        return total

    # -- graph construction --------------------------------------------
    def graph(self, mmap_arrays: bool = True) -> Graph:
        """Construct the stored graph (see :func:`load_graph_bundle`)."""
        return load_graph_bundle(self.path, mmap_arrays=mmap_arrays, bundle=self)


def save_graph_bundle(
    graph: Graph, path: str, chunk_rows: int = DEFAULT_CHUNK_ROWS
) -> str:
    """Persist ``graph`` as a versioned ``.npy``-per-array bundle directory.

    Stores the sorted canonical edge keys, the CSR adjacency
    (``indptr``/``indices`` as int64), and — when present — features and
    labels.  All writes stream row chunks into ``open_memmap`` targets, so
    saving adds only one chunk of transient memory on top of what the
    source graph already holds (re-saving a :class:`MemmapGraph` never
    materialises its arrays at all).
    """
    os.makedirs(path, exist_ok=True)
    indptr, indices = graph.csr_neighbors()
    arrays: Dict[str, np.ndarray] = {
        "edge_keys": graph.edge_keys(),
        "indptr": np.asarray(indptr, dtype=np.int64),
        "indices": np.asarray(indices, dtype=np.int64),
    }
    if graph.features is not None:
        arrays["features"] = graph.features
    if graph.labels is not None:
        arrays["labels"] = graph.labels

    manifest: Dict[str, Dict] = {}
    tel = get_telemetry()
    for name, arr in arrays.items():
        with tel.span("storage.save", array=name):
            nbytes = _write_array_chunked(
                graph_bundle_array_path(path, name), arr, chunk_rows
            )
        manifest[name] = {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "nbytes": nbytes,
        }
        if tel.enabled:
            tel.count("storage.bytes_written", nbytes)

    meta = {
        "format": "repro-graph-bundle",
        "version": BUNDLE_VERSION,
        "num_nodes": int(graph.num_nodes),
        "num_edges": int(graph.num_edges),
        "arrays": manifest,
    }
    with open(os.path.join(path, BUNDLE_META), "w") as f:
        json.dump(meta, f, indent=2)
    return path


def graph_bundle_array_path(path: str, name: str) -> str:
    """Path of one array file inside a bundle directory."""
    return os.path.join(path, f"{name}.npy")


def load_graph_bundle(
    path: str, mmap_arrays: bool = True, bundle: Optional[GraphBundle] = None
) -> Graph:
    """Reconstruct the graph stored at ``path``.

    ``mmap_arrays=True`` (default) returns a :class:`MemmapGraph` whose
    arrays are lazily paged from disk; ``False`` loads every array into
    RAM and returns it wrapped in the same class (the "materialised twin"
    the out-of-core benchmark compares against — byte-identical data,
    identical code paths).
    """
    if bundle is None:
        bundle = GraphBundle.open(path)
    return MemmapGraph._from_bundle(bundle, mmap_arrays=mmap_arrays)


class MemmapGraph(Graph):
    """A :class:`~repro.graph.Graph` whose primary state is memmapped.

    Drop-in compatible: the sorted edge-key array *is* the graph's primary
    state, so every inherited operation (binary-search membership,
    functional edits, the entropy shard planner's
    ``edge_key_range``/``edge_key_slice``) works unchanged on the
    memmapped keys, touching only the pages the access pattern needs.
    The CSR accessors are overridden to serve the *stored* ``indptr``/
    ``indices`` instead of building a scipy adjacency, and
    :meth:`adjacency` — still needed by dense fallbacks — is a chunked
    streaming build counted in telemetry (``storage.materialize.*``).

    Functional edits (:meth:`~repro.graph.Graph.add_edges` /
    ``remove_edges``) return plain in-RAM :class:`~repro.graph.Graph`
    objects carrying a delta against this graph, which is exactly what
    the incremental reward engine patches from.
    """

    @classmethod
    def _from_bundle(
        cls, bundle: GraphBundle, mmap_arrays: bool = True
    ) -> "MemmapGraph":
        g = cls.__new__(cls)
        g.num_nodes = int(bundle.meta["num_nodes"])
        g._edge_keys = bundle.load("edge_keys", mmap_arrays)
        g.features = (
            bundle.load("features", mmap_arrays) if bundle.has("features") else None
        )
        g.labels = (
            bundle.load("labels", mmap_arrays) if bundle.has("labels") else None
        )
        g._init_derived()
        g.bundle = bundle
        g._bundle_indptr = bundle.load("indptr", mmap_arrays)
        g._bundle_indices = bundle.load("indices", mmap_arrays)
        return g

    @property
    def is_mmap(self) -> bool:
        """Whether the arrays are actually memmapped (vs loaded in RAM)."""
        return _backing_mmap(self._edge_keys) is not None

    # -- streaming accessors -------------------------------------------
    def csr_neighbors(self) -> Tuple[np.ndarray, np.ndarray]:
        """The *stored* CSR ``(indptr, indices)`` — no adjacency build."""
        return self._bundle_indptr, self._bundle_indices

    def degrees(self) -> np.ndarray:
        """Degrees from the stored ``indptr`` (one sequential pass)."""
        if self._deg is None:
            self._deg = np.diff(np.asarray(self._bundle_indptr)).astype(np.int64)
        return self._deg

    def neighbors(self, v: int) -> np.ndarray:
        lo, hi = int(self._bundle_indptr[v]), int(self._bundle_indptr[v + 1])
        return np.asarray(self._bundle_indices[lo:hi], dtype=np.int64)

    def csr_row_slice(self, lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
        """Row-range CSR slice served straight from the stored arrays.

        Reads only the ``indptr[lo:hi+1]`` window and the covered span of
        ``indices`` — the touched CSR pages, nothing else.
        """
        if not (0 <= lo <= hi <= self.num_nodes):
            raise ValueError(
                f"row range [{lo}, {hi}) out of bounds for N={self.num_nodes}"
            )
        window = np.asarray(self._bundle_indptr[lo : hi + 1], dtype=np.int64)
        local = window - window[0]
        indices = np.asarray(
            self._bundle_indices[window[0] : window[-1]], dtype=np.int64
        )
        tel = get_telemetry()
        if tel.enabled:
            tel.count("storage.rows_streamed", hi - lo)
            tel.count("storage.bytes_read", int(window.nbytes + indices.nbytes))
        return local, indices

    def edge_key_slice(self, lo: int, hi: int) -> np.ndarray:
        i0, i1 = self.edge_key_range(lo, hi)
        keys = np.asarray(self._edge_keys[i0:i1])
        tel = get_telemetry()
        if tel.enabled:
            tel.count("storage.rows_streamed", hi - lo)
            tel.count("storage.bytes_read", int(keys.nbytes))
        return keys

    # -- dense fallbacks (chunked, counted) -----------------------------
    def adjacency(self) -> sp.csr_matrix:
        """Materialised scipy CSR adjacency via a chunked streaming build.

        Identical (indices, indptr, data and dtypes) to the base class's
        COO-built adjacency, but assembled by copying the stored CSR in
        row chunks — peak transient memory is one chunk, and the read is
        visible in telemetry as a ``storage.materialize.adjacency`` count.
        """
        if self._adj is None:
            n = self.num_nodes
            nnz = int(self._bundle_indptr[-1])
            tel = get_telemetry()
            if tel.enabled:
                tel.count("storage.materialize.adjacency")
                tel.count(
                    "storage.bytes_read", int(nnz * 8 + (n + 1) * 8)
                )
            idx_dtype = sp.csr_matrix((1, 1)).indptr.dtype  # scipy's int32
            indptr = np.asarray(self._bundle_indptr).astype(idx_dtype)
            indices = np.empty(nnz, dtype=idx_dtype)
            step = max(DEFAULT_CHUNK_ROWS, 1)
            for start in range(0, nnz, step):
                stop = min(nnz, start + step)
                indices[start:stop] = self._bundle_indices[start:stop]
            self._adj = sp.csr_matrix(
                (np.ones(nnz), indices, indptr), shape=(n, n)
            )
        return self._adj

    def edge_array(self) -> np.ndarray:
        """The dense ``(E, 2)`` pair view — a counted materialisation."""
        if self._edge_array is None:
            tel = get_telemetry()
            if tel.enabled:
                tel.count("storage.materialize.edge_array")
        return super().edge_array()

    # -- residency ------------------------------------------------------
    def release(self) -> int:
        """Drop every resident page of this graph's memmapped arrays."""
        return advise_dontneed(
            self._edge_keys,
            self._bundle_indptr,
            self._bundle_indices,
            self.features,
            self.labels,
        )


# ---------------------------------------------------------------------------
# Entropy sidecar: persisted screen-then-rescore state
# ---------------------------------------------------------------------------
def _entropy_dir(path: str) -> str:
    return os.path.join(path, "entropy")


def save_entropy_sidecar(
    path: str, entropy, chunk_rows: int = DEFAULT_CHUNK_ROWS
) -> str:
    """Persist the screening engine's read-only state next to a bundle.

    ``entropy`` is a fully built
    :class:`~repro.entropy.RelativeEntropy`; the sidecar stores its
    embeddings (float64 and the float32 GEMM operand), degree profiles
    and the :class:`~repro.entropy.screening.PairEntropyScorer` arrays
    (``U`` in Fortran order, exactly as the in-RAM scorer lays it out),
    plus the scalar terms in ``entropy.json``.  Everything written is the
    byte-exact output of the in-RAM builders — a
    :class:`ScreenStateLoader` over this sidecar reproduces the in-RAM
    screen bit for bit.
    """
    from ..entropy.screening import PairEntropyScorer

    edir = _entropy_dir(path)
    os.makedirs(edir, exist_ok=True)
    scorer = PairEntropyScorer.from_entropy(entropy)
    arrays = {
        "Z": np.asarray(entropy.Z, dtype=np.float64),
        "Z32": np.ascontiguousarray(entropy.Z, dtype=np.float32),
        "profiles": np.asarray(entropy.profiles),
        "U": scorer.U,
        "S": scorer.S,
        "lengths": scorer.lengths,
    }
    if scorer.L is not None:
        arrays["L"] = scorer.L

    manifest: Dict[str, Dict] = {}
    tel = get_telemetry()
    for name, arr in arrays.items():
        fortran = bool(arr.ndim == 2 and arr.flags.f_contiguous and not arr.flags.c_contiguous)
        with tel.span("storage.save", array=f"entropy/{name}"):
            nbytes = _write_array_chunked(
                os.path.join(edir, f"{name}.npy"),
                arr,
                chunk_rows,
                fortran_order=fortran,
            )
        manifest[name] = {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "nbytes": nbytes,
            "fortran": fortran,
        }
        if tel.enabled:
            tel.count("storage.bytes_written", nbytes)

    meta = {
        "version": BUNDLE_VERSION,
        "lam": float(entropy.lam),
        "log_denominator": float(entropy.log_denominator),
        "feature_scale": float(entropy.feature_scale),
        "structural_mode": entropy.structural_mode,
        "arrays": manifest,
    }
    with open(os.path.join(edir, ENTROPY_META), "w") as f:
        json.dump(meta, f, indent=2)
    return edir


def has_entropy_sidecar(path: str) -> bool:
    """Whether the bundle at ``path`` carries a persisted entropy state."""
    return os.path.isfile(os.path.join(_entropy_dir(path), ENTROPY_META))


def entropy_sidecar_meta(path: str) -> Dict:
    """The sidecar's manifest (lam, structural mode, array inventory) —
    what a pipeline checks against its config before streaming from it."""
    meta_path = os.path.join(_entropy_dir(path), ENTROPY_META)
    if not os.path.isfile(meta_path):
        raise FileNotFoundError(
            f"bundle {path!r} has no entropy sidecar; create one with "
            f"save_entropy_sidecar"
        )
    with open(meta_path) as f:
        return json.load(f)


def load_entropy_sidecar(path: str, mmap_arrays: bool = True):
    """Rebuild a :class:`~repro.entropy.RelativeEntropy` from a sidecar.

    With ``mmap_arrays=True`` the embeddings and profiles are memmaps —
    every accessor works lazily.  Mainly a debugging/inspection aid; the
    streaming pipeline itself goes through :class:`ScreenStateLoader`.
    """
    from ..entropy.relative_entropy import RelativeEntropy

    meta, arrays = _open_sidecar(path, mmap_arrays, ("Z", "profiles"))
    return RelativeEntropy(
        Z=arrays["Z"],
        log_denominator=meta["log_denominator"],
        profiles=arrays["profiles"],
        lam=meta["lam"],
        feature_scale=meta["feature_scale"],
        structural_mode=meta["structural_mode"],
    )


def _open_sidecar(
    path: str, mmap_arrays: bool, names: Sequence[str]
) -> Tuple[Dict, Dict[str, np.ndarray]]:
    edir = _entropy_dir(path)
    meta_path = os.path.join(edir, ENTROPY_META)
    if not os.path.isfile(meta_path):
        raise FileNotFoundError(
            f"bundle {path!r} has no entropy sidecar; create one with "
            f"save_entropy_sidecar"
        )
    with open(meta_path) as f:
        meta = json.load(f)
    version = meta.get("version")
    if version != BUNDLE_VERSION:
        raise ValueError(
            f"unsupported entropy-sidecar version {version!r} at {path!r}"
        )
    tel = get_telemetry()
    arrays = {}
    for name in names:
        if name not in meta["arrays"]:
            if name == "L":
                arrays[name] = None
                continue
            raise KeyError(f"entropy sidecar at {path!r} missing {name!r}")
        with tel.span("storage.load", hist="io.read_s", array=f"entropy/{name}"):
            arrays[name] = np.load(
                os.path.join(edir, f"{name}.npy"),
                mmap_mode="r" if mmap_arrays else None,
            )
        if tel.enabled and not mmap_arrays:
            tel.count("storage.bytes_read", int(arrays[name].nbytes))
    return meta, arrays


@dataclass
class ScreenStateLoader:
    """Picklable recipe that builds a shard worker's screening state.

    This is the payload for ``run_sharded(..., state_loader=...)``: a
    process-pool worker receives the *bundle path* through the pool
    initializer, opens the memmaps locally and assembles the
    :class:`~repro.entropy.screening.ScreenState` itself — no array is
    ever pickled.  The loader also attaches a :class:`MmapReleaser` so
    the shard worker can drop gathered pages as it streams
    (``release_every`` blocks; ``0`` disables releasing, e.g. for the
    materialised twin).

    ``screen_size``/``block_rows`` default to the same formulas
    ``build_screen_state`` uses, so a loader-built state and an in-RAM
    state over the same arrays are byte-for-byte interchangeable.
    """

    path: str
    max_candidates: int
    screen_size: Optional[int] = None
    block_rows: Optional[int] = None
    release_every: int = 1
    mmap_arrays: bool = True

    def __call__(self):
        from ..entropy.screening import (
            PairEntropyScorer,
            ScreenState,
            default_screen_params,
            screen_sample,
        )

        tel = get_telemetry()
        with tel.span("storage.state_load", hist="io.read_s"):
            bundle = GraphBundle.open(self.path)
            indptr = bundle.load("indptr", self.mmap_arrays)
            indices = bundle.load("indices", self.mmap_arrays)
            meta, arrays = _open_sidecar(
                self.path,
                self.mmap_arrays,
                ("Z", "Z32", "profiles", "U", "S", "lengths", "L"),
            )
            n = int(bundle.meta["num_nodes"])
            scorer = PairEntropyScorer(
                Z=arrays["Z"],
                log_denominator=meta["log_denominator"],
                feature_scale=meta["feature_scale"],
                lam=meta["lam"],
                mode=meta["structural_mode"],
                profiles=arrays["profiles"],
                lengths=arrays["lengths"],
                S=arrays["S"],
                U=arrays["U"],
                L=arrays["L"],
            )
            screen_size, block_rows = default_screen_params(
                n, self.max_candidates, self.screen_size, self.block_rows
            )
            hs_max = 1.0 if meta["structural_mode"] == "js" else 1.0 + 1e-9
            release = None
            if self.mmap_arrays:
                release = MmapReleaser(
                    gather=[
                        arrays["Z"],
                        arrays["profiles"],
                        arrays["U"],
                        arrays["L"],
                    ],
                    persistent=[arrays["Z32"], indptr, indices],
                    every=self.release_every,
                )
            state = ScreenState(
                Z32=arrays["Z32"],
                scorer=scorer,
                indptr=indptr,
                indices=indices,
                num_nodes=n,
                max_candidates=self.max_candidates,
                screen_size=screen_size,
                hs_max=hs_max,
                block_rows=block_rows,
                sample=screen_sample(n),
                release=release,
            )
        if tel.enabled:
            tel.count("storage.shard_loads")
        return state


__all__ = [
    "BUNDLE_VERSION",
    "GraphBundle",
    "MemmapGraph",
    "MmapReleaser",
    "ScreenStateLoader",
    "advise_dontneed",
    "entropy_sidecar_meta",
    "has_entropy_sidecar",
    "load_entropy_sidecar",
    "load_graph_bundle",
    "save_entropy_sidecar",
    "save_graph_bundle",
]
