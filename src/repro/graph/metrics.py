"""Graph-level metrics: edge homophily ratio (Eq. 1) and degree statistics."""

from __future__ import annotations

import numpy as np

from .graph import Graph


def homophily_ratio(graph: Graph) -> float:
    """Edge homophily ``H = |{(v,u) in E : y_v = y_u}| / |E|`` (Eq. 1).

    ``H`` near 1 indicates a homophilic graph, near 0 a heterophilic one.
    Returns 0.0 for an edgeless graph (the ratio is undefined; zero keeps
    downstream curves plottable).
    """
    if graph.labels is None:
        raise ValueError("homophily ratio requires node labels")
    if graph.num_edges == 0:
        return 0.0
    edges = graph.edge_array()
    same = graph.labels[edges[:, 0]] == graph.labels[edges[:, 1]]
    return float(same.mean())


def degree_statistics(graph: Graph) -> dict:
    """Summary of the degree distribution (used in dataset validation)."""
    deg = graph.degrees()
    return {
        "min": int(deg.min()),
        "max": int(deg.max()),
        "mean": float(deg.mean()),
        "median": float(np.median(deg)),
        "isolated": int((deg == 0).sum()),
    }


def class_distribution(graph: Graph) -> np.ndarray:
    """Fraction of nodes per class."""
    if graph.labels is None:
        raise ValueError("class distribution requires node labels")
    counts = np.bincount(graph.labels, minlength=graph.num_classes)
    return counts / counts.sum()
