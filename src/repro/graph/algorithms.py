"""Graph algorithms: k-hop neighbourhoods, components, distances, Laplacian.

``k_hop_neighbors`` implements the ``N_k(v)`` of the paper's Table I; the
rest supports dataset validation, analysis utilities and the examples.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from .graph import Graph


def k_hop_neighbors(graph: Graph, v: int, k: int) -> np.ndarray:
    """Nodes at shortest-path distance *exactly* ``k`` from ``v`` (Table I's
    ``N_k(v)``; ``k = 1`` returns the one-hop neighbour set)."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if not 0 <= v < graph.num_nodes:
        raise ValueError(f"node {v} out of range")
    if k == 0:
        return np.array([v], dtype=np.int64)
    dist = shortest_path_lengths(graph, v)
    return np.flatnonzero(dist == k).astype(np.int64)


def within_k_hops(graph: Graph, v: int, k: int) -> np.ndarray:
    """Nodes at distance 1..k from ``v`` (the extended neighbourhood)."""
    dist = shortest_path_lengths(graph, v)
    return np.flatnonzero((dist >= 1) & (dist <= k)).astype(np.int64)


def shortest_path_lengths(graph: Graph, source: int) -> np.ndarray:
    """BFS distances from ``source``; unreachable nodes get -1."""
    dist = np.full(graph.num_nodes, -1, dtype=np.int64)
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if dist[w] < 0:
                dist[w] = dist[u] + 1
                queue.append(int(w))
    return dist


def connected_components(graph: Graph) -> np.ndarray:
    """Component id per node (0-based, in discovery order)."""
    labels = np.full(graph.num_nodes, -1, dtype=np.int64)
    current = 0
    for start in range(graph.num_nodes):
        if labels[start] >= 0:
            continue
        labels[start] = current
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for w in graph.neighbors(u):
                if labels[w] < 0:
                    labels[w] = current
                    queue.append(int(w))
        current += 1
    return labels


def num_connected_components(graph: Graph) -> int:
    return int(connected_components(graph).max()) + 1


def largest_component(graph: Graph) -> np.ndarray:
    """Node ids of the largest connected component."""
    labels = connected_components(graph)
    counts = np.bincount(labels)
    return np.flatnonzero(labels == counts.argmax()).astype(np.int64)


def subgraph(graph: Graph, nodes: np.ndarray) -> Graph:
    """Induced subgraph on ``nodes`` (features/labels sliced, ids remapped)."""
    nodes = np.asarray(sorted(set(int(n) for n in nodes)), dtype=np.int64)
    if len(nodes) == 0:
        raise ValueError("subgraph requires at least one node")
    remap = {int(old): new for new, old in enumerate(nodes)}
    keep = set(remap)
    edges = [
        (remap[u], remap[v])
        for u, v in graph.edges
        if u in keep and v in keep
    ]
    features = graph.features[nodes] if graph.features is not None else None
    labels = graph.labels[nodes] if graph.labels is not None else None
    return Graph(len(nodes), edges, features=features, labels=labels)


def laplacian(graph: Graph, normalized: bool = False) -> sp.csr_matrix:
    """Combinatorial ``D - A`` or symmetric-normalised Laplacian."""
    adj = graph.adjacency()
    deg = np.asarray(adj.sum(axis=1)).ravel()
    if not normalized:
        return (sp.diags(deg) - adj).tocsr()
    inv_sqrt = np.zeros_like(deg)
    nz = deg > 0
    inv_sqrt[nz] = deg[nz] ** -0.5
    d_half = sp.diags(inv_sqrt)
    n = graph.num_nodes
    return (sp.eye(n) - d_half @ adj @ d_half).tocsr()


def to_networkx(graph: Graph):
    """Convert to a ``networkx.Graph`` with feature/label node attributes."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.num_nodes))
    g.add_edges_from(graph.edges)
    if graph.labels is not None:
        nx.set_node_attributes(
            g, {i: int(y) for i, y in enumerate(graph.labels)}, "label"
        )
    return g


def from_networkx(
    g,
    features: Optional[np.ndarray] = None,
    labels: Optional[np.ndarray] = None,
) -> Graph:
    """Build a :class:`Graph` from a networkx graph (nodes must be 0..N-1,
    or they are relabelled in sorted order)."""
    nodes = sorted(g.nodes())
    remap = {node: i for i, node in enumerate(nodes)}
    edges = [(remap[u], remap[v]) for u, v in g.edges() if u != v]
    if labels is None and all("label" in g.nodes[n] for n in nodes):
        labels = np.array([g.nodes[n]["label"] for n in nodes], dtype=np.int64)
    return Graph(len(nodes), edges, features=features, labels=labels)
