"""Label-aware baselines: HOG-GCN [42] and MI-GCN [38].

HOG-GCN estimates a *homophily degree matrix* by propagating the training
labels and uses it to modulate message passing.  MI-GCN statically rewires
the topology by a mutual-information node ranking with fixed top-k/top-d —
exactly the "hyper-parameter instead of learned" strategy GraphRARE
criticises, making it the natural static comparator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..entropy import RelativeEntropy, build_entropy_sequences
from ..graph import Graph, gcn_norm, row_norm
from ..gnn import GNNBackbone, cached_matrix
from ..nn import Dropout, Linear
from ..tensor import Tensor, ops
from ..core import rewire_graph


def propagate_labels(
    graph: Graph, train_idx: np.ndarray, steps: int = 2
) -> np.ndarray:
    """Soft label estimates from ``steps`` rounds of label propagation."""
    n = graph.num_nodes
    c = graph.num_classes
    soft = np.full((n, c), 1.0 / c)
    soft[train_idx] = 0.0
    soft[train_idx, graph.labels[train_idx]] = 1.0
    walk = row_norm(graph, add_self_loops=True)
    for _ in range(steps):
        soft = np.asarray(walk @ soft)
        # Clamp the labelled nodes back to their one-hot targets.
        soft[train_idx] = 0.0
        soft[train_idx, graph.labels[train_idx]] = 1.0
    return soft


def homophily_weighted_matrix(
    graph: Graph, train_idx: np.ndarray, steps: int = 2
) -> sp.csr_matrix:
    """Adjacency reweighted by the estimated pairwise homophily degree.

    ``w_vu = <soft_v, soft_u>`` — the probability the endpoints share a
    class under the propagated label estimate — row-normalised.
    """
    key = "hog_matrix"
    if key not in graph.cache:
        soft = propagate_labels(graph, train_idx, steps)
        src, dst = graph.edge_index()
        w = np.einsum("ij,ij->i", soft[src], soft[dst])
        n = graph.num_nodes
        mat = sp.coo_matrix((w, (dst, src)), shape=(n, n)).tocsr()
        row_sum = np.asarray(mat.sum(axis=1)).ravel()
        inv = np.zeros_like(row_sum)
        nz = row_sum > 0
        inv[nz] = 1.0 / row_sum[nz]
        graph.cache[key] = (sp.diags(inv) @ mat).tocsr()
    return graph.cache[key]


class HOGGCN(GNNBackbone):
    """HOG-GCN (lite): homophily-degree-modulated propagation.

    Requires the training indices (label propagation can only use labelled
    nodes), so unlike the other backbones its constructor takes the split.
    """

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        train_idx: np.ndarray,
        hidden: int = 64,
        dropout: float = 0.5,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(in_features, num_classes)
        rng = rng or np.random.default_rng(0)
        self.train_idx = np.asarray(train_idx)
        self.lin1 = Linear(in_features, hidden, rng)
        self.self1 = Linear(in_features, hidden, rng)
        self.lin2 = Linear(hidden, num_classes, rng)
        self.self2 = Linear(hidden, num_classes, rng)
        self.dropout = Dropout(dropout, rng)

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        hog = homophily_weighted_matrix(graph, self.train_idx)
        h = self.dropout(x)
        h = ops.relu(self.self1(h) + ops.spmm(hog, self.lin1(h)))
        h = self.dropout(h)
        return self.self2(h) + ops.spmm(hog, self.lin2(h))


class MIGCN(GNNBackbone):
    """MI-GCN (lite): static mutual-information rewiring + GCN.

    Rewires once with *fixed* ``top_k`` additions and ``top_d`` deletions
    per node, ranked by the feature-driven node information measure
    (our relative entropy with ``lam = 0``, i.e. no structural term —
    Tian & Wu's measure is feature/neighbour mutual information).
    """

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: int = 64,
        dropout: float = 0.5,
        top_k: int = 3,
        top_d: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(in_features, num_classes)
        rng = rng or np.random.default_rng(0)
        self.top_k = top_k
        self.top_d = top_d
        self.lin1 = Linear(in_features, hidden, rng)
        self.lin2 = Linear(hidden, num_classes, rng)
        self.dropout = Dropout(dropout, rng)

    def _rewired(self, graph: Graph) -> Graph:
        key = f"migcn_rewired_{self.top_k}_{self.top_d}"
        if key not in graph.cache:
            entropy = RelativeEntropy.from_graph(graph, lam=0.0)
            seqs = build_entropy_sequences(
                graph, entropy, max_candidates=max(8, self.top_k)
            )
            n = graph.num_nodes
            k = np.minimum(self.top_k, (seqs.remote >= 0).sum(axis=1))
            d = np.minimum(self.top_d, graph.degrees())
            graph.cache[key] = rewire_graph(graph, seqs, k, d)
        return graph.cache[key]

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        rewired = self._rewired(graph)
        a_hat = cached_matrix(rewired, "gcn_norm", gcn_norm)
        h = self.dropout(x)
        h = ops.relu(ops.spmm(a_hat, self.lin1(h)))
        h = self.dropout(h)
        return ops.spmm(a_hat, self.lin2(h))
