"""Geom-GCN (lite) [31]: geometric aggregation in a latent space.

Geom-GCN embeds nodes in a latent space, defines geometric relationships
(here: the four quadrants of the displacement vector between embedded
endpoints) and aggregates each relation with its own weights before
concatenating.  We use a deterministic 2-D spectral-style embedding of the
features (top-2 right singular vectors), which preserves the method's
signature behaviour: neighbours are *partitioned by relative geometry*
instead of pooled indiscriminately.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graph import Graph
from ..gnn import GNNBackbone
from ..nn import Dropout, Linear
from ..tensor import Tensor, ops


def latent_positions(features: np.ndarray) -> np.ndarray:
    """2-D latent embedding: projections on the top-2 singular vectors."""
    X = np.asarray(features, dtype=np.float64)
    X = X - X.mean(axis=0, keepdims=True)
    # Economy SVD on the (d x d) gram for wide matrices would be heavy;
    # numpy's randomised-free SVD on (n x d) is fine at our scales.
    _, _, vt = np.linalg.svd(X, full_matrices=False)
    return X @ vt[:2].T


def relation_matrices(graph: Graph) -> list:
    """Four row-normalised adjacency slices, one per latent quadrant."""
    if "geom_relations" in graph.cache:
        return graph.cache["geom_relations"]
    pos = latent_positions(graph.features)
    ei = graph.edge_index()
    src, dst = ei
    delta = pos[src] - pos[dst]
    quadrant = (delta[:, 0] >= 0).astype(int) * 2 + (delta[:, 1] >= 0).astype(int)
    n = graph.num_nodes
    mats = []
    for q in range(4):
        mask = quadrant == q
        mat = sp.coo_matrix(
            (np.ones(int(mask.sum())), (dst[mask], src[mask])), shape=(n, n)
        ).tocsr()
        deg = np.asarray(mat.sum(axis=1)).ravel()
        inv = np.zeros_like(deg)
        nz = deg > 0
        inv[nz] = 1.0 / deg[nz]
        mats.append((sp.diags(inv) @ mat).tocsr())
    graph.cache["geom_relations"] = mats
    return mats


class GeomGCN(GNNBackbone):
    """Two-layer Geom-GCN-lite with quadrant-relation aggregation."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: int = 64,
        dropout: float = 0.5,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(in_features, num_classes)
        rng = rng or np.random.default_rng(0)
        width = max(1, hidden // 4)
        self.rel_linears1 = [Linear(in_features, width, rng) for _ in range(4)]
        self.self1 = Linear(in_features, width, rng)
        self.lin2 = Linear(5 * width, num_classes, rng)
        self.dropout = Dropout(dropout, rng)

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        mats = relation_matrices(graph)
        h = self.dropout(x)
        pieces = [ops.spmm(m, lin(h)) for m, lin in zip(mats, self.rel_linears1)]
        pieces.append(self.self1(h))
        h = ops.relu(ops.concat(pieces, axis=1))
        return self.lin2(self.dropout(h))
