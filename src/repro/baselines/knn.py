"""Feature-similarity kNN graphs, shared by UGCN and SimP-GCN.

Both baselines augment the original topology with a graph connecting each
node to its most feature-similar peers (cosine similarity), the "feature
similarity as a metric to reconstruct the neighbour set" idea the paper
contrasts with its entropy ranking.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graph import Graph, adjacency_from_matrix


def cosine_knn_adjacency(features: np.ndarray, k: int = 5) -> sp.csr_matrix:
    """Symmetric adjacency linking each node to its top-``k`` cosine matches."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    X = np.asarray(features, dtype=np.float64)
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    Z = X / norms
    n = len(Z)
    k = min(k, n - 1)
    rows, cols = [], []
    chunk = max(1, 2_000_000 // max(n, 1))
    for start in range(0, n, chunk):
        sims = Z[start : start + chunk] @ Z.T
        for i in range(sims.shape[0]):
            sims[i, start + i] = -np.inf  # no self matches
        top = np.argpartition(sims, -k, axis=1)[:, -k:]
        for i, neigh in enumerate(top):
            rows.extend([start + i] * len(neigh))
            cols.extend(neigh.tolist())
    data = np.ones(len(rows))
    mat = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
    return adjacency_from_matrix(mat)


def knn_norm(graph: Graph, k: int = 5, key: str | None = None) -> sp.csr_matrix:
    """GCN-normalised kNN feature graph, memoised on ``graph``."""
    key = key or f"knn_norm_{k}"
    if key not in graph.cache:
        adj = cosine_knn_adjacency(graph.features, k=k)
        adj = (adj + sp.eye(graph.num_nodes, format="csr")).tocsr()
        deg = np.asarray(adj.sum(axis=1)).ravel()
        inv_sqrt = np.zeros_like(deg)
        nz = deg > 0
        inv_sqrt[nz] = deg[nz] ** -0.5
        d_half = sp.diags(inv_sqrt)
        graph.cache[key] = (d_half @ adj @ d_half).tocsr()
    return graph.cache[key]
