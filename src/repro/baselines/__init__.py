"""Heterophily-GNN baselines compared against GraphRARE in Table III."""

from .feature_similarity import SimPGCN, UGCN
from .geometric import GeomGCN, latent_positions, relation_matrices
from .homophily import HOGGCN, MIGCN, homophily_weighted_matrix, propagate_labels
from .kernels import GBKGNN, PolarGNN
from .knn import cosine_knn_adjacency, knn_norm
from .nonlocal_models import GPNN, NLGNN
from .otgnet import OTGNetLite
from .registry import BASELINE_NAMES, baseline_names, build_baseline

__all__ = [
    "BASELINE_NAMES",
    "GBKGNN",
    "GeomGCN",
    "HOGGCN",
    "MIGCN",
    "NLGNN",
    "GPNN",
    "OTGNetLite",
    "PolarGNN",
    "SimPGCN",
    "UGCN",
    "baseline_names",
    "build_baseline",
    "cosine_knn_adjacency",
    "homophily_weighted_matrix",
    "knn_norm",
    "latent_positions",
    "propagate_labels",
    "relation_matrices",
]
