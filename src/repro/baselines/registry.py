"""Registry of all Table III comparison methods.

``build_baseline`` instantiates any of the seventeen rows of Table III:
the attribute-only MLP, the traditional GNNs, the nine heterophily SOTA
methods, and (through :mod:`repro.core`) the four RARE-enhanced variants.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..gnn import BACKBONES, GNNBackbone
from ..graph import Graph, Split
from .feature_similarity import SimPGCN, UGCN
from .geometric import GeomGCN
from .homophily import HOGGCN, MIGCN
from .kernels import GBKGNN, PolarGNN
from .nonlocal_models import GPNN, NLGNN
from .otgnet import OTGNetLite

#: Table III baseline rows (the RARE variants are built via repro.core).
BASELINE_NAMES: List[str] = [
    "mlp",
    "gcn",
    "graphsage",
    "gat",
    "mixhop",
    "h2gcn",
    "geom_gcn",
    "ugcn",
    "simp_gcn",
    "otgnet",
    "gbk_gnn",
    "polar_gnn",
    "hog_gcn",
]

_EXTRA = {
    "geom_gcn": GeomGCN,
    "ugcn": UGCN,
    "simp_gcn": SimPGCN,
    "otgnet": OTGNetLite,
    "gbk_gnn": GBKGNN,
    "polar_gnn": PolarGNN,
    "mi_gcn": MIGCN,
    "nl_gnn": NLGNN,
    "gpnn": GPNN,
}


def baseline_names() -> List[str]:
    """All registered baseline names, in Table III row order."""
    return list(BASELINE_NAMES)


def build_baseline(
    name: str,
    graph: Graph,
    split: Optional[Split] = None,
    hidden: int = 64,
    dropout: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> GNNBackbone:
    """Instantiate baseline ``name`` for ``graph``.

    ``split`` is required only by HOG-GCN (its label propagation may see
    training labels exclusively).
    """
    rng = rng or np.random.default_rng(0)
    key = name.lower()
    if key in BACKBONES:
        return BACKBONES[key](
            graph.num_features, graph.num_classes,
            hidden=hidden, dropout=dropout, rng=rng,
        )
    if key == "hog_gcn":
        if split is None:
            raise ValueError("hog_gcn requires the split (label propagation)")
        return HOGGCN(
            graph.num_features, graph.num_classes, split.train,
            hidden=hidden, dropout=dropout, rng=rng,
        )
    if key in _EXTRA:
        return _EXTRA[key](
            graph.num_features, graph.num_classes,
            hidden=hidden, dropout=dropout, rng=rng,
        )
    known = sorted(set(BACKBONES) | set(_EXTRA) | {"hog_gcn"})
    raise ValueError(f"unknown baseline {name!r}; choose from {known}")
