"""Non-local baselines: NL-GNN [25] and GPNN [45] (lite versions).

Both extend a node's receptive field beyond its local neighbourhood:
NL-GNN attends over *all* nodes with learned non-local attention after a
local embedding step; GPNN (Graph Pointer Neural Network) ranks candidate
远 nodes and aggregates a learned-length prefix of the ranked sequence —
we keep the ranking-then-aggregate structure with a fixed prefix and
attention over the top-ranked candidates.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph, gcn_norm
from ..gnn import GNNBackbone, cached_matrix
from ..nn import Dropout, Linear
from ..tensor import Tensor, ops
from .knn import cosine_knn_adjacency


class NLGNN(GNNBackbone):
    """Non-local GNN (lite): local convolution + global attention readout.

    Stage 1 embeds nodes with one GCN layer; stage 2 computes a calibration
    score per node, sorts implicitly via attention over the whole graph
    (softmax over pairwise score sums), and mixes the attended global
    message into each node before classification.
    """

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: int = 64,
        dropout: float = 0.5,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(in_features, num_classes)
        rng = rng or np.random.default_rng(0)
        self.local = Linear(in_features, hidden, rng)
        self.score = Linear(hidden, 1, rng)
        self.mix = Linear(2 * hidden, num_classes, rng)
        self.dropout = Dropout(dropout, rng)

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        a_hat = cached_matrix(graph, "gcn_norm", gcn_norm)
        h = ops.relu(ops.spmm(a_hat, self.local(self.dropout(x))))
        # Non-local stage: every node attends to every node by scalar score.
        scores = self.score(h)  # (n, 1)
        att = ops.softmax(ops.transpose(scores), axis=-1)  # (1, n)
        global_msg = ops.matmul(att, h)  # (1, hidden) global summary
        n = graph.num_nodes
        broadcast = ops.gather_rows(global_msg, np.zeros(n, dtype=np.int64))
        return self.mix(self.dropout(ops.concat([h, broadcast], axis=1)))


class GPNN(GNNBackbone):
    """Graph Pointer Neural Network (lite).

    The original uses a pointer network to re-rank a candidate sequence of
    multi-hop neighbours and an RNN to aggregate the prefix.  The compact
    version keeps the defining mechanism — each node aggregates a *ranked
    prefix of feature-similar candidates* (rather than its raw neighbour
    set) with attention weights, alongside a local propagation channel.
    """

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: int = 64,
        dropout: float = 0.5,
        prefix: int = 8,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(in_features, num_classes)
        rng = rng or np.random.default_rng(0)
        self.prefix = prefix
        self.embed = Linear(in_features, hidden, rng)
        self.att_query = Linear(hidden, hidden, rng, bias=False)
        self.att_key = Linear(hidden, hidden, rng, bias=False)
        self.local = Linear(hidden, num_classes, rng)
        self.pointer = Linear(hidden, num_classes, rng)
        self.dropout = Dropout(dropout, rng)

    def _candidate_edges(self, graph: Graph) -> np.ndarray:
        """Top-``prefix`` feature-similar candidates per node, as (src, dst)."""
        key = f"gpnn_candidates_{self.prefix}"
        if key not in graph.cache:
            knn = cosine_knn_adjacency(graph.features, k=self.prefix).tocoo()
            graph.cache[key] = np.vstack([knn.row, knn.col]).astype(np.int64)
        return graph.cache[key]

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        a_hat = cached_matrix(graph, "gcn_norm", gcn_norm)
        h = ops.relu(self.embed(self.dropout(x)))

        # Pointer channel: attention over each node's ranked candidates.
        dst, src = self._candidate_edges(graph)  # dst attends over src
        n = graph.num_nodes
        q = self.att_query(h)
        k = self.att_key(h)
        logits = ops.sum(
            ops.gather_rows(q, dst) * ops.gather_rows(k, src), axis=-1
        ) * (1.0 / np.sqrt(k.shape[1]))
        att = ops.segment_softmax(ops.reshape(logits, (len(dst), 1)), dst, n)
        pointer_msg = ops.scatter_add_rows(
            ops.gather_rows(h, src) * att, dst, n
        )

        local_msg = ops.spmm(a_hat, h)
        return self.local(self.dropout(local_msg)) + self.pointer(
            self.dropout(pointer_msg)
        )
