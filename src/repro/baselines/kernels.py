"""Edge-gated baselines: GBK-GNN [4] and Polar-GNN [6].

GBK-GNN keeps two kernels (a homophilic and a heterophilic weight matrix)
and gates each edge's message between them by the endpoints' similarity.
Polar-GNN assigns each edge a polarity ("attitude") and lets dissimilar
neighbours *repel* the representation instead of attracting it.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graph import Graph
from ..gnn import GNNBackbone
from ..nn import Dropout, Linear
from ..tensor import Tensor, ops


def _edge_cosine(graph: Graph) -> np.ndarray:
    """Cosine similarity per directed edge, memoised on the graph."""
    if "edge_cosine" not in graph.cache:
        X = graph.features
        norms = np.linalg.norm(X, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        Z = X / norms
        src, dst = graph.edge_index()
        graph.cache["edge_cosine"] = np.einsum("ij,ij->i", Z[src], Z[dst])
    return graph.cache["edge_cosine"]


def _gated_mean_matrices(graph: Graph, sharpness: float = 5.0) -> tuple:
    """Two row-normalised matrices splitting each edge by its gate value.

    ``A_homo[v, u] = g_vu / deg(v)`` and ``A_hetero = (1 - g) / deg`` where
    ``g = sigmoid(sharpness * cosine)`` — a constant (non-learned) version of
    GBK's kernel-selection gate.
    """
    key = f"gbk_gates_{sharpness}"
    if key not in graph.cache:
        src, dst = graph.edge_index()
        cos = _edge_cosine(graph)
        gate = 1.0 / (1.0 + np.exp(-sharpness * cos))
        n = graph.num_nodes
        deg = np.maximum(graph.degrees().astype(np.float64), 1.0)
        weights_h = gate / deg[dst]
        weights_e = (1.0 - gate) / deg[dst]
        a_homo = sp.coo_matrix((weights_h, (dst, src)), shape=(n, n)).tocsr()
        a_hetero = sp.coo_matrix((weights_e, (dst, src)), shape=(n, n)).tocsr()
        graph.cache[key] = (a_homo, a_hetero)
    return graph.cache[key]


class GBKGNN(GNNBackbone):
    """Gated bi-kernel GNN (lite): similarity-gated dual weight matrices."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: int = 64,
        dropout: float = 0.5,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(in_features, num_classes)
        rng = rng or np.random.default_rng(0)
        self.homo1 = Linear(in_features, hidden, rng)
        self.hetero1 = Linear(in_features, hidden, rng)
        self.self1 = Linear(in_features, hidden, rng)
        self.homo2 = Linear(hidden, num_classes, rng)
        self.hetero2 = Linear(hidden, num_classes, rng)
        self.self2 = Linear(hidden, num_classes, rng)
        self.dropout = Dropout(dropout, rng)

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        a_homo, a_hetero = _gated_mean_matrices(graph)
        h = self.dropout(x)
        h = ops.relu(
            self.self1(h)
            + ops.spmm(a_homo, self.homo1(h))
            + ops.spmm(a_hetero, self.hetero1(h))
        )
        h = self.dropout(h)
        return (
            self.self2(h)
            + ops.spmm(a_homo, self.homo2(h))
            + ops.spmm(a_hetero, self.hetero2(h))
        )


def _signed_mean_matrix(graph: Graph) -> sp.csr_matrix:
    """Row-normalised adjacency with +/-1 polarities by feature similarity.

    Edges whose endpoint similarity is above the graph's median attract,
    the rest repel — Polar-GNN's attitude assignment, precomputed.
    """
    if "polar_signed" not in graph.cache:
        src, dst = graph.edge_index()
        cos = _edge_cosine(graph)
        sign = np.where(cos >= np.median(cos), 1.0, -1.0)
        deg = np.maximum(graph.degrees().astype(np.float64), 1.0)
        n = graph.num_nodes
        mat = sp.coo_matrix((sign / deg[dst], (dst, src)), shape=(n, n)).tocsr()
        graph.cache["polar_signed"] = mat
    return graph.cache["polar_signed"]


class PolarGNN(GNNBackbone):
    """Polarized GNN (lite): signed aggregation with attraction/repulsion."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: int = 64,
        dropout: float = 0.5,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(in_features, num_classes)
        rng = rng or np.random.default_rng(0)
        self.lin1 = Linear(in_features, hidden, rng)
        self.self1 = Linear(in_features, hidden, rng)
        self.lin2 = Linear(hidden, num_classes, rng)
        self.self2 = Linear(hidden, num_classes, rng)
        self.dropout = Dropout(dropout, rng)

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        signed = _signed_mean_matrix(graph)
        h = self.dropout(x)
        h = ops.relu(self.self1(h) + ops.spmm(signed, self.lin1(h)))
        h = self.dropout(h)
        return self.self2(h) + ops.spmm(signed, self.lin2(h))
