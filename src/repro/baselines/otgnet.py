"""OTGNet (lite) [7], adapted to static graphs as in the paper's Sec. V-B.

OTGNet targets open temporal graphs; the paper feeds it static graphs "for
a fair comparison" and it lands near the bottom of Table III.  The defining
pieces kept here: an information-bottleneck feature compression before
propagation (OTGNet selects class-informative content via an IB objective)
and a single mean-aggregation step over the (static) neighbourhood — the
temporal memory has no static counterpart, which is precisely why the
method underperforms in this setting.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph, row_norm
from ..gnn import GNNBackbone, cached_matrix
from ..nn import Dropout, Linear
from ..tensor import Tensor, ops


class OTGNetLite(GNNBackbone):
    """Bottlenecked mean-aggregation classifier (static OTGNet adaptation)."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: int = 64,
        dropout: float = 0.5,
        bottleneck: int = 16,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(in_features, num_classes)
        rng = rng or np.random.default_rng(0)
        self.compress = Linear(in_features, bottleneck, rng)
        self.expand = Linear(bottleneck, hidden, rng)
        self.classify = Linear(hidden, num_classes, rng)
        self.dropout = Dropout(dropout, rng)

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        mean_adj = cached_matrix(graph, "row_norm_loops",
                                 lambda g: row_norm(g, add_self_loops=True))
        z = ops.tanh(self.compress(self.dropout(x)))  # IB-style compression
        h = ops.relu(self.expand(ops.spmm(mean_adj, z)))
        return self.classify(self.dropout(h))
