"""Feature-similarity baselines: UGCN [16] and SimP-GCN [17].

Both exploit a kNN feature graph; UGCN runs parallel convolutions over the
topology and the feature graph and fuses them, while SimP-GCN learns a
per-node gate balancing the two propagation channels plus a self-connection.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph, gcn_norm
from ..gnn import GNNBackbone, cached_matrix
from ..nn import Dropout, Linear, Parameter
from ..tensor import Tensor, ops
from .knn import knn_norm


class UGCN(GNNBackbone):
    """Universal GCN (lite): average of a topology-GCN and a kNN-feature-GCN.

    The original UGCN aggregates over one-hop, two-hop and kNN views with
    attention; this compact version keeps the defining ingredient — message
    passing over a feature-similarity graph alongside the topology.
    """

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: int = 64,
        dropout: float = 0.5,
        knn_k: int = 5,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(in_features, num_classes)
        rng = rng or np.random.default_rng(0)
        self.knn_k = knn_k
        self.lin1 = Linear(in_features, hidden, rng)
        self.lin2 = Linear(hidden, num_classes, rng)
        self.dropout = Dropout(dropout, rng)

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        a_top = cached_matrix(graph, "gcn_norm", gcn_norm)
        a_knn = knn_norm(graph, k=self.knn_k)
        h = self.dropout(x)
        h1 = ops.spmm(a_top, self.lin1(h))
        h2 = ops.spmm(a_knn, self.lin1(h))
        h = ops.relu((h1 + h2) * 0.5)
        h = self.dropout(h)
        out1 = ops.spmm(a_top, self.lin2(h))
        out2 = ops.spmm(a_knn, self.lin2(h))
        return (out1 + out2) * 0.5


class SimPGCN(GNNBackbone):
    """SimP-GCN (lite): node-similarity-preserving propagation.

    Layer rule: ``H' = (s * A_hat + (1 - s) * A_knn) H W + gamma * D_K H W``
    where ``s`` is a learned per-node gate and ``D_K`` a learned diagonal
    self-contribution — the adaptive channel balance of Jin et al. (WSDM'21).
    The original adds a pairwise-similarity SSL loss; the gate is the part
    that drives its Table III behaviour.
    """

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: int = 64,
        dropout: float = 0.5,
        knn_k: int = 5,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(in_features, num_classes)
        rng = rng or np.random.default_rng(0)
        self.knn_k = knn_k
        self.lin1 = Linear(in_features, hidden, rng)
        self.lin2 = Linear(hidden, num_classes, rng)
        self.gate1 = Linear(in_features, 1, rng)
        self.gate2 = Linear(hidden, 1, rng)
        self.self_weight1 = Parameter(np.full(1, 0.1))
        self.self_weight2 = Parameter(np.full(1, 0.1))
        self.dropout = Dropout(dropout, rng)

    def _propagate(self, graph: Graph, h: Tensor, lin, gate, self_weight) -> Tensor:
        a_top = cached_matrix(graph, "gcn_norm", gcn_norm)
        a_knn = knn_norm(graph, k=self.knn_k)
        s = ops.sigmoid(gate(h))  # (n, 1) per-node balance
        hw = lin(h)
        mixed = s * ops.spmm(a_top, hw) + (1.0 - s) * ops.spmm(a_knn, hw)
        return mixed + self_weight * hw

    def forward(self, graph: Graph, x: Tensor) -> Tensor:
        h = self.dropout(x)
        h = ops.relu(
            self._propagate(graph, h, self.lin1, self.gate1, self.self_weight1)
        )
        h = self.dropout(h)
        return self._propagate(graph, h, self.lin2, self.gate2, self.self_weight2)
