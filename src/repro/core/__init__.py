"""GraphRARE: the paper's primary contribution."""

from .ablation import fixed_kd, fixed_kd_grid, random_kd
from .analysis import RewiringAnalysis, analyze_rewiring, degree_change_report
from .config import RareConfig
from .env import (
    OBS_DIM,
    TopologyEnv,
    build_observation,
    fill_observation,
    observation_template,
)
from .framework import GraphRARE, RareResult
from .lru import LRUCache
from .rewire import (
    clamp_state,
    clamp_state_batch,
    edit_distance,
    rewire_graph,
    rewire_graph_reference,
    state_bounds,
)
from .temporal import TemporalGraphRARE, TemporalRareResult, drifting_snapshots

__all__ = [
    "GraphRARE",
    "LRUCache",
    "OBS_DIM",
    "RareConfig",
    "RareResult",
    "RewiringAnalysis",
    "analyze_rewiring",
    "degree_change_report",
    "TopologyEnv",
    "build_observation",
    "clamp_state",
    "clamp_state_batch",
    "edit_distance",
    "fill_observation",
    "observation_template",
    "state_bounds",
    "fixed_kd",
    "fixed_kd_grid",
    "random_kd",
    "rewire_graph",
    "rewire_graph_reference",
    "TemporalGraphRARE",
    "TemporalRareResult",
    "drifting_snapshots",
]
