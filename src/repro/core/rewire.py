"""Graph topology optimisation module (Sec. IV-B, Fig. 4).

Given the per-node state ``S = [k_1..k_N, d_1..d_N]`` the module rebuilds
the graph from the *original* topology: for every node ``v`` it connects the
top-``k_v`` entries of ``v``'s entropy sequence and removes the edges to the
``d_v`` lowest-entropy one-hop neighbours.

The rewiring is delta-based: the add/remove pairs implied by ``(k, d)`` are
gathered with batched numpy from the entropy sequences' CSR layout and
applied to the base graph's sorted edge-key array with set operations on
int64 keys — the resulting graph is rebuilt through the trusted fast
constructor without re-hashing a single edge.  The seed's set-of-tuples loop
survives as :func:`rewire_graph_reference` for the equivalence property
tests and the scaling benchmark.
"""

from __future__ import annotations

import numpy as np

from ..entropy import EntropySequences
from ..graph import Graph, GraphDelta
from ..graph.graph import _collapsed_delta


def state_bounds(
    graph: Graph,
    sequences: EntropySequences,
    k_max: int,
    d_max: int,
) -> tuple:
    """Per-node upper bounds ``(k_bound, d_bound)`` of the feasible state.

    ``k_v`` cannot exceed the number of available remote candidates and
    ``d_v`` cannot exceed the node's original degree (you cannot delete
    edges that do not exist).  Both depend only on the immutable base
    graph, so batched steppers compute them once and reuse them.
    """
    avail = (sequences.remote >= 0).sum(axis=1)
    deg = graph.degrees()
    return np.minimum(k_max, avail), np.minimum(d_max, deg)


def clamp_state(
    k: np.ndarray,
    d: np.ndarray,
    graph: Graph,
    sequences: EntropySequences,
    k_max: int,
    d_max: int,
) -> tuple:
    """Clip per-node counts to their feasible ranges (see
    :func:`state_bounds`)."""
    k_bound, d_bound = state_bounds(graph, sequences, k_max, d_max)
    k = np.clip(k, 0, k_bound)
    d = np.clip(d, 0, d_bound)
    return k.astype(np.int64), d.astype(np.int64)


def clamp_state_batch(
    k: np.ndarray,
    d: np.ndarray,
    graph: Graph,
    sequences: EntropySequences,
    k_max: int,
    d_max: int,
    bounds: tuple | None = None,
) -> tuple:
    """Batched :func:`clamp_state` over ``(B, N)`` state arrays.

    One broadcasted clip against the shared per-node bounds replaces B
    per-episode calls; row ``b`` of the result is byte-identical to
    ``clamp_state(k[b], d[b], ...)``.  ``bounds`` optionally supplies a
    precomputed :func:`state_bounds` pair so per-step callers skip the
    availability/degree rescan.
    """
    if bounds is None:
        bounds = state_bounds(graph, sequences, k_max, d_max)
    k_bound, d_bound = bounds
    k = np.clip(k, 0, k_bound[None, :])
    d = np.clip(d, 0, d_bound[None, :])
    return k.astype(np.int64), d.astype(np.int64)


def _sorted_unique(keys: np.ndarray) -> np.ndarray:
    """Sort + mask dedup; avoids np.unique's hash path on int64 keys."""
    if keys.shape[0] < 2:
        return keys
    keys = np.sort(keys)
    mask = np.empty(keys.shape[0], dtype=bool)
    mask[0] = True
    np.not_equal(keys[1:], keys[:-1], out=mask[1:])
    return keys[mask]


def _removal_keys(
    sequences: EntropySequences, d: np.ndarray, n: np.int64
) -> np.ndarray:
    """Canonical keys of every edge some endpoint selects for deletion."""
    indptr, flat = sequences.neighbor_csr()
    lengths = np.diff(indptr)
    take = np.minimum(np.maximum(d, 0), lengths)
    rows = np.repeat(np.arange(n), lengths)
    # Position of each flat entry inside its row; the first take[v] entries
    # of row v are exactly worst_neighbors(v, d[v]).
    pos = np.arange(flat.shape[0]) - indptr[rows]
    sel = pos < take[rows]
    v, u = rows[sel], flat[sel]
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    return _sorted_unique(lo * n + hi)


def _addition_keys(
    sequences: EntropySequences, k: np.ndarray, n: np.int64
) -> np.ndarray:
    """Canonical keys of every pair some endpoint selects for connection."""
    mc = sequences.max_candidates
    cols = np.arange(mc)
    sel = (cols[None, :] < np.minimum(k, mc)[:, None]) & (sequences.remote >= 0)
    v = np.nonzero(sel)[0]
    u = sequences.remote[sel]
    keep = u != v  # candidates never contain the ego node; guard anyway
    v, u = v[keep], u[keep]
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    return _sorted_unique(lo * n + hi)


def rewire_graph(
    graph: Graph,
    sequences: EntropySequences,
    k: np.ndarray,
    d: np.ndarray,
    add_edges: bool = True,
    remove_edges: bool = True,
) -> Graph:
    """Build ``G_{t+1}`` from the original graph and the state ``(k, d)``.

    An edge is removed when *either* endpoint selects it for deletion, and
    added when either endpoint selects the pair — consistent with keeping
    the graph undirected.

    The engine knows exactly which keys it dropped and inserted, so the
    result carries a :class:`~repro.graph.GraphDelta` against ``graph`` —
    the hook the incremental reward engine patches propagation matrices and
    halo-restricted GNN evaluations from.
    """
    k = np.asarray(k, dtype=np.int64)
    d = np.asarray(d, dtype=np.int64)
    n = graph.num_nodes
    if k.shape != (n,) or d.shape != (n,):
        raise ValueError(
            f"k and d must have shape ({n},), got {k.shape} and {d.shape}"
        )

    nn = np.int64(n)
    base_keys = graph.edge_keys()
    keys = base_keys
    removed = np.empty(0, dtype=np.int64)
    if remove_edges and (d > 0).any():
        gone = _removal_keys(sequences, d, nn)
        present = np.isin(keys, gone, assume_unique=True)
        removed = keys[present]
        keys = keys[~present]
    added = np.empty(0, dtype=np.int64)
    if add_edges and (k > 0).any():
        cand = _addition_keys(sequences, k, nn)
        # A candidate may re-insert an edge the removal pass just dropped;
        # the net delta below accounts for that (it is neither added nor
        # removed relative to the base graph).
        keys = _sorted_unique(np.concatenate([keys, cand]))
        added = keys[np.isin(keys, base_keys, assume_unique=True, invert=True)]
        if removed.shape[0]:
            removed = removed[
                np.isin(removed, keys, assume_unique=True, invert=True)
            ]
    out = Graph._from_keys(n, keys, graph.features, graph.labels)
    if graph.delta is None:
        out.delta = GraphDelta(graph, added, removed)
    else:
        # Rewiring a graph that is itself derived: collapse the delta to
        # the root so no chain of intermediates stays pinned.
        out.delta = _collapsed_delta(graph, keys)
    return out


def rewire_graph_reference(
    graph: Graph,
    sequences: EntropySequences,
    k: np.ndarray,
    d: np.ndarray,
    add_edges: bool = True,
    remove_edges: bool = True,
) -> Graph:
    """The seed's per-node set-of-tuples rewiring loop.

    Semantically identical to :func:`rewire_graph`; kept as the ground
    truth for the equivalence property tests and as the baseline the
    scaling benchmark measures speedups against.
    """
    k = np.asarray(k, dtype=np.int64)
    d = np.asarray(d, dtype=np.int64)
    n = graph.num_nodes
    if k.shape != (n,) or d.shape != (n,):
        raise ValueError(
            f"k and d must have shape ({n},), got {k.shape} and {d.shape}"
        )

    edges = set(graph.edges)
    if remove_edges:
        for v in range(n):
            if d[v] <= 0:
                continue
            for u in sequences.worst_neighbors(v, int(d[v])):
                edge = (v, u) if v < u else (u, v)
                edges.discard(edge)
    if add_edges:
        for v in range(n):
            if k[v] <= 0:
                continue
            for u in sequences.top_remote(v, int(k[v])):
                u = int(u)
                if u != v:
                    edges.add((v, u) if v < u else (u, v))
    return graph.with_edges(edges)


def edit_distance(a: Graph, b: Graph) -> int:
    """Number of edge insertions plus deletions between two topologies."""
    if a.num_nodes == b.num_nodes:
        return int(
            np.setxor1d(a.edge_keys(), b.edge_keys(), assume_unique=True).shape[0]
        )
    return len(a.edges ^ b.edges)
