"""Graph topology optimisation module (Sec. IV-B, Fig. 4).

Given the per-node state ``S = [k_1..k_N, d_1..d_N]`` the module rebuilds
the graph from the *original* topology: for every node ``v`` it connects the
top-``k_v`` entries of ``v``'s entropy sequence and removes the edges to the
``d_v`` lowest-entropy one-hop neighbours.
"""

from __future__ import annotations

import numpy as np

from ..entropy import EntropySequences
from ..graph import Graph


def clamp_state(
    k: np.ndarray,
    d: np.ndarray,
    graph: Graph,
    sequences: EntropySequences,
    k_max: int,
    d_max: int,
) -> tuple:
    """Clip per-node counts to their feasible ranges.

    ``k_v`` cannot exceed the number of available remote candidates and
    ``d_v`` cannot exceed the node's original degree (you cannot delete
    edges that do not exist).
    """
    avail = (sequences.remote >= 0).sum(axis=1)
    deg = graph.degrees()
    k = np.clip(k, 0, np.minimum(k_max, avail))
    d = np.clip(d, 0, np.minimum(d_max, deg))
    return k.astype(np.int64), d.astype(np.int64)


def rewire_graph(
    graph: Graph,
    sequences: EntropySequences,
    k: np.ndarray,
    d: np.ndarray,
    add_edges: bool = True,
    remove_edges: bool = True,
) -> Graph:
    """Build ``G_{t+1}`` from the original graph and the state ``(k, d)``.

    An edge is removed when *either* endpoint selects it for deletion, and
    added when either endpoint selects the pair — consistent with keeping
    the graph undirected.
    """
    k = np.asarray(k, dtype=np.int64)
    d = np.asarray(d, dtype=np.int64)
    n = graph.num_nodes
    if k.shape != (n,) or d.shape != (n,):
        raise ValueError(
            f"k and d must have shape ({n},), got {k.shape} and {d.shape}"
        )

    edges = set(graph.edges)
    if remove_edges:
        for v in range(n):
            if d[v] <= 0:
                continue
            for u in sequences.worst_neighbors(v, int(d[v])):
                edge = (v, u) if v < u else (u, v)
                edges.discard(edge)
    if add_edges:
        for v in range(n):
            if k[v] <= 0:
                continue
            for u in sequences.top_remote(v, int(k[v])):
                u = int(u)
                if u != v:
                    edges.add((v, u) if v < u else (u, v))
    return graph.with_edges(edges)


def edit_distance(a: Graph, b: Graph) -> int:
    """Number of edge insertions plus deletions between two topologies."""
    return len(a.edges ^ b.edges)
