"""Analysis utilities for optimised topologies.

The paper's Sec. V-I studies *what* the rewiring did (homophily ratios,
density observations); this module packages those diagnostics: edit
statistics, class alignment of added/removed edges, and per-node edit
histograms — the data behind Fig. 7-style claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..graph import Graph, homophily_ratio


@dataclass(frozen=True)
class RewiringAnalysis:
    """Diagnostics comparing an optimised topology against the original."""

    num_added: int
    num_removed: int
    added_same_class_frac: float
    """Fraction of the added edges that connect same-label endpoints
    (higher is better — new edges should be homophilic)."""
    removed_cross_class_frac: float
    """Fraction of the removed edges that connected different labels
    (higher is better — removed edges should have been noise)."""
    original_homophily: float
    optimized_homophily: float
    per_node_added: np.ndarray
    per_node_removed: np.ndarray

    @property
    def homophily_gain(self) -> float:
        return self.optimized_homophily - self.original_homophily

    @property
    def edit_distance(self) -> int:
        return self.num_added + self.num_removed

    def summary(self) -> str:
        lines = [
            f"edges added      : {self.num_added} "
            f"({100 * self.added_same_class_frac:.0f}% same-class)",
            f"edges removed    : {self.num_removed} "
            f"({100 * self.removed_cross_class_frac:.0f}% cross-class)",
            f"homophily        : {self.original_homophily:.3f} -> "
            f"{self.optimized_homophily:.3f} ({self.homophily_gain:+.3f})",
            f"max edits at node: +{int(self.per_node_added.max(initial=0))} / "
            f"-{int(self.per_node_removed.max(initial=0))}",
        ]
        return "\n".join(lines)


def analyze_rewiring(original: Graph, optimized: Graph) -> RewiringAnalysis:
    """Compare two topologies over the same node set."""
    if original.num_nodes != optimized.num_nodes:
        raise ValueError(
            f"graphs have different node counts: "
            f"{original.num_nodes} vs {optimized.num_nodes}"
        )
    if original.labels is None:
        raise ValueError("rewiring analysis requires node labels")
    labels = original.labels

    added = optimized.edges - original.edges
    removed = original.edges - optimized.edges

    def same_class_frac(edges) -> float:
        if not edges:
            return 0.0
        pairs = np.array(sorted(edges))
        return float((labels[pairs[:, 0]] == labels[pairs[:, 1]]).mean())

    n = original.num_nodes
    per_added = np.zeros(n, dtype=np.int64)
    per_removed = np.zeros(n, dtype=np.int64)
    for u, v in added:
        per_added[u] += 1
        per_added[v] += 1
    for u, v in removed:
        per_removed[u] += 1
        per_removed[v] += 1

    return RewiringAnalysis(
        num_added=len(added),
        num_removed=len(removed),
        added_same_class_frac=same_class_frac(added),
        removed_cross_class_frac=1.0 - same_class_frac(removed) if removed else 0.0,
        original_homophily=homophily_ratio(original),
        optimized_homophily=homophily_ratio(optimized),
        per_node_added=per_added,
        per_node_removed=per_removed,
    )


def degree_change_report(original: Graph, optimized: Graph) -> Dict[str, float]:
    """Aggregate degree statistics before and after rewiring."""
    before = original.degrees()
    after = optimized.degrees()
    return {
        "mean_degree_before": float(before.mean()),
        "mean_degree_after": float(after.mean()),
        "max_degree_before": int(before.max()),
        "max_degree_after": int(after.max()),
        "isolated_before": int((before == 0).sum()),
        "isolated_after": int((after == 0).sum()),
    }
