"""Spatio-temporal extension of GraphRARE (the paper's future work).

The conclusion names "extending GraphRARE to incorporate multi-modal
graphs or spatial-temporal graphs" as future work.  This module implements
the spatial-temporal direction for discrete-time snapshot sequences:

* a **temporal graph** is a list of snapshots over a fixed node set whose
  edge set drifts over time (features and labels are static, as in the
  discrete-time node-classification setting);
* the node relative entropy is computed per snapshot — the *feature*
  entropy is shared (features are static) while the *structural* entropy
  tracks each snapshot's degree profiles;
* one RARE loop runs per snapshot, warm-starting the GNN from the previous
  snapshot (the temporal analogue of co-training), and the reported
  accuracy is measured on the final snapshot's optimised topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..datasets.synthetic import DatasetSpec, build_synthetic_graph, sample_edges
from ..graph import Graph, Split, homophily_ratio
from .config import RareConfig
from .framework import GraphRARE, RareResult


def drifting_snapshots(
    spec: DatasetSpec,
    num_snapshots: int = 3,
    drift: float = 0.2,
    seed: int = 0,
) -> List[Graph]:
    """A synthetic temporal graph: edges drift, features/labels are static.

    Each step resamples a ``drift`` fraction of the edges with the same
    homophily target, so consecutive snapshots overlap by ``1 - drift``.

    Every later snapshot is derived from the base by functional
    ``remove_edges``/``add_edges`` edits, so it carries ONE collapsed
    :class:`~repro.graph.graph.GraphDelta` against ``snapshots[0]`` —
    the invariant the incremental evaluator and the streaming engine key
    caches on (a snapshot with an *empty* drift step is the base graph
    itself, and duplicate resampled edges collapse into the set).
    """
    if not 0.0 <= drift <= 1.0:
        raise ValueError(f"drift must be in [0, 1], got {drift}")
    if num_snapshots < 1:
        raise ValueError(f"num_snapshots must be >= 1, got {num_snapshots}")
    rng = np.random.default_rng(seed)
    base = build_synthetic_graph(spec, seed=seed)
    base_edges = set(base.edges)
    snapshots = [base]
    current = set(base.edges)
    for _ in range(num_snapshots - 1):
        keep = {
            e for e in current if rng.random() > drift
        }
        needed = spec.num_edges - len(keep)
        fresh = sample_edges(
            base.labels, needed + len(keep), spec.homophily, rng,
            degree_sigma=spec.degree_sigma,
            class_degree_spread=spec.class_degree_spread,
        )
        merged = set(keep)
        for e in fresh:
            if len(merged) >= spec.num_edges:
                break
            merged.add(e)
        current = merged
        # Chain from the base so the snapshot is base + one collapsed
        # delta (features/labels shared by construction).
        removes = sorted(base_edges - current)
        adds = sorted(current - base_edges)
        snap = base
        if removes:
            snap = snap.remove_edges(np.asarray(removes, dtype=np.int64))
        if adds:
            snap = snap.add_edges(np.asarray(adds, dtype=np.int64))
        snapshots.append(snap)
    return snapshots


@dataclass
class TemporalRareResult:
    """Outcome of a temporal GraphRARE run."""

    test_acc: float
    baseline_test_acc: float
    per_snapshot: List[RareResult] = field(default_factory=list)

    @property
    def homophily_curve(self) -> List[float]:
        """Optimised homophily ratio per snapshot."""
        return [r.optimized_homophily for r in self.per_snapshot]

    @property
    def improvement(self) -> float:
        return self.test_acc - self.baseline_test_acc


class TemporalGraphRARE:
    """GraphRARE over a sequence of graph snapshots.

    Runs the single-graph framework per snapshot; the features, labels and
    split stay fixed while the topology evolves.  Reported metrics come
    from the final snapshot — the usual temporal node-classification
    protocol (classify at the latest time step).
    """

    def __init__(self, backbone: str = "gcn", config: Optional[RareConfig] = None):
        self.backbone = backbone
        self.config = config or RareConfig()

    def fit(
        self, snapshots: Sequence[Graph], split: Split,
    ) -> TemporalRareResult:
        """One RARE loop per snapshot, warm-starting each snapshot's
        co-training from the previous snapshot's co-trained backbone
        (the temporal analogue of co-training; the baseline and the
        final per-snapshot evaluation models stay fresh)."""
        if not snapshots:
            raise ValueError("need at least one snapshot")
        num_nodes = snapshots[0].num_nodes
        for snap in snapshots[1:]:
            if snap.num_nodes != num_nodes:
                raise ValueError("all snapshots must share the node set")

        per_snapshot: List[RareResult] = []
        warm = None
        for t, snap in enumerate(snapshots):
            # Only the final snapshot needs the baseline comparison.
            is_last = t == len(snapshots) - 1
            rare = GraphRARE(self.backbone, self.config)
            result = rare.fit(
                snap, split, train_baseline=is_last, initial_model=warm
            )
            warm = result.co_trained_model
            per_snapshot.append(result)

        final = per_snapshot[-1]
        return TemporalRareResult(
            test_acc=final.test_acc,
            baseline_test_acc=final.baseline_test_acc,
            per_snapshot=per_snapshot,
        )
