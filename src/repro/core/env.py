"""The finite-horizon topology-optimisation MDP (Sec. IV-B).

State, action, transition and reward follow the paper exactly:

* **State** ``S_t = [k_1..k_N, d_1..d_N]``; ``S_0 = 0``.
* **Action** ``A_t``: per component, decrement / keep / increment by
  ``delta_k = 1``.
* **Transition** ``S_{t+1} = S_t + A_t`` (Eq. 10), clamped to feasibility.
* **Reward** ``R = (acc_t - acc_{t-1}) + lambda_r (loss_{t-1} - loss_t)``
  (Eq. 11), computed from an eval-mode pass of the co-trained GNN on the
  training nodes; an AUC-based alternative backs the Table V ablation.

The environment also hosts the co-training hook of Algorithm 1 (lines
10-13): when the training accuracy sets a new record, the GNN is trained
for a few more epochs on the current topology with early stopping.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..entropy import EntropySequences
from ..gnn import GNNBackbone, IncrementalEvaluator, Trainer, evaluate
from ..graph import Graph, Split, homophily_ratio
from ..nn import macro_auc
from ..rl import Env, MultiDiscreteSpace
from ..telemetry import get_telemetry
from .config import RareConfig
from .lru import LRUCache
from .rewire import clamp_state, rewire_graph

#: Features per node row in the observation.
OBS_DIM = 6


def reward_metrics(
    model: GNNBackbone,
    graph: Graph,
    mask: np.ndarray,
    reward: str,
    evaluator: IncrementalEvaluator | None = None,
) -> Tuple[float, float]:
    """Eval-mode ``(score, loss)`` for the reward (Alg. 1 line 9).

    The one dispatch shared by the sequential and vectorized envs: routed
    through the incremental ``evaluator`` when one is bound (a single
    halo/cached evaluation also yields the logits the AUC reward needs),
    through the dense :func:`~repro.gnn.evaluate` otherwise.
    """
    if evaluator is not None:
        if reward == "auc":
            _, loss, logits = evaluator.evaluate(
                graph, mask, return_logits=True
            )
            return macro_auc(logits, graph.labels, mask), loss
        return evaluator.evaluate(graph, mask)
    acc, loss = evaluate(model, graph, mask)
    if reward == "auc":
        logits = model.predict_logits(graph)
        return macro_auc(logits, graph.labels, mask), loss
    return acc, loss


def observation_template(
    graph: Graph,
    sequences: EntropySequences,
    config: RareConfig,
) -> np.ndarray:
    """The static ``(N, OBS_DIM)`` part of the observation.

    Columns 2-5 (degree, candidate availability, entropy summaries) depend
    only on the *base* graph and the entropy sequences, never on the MDP
    state — the batched rollout engine computes them once per environment
    and rewrites only the ``k``/``d`` columns each step.  Columns 0 and 1
    are left zeroed (the ``S_0 = 0`` observation).
    """
    deg = graph.degrees().astype(np.float64)
    max_deg = max(deg.max(), 1.0)  # guard: edgeless graphs have max degree 0
    avail = (sequences.remote >= 0).sum(axis=1).astype(np.float64)
    score_scale = 1.0 + config.lam

    # Guard: a sequence built over a (near-)complete graph can have zero
    # remote-candidate columns; the summary statistic is then simply 0.
    top = sequences.remote_scores[:, :3].copy()
    if top.shape[1]:
        top[~np.isfinite(top)] = 0.0
        top_mean = top.mean(axis=1) / score_scale
    else:
        top_mean = np.zeros(graph.num_nodes)

    neigh_mean = np.array(
        [s.mean() if len(s) else 0.0 for s in sequences.neighbor_scores]
    ) / score_scale

    return np.stack(
        [
            np.zeros(graph.num_nodes),
            np.zeros(graph.num_nodes),
            deg / max_deg,
            avail / max(sequences.max_candidates, 1),
            top_mean,
            neigh_mean,
        ],
        axis=1,
    )


def fill_observation(
    template: np.ndarray,
    k: np.ndarray,
    d: np.ndarray,
    config: RareConfig,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Write the dynamic ``k``/``d`` columns into a (copy of a) template.

    ``template`` may be ``(N, OBS_DIM)`` with ``k``/``d`` of shape ``(N,)``,
    or batched ``(B, N, OBS_DIM)`` with ``(B, N)`` states.  ``out`` lets the
    caller reuse a preallocated buffer; when ``None`` the template is
    copied.
    """
    if out is None:
        out = template.copy()
    else:
        out[...] = template
    out[..., 0] = k / max(config.k_max, 1)
    out[..., 1] = d / max(config.d_max, 1)
    return out


def build_observation(
    k: np.ndarray,
    d: np.ndarray,
    graph: Graph,
    sequences: EntropySequences,
    config: RareConfig,
) -> np.ndarray:
    """Per-node observation rows for the policy network.

    Each row describes one node: its current ``k_v`` and ``d_v`` (scaled),
    its degree, how many remote candidates it has, and summary statistics of
    its entropy sequence — everything the agent needs to reason about the
    node's "personality".  Composed from :func:`observation_template` (the
    static columns) and :func:`fill_observation` (the state columns) so the
    vectorized rollout engine can cache the former.
    """
    return fill_observation(
        observation_template(graph, sequences, config), k, d, config
    )


class TopologyEnv(Env):
    """Gym-style wrapper around the graph-rewiring MDP."""

    def __init__(
        self,
        graph: Graph,
        sequences: EntropySequences,
        model: GNNBackbone,
        trainer: Trainer,
        split: Split,
        config: RareConfig,
        co_train: bool = True,
        seed: int | None = None,
    ) -> None:
        self.base_graph = graph
        self.sequences = sequences
        self.model = model
        self.trainer = trainer
        self.split = split
        self.config = config
        self.co_train = co_train
        self.seed(seed)
        # The static observation columns depend only on the immutable base
        # graph + sequences; compute them once, fill k/d per step.
        self._obs_template = observation_template(graph, sequences, config)

        n = graph.num_nodes
        self.action_space = MultiDiscreteSpace([3] * (2 * n))
        self.best_acc = 0.0
        self.best_graph: Graph = graph
        self.current_graph: Graph = graph
        self.history: list[Dict[str, float]] = []
        self._steps_total = 0
        # The (k, d) -> Graph memo is a shared LRUCache: per-env exact
        # hit/miss/eviction accounting behind ``rewire_memo_stats``,
        # mirrored into the active session's ``env.rewire_memo.*``
        # aggregates.  ``_rewire_hits`` and ``_rewire_misses`` stay
        # available as read-only properties.
        self._tel = get_telemetry()
        self.REWIRE_CACHE_LIMIT = config.rewire_memo_entries
        self._rewire_cache = LRUCache(
            self.REWIRE_CACHE_LIMIT,
            counter_prefix="env.rewire_memo",
            tel=self._tel,
        )
        self.rewire_memo_stats = self._rewire_cache.stats
        # Optional incremental reward engine: delta-patched propagation
        # matrices + halo-restricted forwards against cached base logits,
        # for every backbone with a registered halo plan (GCN, GraphSAGE,
        # GAT, H2GCN, MixHop and user plans — plan-less backbones fall
        # back to the dense evaluation inside the evaluator, so there is
        # no backbone gate here).  Bound to the delta *root*: if the env's
        # base graph is itself a derived graph (e.g. a preprocessed
        # dataset), rewire deltas collapse to that root and the halo path
        # still applies.
        self._inc: Optional[IncrementalEvaluator] = (
            IncrementalEvaluator(
                model,
                graph.delta.base if graph.delta is not None else graph,
                max_halo_frac=config.max_halo_frac,
            )
            if config.incremental_reward
            else None
        )
        # Optional live churn (docs/streaming.md): with ``config.stream``
        # set, every step first folds one batch of external add/remove
        # edge events into the base topology.  The churn engine keeps
        # ``base_graph = root + one collapsed delta`` so the incremental
        # evaluator above stays bound to the same root as the agent's own
        # rewires; the online evaluator maintains sliding-window metrics
        # of the drifting base, byte-identical to full recomputation.
        self._stream = None
        self._churn = None
        self._online = None
        if config.stream is not None:
            from ..stream import OnlineEvaluator, StreamingGraph, make_stream

            self._churn = make_stream(graph, config.stream)
            self._stream = StreamingGraph(
                graph,
                rebase_threshold=config.stream.rebase_threshold,
                tel=self._tel,
            )
            self._online = OnlineEvaluator(graph, window=config.stream.window)
        self.reset()

    # ------------------------------------------------------------------
    @property
    def _rewire_hits(self) -> int:
        """Back-compat integer view of the memo hit counter."""
        return self._rewire_cache.hits

    @property
    def _rewire_misses(self) -> int:
        """Back-compat integer view of the memo miss counter."""
        return self._rewire_cache.misses

    def _metrics(self, graph: Graph) -> Tuple[float, float]:
        """Eval-mode (score, loss) on the training nodes (Alg. 1 line 9)."""
        with self._tel.span("env.reward", hist="rl.reward_s"):
            return reward_metrics(
                self.model, graph, self.split.train, self.config.reward,
                self._inc,
            )

    def _observation(self) -> np.ndarray:
        return fill_observation(
            self._obs_template, self.k, self.d, self.config
        )

    # ------------------------------------------------------------------
    def seed(self, seed: int | None = None) -> np.random.Generator:
        """(Re)seed the environment's own random stream.

        The MDP itself is deterministic, but the env owns a generator for
        its stochastic companions — :meth:`sample_action`, the shuffled
        "without relative entropy" ablation, future noisy rewiring — so a
        run is reproducible from one base seed.  The generator descends
        from a :class:`numpy.random.SeedSequence`, the same scheme
        ``VecTopologyEnv`` uses to spawn independent per-episode streams.
        """
        self._seed_seq = np.random.SeedSequence(seed)
        self.rng = np.random.default_rng(self._seed_seq)
        return self.rng

    def sample_action(self) -> np.ndarray:
        """A uniformly random action drawn from the env's own stream."""
        return self.action_space.sample(self.rng)

    def reset(self, seed: int | None = None) -> np.ndarray:
        """Start a new episode: ``S_0 = 0`` on the original topology.

        ``seed`` (optional) reseeds the env's random stream before the
        episode starts; omitted, the existing stream continues.

        Cross-episode semantics (deliberate, relied on by the convergence
        benches): :attr:`history` and the global step counter
        ``_steps_total`` accumulate across episodes so one environment
        yields one continuous training log — call :meth:`clear_history` for
        a fresh log.  The rewire memo also survives resets because it is
        keyed purely on ``(k, d)`` over the immutable base graph.
        """
        if seed is not None:
            self.seed(seed)
        n = self.base_graph.num_nodes
        self.k = np.zeros(n, dtype=np.int64)
        self.d = np.zeros(n, dtype=np.int64)
        self.t = 0
        self.current_graph = self.base_graph
        self.prev_score, self.prev_loss = self._metrics(self.base_graph)
        return self._observation()

    def clear_history(self) -> None:
        """Drop the accumulated cross-episode log and step counter."""
        self.history = []
        self._steps_total = 0

    #: Class-level default for the (k, d) -> Graph memo bound (the
    #: instance attribute is initialised from
    #: ``RareConfig.rewire_memo_entries``).  Each entry pins a Graph plus
    #: whatever propagation matrices the GNN caches on it, so the bound
    #: is deliberately small: large enough to cover the states of a
    #: typical run (episodes * horizon), small enough that exploratory
    #: policies (which rarely revisit a 2N-dimensional state) cannot grow
    #: memory without bound.
    REWIRE_CACHE_LIMIT = 64

    def _rewired(self, k: np.ndarray, d: np.ndarray) -> Graph:
        """Memoised rewiring: repeated ``(k, d)`` states are free.

        The MDP rebuilds ``G_{t+1}`` from the *original* topology, so the
        result depends only on the clamped state — an episode that revisits
        a state (all-keep actions, oscillating policies) reuses the exact
        Graph object, and with it every propagation matrix cached on it.
        The memo is a :class:`~repro.core.lru.LRUCache`: a hit refreshes
        the entry's recency, so hot ``(k, d)`` states survive even when
        they were inserted early, and the memo never resets wholesale.
        """
        key = k.tobytes() + d.tobytes()
        if self._stream is not None:
            # The base graph drifts under churn: the memo key carries the
            # stream version so an entry built against an older topology
            # can never be served again (it just ages out of the LRU).
            key = self._stream.version.to_bytes(8, "little") + key
        graph = self._rewire_cache.get(key)
        if graph is None:
            with self._tel.span("env.rewire", hist="rl.rewire_s"):
                graph = rewire_graph(
                    self.base_graph,
                    self.sequences,
                    k,
                    d,
                    add_edges=self.config.add_edges,
                    remove_edges=self.config.remove_edges,
                )
            self._rewire_cache.put(
                key, graph, capacity=self.REWIRE_CACHE_LIMIT
            )
        return graph

    # ------------------------------------------------------------------
    def _advance_stream(self) -> None:
        """Fold one step's worth of external churn into the base graph.

        Streaming-mode step prologue: draw ``events_per_step`` events
        from the seeded generator, apply them as one collapsed delta and
        feed the net inserted/deleted keys to the online evaluator.  A
        rebase (dirty fraction over the threshold) promotes a fresh
        bitwise-verified root, so the incremental reward evaluator is
        re-bound to it; the rewire memo needs no flush because its keys
        carry the stream version.
        """
        report = self._stream.apply(
            self._churn.take(self.config.stream.events_per_step)
        )
        self._online.observe(
            self._stream.current, report.added_keys, report.removed_keys
        )
        if report.rebased and self._inc is not None:
            self._inc = IncrementalEvaluator(
                self.model,
                self._stream.root,
                max_halo_frac=self.config.max_halo_frac,
            )
        self.base_graph = self._stream.current

    def stream_metrics(self) -> Dict[str, float]:
        """Sliding-window aggregates of the churned base topology
        (empty dict outside streaming mode)."""
        if self._online is None:
            return {}
        return self._online.window_metrics()

    def step(self, action: np.ndarray) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        with self._tel.span("env.step", hist="rl.step_s"):
            return self._step(action)

    def _step(self, action: np.ndarray) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        """One MDP transition; the body of :meth:`step` under its span."""
        action = np.asarray(action, dtype=np.int64)
        n = self.base_graph.num_nodes
        if action.shape != (2 * n,):
            raise ValueError(f"action must have shape ({2 * n},), got {action.shape}")

        # Streaming mode: external events land before the agent's move —
        # the step's rewire and reward see the churned topology.
        if self._stream is not None:
            self._advance_stream()

        # Eq. 10: S_{t+1} = S_t + A_t, with A in {-1, 0, +1} per component.
        self.k = self.k + (action[:n] - 1)
        self.d = self.d + (action[n:] - 1)
        self.k, self.d = clamp_state(
            self.k, self.d, self.base_graph, self.sequences,
            self.config.k_max, self.config.d_max,
        )

        graph = self._rewired(self.k, self.d)
        self.current_graph = graph

        score, loss = self._metrics(graph)
        # Eq. 11.
        reward = (score - self.prev_score) + self.config.lambda_r * (
            self.prev_loss - loss
        )

        # Algorithm 1, lines 10-13: extra GNN epochs on a record topology.
        if score > self.best_acc:
            self.best_acc = score
            self.best_graph = graph
            if self.co_train:
                with self._tel.span("env.co_train", hist="rl.cotrain_s"):
                    self.trainer.fit(
                        graph,
                        self.split,
                        epochs=self.config.co_train_epochs,
                        patience=self.config.co_train_patience,
                    )
                if self._inc is not None:
                    # Co-training changed the weights: cached base-graph
                    # activations are stale.
                    self._inc.invalidate()
                score, loss = self._metrics(graph)

        self.prev_score, self.prev_loss = score, loss
        self.t += 1
        self._steps_total += 1
        done = self.t >= self.config.horizon

        info = {
            "train_score": score,
            "train_loss": loss,
            "homophily": homophily_ratio(graph) if graph.labels is not None else 0.0,
            "num_edges": graph.num_edges,
            "mean_k": float(self.k.mean()),
            "mean_d": float(self.d.mean()),
        }
        if self._stream is not None:
            info["stream_version"] = self._stream.version
            info["stream_events"] = self._stream.events_applied
        self.history.append({"step": self._steps_total, "reward": reward, **info})
        return self._observation(), float(reward), done, info
