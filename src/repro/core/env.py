"""The finite-horizon topology-optimisation MDP (Sec. IV-B).

State, action, transition and reward follow the paper exactly:

* **State** ``S_t = [k_1..k_N, d_1..d_N]``; ``S_0 = 0``.
* **Action** ``A_t``: per component, decrement / keep / increment by
  ``delta_k = 1``.
* **Transition** ``S_{t+1} = S_t + A_t`` (Eq. 10), clamped to feasibility.
* **Reward** ``R = (acc_t - acc_{t-1}) + lambda_r (loss_{t-1} - loss_t)``
  (Eq. 11), computed from an eval-mode pass of the co-trained GNN on the
  training nodes; an AUC-based alternative backs the Table V ablation.

The environment also hosts the co-training hook of Algorithm 1 (lines
10-13): when the training accuracy sets a new record, the GNN is trained
for a few more epochs on the current topology with early stopping.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..entropy import EntropySequences
from ..gnn import GNNBackbone, Trainer, evaluate
from ..graph import Graph, Split, homophily_ratio
from ..nn import macro_auc
from ..rl import Env, MultiDiscreteSpace
from .config import RareConfig
from .rewire import clamp_state, rewire_graph

#: Features per node row in the observation.
OBS_DIM = 6


def build_observation(
    k: np.ndarray,
    d: np.ndarray,
    graph: Graph,
    sequences: EntropySequences,
    config: RareConfig,
) -> np.ndarray:
    """Per-node observation rows for the policy network.

    Each row describes one node: its current ``k_v`` and ``d_v`` (scaled),
    its degree, how many remote candidates it has, and summary statistics of
    its entropy sequence — everything the agent needs to reason about the
    node's "personality".
    """
    deg = graph.degrees().astype(np.float64)
    max_deg = max(deg.max(), 1.0)
    avail = (sequences.remote >= 0).sum(axis=1).astype(np.float64)
    score_scale = 1.0 + config.lam

    top = sequences.remote_scores[:, :3].copy()
    top[~np.isfinite(top)] = 0.0
    top_mean = top.mean(axis=1) / score_scale

    neigh_mean = np.array(
        [s.mean() if len(s) else 0.0 for s in sequences.neighbor_scores]
    ) / score_scale

    return np.stack(
        [
            k / max(config.k_max, 1),
            d / max(config.d_max, 1),
            deg / max_deg,
            avail / sequences.max_candidates,
            top_mean,
            neigh_mean,
        ],
        axis=1,
    )


class TopologyEnv(Env):
    """Gym-style wrapper around the graph-rewiring MDP."""

    def __init__(
        self,
        graph: Graph,
        sequences: EntropySequences,
        model: GNNBackbone,
        trainer: Trainer,
        split: Split,
        config: RareConfig,
        co_train: bool = True,
    ) -> None:
        self.base_graph = graph
        self.sequences = sequences
        self.model = model
        self.trainer = trainer
        self.split = split
        self.config = config
        self.co_train = co_train

        n = graph.num_nodes
        self.action_space = MultiDiscreteSpace([3] * (2 * n))
        self.best_acc = 0.0
        self.best_graph: Graph = graph
        self.current_graph: Graph = graph
        self.history: list[Dict[str, float]] = []
        self._steps_total = 0
        self.reset()

    # ------------------------------------------------------------------
    def _metrics(self, graph: Graph) -> Tuple[float, float]:
        """Eval-mode (score, loss) on the training nodes (Alg. 1 line 9)."""
        acc, loss = evaluate(self.model, graph, self.split.train)
        if self.config.reward == "auc":
            logits = self.model.predict_logits(graph)
            score = macro_auc(logits, graph.labels, self.split.train)
            return score, loss
        return acc, loss

    def _observation(self) -> np.ndarray:
        return build_observation(
            self.k, self.d, self.base_graph, self.sequences, self.config
        )

    # ------------------------------------------------------------------
    def reset(self) -> np.ndarray:
        n = self.base_graph.num_nodes
        self.k = np.zeros(n, dtype=np.int64)
        self.d = np.zeros(n, dtype=np.int64)
        self.t = 0
        self.current_graph = self.base_graph
        self.prev_score, self.prev_loss = self._metrics(self.base_graph)
        return self._observation()

    def step(self, action: np.ndarray) -> Tuple[np.ndarray, float, bool, Dict[str, Any]]:
        action = np.asarray(action, dtype=np.int64)
        n = self.base_graph.num_nodes
        if action.shape != (2 * n,):
            raise ValueError(f"action must have shape ({2 * n},), got {action.shape}")

        # Eq. 10: S_{t+1} = S_t + A_t, with A in {-1, 0, +1} per component.
        self.k = self.k + (action[:n] - 1)
        self.d = self.d + (action[n:] - 1)
        self.k, self.d = clamp_state(
            self.k, self.d, self.base_graph, self.sequences,
            self.config.k_max, self.config.d_max,
        )

        graph = rewire_graph(
            self.base_graph,
            self.sequences,
            self.k,
            self.d,
            add_edges=self.config.add_edges,
            remove_edges=self.config.remove_edges,
        )
        self.current_graph = graph

        score, loss = self._metrics(graph)
        # Eq. 11.
        reward = (score - self.prev_score) + self.config.lambda_r * (
            self.prev_loss - loss
        )

        # Algorithm 1, lines 10-13: extra GNN epochs on a record topology.
        if score > self.best_acc:
            self.best_acc = score
            self.best_graph = graph
            if self.co_train:
                self.trainer.fit(
                    graph,
                    self.split,
                    epochs=self.config.co_train_epochs,
                    patience=self.config.co_train_patience,
                )
                score, loss = self._metrics(graph)

        self.prev_score, self.prev_loss = score, loss
        self.t += 1
        self._steps_total += 1
        done = self.t >= self.config.horizon

        info = {
            "train_score": score,
            "train_loss": loss,
            "homophily": homophily_ratio(graph) if graph.labels is not None else 0.0,
            "num_edges": graph.num_edges,
            "mean_k": float(self.k.mean()),
            "mean_d": float(self.d.mean()),
        }
        self.history.append({"step": self._steps_total, "reward": reward, **info})
        return self._observation(), float(reward), done, info
