"""The GraphRARE framework driver (Sec. III, Algorithm 1).

Pipeline: compute node relative entropy once -> build per-node entropy
sequences -> jointly train a PPO agent (choosing per-node ``k_v``/``d_v``)
and the GNN backbone on the evolving topology -> finish with a full
training run on the best discovered graph and report its test accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..entropy import EntropySequences, RelativeEntropy, build_entropy_sequences
from ..gnn import GNNBackbone, Trainer, build_backbone, evaluate
from ..graph import Graph, Split, homophily_ratio
from ..rl import NodePolicy, build_agent
from ..telemetry import get_telemetry, telemetry_from_spec, use_telemetry
from ..tensor import resolve_backend, use_backend
from ..tensor.backends.instrument import InstrumentedBackend
from .config import RareConfig
from .env import OBS_DIM, TopologyEnv


@dataclass
class RareResult:
    """Outcome of one GraphRARE run."""

    test_acc: float
    val_acc: float
    baseline_test_acc: float
    """The same backbone trained on the *original* topology (the paper's
    counterpart column in Table III)."""
    original_homophily: float
    optimized_homophily: float
    optimized_graph: Graph
    entropy_seconds: float
    accuracy_curve: List[float] = field(default_factory=list)
    homophily_curve: List[float] = field(default_factory=list)
    episode_rewards: List[float] = field(default_factory=list)
    co_trained_model: Optional[GNNBackbone] = field(default=None, repr=False)
    """The backbone as it left co-training — the warm-start handle
    :class:`~repro.core.temporal.TemporalGraphRARE` threads into the next
    snapshot's run.  (The reported ``test_acc`` comes from a *fresh*
    final model; this one carries the co-training trajectory.)"""

    @property
    def improvement(self) -> float:
        """Accuracy gain over the plain backbone (the up-arrows in Table III)."""
        return self.test_acc - self.baseline_test_acc


class GraphRARE:
    """Reinforcement-learning enhanced GNN with relative entropy.

    Parameters
    ----------
    backbone:
        Name of the GNN to enhance ("gcn", "graphsage", "gat", "h2gcn", ...)
        — the paper's GCN-RARE, GraphSAGE-RARE, GAT-RARE and H2GCN-RARE.
    config:
        Loop hyper-parameters; see :class:`RareConfig`.
    """

    def __init__(self, backbone: str = "gcn", config: Optional[RareConfig] = None):
        self.backbone_name = backbone
        self.config = config or RareConfig()

    # ------------------------------------------------------------------
    def _prepare_sequences(
        self, graph: Graph, rng: np.random.Generator, shuffle: bool = False
    ) -> tuple:
        """Entropy + sequence construction (Algorithm 1, lines 1-6).

        Timed through a telemetry span (``rare.entropy``) that measures
        whether or not the session records — its duration is the
        ``entropy_seconds`` reported on :class:`RareResult`.
        """
        with get_telemetry().timed_span("rare.entropy") as span:
            if self.config.storage == "stream":
                sequences = build_entropy_sequences(
                    graph,
                    None,
                    max_candidates=self.config.max_candidates,
                    rng=rng,
                    shuffle=shuffle,
                    screening="on",
                    num_workers=self.config.num_workers,
                    state_loader=self._stream_state_loader(graph, rng),
                )
            else:
                entropy = RelativeEntropy.from_graph(
                    graph,
                    lam=self.config.lam,
                    embedding=self.config.embedding,
                    max_profile_len=self.config.max_profile_len,
                    rng=rng,
                    structural_mode=self.config.structural_mode,
                )
                sequences = build_entropy_sequences(
                    graph,
                    entropy,
                    max_candidates=self.config.max_candidates,
                    rng=rng,
                    shuffle=shuffle,
                    screening=self.config.screening,
                    num_workers=self.config.num_workers,
                )
        return sequences, span.duration

    def _stream_state_loader(self, graph: Graph, rng: np.random.Generator):
        """The ``storage="stream"`` screening recipe for a bundle graph.

        The bundle's entropy sidecar is the stream source; it is written
        on first use (one in-RAM entropy build, persisted next to the
        graph arrays) and validated against the config on every reuse so
        a stale sidecar can never silently change the sequences.
        """
        from ..graph.storage import (
            ScreenStateLoader,
            entropy_sidecar_meta,
            has_entropy_sidecar,
            save_entropy_sidecar,
        )

        bundle = getattr(graph, "bundle", None)
        if bundle is None:
            raise ValueError(
                "storage='stream' needs a bundle-backed graph; load one "
                "with repro.graph.load_graph_bundle (CLI: --graph-bundle)"
            )
        path = bundle.path
        if not has_entropy_sidecar(path):
            save_entropy_sidecar(
                path,
                RelativeEntropy.from_graph(
                    graph,
                    lam=self.config.lam,
                    embedding=self.config.embedding,
                    max_profile_len=self.config.max_profile_len,
                    rng=rng,
                    structural_mode=self.config.structural_mode,
                ),
            )
        meta = entropy_sidecar_meta(path)
        if (
            meta["lam"] != self.config.lam
            or meta["structural_mode"] != self.config.structural_mode
        ):
            raise ValueError(
                f"entropy sidecar at {path!r} was built with lam="
                f"{meta['lam']}, structural_mode={meta['structural_mode']!r}"
                f" but the config asks for lam={self.config.lam}, "
                f"structural_mode={self.config.structural_mode!r}; delete "
                "the sidecar or align the config"
            )
        return ScreenStateLoader(path, max_candidates=self.config.max_candidates)

    def _build_model(self, graph: Graph, rng: np.random.Generator) -> GNNBackbone:
        return build_backbone(
            self.backbone_name,
            graph.num_features,
            graph.num_classes,
            hidden=self.config.hidden,
            dropout=self.config.dropout,
            rng=rng,
        )

    # ------------------------------------------------------------------
    def fit(
        self,
        graph: Graph,
        split: Split,
        sequences: Optional[EntropySequences] = None,
        shuffle_sequences: bool = False,
        train_baseline: bool = True,
        initial_model: Optional[GNNBackbone] = None,
    ) -> RareResult:
        """Run Algorithm 1 and evaluate on ``split.test``.

        ``sequences`` may be supplied to reuse a precomputed entropy ranking
        across splits (the paper computes entropy once per dataset);
        ``shuffle_sequences`` activates the "without relative entropy"
        ablation.  ``initial_model`` warm-starts co-training from an
        already trained backbone instead of a fresh build — the temporal
        driver passes the previous snapshot's co-trained model here (the
        baseline and the final evaluation model are always fresh, so the
        reported accuracies stay comparable across snapshots).  The whole run executes under the configured tensor
        backend (``RareConfig.tensor_backend``), scoped so concurrent or
        subsequent runs keep their own choice.

        Observability: if a telemetry session is already ambient
        (:func:`repro.telemetry.use_telemetry`) the run records into it;
        otherwise ``RareConfig.telemetry`` may open one for the duration
        of this call (closed — and its JSONL stream flushed — before
        returning).  Under an enabled session the active tensor backend
        is wrapped in an :class:`InstrumentedBackend`, so per-kernel call
        counts and timings come for free; with telemetry off the backend
        is used bare and no instrumentation runs.
        """
        tel = get_telemetry()
        opened = False
        if not tel.enabled and self.config.telemetry:
            tel = telemetry_from_spec(
                self.config.telemetry,
                run=f"GraphRARE.fit[{self.backbone_name}]",
            )
            opened = tel.enabled
        backend = resolve_backend(self.config.tensor_backend)
        if tel.enabled:
            backend = InstrumentedBackend(backend, tel)
        try:
            with use_telemetry(tel), use_backend(backend):
                with tel.span("rare.fit", backbone=self.backbone_name):
                    return self._fit(
                        graph, split, sequences, shuffle_sequences,
                        train_baseline, initial_model,
                    )
        finally:
            if opened:
                tel.close()

    def _fit(
        self,
        graph: Graph,
        split: Split,
        sequences: Optional[EntropySequences],
        shuffle_sequences: bool,
        train_baseline: bool,
        initial_model: Optional[GNNBackbone] = None,
    ) -> RareResult:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        entropy_seconds = 0.0
        if sequences is None:
            sequences, entropy_seconds = self._prepare_sequences(
                graph, rng, shuffle=shuffle_sequences
            )

        tel = get_telemetry()

        # --- baseline: the untouched backbone on the original topology ---
        baseline_test_acc = float("nan")
        if train_baseline:
            with tel.span("rare.baseline"):
                baseline_model = self._build_model(graph, rng)
                baseline_trainer = Trainer(
                    baseline_model, lr=cfg.gnn_lr,
                    weight_decay=cfg.gnn_weight_decay,
                )
                baseline_test_acc = baseline_trainer.fit(
                    graph, split, epochs=cfg.final_epochs,
                    patience=cfg.final_patience,
                ).test_acc

        # --- co-training (Algorithm 1, lines 7-18) ------------------------
        model = (
            initial_model if initial_model is not None
            else self._build_model(graph, rng)
        )
        trainer = Trainer(model, lr=cfg.gnn_lr, weight_decay=cfg.gnn_weight_decay)
        # Warm start so early rewards are informative.
        trainer.fit(graph, split, epochs=cfg.co_train_epochs,
                    patience=cfg.co_train_patience)

        policy = NodePolicy(
            obs_dim=OBS_DIM, hidden=cfg.policy_hidden, rng=rng
        )
        agent = build_agent(cfg.rl_algorithm, policy, cfg.ppo, rng=rng)

        accuracy_curve: List[float] = []
        homophily_curve: List[float] = []
        episode_rewards: List[float] = []
        # The original topology is the starting candidate: a rewired graph
        # must beat it on validation accuracy to be selected (the paper
        # launches testing at the validation-accuracy maximum, Sec. V-C).
        best_val, _ = evaluate(model, graph, split.val)
        best_graph = graph

        if cfg.num_envs > 1:
            # Vectorized path: each iteration collects num_envs complete
            # episodes as one batched rollout (the horizon-length vector
            # rollout ends every episode exactly at the boundary), so the
            # episode budget rounds up to a multiple of num_envs and the
            # per-iteration curves have ceil(episodes / num_envs) entries
            # (documented on RareConfig.num_envs).
            from ..rl.vector.topology import VecTopologyEnv

            env = VecTopologyEnv(
                graph, sequences, model, trainer, split, cfg,
                num_envs=cfg.num_envs, seed=cfg.seed,
            )
            iterations = -(-cfg.episodes // cfg.num_envs)
            for _ in range(iterations):
                buffer = agent.collect_vectorized_rollout(env, cfg.horizon)
                stats = agent.update(buffer)
                episode_rewards.append(stats.mean_reward)

                # Dedupe by identity (Graph is unhashable): after autoreset
                # every slot holds the base graph again, so the distinct
                # candidates are usually just {best_graph, base_graph}.
                seen_ids = set()
                for candidate in (env.best_graph, *env.current_graphs):
                    if id(candidate) in seen_ids:
                        continue
                    seen_ids.add(id(candidate))
                    val_acc, _ = evaluate(model, candidate, split.val)
                    if val_acc > best_val:
                        best_val = val_acc
                        best_graph = candidate
                lead = env.current_graphs[0]
                val_acc, _ = evaluate(model, lead, split.val)
                accuracy_curve.append(val_acc)
                homophily_curve.append(homophily_ratio(lead))
        else:
            env = TopologyEnv(graph, sequences, model, trainer, split, cfg,
                              seed=cfg.seed)
            for _ in range(cfg.episodes):
                buffer = agent.collect_rollout(env, cfg.horizon)
                stats = agent.update(buffer)
                episode_rewards.append(stats.mean_reward)

                for candidate in (env.current_graph, env.best_graph):
                    val_acc, _ = evaluate(model, candidate, split.val)
                    if val_acc > best_val:
                        best_val = val_acc
                        best_graph = candidate
                val_acc, _ = evaluate(model, env.current_graph, split.val)
                accuracy_curve.append(val_acc)
                homophily_curve.append(homophily_ratio(env.current_graph))

        # --- final training on the optimised topology ---------------------
        # A fresh model isolates the quality of the *topology*: the
        # co-trained network has passed through many intermediate graphs
        # and its optimiser state reflects them.
        with tel.span("rare.final"):
            final_model = self._build_model(
                graph, np.random.default_rng(cfg.seed)
            )
            final_trainer = Trainer(
                final_model, lr=cfg.gnn_lr, weight_decay=cfg.gnn_weight_decay
            )
            final = final_trainer.fit(
                best_graph, split, epochs=cfg.final_epochs,
                patience=cfg.final_patience,
            )

        return RareResult(
            test_acc=final.test_acc,
            val_acc=final.val_acc,
            baseline_test_acc=baseline_test_acc,
            original_homophily=homophily_ratio(graph),
            optimized_homophily=homophily_ratio(best_graph),
            optimized_graph=best_graph,
            entropy_seconds=entropy_seconds,
            accuracy_curve=accuracy_curve,
            homophily_curve=homophily_curve,
            episode_rewards=episode_rewards,
            co_trained_model=model,
        )
