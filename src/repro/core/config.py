"""Configuration for the GraphRARE framework."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rl import PPOConfig


@dataclass
class RareConfig:
    """All knobs of the GraphRARE co-training loop (Secs. IV-B, IV-C, V-C).

    Defaults follow the paper where it is explicit (lambda = 1.0, ternary
    actions with delta-k = 1, PPO with an MLP policy, Adam with lr 0.05 and
    weight decay 5e-5) and use modest budgets elsewhere so the loop runs on
    CPU.
    """

    # --- relative entropy (Sec. IV-A) ---------------------------------
    lam: float = 1.0
    """Weight of the structural entropy in Eq. 9 (Table IV sweeps this)."""
    embedding: str = "normalize"
    """Feature embedding ``phi`` for Eq. 3."""
    structural_mode: str = "js"
    """``"js"`` (paper, Eq. 7-8) or ``"kl"`` ([50]'s unbounded variant,
    kept for the DESIGN.md entropy ablation)."""
    max_candidates: int = 16
    """Remote candidates retained per node in the entropy sequence."""
    max_profile_len: int | None = 64
    """Truncation of degree profiles (Eq. 5) on heavy-tailed graphs."""
    screening: str = "auto"
    """Candidate engine for the entropy-sequence build: ``"off"`` scores
    every pair with the dense tiled kernel, ``"on"`` the certified
    screen-then-rescore engine (same rankings away from exact value ties,
    an order of magnitude faster at large N), ``"auto"`` switches the
    screen on from :data:`repro.entropy.SCREEN_AUTO_MIN` nodes."""
    num_workers: int = 1
    """Worker-pool width for the sharded entropy build; every worker count
    returns byte-identical sequences (row-range merge)."""

    # --- topology optimisation (Sec. IV-B) ----------------------------
    k_max: int = 8
    """Upper bound for per-node added-edge counts ``k_v``."""
    d_max: int = 8
    """Upper bound for per-node deleted-edge counts ``d_v``."""
    add_edges: bool = True
    """Disable for the Table V 'GCN-RARE-remove' ablation."""
    remove_edges: bool = True
    """Disable for the Table V 'GCN-RARE-add' ablation."""

    # --- reward (Eq. 11) ------------------------------------------------
    lambda_r: float = 1.0
    """Mixing weight between the accuracy and loss deltas."""
    reward: str = "acc_loss"
    """``"acc_loss"`` (Eq. 11) or ``"auc"`` (Table V reward ablation)."""
    incremental_reward: bool = False
    """Score per-step rewards through the incremental engine
    (:mod:`repro.gnn.incremental`): cached propagation matrices are
    delta-patched instead of rebuilt and the GNN re-evaluates only the
    rewire's halo — a per-backbone row set derived from the receptive
    field (2-hop for GCN/GraphSAGE/GAT, ``2K``-reach for H2GCN's K
    rounds, 4-hop for MixHop) — against cached base-graph logits.  Equal
    to the dense evaluation at float64 resolution (byte-identical off the
    halo; see ``docs/equivalence-policy.md``).  ``False`` (default) keeps
    the full-graph evaluation as the reference twin; backbones without an
    incremental plan fall back to it transparently."""
    max_halo_frac: float = 0.5
    """Halo size (as a fraction of the nodes) above which the incremental
    engine falls back to the dense evaluation for a step: row slicing
    stops paying off once most of the graph is dirty.  Plans with a
    state-reusing dense path (GAT) still evaluate from the cached
    per-model-version state on fallback."""

    rewire_memo_entries: int = 64
    """Bound of the per-env ``(k, d)`` -> Graph rewire memo
    (:class:`repro.core.lru.LRUCache`).  Each entry pins a Graph plus its
    cached propagation matrices; the vectorized env scales the bound by
    ``num_envs``, and the serving layer reuses the same knob for its
    per-session caches."""

    # --- co-training loop (Algorithm 1) --------------------------------
    episodes: int = 6
    """PPO episodes; each episode is ``horizon`` topology steps."""
    horizon: int = 8
    """Steps per episode of the finite-horizon MDP."""
    co_train_epochs: int = 8
    """'a few more epochs' of GNN training when accuracy improves."""
    co_train_patience: int = 4
    """Early-stopping patience inside a co-training burst."""
    final_epochs: int = 100
    """Final GNN training budget on the best discovered topology."""
    final_patience: int = 20

    # --- GNN optimisation (Sec. V-C) -----------------------------------
    gnn_lr: float = 0.05
    gnn_weight_decay: float = 5e-5
    hidden: int = 64
    dropout: float = 0.5

    # --- RL agent --------------------------------------------------------
    rl_algorithm: str = "ppo"
    """``"ppo"`` (the paper's choice), ``"a2c"`` or ``"reinforce"`` — the
    paper notes other RL algorithms "can also be conveniently applied"."""
    ppo: PPOConfig = field(default_factory=PPOConfig)
    """Agent hyper-parameters; overlapping fields are translated when a
    non-PPO algorithm is selected (see ``repro.rl.build_agent``)."""
    policy_hidden: int = 64
    num_envs: int = 1
    """Parallel episodes per rollout.  ``1`` keeps the sequential
    :class:`~repro.core.env.TopologyEnv` reference path; ``> 1`` collects
    trajectories through the vectorized
    :class:`~repro.rl.vector.VecTopologyEnv` (PPO/A2C only).  Each
    vectorized iteration completes ``num_envs`` whole episodes, so the
    effective episode budget rounds :attr:`episodes` *up* to the next
    multiple of ``num_envs`` (and the per-iteration reward/accuracy curves
    have ``ceil(episodes / num_envs)`` entries)."""

    # --- execution substrate -------------------------------------------
    telemetry: str | None = None
    """Observability session for the run (:mod:`repro.telemetry`).
    ``None`` (default) keeps telemetry fully off — every instrumentation
    point is a single attribute check and no state is recorded.  ``"on"``
    (or ``"memory"``) records spans and metrics in memory, available
    afterwards through the session's ``report()``/``snapshot()``.  Any
    other string is a path: the run additionally streams a JSONL event
    log there (schema in ``docs/observability.md``; render it with
    ``repro stats <path>``).  When the caller already entered a session
    via :func:`repro.telemetry.use_telemetry`, that ambient session wins
    and this field is ignored."""
    storage: str = "ram"
    """Where the entropy screen reads the graph from.  ``"ram"``
    (default) builds the screen state in memory — the historical path.
    ``"stream"`` requires a bundle-backed graph
    (:func:`repro.graph.storage.load_graph_bundle`): shard workers
    stream their row ranges straight from the bundle's entropy sidecar
    (written on first use) instead of receiving pickled arrays, so peak
    RSS tracks one shard's working set rather than the graph.  Outputs
    are byte-identical between the two modes for every worker count and
    executor."""
    tensor_backend: str = "numpy"
    """Kernel backend for the tensor substrate
    (:mod:`repro.tensor.backends`): ``"numpy"`` (default) is the
    byte-identical reference every equivalence contract is written
    against; ``"accel"`` requests the numba-JIT kernels (allclose to the
    reference; falls back to numpy with a warning when numba is not
    installed); ``"auto"`` uses the accelerated backend when available
    and the reference otherwise, silently.  The choice is scoped to the
    run (``GraphRARE.fit`` activates it via
    :func:`repro.tensor.use_backend`), never set globally."""

    stream: "StreamConfig | None" = None  # noqa: F821 - lazy import below
    """Live edge churn (:mod:`repro.stream`).  ``None`` (default) keeps
    the classical static-graph setting.  A
    :class:`~repro.stream.StreamConfig` makes the environment fold
    ``events_per_step`` external add/remove edge events into the base
    topology at the start of every MDP step, interleaved with the
    agent's own rewires — both delta sources collapse to one shared
    root so propagation caches and rewire memos stay valid, with a
    bitwise-verified rebase above ``rebase_threshold`` dirty nodes.
    See ``docs/streaming.md``."""

    seed: int = 0

    def __post_init__(self) -> None:
        if self.lam < 0:
            raise ValueError(f"lam must be non-negative, got {self.lam}")
        if self.k_max < 0 or self.d_max < 0:
            raise ValueError("k_max and d_max must be non-negative")
        if self.k_max > self.max_candidates:
            raise ValueError(
                f"k_max ({self.k_max}) cannot exceed max_candidates "
                f"({self.max_candidates})"
            )
        if self.reward not in ("acc_loss", "auc"):
            raise ValueError(f"unknown reward {self.reward!r}")
        if self.screening not in ("auto", "on", "off"):
            raise ValueError(
                f"screening must be 'auto', 'on' or 'off', got {self.screening!r}"
            )
        if self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.rewire_memo_entries < 1:
            raise ValueError(
                f"rewire_memo_entries must be >= 1, got "
                f"{self.rewire_memo_entries}"
            )
        if not 0.0 <= self.max_halo_frac <= 1.0:
            raise ValueError(
                f"max_halo_frac must be in [0, 1], got {self.max_halo_frac}"
            )
        if self.telemetry is not None and (
            not isinstance(self.telemetry, str) or not self.telemetry
        ):
            raise ValueError(
                "telemetry must be None, 'on'/'memory', 'off' or a JSONL "
                f"path string, got {self.telemetry!r}"
            )
        if self.storage not in ("ram", "stream"):
            raise ValueError(
                f"storage must be 'ram' or 'stream', got {self.storage!r}"
            )
        if self.tensor_backend not in ("numpy", "accel", "auto"):
            raise ValueError(
                f"tensor_backend must be 'numpy', 'accel' or 'auto', "
                f"got {self.tensor_backend!r}"
            )
        from ..rl import AGENTS

        if self.rl_algorithm.lower() not in AGENTS:
            raise ValueError(
                f"unknown rl_algorithm {self.rl_algorithm!r}; "
                f"choose from {sorted(AGENTS)}"
            )
        if self.stream is not None:
            from ..stream.config import StreamConfig

            if not isinstance(self.stream, StreamConfig):
                raise ValueError(
                    "stream must be None or a repro.stream.StreamConfig, "
                    f"got {self.stream!r}"
                )
            self.stream.validate()
        if not (self.add_edges or self.remove_edges):
            raise ValueError("at least one of add_edges/remove_edges must be on")
        if self.horizon < 1 or self.episodes < 1:
            raise ValueError("horizon and episodes must be >= 1")
        if self.num_envs < 1:
            raise ValueError(f"num_envs must be >= 1, got {self.num_envs}")
        if self.num_envs > 1 and self.rl_algorithm.lower() == "reinforce":
            raise ValueError(
                "num_envs > 1 requires an agent with a vectorized rollout "
                "path (ppo or a2c); reinforce collects sequentially"
            )
