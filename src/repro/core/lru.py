"""One shared bounded-LRU mapping with hit/miss/eviction accounting.

Every layer that memoises expensive derived objects — the ``(k, d)``
rewire memos of :class:`~repro.core.env.TopologyEnv` and
:class:`~repro.rl.vector.VecTopologyEnv`, the serving layer's
per-session caches (:mod:`repro.serve`) — shares this one
implementation instead of re-growing ``OrderedDict`` + counter
boilerplate per call site.  Semantics:

* **True LRU** — :meth:`LRUCache.get` refreshes the entry's recency on a
  hit, so hot keys survive even when they were inserted early;
  :meth:`LRUCache.put` evicts from the least-recently-used end until the
  population is below the capacity.
* **Exact accounting** — hits, misses and evictions are counted in
  per-instance telemetry :class:`~repro.telemetry.Counter` objects
  behind a read-only :class:`~repro.telemetry.StatsView` (``.stats``),
  and optionally mirrored into the active telemetry session under
  ``<counter_prefix>.{hits,misses,evictions}`` so fleet-wide aggregates
  come for free.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterator, Optional

from ..telemetry import Counter, StatsView, Telemetry, get_telemetry

__all__ = ["LRUCache"]


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    Parameters
    ----------
    capacity:
        Default maximum population; :meth:`put` accepts a per-call
        override so callers that expose a mutable limit attribute (the
        envs' ``REWIRE_CACHE_LIMIT``) stay honest without rebuilding the
        cache.
    counter_prefix:
        When given, every hit/miss/eviction is also mirrored into the
        telemetry session active *at construction* as
        ``<prefix>.hits`` / ``.misses`` / ``.evictions`` — the pattern
        the env rewire memos established.
    tel:
        The telemetry session to mirror into; defaults to the session
        ambient at construction time (:func:`repro.telemetry.get_telemetry`).

    Examples
    --------
    >>> cache = LRUCache(2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")          # hit: "a" becomes most-recent
    1
    >>> cache.put("c", 3)       # evicts "b", the LRU entry
    >>> cache.get("b") is None
    True
    >>> dict(cache.stats)
    {'hits': 1, 'misses': 1, 'evictions': 1}
    """

    def __init__(
        self,
        capacity: int,
        counter_prefix: Optional[str] = None,
        tel: Optional[Telemetry] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._prefix = counter_prefix
        self._tel = tel if tel is not None else get_telemetry()
        self._counters = {
            key: Counter(
                f"{counter_prefix}.{key}" if counter_prefix else key
            )
            for key in ("hits", "misses", "evictions")
        }
        self.stats = StatsView(self._counters)

    # ------------------------------------------------------------------
    def _count(self, key: str) -> None:
        self._counters[key].inc()
        if self._prefix is not None:
            self._tel.count(f"{self._prefix}.{key}")

    @property
    def hits(self) -> int:
        """Total lookups that found their key."""
        return self._counters["hits"].value

    @property
    def misses(self) -> int:
        """Total lookups that came back empty."""
        return self._counters["misses"].value

    @property
    def evictions(self) -> int:
        """Total entries dropped at the capacity bound."""
        return self._counters["evictions"].value

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value (refreshing its recency), or ``default``.

        Counts exactly one hit or one miss; use :meth:`peek` for
        accounting-free inspection.
        """
        try:
            value = self._data[key]
        except KeyError:
            self._count("misses")
            return default
        self._count("hits")
        self._data.move_to_end(key)
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """The cached value without recency refresh or accounting."""
        return self._data.get(key, default)

    def put(
        self, key: Hashable, value: Any, capacity: Optional[int] = None
    ) -> Any:
        """Insert (or refresh) ``key`` and evict down to the bound.

        ``capacity`` overrides the instance default for this call —
        eviction drops least-recently-used entries while the population
        is at or above it, matching the env memos' "evict before
        insert" discipline so the population never exceeds the bound.
        Returns ``value`` for call-chaining.
        """
        bound = self.capacity if capacity is None else int(capacity)
        if key in self._data:
            self._data.move_to_end(key)
            self._data[key] = value
            return value
        while len(self._data) >= max(bound, 1):
            self._data.popitem(last=False)
            self._count("evictions")
        self._data[key] = value
        return value

    def pop(self, key: Hashable, default: Any = None) -> Any:
        """Remove and return ``key``'s value (no hit/miss accounting)."""
        return self._data.pop(key, default)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._data.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[Hashable]:
        """Keys in recency order (least-recently-used first)."""
        return iter(self._data)

    def __repr__(self) -> str:
        return (
            f"LRUCache(len={len(self._data)}, capacity={self.capacity}, "
            f"stats={dict(self.stats)})"
        )
