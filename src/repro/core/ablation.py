"""Ablation variants of GraphRARE (Table V and Fig. 5).

Each function swaps out exactly one component:

* :func:`fixed_kd` — the same ``(k, d)`` for every node (the Fig. 5 grid);
* :func:`random_kd` — per-node ``k_v, d_v`` drawn uniformly from ``[0, c]``
  (Table V rows ``GCN-RE[0..c]``);
* shuffled entropy sequences (``GCN-RA``) are reached through
  ``GraphRARE.fit(..., shuffle_sequences=True)``;
* add-only / remove-only (``GCN-RARE-add`` / ``GCN-RARE-remove``) via
  :class:`RareConfig` flags;
* the AUC reward (``GCN-RARE-reward``) via ``RareConfig(reward="auc")``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..entropy import EntropySequences, RelativeEntropy, build_entropy_sequences
from ..gnn import Trainer, build_backbone
from ..graph import Graph, Split
from .config import RareConfig
from .rewire import clamp_state, rewire_graph


def _sequences_for(
    graph: Graph, config: RareConfig, rng: np.random.Generator
) -> EntropySequences:
    entropy = RelativeEntropy.from_graph(
        graph,
        lam=config.lam,
        embedding=config.embedding,
        max_profile_len=config.max_profile_len,
        rng=rng,
        structural_mode=config.structural_mode,
    )
    return build_entropy_sequences(
        graph,
        entropy,
        max_candidates=config.max_candidates,
        rng=rng,
        screening=config.screening,
        num_workers=config.num_workers,
    )


def _train_on_rewired(
    graph: Graph,
    split: Split,
    backbone: str,
    config: RareConfig,
    k: np.ndarray,
    d: np.ndarray,
    sequences: EntropySequences,
    rng: np.random.Generator,
) -> float:
    """Train ``backbone`` on the statically rewired graph; return test acc."""
    k, d = clamp_state(k, d, graph, sequences, config.max_candidates, 10**9)
    rewired = rewire_graph(
        graph, sequences, k, d,
        add_edges=config.add_edges, remove_edges=config.remove_edges,
    )
    model = build_backbone(
        backbone,
        graph.num_features,
        graph.num_classes,
        hidden=config.hidden,
        dropout=config.dropout,
        rng=rng,
    )
    trainer = Trainer(model, lr=config.gnn_lr, weight_decay=config.gnn_weight_decay)
    return trainer.fit(
        graph=rewired,
        split=split,
        epochs=config.final_epochs,
        patience=config.final_patience,
    ).test_acc


def fixed_kd(
    graph: Graph,
    split: Split,
    backbone: str = "gcn",
    k: int = 3,
    d: int = 1,
    config: Optional[RareConfig] = None,
    sequences: Optional[EntropySequences] = None,
) -> float:
    """GraphRARE with a *uniform* fixed ``(k, d)`` instead of the DRL agent.

    This is the heatmap cell of Fig. 5: every node adds its top-``k`` remote
    candidates and drops its ``d`` worst neighbours.
    """
    config = config or RareConfig(max_candidates=max(16, k))
    rng = np.random.default_rng(config.seed)
    if sequences is None:
        sequences = _sequences_for(graph, config, rng)
    n = graph.num_nodes
    return _train_on_rewired(
        graph, split, backbone, config,
        np.full(n, k), np.full(n, d), sequences, rng,
    )


def random_kd(
    graph: Graph,
    split: Split,
    backbone: str = "gcn",
    max_value: int = 5,
    config: Optional[RareConfig] = None,
    sequences: Optional[EntropySequences] = None,
) -> float:
    """Table V's ``GCN-RE[0..max_value]``: random per-node ``k_v, d_v``.

    Keeps the entropy ranking but replaces the learned per-node counts with
    uniform draws — isolating the DRL module's contribution.
    """
    config = config or RareConfig(max_candidates=max(16, max_value))
    rng = np.random.default_rng(config.seed)
    if sequences is None:
        sequences = _sequences_for(graph, config, rng)
    n = graph.num_nodes
    k = rng.integers(0, max_value + 1, size=n)
    d = rng.integers(0, max_value + 1, size=n)
    return _train_on_rewired(graph, split, backbone, config, k, d, sequences, rng)


def fixed_kd_grid(
    graph: Graph,
    split: Split,
    backbone: str = "gcn",
    k_values=(0, 1, 2, 3),
    d_values=(0, 1, 2, 3),
    config: Optional[RareConfig] = None,
) -> np.ndarray:
    """The full Fig. 5 heatmap: test accuracy for each fixed ``(k, d)``.

    Returns an array of shape ``(len(k_values), len(d_values))`` whose
    ``[i, j]`` entry is the accuracy with ``k = k_values[i]`` and
    ``d = d_values[j]``; the entropy ranking is computed once and shared.
    """
    config = config or RareConfig(max_candidates=max(16, *k_values))
    rng = np.random.default_rng(config.seed)
    sequences = _sequences_for(graph, config, rng)
    grid = np.zeros((len(k_values), len(d_values)))
    for i, k in enumerate(k_values):
        for j, d in enumerate(d_values):
            grid[i, j] = fixed_kd(
                graph, split, backbone, k=k, d=d,
                config=config, sequences=sequences,
            )
    return grid
