"""Legacy setup shim: the offline environment lacks the `wheel` package,
so `pip install -e .` (PEP 660) cannot build; `python setup.py develop`
installs the package in editable mode instead."""

from setuptools import setup

setup()
