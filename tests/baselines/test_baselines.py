"""Tests for the heterophily baselines."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_NAMES,
    baseline_names,
    build_baseline,
    cosine_knn_adjacency,
    homophily_weighted_matrix,
    latent_positions,
    propagate_labels,
    relation_matrices,
)
from repro.datasets import planted_partition_graph
from repro.gnn import train_backbone
from repro.graph import random_split
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def setup():
    graph = planted_partition_graph(
        num_nodes=50, num_classes=3, homophily=0.3,
        feature_signal=0.5, num_features=48, seed=0,
    )
    split = random_split(graph.labels, np.random.default_rng(0))
    return graph, split


# ---------------------------------------------------------------------------
# kNN graph
# ---------------------------------------------------------------------------
def test_knn_adjacency_symmetric_no_selfloops(setup):
    graph, _ = setup
    adj = cosine_knn_adjacency(graph.features, k=4)
    dense = adj.toarray()
    np.testing.assert_allclose(dense, dense.T)
    np.testing.assert_allclose(np.diag(dense), 0)


def test_knn_adjacency_min_degree(setup):
    graph, _ = setup
    adj = cosine_knn_adjacency(graph.features, k=4)
    deg = np.asarray(adj.sum(axis=1)).ravel()
    assert (deg >= 4).all()  # symmetrisation can only add edges


def test_knn_adjacency_prefers_same_class(setup):
    graph, _ = setup
    adj = cosine_knn_adjacency(graph.features, k=4).tocoo()
    same = graph.labels[adj.row] == graph.labels[adj.col]
    base = max(np.bincount(graph.labels)) / graph.num_nodes
    assert same.mean() > base


def test_knn_invalid_k(setup):
    graph, _ = setup
    with pytest.raises(ValueError):
        cosine_knn_adjacency(graph.features, k=0)


# ---------------------------------------------------------------------------
# Geom-GCN pieces
# ---------------------------------------------------------------------------
def test_latent_positions_shape(setup):
    graph, _ = setup
    pos = latent_positions(graph.features)
    assert pos.shape == (graph.num_nodes, 2)


def test_relation_matrices_partition_edges(setup):
    graph, _ = setup
    mats = relation_matrices(graph)
    assert len(mats) == 4
    total = sum(int(m.nnz) for m in mats)
    assert total == 2 * graph.num_edges  # both directions, exactly once


# ---------------------------------------------------------------------------
# HOG-GCN pieces
# ---------------------------------------------------------------------------
def test_propagate_labels_rows_normalised(setup):
    graph, split = setup
    soft = propagate_labels(graph, split.train)
    np.testing.assert_allclose(soft.sum(axis=1), np.ones(graph.num_nodes), atol=1e-8)
    # Labelled nodes stay one-hot.
    train_soft = soft[split.train]
    assert (train_soft.max(axis=1) == 1.0).all()


def test_homophily_matrix_row_normalised(setup):
    graph, split = setup
    mat = homophily_weighted_matrix(graph, split.train)
    sums = np.asarray(mat.sum(axis=1)).ravel()
    nz = sums > 0
    np.testing.assert_allclose(sums[nz], 1.0, atol=1e-8)


# ---------------------------------------------------------------------------
# Registry + forward passes
# ---------------------------------------------------------------------------
def test_baseline_names_cover_table3():
    names = baseline_names()
    assert len(names) == 13
    assert names[0] == "mlp"


@pytest.mark.parametrize("name", BASELINE_NAMES + ["mi_gcn", "nl_gnn", "gpnn"])
def test_baseline_forward_shape(setup, name):
    graph, split = setup
    model = build_baseline(name, graph, split, hidden=16,
                           rng=np.random.default_rng(0))
    model.eval()
    out = model(graph, Tensor(graph.features))
    assert out.shape == (graph.num_nodes, graph.num_classes)


@pytest.mark.parametrize("name", BASELINE_NAMES + ["mi_gcn", "nl_gnn", "gpnn"])
def test_baseline_parameters_receive_gradients(setup, name):
    graph, split = setup
    model = build_baseline(name, graph, split, hidden=16,
                           rng=np.random.default_rng(0))
    model.eval()
    out = model(graph, Tensor(graph.features))
    out.sum().backward()
    grads = [p.grad is not None for _, p in model.named_parameters()]
    assert any(grads)


def test_hog_gcn_requires_split(setup):
    graph, _ = setup
    with pytest.raises(ValueError, match="split"):
        build_baseline("hog_gcn", graph)


def test_unknown_baseline(setup):
    graph, split = setup
    with pytest.raises(ValueError, match="unknown baseline"):
        build_baseline("gpt", graph, split)


def test_simp_gcn_trains(setup):
    graph, split = setup
    model = build_baseline("simp_gcn", graph, split, hidden=32,
                           rng=np.random.default_rng(0))
    result = train_backbone(model, graph, split, epochs=40)
    assert result.test_acc > 0.4


def test_mi_gcn_rewiring_cached(setup):
    graph, split = setup
    model = build_baseline("mi_gcn", graph, split, hidden=16,
                           rng=np.random.default_rng(0))
    model.eval()
    model(graph, Tensor(graph.features))
    keys = [k for k in graph.cache if k.startswith("migcn_rewired")]
    assert keys
    rewired = graph.cache[keys[0]]
    assert rewired.edges != graph.edges
