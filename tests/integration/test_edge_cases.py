"""Failure-injection and edge-case tests across the full pipeline.

These cover degenerate inputs a downstream user will eventually feed the
library: isolated nodes, near-empty graphs, saturated budgets, single-split
tiny classes, and exhausted candidate pools.
"""

import numpy as np
import pytest

from repro.core import GraphRARE, RareConfig, rewire_graph
from repro.datasets import planted_partition_graph
from repro.entropy import RelativeEntropy, build_entropy_sequences
from repro.gnn import build_backbone, train_backbone
from repro.graph import Graph, random_split


def tiny_cfg(**kw):
    base = dict(
        k_max=3, d_max=3, max_candidates=6, episodes=1, horizon=2,
        co_train_epochs=2, final_epochs=15, final_patience=5, seed=0,
    )
    base.update(kw)
    return RareConfig(**base)


def test_graph_with_isolated_nodes_trains():
    rng = np.random.default_rng(0)
    graph = Graph(
        20,
        [(0, 1), (1, 2), (3, 4)],  # nodes 5..19 isolated
        features=rng.random((20, 8)),
        labels=rng.integers(0, 2, 20),
    )
    split = random_split(graph.labels, rng)
    model = build_backbone("gcn", 8, 2, hidden=8, rng=rng)
    result = train_backbone(model, graph, split, epochs=10)
    assert np.isfinite(result.test_acc)


def test_rare_on_graph_with_isolated_nodes():
    rng = np.random.default_rng(0)
    graph = Graph(
        24,
        [(i, i + 1) for i in range(10)],
        features=rng.random((24, 12)),
        labels=np.array([0, 1] * 12),
    )
    split = random_split(graph.labels, rng)
    result = GraphRARE("gcn", tiny_cfg()).fit(graph, split, train_baseline=False)
    assert 0.0 <= result.test_acc <= 1.0


def test_entropy_on_near_empty_graph():
    rng = np.random.default_rng(0)
    graph = Graph(10, [(0, 1)], features=rng.random((10, 4)),
                  labels=rng.integers(0, 2, 10))
    entropy = RelativeEntropy.from_graph(graph)
    seqs = build_entropy_sequences(graph, entropy, max_candidates=4)
    assert np.isfinite(entropy.row(0)).all()
    assert seqs.num_nodes == 10


def test_rewire_with_saturated_budgets():
    """k and d far beyond feasibility must clamp, not crash."""
    graph = planted_partition_graph(num_nodes=20, seed=0)
    entropy = RelativeEntropy.from_graph(graph)
    seqs = build_entropy_sequences(graph, entropy, max_candidates=5)
    n = graph.num_nodes
    out = rewire_graph(graph, seqs, np.full(n, 5), graph.degrees())
    # Deleting every neighbour and adding all candidates stays valid.
    adj = out.adjacency().toarray()
    assert np.allclose(adj, adj.T)


def test_complete_graph_has_no_remote_candidates():
    n = 6
    rng = np.random.default_rng(0)
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    graph = Graph(n, edges, features=rng.random((n, 4)),
                  labels=rng.integers(0, 2, n))
    entropy = RelativeEntropy.from_graph(graph)
    seqs = build_entropy_sequences(graph, entropy, max_candidates=4)
    for v in range(n):
        assert len(seqs.top_remote(v, 4)) == 0
    # Rewiring with only additions is then the identity.
    out = rewire_graph(graph, seqs, np.full(n, 4), np.zeros(n, int),
                       remove_edges=False)
    assert out.edges == graph.edges


def test_two_node_graph_end_to_end():
    rng = np.random.default_rng(0)
    graph = Graph(4, [(0, 1), (2, 3)], features=np.eye(4),
                  labels=np.array([0, 0, 1, 1]))
    split = random_split(graph.labels, rng)
    model = build_backbone("gcn", 4, 2, hidden=4, rng=rng)
    result = train_backbone(model, graph, split, epochs=5)
    assert np.isfinite(result.test_acc)


def test_mlp_policy_handles_one_node_observation():
    from repro.rl import NodePolicy

    policy = NodePolicy(obs_dim=6, hidden=8, rng=np.random.default_rng(0))
    action, log_prob, value = policy.act(np.zeros((1, 6)),
                                         np.random.default_rng(0))
    assert action.shape == (2,)
    assert np.isfinite(log_prob)


def test_single_feature_dimension():
    rng = np.random.default_rng(0)
    graph = Graph(12, [(i, (i + 1) % 12) for i in range(12)],
                  features=rng.random((12, 1)),
                  labels=rng.integers(0, 2, 12))
    entropy = RelativeEntropy.from_graph(graph)
    assert np.isfinite(entropy.matrix()).all()


def test_constant_features_do_not_crash():
    graph = Graph(8, [(i, (i + 1) % 8) for i in range(8)],
                  features=np.ones((8, 4)),
                  labels=np.array([0, 1] * 4))
    entropy = RelativeEntropy.from_graph(graph)
    row = entropy.row(0)
    assert np.isfinite(row).all()
    # All pairs identical features: the feature term is constant.
    hf = entropy.feature_row(0)
    np.testing.assert_allclose(hf, hf[0])


def test_horizon_one_episode_one():
    graph = planted_partition_graph(num_nodes=30, feature_signal=0.4,
                                    num_features=24, seed=0)
    split = random_split(graph.labels, np.random.default_rng(0))
    result = GraphRARE("gcn", tiny_cfg(episodes=1, horizon=1)).fit(
        graph, split, train_baseline=False
    )
    assert 0.0 <= result.test_acc <= 1.0
