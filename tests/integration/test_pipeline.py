"""Cross-module integration tests: full pipelines exercised end to end."""

import numpy as np
import pytest

from repro import (
    GraphRARE,
    RareConfig,
    build_backbone,
    geom_gcn_splits,
    homophily_ratio,
    load_dataset,
    train_backbone,
)
from repro.baselines import build_baseline
from repro.core import analyze_rewiring
from repro.graph import load_graph, save_graph


@pytest.fixture(scope="module")
def dataset():
    graph = load_dataset("texas", scale=0.5, seed=0)
    splits = geom_gcn_splits(graph, num_splits=2, seed=0)
    return graph, splits


def small_cfg(**kw):
    base = dict(
        k_max=4, d_max=4, max_candidates=8, episodes=2, horizon=4,
        co_train_epochs=4, final_epochs=40, final_patience=10, seed=0,
    )
    base.update(kw)
    return RareConfig(**base)


def test_dataset_to_rare_to_analysis(dataset):
    """load_dataset -> GraphRARE -> analyze_rewiring chains cleanly."""
    graph, splits = dataset
    result = GraphRARE("gcn", small_cfg()).fit(graph, splits[0])
    analysis = analyze_rewiring(graph, result.optimized_graph)
    assert analysis.optimized_homophily == pytest.approx(
        result.optimized_homophily
    )
    assert analysis.homophily_gain >= -1e-9


def test_rare_result_consistent_with_direct_training(dataset):
    """Retraining a fresh backbone on the optimised graph reproduces the
    reported RARE accuracy (same seed, same budget)."""
    graph, splits = dataset
    cfg = small_cfg()
    result = GraphRARE("gcn", cfg).fit(graph, splits[0], train_baseline=False)
    model = build_backbone(
        "gcn", graph.num_features, graph.num_classes,
        hidden=cfg.hidden, dropout=cfg.dropout,
        rng=np.random.default_rng(cfg.seed),
    )
    direct = train_backbone(
        model, result.optimized_graph, splits[0],
        epochs=cfg.final_epochs, patience=cfg.final_patience,
        lr=cfg.gnn_lr, weight_decay=cfg.gnn_weight_decay,
    )
    assert direct.test_acc == pytest.approx(result.test_acc)


def test_optimized_graph_roundtrips_through_io(tmp_path, dataset):
    """The optimised topology can be persisted and reloaded for reuse."""
    graph, splits = dataset
    result = GraphRARE("gcn", small_cfg()).fit(
        graph, splits[0], train_baseline=False
    )
    path = save_graph(result.optimized_graph, str(tmp_path / "optimized"))
    loaded = load_graph(path)
    assert loaded == result.optimized_graph
    assert homophily_ratio(loaded) == pytest.approx(result.optimized_homophily)


def test_baselines_accept_rewired_graph(dataset):
    """Baselines can be trained on a RARE-optimised topology."""
    graph, splits = dataset
    result = GraphRARE("gcn", small_cfg()).fit(
        graph, splits[0], train_baseline=False
    )
    model = build_baseline(
        "simp_gcn", result.optimized_graph, splits[0], hidden=16,
        rng=np.random.default_rng(0),
    )
    out = train_backbone(model, result.optimized_graph, splits[0], epochs=20)
    assert 0.0 <= out.test_acc <= 1.0


def test_sequences_shared_across_splits(dataset):
    """Entropy computed once serves every split (the paper's protocol)."""
    from repro.entropy import RelativeEntropy, build_entropy_sequences

    graph, splits = dataset
    entropy = RelativeEntropy.from_graph(graph, lam=1.0)
    seqs = build_entropy_sequences(graph, entropy, max_candidates=8)
    accs = []
    for split in splits:
        res = GraphRARE("gcn", small_cfg()).fit(
            graph, split, sequences=seqs, train_baseline=False
        )
        accs.append(res.test_acc)
    assert all(0.0 <= a <= 1.0 for a in accs)


def test_determinism_end_to_end(dataset):
    """Same config + same seed => identical RARE outcome."""
    graph, splits = dataset
    a = GraphRARE("gcn", small_cfg()).fit(graph, splits[0], train_baseline=False)
    b = GraphRARE("gcn", small_cfg()).fit(graph, splits[0], train_baseline=False)
    assert a.test_acc == pytest.approx(b.test_acc)
    assert a.optimized_graph == b.optimized_graph


def test_kl_structural_mode_pipeline(dataset):
    """The DESIGN.md entropy ablation runs through the full loop."""
    graph, splits = dataset
    result = GraphRARE("gcn", small_cfg(structural_mode="kl")).fit(
        graph, splits[0], train_baseline=False
    )
    assert 0.0 <= result.test_acc <= 1.0
