"""Hypothesis property tests on the rewiring invariants from DESIGN.md."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import clamp_state, rewire_graph
from repro.datasets import planted_partition_graph
from repro.entropy import RelativeEntropy, build_entropy_sequences


@pytest.fixture(scope="module")
def setup():
    graph = planted_partition_graph(num_nodes=30, homophily=0.4, seed=0)
    entropy = RelativeEntropy.from_graph(graph, lam=1.0)
    sequences = build_entropy_sequences(graph, entropy, max_candidates=6)
    return graph, sequences


count_arrays = st.lists(st.integers(min_value=0, max_value=6), min_size=30, max_size=30)


@settings(max_examples=30, deadline=None)
@given(count_arrays, count_arrays)
def test_rewired_graph_stays_valid(setup, ks, ds):
    """Symmetry, no self-loops, shared attributes — for any (k, d)."""
    graph, seqs = setup
    k, d = clamp_state(np.array(ks), np.array(ds), graph, seqs, 6, 6)
    out = rewire_graph(graph, seqs, k, d)
    adj = out.adjacency().toarray()
    assert np.allclose(adj, adj.T)
    assert np.allclose(np.diag(adj), 0)
    assert out.features is graph.features
    assert out.num_nodes == graph.num_nodes


@settings(max_examples=30, deadline=None)
@given(count_arrays)
def test_add_only_is_monotone(setup, ks):
    """With deletions off, every original edge survives."""
    graph, seqs = setup
    k, d = clamp_state(np.array(ks), np.zeros(30, int), graph, seqs, 6, 6)
    out = rewire_graph(graph, seqs, k, d, remove_edges=False)
    assert graph.edges <= out.edges


@settings(max_examples=30, deadline=None)
@given(count_arrays)
def test_remove_only_is_antitone(setup, ds):
    """With additions off, no new edge appears."""
    graph, seqs = setup
    k, d = clamp_state(np.zeros(30, int), np.array(ds), graph, seqs, 6, 6)
    out = rewire_graph(graph, seqs, k, d, add_edges=False)
    assert out.edges <= graph.edges


@settings(max_examples=30, deadline=None)
@given(count_arrays, count_arrays)
def test_rewire_is_deterministic(setup, ks, ds):
    graph, seqs = setup
    k, d = clamp_state(np.array(ks), np.array(ds), graph, seqs, 6, 6)
    a = rewire_graph(graph, seqs, k, d)
    b = rewire_graph(graph, seqs, k, d)
    assert a.edges == b.edges


@settings(max_examples=30, deadline=None)
@given(count_arrays, count_arrays)
def test_clamp_state_idempotent(setup, ks, ds):
    graph, seqs = setup
    k1, d1 = clamp_state(np.array(ks), np.array(ds), graph, seqs, 6, 6)
    k2, d2 = clamp_state(k1, d1, graph, seqs, 6, 6)
    np.testing.assert_array_equal(k1, k2)
    np.testing.assert_array_equal(d1, d2)


@settings(max_examples=20, deadline=None)
@given(count_arrays)
def test_monotone_k_grows_edge_set(setup, ks):
    """Increasing every k_v can only extend the added edge set."""
    graph, seqs = setup
    k, _ = clamp_state(np.array(ks), np.zeros(30, int), graph, seqs, 5, 5)
    bigger, _ = clamp_state(k + 1, np.zeros(30, int), graph, seqs, 6, 6)
    small = rewire_graph(graph, seqs, k, np.zeros(30, int), remove_edges=False)
    large = rewire_graph(graph, seqs, bigger, np.zeros(30, int), remove_edges=False)
    assert small.edges <= large.edges
