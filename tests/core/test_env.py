"""Tests for the topology-optimisation MDP environment."""

import numpy as np
import pytest

from repro.core import OBS_DIM, RareConfig, TopologyEnv, build_observation
from repro.datasets import planted_partition_graph
from repro.entropy import RelativeEntropy, build_entropy_sequences
from repro.gnn import Trainer, build_backbone
from repro.graph import random_split


def make_env(co_train=False, **config_overrides):
    graph = planted_partition_graph(
        num_nodes=40, homophily=0.3, feature_signal=0.4, num_features=32, seed=0
    )
    split = random_split(graph.labels, np.random.default_rng(0))
    entropy = RelativeEntropy.from_graph(graph, lam=1.0)
    sequences = build_entropy_sequences(graph, entropy, max_candidates=8)
    config = RareConfig(
        k_max=4, d_max=4, max_candidates=8, horizon=4, **config_overrides
    )
    model = build_backbone(
        "gcn", graph.num_features, graph.num_classes,
        hidden=16, rng=np.random.default_rng(0),
    )
    trainer = Trainer(model, lr=0.05)
    env = TopologyEnv(graph, sequences, model, trainer, split, config,
                      co_train=co_train)
    return env, graph


def test_reset_state_is_zero():
    env, graph = make_env()
    obs = env.reset()
    assert obs.shape == (graph.num_nodes, OBS_DIM)
    assert (env.k == 0).all()
    assert (env.d == 0).all()
    assert env.current_graph is graph


def test_action_space_layout():
    env, graph = make_env()
    assert env.action_space.num_components == 2 * graph.num_nodes
    assert (env.action_space.nvec == 3).all()


def test_step_applies_transition():
    env, graph = make_env()
    env.reset()
    n = graph.num_nodes
    action = np.full(2 * n, 2)  # increment everything
    obs, reward, done, info = env.step(action)
    assert (env.k == 1).all()
    # d is clamped by node degree (isolated nodes cannot delete).
    assert (env.d <= np.minimum(1, graph.degrees())).all()
    assert not done
    assert np.isfinite(reward)
    assert env.current_graph.edges != graph.edges


def test_keep_action_is_noop():
    env, graph = make_env()
    env.reset()
    action = np.ones(2 * graph.num_nodes, dtype=int)  # all "keep"
    _, _, _, info = env.step(action)
    assert env.current_graph.edges == graph.edges
    assert info["mean_k"] == 0.0


def test_state_clamped_at_bounds():
    env, graph = make_env()
    env.reset()
    n = graph.num_nodes
    for _ in range(10):
        env.step(np.full(2 * n, 2))
    assert (env.k <= env.config.k_max).all()
    assert (env.d <= env.config.d_max).all()
    env.reset()
    for _ in range(3):
        env.step(np.zeros(2 * n, dtype=int))
    assert (env.k == 0).all()


def test_done_after_horizon():
    env, graph = make_env()
    env.reset()
    n = graph.num_nodes
    for t in range(env.config.horizon):
        _, _, done, _ = env.step(np.ones(2 * n, dtype=int))
    assert done


def test_invalid_action_shape():
    env, _ = make_env()
    env.reset()
    with pytest.raises(ValueError, match="action"):
        env.step(np.zeros(3, dtype=int))


def test_reward_is_delta_metric():
    env, graph = make_env()
    env.reset()
    n = graph.num_nodes
    prev_score, prev_loss = env.prev_score, env.prev_loss
    _, reward, _, info = env.step(np.ones(2 * n, dtype=int))
    expected = (info["train_score"] - prev_score) + env.config.lambda_r * (
        prev_loss - info["train_loss"]
    )
    assert reward == pytest.approx(expected)


def test_auc_reward_variant():
    env, graph = make_env(reward="auc")
    env.reset()
    score, loss = env._metrics(graph)
    assert 0.0 <= score <= 1.0


def test_co_training_tracks_best_graph():
    env, graph = make_env(co_train=True)
    env.reset()
    n = graph.num_nodes
    rng = np.random.default_rng(0)
    for _ in range(4):
        env.step(rng.integers(0, 3, 2 * n))
    assert env.best_acc > 0.0
    assert env.best_graph is not None


def test_history_recorded():
    env, graph = make_env()
    env.reset()
    env.step(np.ones(2 * graph.num_nodes, dtype=int))
    assert len(env.history) == 1
    assert {"reward", "homophily", "num_edges"} <= set(env.history[0])


def test_build_observation_ranges():
    env, graph = make_env()
    entropy_cols = build_observation(
        env.k, env.d, graph, env.sequences, env.config
    )
    assert entropy_cols.shape == (graph.num_nodes, OBS_DIM)
    assert np.isfinite(entropy_cols).all()
    assert (entropy_cols[:, 0] == 0).all()  # k column at reset
    assert (entropy_cols[:, 2] <= 1.0).all()  # normalised degree


# ---------------------------------------------------------------------------
# Cross-episode semantics and degenerate-graph guards (regression tests)
# ---------------------------------------------------------------------------
def test_reset_accumulates_history_across_episodes():
    """Documented semantics: history and the global step counter survive
    reset() so one env yields one continuous training log."""
    env, graph = make_env()
    n = graph.num_nodes
    env.reset()
    env.step(np.ones(2 * n, dtype=int))
    env.step(np.ones(2 * n, dtype=int))
    env.reset()
    assert len(env.history) == 2
    assert env._steps_total == 2
    env.step(np.ones(2 * n, dtype=int))
    assert len(env.history) == 3
    assert env.history[-1]["step"] == 3  # counter keeps running across episodes


def test_clear_history_starts_a_fresh_log():
    env, graph = make_env()
    n = graph.num_nodes
    env.reset()
    env.step(np.ones(2 * n, dtype=int))
    env.clear_history()
    assert env.history == []
    assert env._steps_total == 0
    env.step(np.ones(2 * n, dtype=int))
    assert len(env.history) == 1
    assert env.history[0]["step"] == 1


def test_reset_restores_episode_state():
    """Per-episode state (k, d, t, current graph) does reset."""
    env, graph = make_env()
    n = graph.num_nodes
    env.reset()
    env.step(np.full(2 * n, 2))
    assert env.t == 1
    env.reset()
    assert env.t == 0
    assert (env.k == 0).all() and (env.d == 0).all()
    assert env.current_graph is graph


def test_rewire_memoization_reuses_graph_objects():
    """Repeated (k, d) states are free: the exact Graph object comes back."""
    env, graph = make_env()
    n = graph.num_nodes
    env.reset()
    env.step(np.full(2 * n, 2))  # k=d=1 everywhere (clamped)
    first = env.current_graph
    misses = env._rewire_misses
    env.reset()
    env.step(np.full(2 * n, 2))  # identical state again
    assert env.current_graph is first
    assert env._rewire_misses == misses
    assert env._rewire_hits >= 1


def test_build_observation_zero_remote_candidates():
    """A sequence with zero remote-candidate columns must not divide by 0."""
    from repro.entropy import EntropySequences

    graph = planted_partition_graph(
        num_nodes=12, homophily=0.5, feature_signal=0.4, num_features=8, seed=0
    )
    n = graph.num_nodes
    seqs = EntropySequences(
        remote=np.empty((n, 0), dtype=np.int64),
        remote_scores=np.empty((n, 0)),
        neighbors=[graph.neighbors(v) for v in range(n)],
        neighbor_scores=[np.zeros(len(graph.neighbors(v))) for v in range(n)],
    )
    config = RareConfig(k_max=0, d_max=2, max_candidates=1, horizon=2)
    obs = build_observation(
        np.zeros(n, dtype=np.int64), np.zeros(n, dtype=np.int64),
        graph, seqs, config,
    )
    assert obs.shape == (n, OBS_DIM)
    assert np.isfinite(obs).all()


def test_build_observation_edgeless_graph():
    """An edgeless graph (max degree 0, empty neighbour lists) is guarded."""
    from repro.entropy import RelativeEntropy, build_entropy_sequences
    from repro.graph import Graph

    rng = np.random.default_rng(0)
    graph = Graph(8, [], features=rng.standard_normal((8, 4)))
    entropy = RelativeEntropy.from_graph(graph, lam=1.0)
    seqs = build_entropy_sequences(graph, entropy, max_candidates=4)
    config = RareConfig(k_max=2, d_max=2, max_candidates=4, horizon=2)
    obs = build_observation(
        np.zeros(8, dtype=np.int64), np.zeros(8, dtype=np.int64),
        graph, seqs, config,
    )
    assert obs.shape == (8, OBS_DIM)
    assert np.isfinite(obs).all()
    assert (obs[:, 2] == 0).all()  # degree column is all zero, not NaN
