"""Tests for the topology-optimisation MDP environment."""

import numpy as np
import pytest

from repro.core import OBS_DIM, RareConfig, TopologyEnv, build_observation
from repro.datasets import planted_partition_graph
from repro.entropy import RelativeEntropy, build_entropy_sequences
from repro.gnn import Trainer, build_backbone
from repro.graph import random_split


def make_env(co_train=False, **config_overrides):
    graph = planted_partition_graph(
        num_nodes=40, homophily=0.3, feature_signal=0.4, num_features=32, seed=0
    )
    split = random_split(graph.labels, np.random.default_rng(0))
    entropy = RelativeEntropy.from_graph(graph, lam=1.0)
    sequences = build_entropy_sequences(graph, entropy, max_candidates=8)
    config = RareConfig(
        k_max=4, d_max=4, max_candidates=8, horizon=4, **config_overrides
    )
    model = build_backbone(
        "gcn", graph.num_features, graph.num_classes,
        hidden=16, rng=np.random.default_rng(0),
    )
    trainer = Trainer(model, lr=0.05)
    env = TopologyEnv(graph, sequences, model, trainer, split, config,
                      co_train=co_train)
    return env, graph


def test_reset_state_is_zero():
    env, graph = make_env()
    obs = env.reset()
    assert obs.shape == (graph.num_nodes, OBS_DIM)
    assert (env.k == 0).all()
    assert (env.d == 0).all()
    assert env.current_graph is graph


def test_action_space_layout():
    env, graph = make_env()
    assert env.action_space.num_components == 2 * graph.num_nodes
    assert (env.action_space.nvec == 3).all()


def test_step_applies_transition():
    env, graph = make_env()
    env.reset()
    n = graph.num_nodes
    action = np.full(2 * n, 2)  # increment everything
    obs, reward, done, info = env.step(action)
    assert (env.k == 1).all()
    # d is clamped by node degree (isolated nodes cannot delete).
    assert (env.d <= np.minimum(1, graph.degrees())).all()
    assert not done
    assert np.isfinite(reward)
    assert env.current_graph.edges != graph.edges


def test_keep_action_is_noop():
    env, graph = make_env()
    env.reset()
    action = np.ones(2 * graph.num_nodes, dtype=int)  # all "keep"
    _, _, _, info = env.step(action)
    assert env.current_graph.edges == graph.edges
    assert info["mean_k"] == 0.0


def test_state_clamped_at_bounds():
    env, graph = make_env()
    env.reset()
    n = graph.num_nodes
    for _ in range(10):
        env.step(np.full(2 * n, 2))
    assert (env.k <= env.config.k_max).all()
    assert (env.d <= env.config.d_max).all()
    env.reset()
    for _ in range(3):
        env.step(np.zeros(2 * n, dtype=int))
    assert (env.k == 0).all()


def test_done_after_horizon():
    env, graph = make_env()
    env.reset()
    n = graph.num_nodes
    for t in range(env.config.horizon):
        _, _, done, _ = env.step(np.ones(2 * n, dtype=int))
    assert done


def test_invalid_action_shape():
    env, _ = make_env()
    env.reset()
    with pytest.raises(ValueError, match="action"):
        env.step(np.zeros(3, dtype=int))


def test_reward_is_delta_metric():
    env, graph = make_env()
    env.reset()
    n = graph.num_nodes
    prev_score, prev_loss = env.prev_score, env.prev_loss
    _, reward, _, info = env.step(np.ones(2 * n, dtype=int))
    expected = (info["train_score"] - prev_score) + env.config.lambda_r * (
        prev_loss - info["train_loss"]
    )
    assert reward == pytest.approx(expected)


def test_auc_reward_variant():
    env, graph = make_env(reward="auc")
    env.reset()
    score, loss = env._metrics(graph)
    assert 0.0 <= score <= 1.0


def test_co_training_tracks_best_graph():
    env, graph = make_env(co_train=True)
    env.reset()
    n = graph.num_nodes
    rng = np.random.default_rng(0)
    for _ in range(4):
        env.step(rng.integers(0, 3, 2 * n))
    assert env.best_acc > 0.0
    assert env.best_graph is not None


def test_history_recorded():
    env, graph = make_env()
    env.reset()
    env.step(np.ones(2 * graph.num_nodes, dtype=int))
    assert len(env.history) == 1
    assert {"reward", "homophily", "num_edges"} <= set(env.history[0])


def test_build_observation_ranges():
    env, graph = make_env()
    entropy_cols = build_observation(
        env.k, env.d, graph, env.sequences, env.config
    )
    assert entropy_cols.shape == (graph.num_nodes, OBS_DIM)
    assert np.isfinite(entropy_cols).all()
    assert (entropy_cols[:, 0] == 0).all()  # k column at reset
    assert (entropy_cols[:, 2] <= 1.0).all()  # normalised degree
