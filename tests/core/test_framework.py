"""End-to-end tests for the GraphRARE framework (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import GraphRARE, RareConfig
from repro.datasets import planted_partition_graph
from repro.graph import random_split


def tiny_config(**overrides):
    base = dict(
        k_max=3,
        d_max=3,
        max_candidates=8,
        episodes=2,
        horizon=3,
        co_train_epochs=4,
        co_train_patience=3,
        final_epochs=40,
        final_patience=10,
        seed=0,
    )
    base.update(overrides)
    return RareConfig(**base)


@pytest.fixture(scope="module")
def heterophilic():
    graph = planted_partition_graph(
        num_nodes=60, num_classes=3, homophily=0.2,
        feature_signal=0.5, num_features=48, mean_degree=4.0, seed=0,
    )
    split = random_split(graph.labels, np.random.default_rng(0))
    return graph, split


@pytest.fixture(scope="module")
def rare_result(heterophilic):
    graph, split = heterophilic
    rare = GraphRARE("gcn", tiny_config())
    return rare.fit(graph, split)


def test_result_fields_populated(rare_result):
    assert 0.0 <= rare_result.test_acc <= 1.0
    assert 0.0 <= rare_result.baseline_test_acc <= 1.0
    assert rare_result.entropy_seconds > 0
    assert len(rare_result.accuracy_curve) == 2
    assert len(rare_result.homophily_curve) == 2
    assert len(rare_result.episode_rewards) == 2


def test_improvement_property(rare_result):
    assert rare_result.improvement == pytest.approx(
        rare_result.test_acc - rare_result.baseline_test_acc
    )


def test_optimized_graph_differs_from_original(heterophilic, rare_result):
    graph, _ = heterophilic
    assert rare_result.optimized_graph.edges != graph.edges


def test_rare_improves_heterophilic_homophily(heterophilic, rare_result):
    """The Fig. 7 claim: rewiring raises the homophily ratio."""
    assert rare_result.optimized_homophily > rare_result.original_homophily


def test_rare_beats_or_matches_backbone(heterophilic, rare_result):
    """The Table III claim, on an easy synthetic instance."""
    assert rare_result.test_acc >= rare_result.baseline_test_acc - 0.05


def test_shuffle_sequences_ablation_runs(heterophilic):
    graph, split = heterophilic
    rare = GraphRARE("gcn", tiny_config(episodes=1))
    result = rare.fit(graph, split, shuffle_sequences=True, train_baseline=False)
    assert 0.0 <= result.test_acc <= 1.0
    assert np.isnan(result.baseline_test_acc)


def test_precomputed_sequences_reused(heterophilic):
    graph, split = heterophilic
    from repro.entropy import RelativeEntropy, build_entropy_sequences

    entropy = RelativeEntropy.from_graph(graph, lam=1.0)
    seqs = build_entropy_sequences(graph, entropy, max_candidates=8)
    rare = GraphRARE("gcn", tiny_config(episodes=1))
    result = rare.fit(graph, split, sequences=seqs, train_baseline=False)
    assert result.entropy_seconds == 0.0


def test_other_backbones_run(heterophilic):
    graph, split = heterophilic
    for backbone in ("graphsage", "h2gcn"):
        rare = GraphRARE(backbone, tiny_config(episodes=1, horizon=2))
        result = rare.fit(graph, split, train_baseline=False)
        assert 0.0 <= result.test_acc <= 1.0


def test_config_validation():
    with pytest.raises(ValueError):
        RareConfig(lam=-1.0)
    with pytest.raises(ValueError):
        RareConfig(k_max=100, max_candidates=10)
    with pytest.raises(ValueError):
        RareConfig(reward="f1")
    with pytest.raises(ValueError):
        RareConfig(add_edges=False, remove_edges=False)
    with pytest.raises(ValueError):
        RareConfig(horizon=0)
    with pytest.raises(ValueError):
        RareConfig(screening="sometimes")
    with pytest.raises(ValueError):
        RareConfig(num_workers=0)
    cfg = RareConfig(screening="on", num_workers=4)
    assert cfg.screening == "on" and cfg.num_workers == 4
    with pytest.raises(ValueError):
        RareConfig(telemetry="")
    with pytest.raises(ValueError):
        RareConfig(telemetry=7)
    assert RareConfig(telemetry="on").telemetry == "on"
    assert RareConfig(telemetry="run.jsonl").telemetry == "run.jsonl"
    assert RareConfig().telemetry is None


def test_add_only_and_remove_only_configs(heterophilic):
    graph, split = heterophilic
    for flags in ({"remove_edges": False}, {"add_edges": False}):
        rare = GraphRARE("gcn", tiny_config(episodes=1, horizon=2, **flags))
        result = rare.fit(graph, split, train_baseline=False)
        if flags.get("remove_edges") is False:
            assert graph.edges <= result.optimized_graph.edges
        else:
            assert result.optimized_graph.edges <= graph.edges


def test_fit_with_telemetry_emits_valid_jsonl(heterophilic, tmp_path):
    from repro.telemetry import get_telemetry, validate_lines

    graph, split = heterophilic
    path = str(tmp_path / "fit.jsonl")
    rare = GraphRARE(
        "gcn", tiny_config(episodes=1, horizon=2, telemetry=path)
    )
    result = rare.fit(graph, split, train_baseline=True)
    assert 0.0 <= result.test_acc <= 1.0
    # The session opened from the config is closed again after fit.
    assert not get_telemetry().enabled

    events, errors = validate_lines(open(path).read().splitlines())
    assert errors == []
    names = {e["name"] for e in events if e["type"] == "span"}
    # The span tree covers entropy -> rewire -> reward -> co-training.
    for required in (
        "rare.fit", "rare.entropy", "rare.baseline", "rare.final",
        "env.step", "env.reward", "env.co_train",
    ):
        assert required in names, required
    counters = {e["name"] for e in events if e["type"] == "counter"}
    assert any(c.startswith("env.rewire_memo.") for c in counters)
    assert any(c.startswith("tensor.") and c.endswith(".calls")
               for c in counters)
