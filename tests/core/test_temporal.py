"""Tests for the spatio-temporal GraphRARE extension."""

import numpy as np
import pytest

from repro.core import RareConfig, TemporalGraphRARE, drifting_snapshots
from repro.datasets.synthetic import DatasetSpec
from repro.graph import homophily_ratio, random_split


def spec():
    return DatasetSpec(
        name="temporal_toy",
        num_nodes=50,
        num_edges=150,
        num_features=48,
        num_classes=3,
        homophily=0.25,
        feature_signal=0.4,
    )


@pytest.fixture(scope="module")
def snapshots():
    return drifting_snapshots(spec(), num_snapshots=3, drift=0.3, seed=0)


def test_snapshots_share_nodes_features_labels(snapshots):
    base = snapshots[0]
    for snap in snapshots[1:]:
        assert snap.num_nodes == base.num_nodes
        assert snap.features is base.features
        assert snap.labels is base.labels


def test_snapshots_drift_but_overlap(snapshots):
    for a, b in zip(snapshots, snapshots[1:]):
        overlap = len(a.edges & b.edges) / len(a.edges)
        assert 0.3 < overlap < 1.0  # drifted, not replaced


def test_snapshots_preserve_homophily(snapshots):
    for snap in snapshots:
        assert abs(homophily_ratio(snap) - 0.25) < 0.1


def test_snapshots_edge_counts_stable(snapshots):
    for snap in snapshots:
        assert abs(snap.num_edges - 150) <= 15


def test_drifting_snapshots_validation():
    with pytest.raises(ValueError, match="drift"):
        drifting_snapshots(spec(), drift=1.5)
    with pytest.raises(ValueError, match="num_snapshots"):
        drifting_snapshots(spec(), num_snapshots=0)


def test_single_snapshot_is_base_graph():
    snaps = drifting_snapshots(spec(), num_snapshots=1, seed=0)
    assert len(snaps) == 1


def test_temporal_rare_end_to_end(snapshots):
    split = random_split(snapshots[0].labels, np.random.default_rng(0))
    cfg = RareConfig(
        k_max=3, d_max=3, max_candidates=8, episodes=1, horizon=3,
        co_train_epochs=3, final_epochs=30, final_patience=8, seed=0,
    )
    result = TemporalGraphRARE("gcn", cfg).fit(snapshots, split)
    assert 0.0 <= result.test_acc <= 1.0
    assert 0.0 <= result.baseline_test_acc <= 1.0
    assert len(result.per_snapshot) == 3
    assert len(result.homophily_curve) == 3
    # Only the final snapshot carries a baseline.
    assert np.isnan(result.per_snapshot[0].baseline_test_acc)
    assert not np.isnan(result.per_snapshot[-1].baseline_test_acc)


def test_temporal_rare_validation(snapshots):
    split = random_split(snapshots[0].labels, np.random.default_rng(0))
    model = TemporalGraphRARE("gcn", RareConfig(episodes=1, horizon=2))
    with pytest.raises(ValueError, match="at least one"):
        model.fit([], split)

    from repro.graph import Graph

    mismatched = snapshots[:1] + [Graph(10, [], labels=np.zeros(10, int))]
    with pytest.raises(ValueError, match="share the node set"):
        model.fit(mismatched, split)
