"""Tests for the spatio-temporal GraphRARE extension."""

import numpy as np
import pytest

from repro.core import RareConfig, TemporalGraphRARE, drifting_snapshots
from repro.datasets.synthetic import DatasetSpec
from repro.graph import homophily_ratio, random_split


def spec():
    return DatasetSpec(
        name="temporal_toy",
        num_nodes=50,
        num_edges=150,
        num_features=48,
        num_classes=3,
        homophily=0.25,
        feature_signal=0.4,
    )


@pytest.fixture(scope="module")
def snapshots():
    return drifting_snapshots(spec(), num_snapshots=3, drift=0.3, seed=0)


def test_snapshots_share_nodes_features_labels(snapshots):
    base = snapshots[0]
    for snap in snapshots[1:]:
        assert snap.num_nodes == base.num_nodes
        assert snap.features is base.features
        assert snap.labels is base.labels


def test_snapshots_drift_but_overlap(snapshots):
    for a, b in zip(snapshots, snapshots[1:]):
        overlap = len(a.edges & b.edges) / len(a.edges)
        assert 0.3 < overlap < 1.0  # drifted, not replaced


def test_snapshots_preserve_homophily(snapshots):
    for snap in snapshots:
        assert abs(homophily_ratio(snap) - 0.25) < 0.1


def test_snapshots_edge_counts_stable(snapshots):
    for snap in snapshots:
        assert abs(snap.num_edges - 150) <= 15


def test_drifting_snapshots_validation():
    with pytest.raises(ValueError, match="drift"):
        drifting_snapshots(spec(), drift=1.5)
    with pytest.raises(ValueError, match="num_snapshots"):
        drifting_snapshots(spec(), num_snapshots=0)


def test_single_snapshot_is_base_graph():
    snaps = drifting_snapshots(spec(), num_snapshots=1, seed=0)
    assert len(snaps) == 1


def test_temporal_rare_end_to_end(snapshots):
    split = random_split(snapshots[0].labels, np.random.default_rng(0))
    cfg = RareConfig(
        k_max=3, d_max=3, max_candidates=8, episodes=1, horizon=3,
        co_train_epochs=3, final_epochs=30, final_patience=8, seed=0,
    )
    result = TemporalGraphRARE("gcn", cfg).fit(snapshots, split)
    assert 0.0 <= result.test_acc <= 1.0
    assert 0.0 <= result.baseline_test_acc <= 1.0
    assert len(result.per_snapshot) == 3
    assert len(result.homophily_curve) == 3
    # Only the final snapshot carries a baseline.
    assert np.isnan(result.per_snapshot[0].baseline_test_acc)
    assert not np.isnan(result.per_snapshot[-1].baseline_test_acc)


def test_snapshots_chain_as_one_delta_against_the_base(snapshots):
    """Later snapshots are base + ONE collapsed GraphDelta — the shape
    every root-bound cache (incremental evaluator, streaming engine,
    stacked builder) keys on."""
    base = snapshots[0]
    assert base.delta is None
    for snap in snapshots[1:]:
        assert snap.delta is not None
        assert snap.delta.base is base
        # The recorded edits are genuine and disjoint.
        assert np.isin(snap.delta.removed, base.edge_keys()).all()
        assert not np.isin(snap.delta.added, base.edge_keys()).any()
        assert np.intersect1d(snap.delta.added, snap.delta.removed).size == 0


def test_empty_drift_step_reuses_the_base_edges():
    """drift=0.0 keeps every base edge; a snapshot that ends up with the
    identical edge set IS the base object (no spurious delta)."""
    snaps = drifting_snapshots(spec(), num_snapshots=3, drift=0.0, seed=0)
    base = snaps[0]
    for snap in snaps[1:]:
        # Nothing was removed: the base edge set survives intact.
        assert np.isin(base.edge_keys(), snap.edge_keys()).all()
        if snap.num_edges == base.num_edges:
            assert snap is base


def test_duplicate_resampled_edges_collapse():
    """Full replacement (drift=1.0): resampled edges that duplicate a
    kept or earlier-sampled edge collapse into the set — snapshots never
    carry duplicate keys, in either orientation."""
    snaps = drifting_snapshots(spec(), num_snapshots=4, drift=1.0, seed=1)
    for snap in snaps:
        keys = snap.edge_keys()
        assert np.unique(keys).size == keys.size
        arr = snap.edge_array()
        assert (arr[:, 0] < arr[:, 1]).all()  # canonical orientation


def test_cross_snapshot_evaluator_invalidation(snapshots):
    """An IncrementalEvaluator bound to the first snapshot scores every
    later one through its delta (at the documented 1e-9 halo class) and
    never serves stale activations across a weight update."""
    from repro.gnn import IncrementalEvaluator, Trainer, build_backbone, evaluate

    base = snapshots[0]
    split = random_split(base.labels, np.random.default_rng(0))
    model = build_backbone(
        "gcn", base.num_features, base.num_classes,
        hidden=16, rng=np.random.default_rng(0),
    )
    evaluator = IncrementalEvaluator(model, base)
    for snap in snapshots:
        acc_i, loss_i = evaluator.evaluate(snap, split.train)
        acc_d, loss_d = evaluate(model, snap, split.train)
        assert acc_i == pytest.approx(acc_d, abs=1e-9)
        assert loss_i == pytest.approx(loss_d, abs=1e-9)
    # A weight update must invalidate the cached base activations.
    Trainer(model, lr=0.05).fit(base, split, epochs=2, patience=2)
    evaluator.invalidate()
    for snap in snapshots:
        acc_i, loss_i = evaluator.evaluate(snap, split.train)
        acc_d, loss_d = evaluate(model, snap, split.train)
        assert acc_i == pytest.approx(acc_d, abs=1e-9)
        assert loss_i == pytest.approx(loss_d, abs=1e-9)
    assert dict(evaluator.stats)["invalidations"] == 1


def test_temporal_fit_warm_starts_across_snapshots(snapshots):
    """The co-trained backbone threads through the snapshot sequence:
    one model object carries the whole temporal trajectory (what the
    docstring promises), while baselines/final evals stay fresh."""
    split = random_split(snapshots[0].labels, np.random.default_rng(0))
    cfg = RareConfig(
        k_max=2, d_max=2, max_candidates=8, episodes=1, horizon=2,
        co_train_epochs=2, final_epochs=5, final_patience=3, seed=0,
    )
    result = TemporalGraphRARE("gcn", cfg).fit(snapshots, split)
    carried = {id(r.co_trained_model) for r in result.per_snapshot}
    assert len(carried) == 1
    assert result.per_snapshot[0].co_trained_model is not None
    # Independent single-graph runs do NOT share a model.
    from repro.core import GraphRARE

    a = GraphRARE("gcn", cfg).fit(snapshots[0], split, train_baseline=False)
    b = GraphRARE("gcn", cfg).fit(snapshots[0], split, train_baseline=False)
    assert a.co_trained_model is not b.co_trained_model


def test_temporal_rare_validation(snapshots):
    split = random_split(snapshots[0].labels, np.random.default_rng(0))
    model = TemporalGraphRARE("gcn", RareConfig(episodes=1, horizon=2))
    with pytest.raises(ValueError, match="at least one"):
        model.fit([], split)

    from repro.graph import Graph

    mismatched = snapshots[:1] + [Graph(10, [], labels=np.zeros(10, int))]
    with pytest.raises(ValueError, match="share the node set"):
        model.fit(mismatched, split)
