"""Tests for the Table V / Fig. 5 ablation helpers."""

import numpy as np
import pytest

from repro.core import RareConfig, fixed_kd, fixed_kd_grid, random_kd
from repro.datasets import planted_partition_graph
from repro.entropy import RelativeEntropy, build_entropy_sequences
from repro.graph import random_split


@pytest.fixture(scope="module")
def setup():
    graph = planted_partition_graph(
        num_nodes=50, num_classes=3, homophily=0.25,
        feature_signal=0.5, num_features=48, seed=0,
    )
    split = random_split(graph.labels, np.random.default_rng(0))
    config = RareConfig(
        max_candidates=8, final_epochs=30, final_patience=8, seed=0
    )
    entropy = RelativeEntropy.from_graph(graph, lam=1.0)
    sequences = build_entropy_sequences(graph, entropy, max_candidates=8)
    return graph, split, config, sequences


def test_fixed_kd_returns_accuracy(setup):
    graph, split, config, seqs = setup
    acc = fixed_kd(graph, split, "gcn", k=2, d=1, config=config, sequences=seqs)
    assert 0.0 <= acc <= 1.0


def test_fixed_kd_zero_zero_equals_plain_backbone(setup):
    graph, split, config, seqs = setup
    acc = fixed_kd(graph, split, "gcn", k=0, d=0, config=config, sequences=seqs)
    from repro.gnn import Trainer, build_backbone

    model = build_backbone(
        "gcn", graph.num_features, graph.num_classes,
        hidden=config.hidden, dropout=config.dropout,
        rng=np.random.default_rng(config.seed),
    )
    plain = Trainer(model, lr=config.gnn_lr, weight_decay=config.gnn_weight_decay).fit(
        graph, split, epochs=config.final_epochs, patience=config.final_patience
    ).test_acc
    assert acc == pytest.approx(plain)


def test_random_kd_returns_accuracy(setup):
    graph, split, config, seqs = setup
    acc = random_kd(graph, split, "gcn", max_value=3, config=config, sequences=seqs)
    assert 0.0 <= acc <= 1.0


def test_random_kd_deterministic_given_seed(setup):
    graph, split, config, seqs = setup
    a = random_kd(graph, split, "gcn", max_value=3, config=config, sequences=seqs)
    b = random_kd(graph, split, "gcn", max_value=3, config=config, sequences=seqs)
    assert a == pytest.approx(b)


def test_fixed_kd_grid_shape(setup):
    graph, split, config, _ = setup
    grid = fixed_kd_grid(
        graph, split, "gcn", k_values=(0, 2), d_values=(0, 1), config=config
    )
    assert grid.shape == (2, 2)
    assert ((grid >= 0) & (grid <= 1)).all()


def test_default_configs_constructed_when_omitted(setup):
    graph, split, _, _ = setup
    acc = fixed_kd(graph, split, "gcn", k=1, d=0)
    assert 0.0 <= acc <= 1.0
