"""Tests for the rewiring-analysis diagnostics."""

import numpy as np
import pytest

from repro.core import analyze_rewiring, degree_change_report
from repro.graph import Graph


def original():
    # 0,1 class 0; 2,3 class 1.  Edges: one intra (0,1), one cross (1,2).
    return Graph(
        4, [(0, 1), (1, 2)],
        features=np.eye(4), labels=np.array([0, 0, 1, 1]),
    )


def test_analysis_counts_edits():
    g = original()
    optimized = g.add_edges([(2, 3)]).remove_edges([(1, 2)])
    a = analyze_rewiring(g, optimized)
    assert a.num_added == 1
    assert a.num_removed == 1
    assert a.edit_distance == 2


def test_analysis_class_alignment():
    g = original()
    optimized = g.add_edges([(2, 3)]).remove_edges([(1, 2)])
    a = analyze_rewiring(g, optimized)
    assert a.added_same_class_frac == 1.0    # (2,3) same class
    assert a.removed_cross_class_frac == 1.0  # (1,2) cross class


def test_analysis_homophily_gain():
    g = original()
    optimized = g.add_edges([(2, 3)]).remove_edges([(1, 2)])
    a = analyze_rewiring(g, optimized)
    assert a.original_homophily == pytest.approx(0.5)
    assert a.optimized_homophily == pytest.approx(1.0)
    assert a.homophily_gain == pytest.approx(0.5)


def test_analysis_per_node_histograms():
    g = original()
    optimized = g.add_edges([(0, 2), (0, 3)])
    a = analyze_rewiring(g, optimized)
    assert a.per_node_added[0] == 2
    assert a.per_node_added[2] == 1
    assert a.per_node_removed.sum() == 0


def test_analysis_identity():
    g = original()
    a = analyze_rewiring(g, g)
    assert a.edit_distance == 0
    assert a.added_same_class_frac == 0.0
    assert a.removed_cross_class_frac == 0.0


def test_analysis_requires_labels():
    g = Graph(2, [(0, 1)])
    with pytest.raises(ValueError, match="labels"):
        analyze_rewiring(g, g)


def test_analysis_node_count_mismatch():
    with pytest.raises(ValueError, match="node counts"):
        analyze_rewiring(original(), Graph(3, [], labels=np.zeros(3, int)))


def test_summary_text():
    g = original()
    a = analyze_rewiring(g, g.add_edges([(2, 3)]))
    text = a.summary()
    assert "edges added" in text
    assert "homophily" in text


def test_degree_change_report():
    g = original()
    optimized = g.add_edges([(0, 3)])
    report = degree_change_report(g, optimized)
    assert report["mean_degree_after"] > report["mean_degree_before"]
    assert report["isolated_before"] == 1  # node 3 was isolated
    assert report["isolated_after"] == 0
