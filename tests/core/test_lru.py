"""Unit contract of the shared bounded-LRU cache (repro.core.lru)."""

import pytest

from repro.core.lru import LRUCache
from repro.telemetry import Telemetry, use_telemetry


def test_put_get_roundtrip():
    cache = LRUCache(4)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert "a" in cache
    assert len(cache) == 1


def test_get_miss_returns_default():
    cache = LRUCache(2)
    assert cache.get("nope") is None
    assert cache.get("nope", 42) == 42
    assert cache.misses == 2
    assert cache.hits == 0


def test_capacity_evicts_least_recently_used():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a" -> "b" becomes LRU
    cache.put("c", 3)
    assert "b" not in cache
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.evictions == 1


def test_put_existing_key_refreshes_without_eviction():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)  # refresh, not insert: no eviction
    assert len(cache) == 2
    assert cache.evictions == 0
    assert cache.get("a") == 10


def test_per_call_capacity_override_shrinks_population():
    cache = LRUCache(8)
    for i in range(6):
        cache.put(i, i)
    cache.put("x", "y", capacity=3)
    assert len(cache) == 3
    assert cache.evictions == 4
    assert cache.get("x") == "y"


def test_peek_and_pop_do_not_count():
    cache = LRUCache(2)
    cache.put("a", 1)
    assert cache.peek("a") == 1
    assert cache.peek("zz") is None
    assert cache.pop("a") == 1
    assert cache.pop("a", "gone") == "gone"
    assert cache.hits == 0 and cache.misses == 0


def test_clear_preserves_counters():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.get("a")
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 1


def test_stats_view_matches_properties():
    cache = LRUCache(1)
    cache.put("a", 1)
    cache.get("a")
    cache.get("b")
    cache.put("c", 3)
    stats = dict(cache.stats)
    assert stats == {"hits": 1, "misses": 1, "evictions": 1}
    assert (cache.hits, cache.misses, cache.evictions) == (1, 1, 1)


def test_iteration_order_is_lru_first():
    cache = LRUCache(3)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("c", 3)
    cache.get("a")
    assert list(cache) == ["b", "c", "a"]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError, match="capacity"):
        LRUCache(0)


def test_telemetry_mirroring_with_prefix():
    tel = Telemetry()
    with use_telemetry(tel):
        cache = LRUCache(1, counter_prefix="test.cache")
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.put("c", 3)
    counters = tel.snapshot()["counters"]
    assert counters["test.cache.hits"] == 1
    assert counters["test.cache.misses"] == 1
    assert counters["test.cache.evictions"] == 1


def test_no_prefix_means_no_session_mirroring():
    tel = Telemetry()
    with use_telemetry(tel):
        cache = LRUCache(1)
        cache.get("a")
    assert tel.snapshot()["counters"] == {}
