"""Churn parity: sequential vs vectorized envs under live edge churn.

With ``config.stream`` set, both envs drain the SAME seeded event trace
at the SAME step position (the step prologue, before the agent's move).
The contract: at ``B = 1`` every observation, reward, info field, memo
decision, window aggregate and full-graph logit is **byte-identical**
between :class:`TopologyEnv` and :class:`VecTopologyEnv` — with the
incremental reward evaluator on or off (the seq-vs-vec axis is bitwise;
the inc-vs-dense axis is held to the documented 1e-9 halo class of
``docs/equivalence-policy.md``).
"""

import numpy as np
import pytest

from repro.core import RareConfig, TopologyEnv
from repro.datasets import planted_partition_graph
from repro.entropy import RelativeEntropy, build_entropy_sequences
from repro.gnn import Trainer, build_backbone
from repro.graph import random_split
from repro.rl.vector import VecTopologyEnv
from repro.stream import StreamConfig


def make_parts(num_nodes=40, stream=None, **config_overrides):
    """Fresh (graph, sequences, model, trainer, split, config) — identical
    across calls, so twin envs start from the same model bytes AND the
    same churn trace (StreamConfig carries its own seed)."""
    graph = planted_partition_graph(
        num_nodes=num_nodes, homophily=0.3, feature_signal=0.4,
        num_features=32, seed=0,
    )
    split = random_split(graph.labels, np.random.default_rng(0))
    entropy = RelativeEntropy.from_graph(graph, lam=1.0)
    sequences = build_entropy_sequences(graph, entropy, max_candidates=8)
    config_overrides.setdefault("horizon", 4)
    config = RareConfig(
        k_max=4, d_max=4, max_candidates=8,
        stream=stream or StreamConfig(events_per_step=3, seed=5),
        **config_overrides,
    )
    model = build_backbone(
        "gcn", graph.num_features, graph.num_classes,
        hidden=16, rng=np.random.default_rng(0),
    )
    trainer = Trainer(model, lr=0.05)
    return graph, sequences, model, trainer, split, config


# ---------------------------------------------------------------------------
# Seq vs vec under identical churn: bitwise
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("incremental", [False, True])
def test_b1_churn_byte_identical(incremental):
    env = TopologyEnv(
        *make_parts(incremental_reward=incremental), co_train=False
    )
    venv = VecTopologyEnv(
        *make_parts(incremental_reward=incremental),
        num_envs=1, co_train=False, seed=0,
    )
    n = env.base_graph.num_nodes
    obs_s = env.reset()
    obs_v = venv.reset()
    np.testing.assert_array_equal(obs_s, obs_v[0])

    rng = np.random.default_rng(3)
    for _ in range(6):  # crosses one episode boundary (horizon=4)
        action = rng.integers(0, 3, 2 * n)
        obs_s, rew_s, done_s, info_s = env.step(action)
        obs_v, rew_v, done_v, info_v = venv.step(action[None])
        assert rew_s == rew_v[0]  # bitwise: same float, not approx
        assert done_s == bool(done_v[0])
        for key, val in info_s.items():
            assert info_v[0][key] == val, key
        assert info_s["stream_version"] == info_v[0]["stream_version"]
        assert info_s["stream_events"] == info_v[0]["stream_events"]
        if done_s:
            obs_s = env.reset()
        np.testing.assert_array_equal(obs_s, obs_v[0])
        # The drifting base topologies stayed bit-for-bit in lockstep.
        np.testing.assert_array_equal(
            env.base_graph.edge_keys(), venv.base_graph.edge_keys()
        )
    assert env._stream.events_applied == 18
    assert venv._stream.events_applied == 18
    # Full-graph logits of the final churned base: byte-identical.
    np.testing.assert_array_equal(
        env.model.predict_logits(env.base_graph),
        venv.model.predict_logits(venv.base_graph),
    )
    # Window aggregates: same trace, same integers, same floats.
    ms, mv = env.stream_metrics(), venv.stream_metrics()
    assert set(ms) == set(mv)
    for name in ms:
        assert np.float64(ms[name]).tobytes() == np.float64(mv[name]).tobytes()


def test_parity_survives_rebases():
    stream = StreamConfig(
        regime="hubs", events_per_step=6, rebase_threshold=0.1, seed=2
    )
    env = TopologyEnv(*make_parts(stream=stream), co_train=False)
    venv = VecTopologyEnv(
        *make_parts(stream=stream), num_envs=1, co_train=False, seed=0
    )
    n = env.base_graph.num_nodes
    env.reset()
    venv.reset()
    rng = np.random.default_rng(0)
    for _ in range(10):
        action = rng.integers(0, 3, 2 * n)
        _, rew_s, done_s, info_s = env.step(action)
        _, rew_v, _, info_v = venv.step(action[None])
        assert rew_s == rew_v[0]
        assert info_s["stream_version"] == info_v[0]["stream_version"]
        if done_s:
            env.reset()
    # The hub regime at a 0.1 threshold actually exercised the rebase
    # rebind path in BOTH envs (evaluator + stacked builder + memo keys).
    assert env._stream.rebases >= 1
    assert venv._stream.rebases == env._stream.rebases
    np.testing.assert_array_equal(
        env.base_graph.edge_keys(), venv.base_graph.edge_keys()
    )
    env._online.verify()
    venv._online.verify()


def test_online_window_verifies_inside_the_env():
    env = TopologyEnv(*make_parts(), co_train=False)
    env.reset()
    rng = np.random.default_rng(1)
    n = env.base_graph.num_nodes
    for _ in range(8):
        _, _, done, _ = env.step(rng.integers(0, 3, 2 * n))
        if done:
            env.reset()
    # The env-maintained sliding window is byte-identical to rebuilding
    # every record from a fresh fully-validated graph.
    metrics = env._online.verify()
    assert metrics == env.stream_metrics()


# ---------------------------------------------------------------------------
# Incremental vs dense under churn: the documented 1e-9 class
# ---------------------------------------------------------------------------
def test_incremental_vs_dense_rewards_under_churn():
    dense = TopologyEnv(
        *make_parts(incremental_reward=False), co_train=False
    )
    inc = TopologyEnv(
        *make_parts(incremental_reward=True), co_train=False
    )
    dense.reset()
    inc.reset()
    rng = np.random.default_rng(4)
    n = dense.base_graph.num_nodes
    for _ in range(6):
        action = rng.integers(0, 3, 2 * n)
        _, rew_d, done, info_d = dense.step(action)
        _, rew_i, _, info_i = inc.step(action)
        assert rew_i == pytest.approx(rew_d, rel=1e-9, abs=1e-9)
        assert info_d["num_edges"] == info_i["num_edges"]
        if done:
            dense.reset()
            inc.reset()
    np.testing.assert_array_equal(
        dense.base_graph.edge_keys(), inc.base_graph.edge_keys()
    )


# ---------------------------------------------------------------------------
# Memo invalidation under churn
# ---------------------------------------------------------------------------
def test_rewire_memo_is_version_keyed():
    env = TopologyEnv(*make_parts(), co_train=False)
    env.reset()
    k = np.full(env.base_graph.num_nodes, 1)
    d = np.full(env.base_graph.num_nodes, 1)
    before = env._rewired(k, d)
    assert env._rewired(k, d) is before  # same version: memo hit
    version = env._stream.version
    while env._stream.version == version:  # drain until effective churn
        env._advance_stream()
    after = env._rewired(k, d)
    # New stream version: the memoised pre-churn graph is never served.
    assert after is not before
    assert after.delta is None or after.delta.base is env._stream.root


# ---------------------------------------------------------------------------
# Config plumbing
# ---------------------------------------------------------------------------
def test_rare_config_validates_stream():
    with pytest.raises(ValueError, match="regime"):
        RareConfig(stream=StreamConfig(regime="nope"))
    with pytest.raises(ValueError, match="stream"):
        RareConfig(stream="drift")
    assert RareConfig(stream=StreamConfig()).stream.window == 32
    assert RareConfig().stream is None


def test_non_streaming_env_has_no_stream_state():
    graph, sequences, model, trainer, split, _ = make_parts()
    config = RareConfig(k_max=4, d_max=4, max_candidates=8, horizon=4)
    env = TopologyEnv(
        graph, sequences, model, trainer, split, config, co_train=False
    )
    assert env._stream is None and env.stream_metrics() == {}
    _, _, _, info = env.step(env.sample_action())
    assert "stream_version" not in info
