"""Tests for the graph topology optimisation module."""

import numpy as np
import pytest

from repro.core import clamp_state, edit_distance, rewire_graph
from repro.datasets import planted_partition_graph
from repro.entropy import RelativeEntropy, build_entropy_sequences


@pytest.fixture(scope="module")
def setup():
    graph = planted_partition_graph(num_nodes=50, homophily=0.3, seed=0)
    entropy = RelativeEntropy.from_graph(graph, lam=1.0)
    sequences = build_entropy_sequences(graph, entropy, max_candidates=10)
    return graph, sequences


def test_zero_state_is_identity(setup):
    graph, seqs = setup
    n = graph.num_nodes
    out = rewire_graph(graph, seqs, np.zeros(n, int), np.zeros(n, int))
    assert out.edges == graph.edges


def test_add_only_increases_edges(setup):
    graph, seqs = setup
    n = graph.num_nodes
    out = rewire_graph(
        graph, seqs, np.full(n, 2), np.zeros(n, int), remove_edges=False
    )
    assert out.num_edges > graph.num_edges
    assert graph.edges <= out.edges


def test_remove_only_decreases_edges(setup):
    graph, seqs = setup
    n = graph.num_nodes
    out = rewire_graph(
        graph, seqs, np.zeros(n, int), np.full(n, 1), add_edges=False
    )
    assert out.num_edges < graph.num_edges
    assert out.edges <= graph.edges


def test_added_edges_follow_sequence(setup):
    graph, seqs = setup
    n = graph.num_nodes
    k = np.zeros(n, int)
    k[0] = 3
    out = rewire_graph(graph, seqs, k, np.zeros(n, int))
    for u in seqs.top_remote(0, 3):
        assert out.has_edge(0, int(u))


def test_removed_edges_are_worst_neighbors(setup):
    graph, seqs = setup
    n = graph.num_nodes
    v = int(np.argmax(graph.degrees()))
    d = np.zeros(n, int)
    d[v] = 2
    out = rewire_graph(graph, seqs, np.zeros(n, int), d)
    for u in seqs.worst_neighbors(v, 2):
        assert not out.has_edge(v, int(u))


def test_rewire_keeps_graph_valid(setup):
    graph, seqs = setup
    n = graph.num_nodes
    rng = np.random.default_rng(0)
    out = rewire_graph(
        graph, seqs, rng.integers(0, 5, n), rng.integers(0, 3, n)
    )
    adj = out.adjacency().toarray()
    np.testing.assert_allclose(adj, adj.T)
    np.testing.assert_allclose(np.diag(adj), 0)
    assert out.features is graph.features
    assert out.labels is graph.labels


def test_rewire_shape_validation(setup):
    graph, seqs = setup
    with pytest.raises(ValueError, match="shape"):
        rewire_graph(graph, seqs, np.zeros(3, int), np.zeros(graph.num_nodes, int))


def test_rewire_respects_budget(setup):
    """Each node adds at most k_v edges and deletes at most d_v."""
    graph, seqs = setup
    n = graph.num_nodes
    k = np.full(n, 2)
    out = rewire_graph(graph, seqs, k, np.zeros(n, int), remove_edges=False)
    added = out.edges - graph.edges
    per_node = np.zeros(n, int)
    for u, v in added:
        per_node[u] += 1
        per_node[v] += 1
    # An edge may be requested by both endpoints, so the per-node count can
    # exceed k_v only through edges another node initiated.
    for v in range(n):
        own_requests = set(map(int, seqs.top_remote(v, 2)))
        own_added = {u for u in own_requests if (min(u, v), max(u, v)) in added}
        assert len(own_added) <= 2


def test_clamp_state_bounds(setup):
    graph, seqs = setup
    n = graph.num_nodes
    k = np.full(n, 100)
    d = np.full(n, 100)
    k2, d2 = clamp_state(k, d, graph, seqs, k_max=5, d_max=4)
    assert (k2 <= 5).all()
    assert (d2 <= np.minimum(4, graph.degrees())).all()
    kneg, dneg = clamp_state(-np.ones(n, int), -np.ones(n, int), graph, seqs, 5, 5)
    assert (kneg == 0).all()
    assert (dneg == 0).all()


def test_clamp_state_respects_available_candidates(setup):
    graph, seqs = setup
    n = graph.num_nodes
    avail = (seqs.remote >= 0).sum(axis=1)
    k2, _ = clamp_state(np.full(n, 100), np.zeros(n, int), graph, seqs, 100, 5)
    assert (k2 <= avail).all()


def test_edit_distance(setup):
    graph, seqs = setup
    n = graph.num_nodes
    assert edit_distance(graph, graph) == 0
    out = rewire_graph(graph, seqs, np.full(n, 1), np.zeros(n, int),
                       remove_edges=False)
    assert edit_distance(graph, out) == out.num_edges - graph.num_edges
