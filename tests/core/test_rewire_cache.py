"""LRU semantics and hit/miss accounting of the (k, d) rewire memos."""

import numpy as np
import pytest

from repro.core import RareConfig, TopologyEnv
from repro.datasets import planted_partition_graph
from repro.entropy import RelativeEntropy, build_entropy_sequences
from repro.gnn import Trainer, build_backbone
from repro.graph import random_split
from repro.rl.vector import VecTopologyEnv


def make_env(vec=False, num_envs=2, **config_overrides):
    graph = planted_partition_graph(
        num_nodes=24, homophily=0.3, feature_signal=0.4, num_features=8, seed=0
    )
    split = random_split(graph.labels, np.random.default_rng(0))
    entropy = RelativeEntropy.from_graph(graph, lam=1.0)
    sequences = build_entropy_sequences(graph, entropy, max_candidates=6)
    config = RareConfig(
        k_max=4, d_max=4, max_candidates=6, horizon=3, **config_overrides
    )
    model = build_backbone(
        "gcn", graph.num_features, graph.num_classes,
        hidden=8, rng=np.random.default_rng(0),
    )
    trainer = Trainer(model, lr=0.05)
    if vec:
        env = VecTopologyEnv(graph, sequences, model, trainer, split, config,
                             num_envs=num_envs, co_train=False)
    else:
        env = TopologyEnv(graph, sequences, model, trainer, split, config,
                          co_train=False)
    return env, graph


def state(graph, i):
    """A distinct (k, d) state per ``i``."""
    n = graph.num_nodes
    k = np.zeros(n, dtype=np.int64)
    d = np.zeros(n, dtype=np.int64)
    k[i % n] = 1 + (i % 2)
    d[(i * 5 + 1) % n] = 1
    return k, d


def test_hit_refreshes_recency_true_lru():
    """A revisited entry must survive eviction (the old FIFO aged it out)."""
    env, graph = make_env()
    env.REWIRE_CACHE_LIMIT = 3  # shadow the class attribute
    graphs = [env._rewired(*state(graph, i)) for i in range(3)]  # fill
    misses = env._rewire_misses
    assert env._rewired(*state(graph, 0)) is graphs[0]  # refresh entry 0
    assert env._rewire_hits == 1 and env._rewire_misses == misses
    env._rewired(*state(graph, 3))  # evicts entry 1 (LRU), not entry 0
    assert env._rewired(*state(graph, 0)) is graphs[0]  # still cached
    assert env._rewire_misses == misses + 1
    env._rewired(*state(graph, 1))  # entry 1 was evicted: a fresh miss
    assert env._rewire_misses == misses + 2


def test_eviction_order_follows_recency_not_insertion():
    env, graph = make_env()
    env.REWIRE_CACHE_LIMIT = 2
    g0 = env._rewired(*state(graph, 0))
    env._rewired(*state(graph, 1))
    env._rewired(*state(graph, 0))          # 0 becomes most-recent
    env._rewired(*state(graph, 2))          # evicts 1, keeps hot 0
    assert env._rewired(*state(graph, 0)) is g0
    hits = env._rewire_hits
    env._rewired(*state(graph, 1))          # re-inserted: miss
    assert env._rewire_hits == hits


def test_accounting_across_resets_and_limit_boundary():
    env, graph = make_env()
    n = graph.num_nodes
    action = np.full(2 * n, 2)  # k = d = 1 everywhere (clamped)
    env.reset()
    env.step(action)
    assert (env._rewire_misses, env._rewire_hits) == (1, 0)
    env.reset()  # the memo survives resets (keyed on the immutable base)
    env.step(action)
    assert (env._rewire_misses, env._rewire_hits) == (1, 1)

    # Drive the memo past its bound: the population never exceeds the
    # limit and every new state is an honest miss.
    env.REWIRE_CACHE_LIMIT = 4
    for i in range(10):
        env._rewired(*state(graph, i))
    assert len(env._rewire_cache) <= 4
    assert env._rewire_misses == 11
    # The last inserted states are resident, the earliest are gone.
    hits = env._rewire_hits
    assert env._rewired(*state(graph, 9)) is not None
    assert env._rewire_hits == hits + 1


def test_vec_env_shared_memo_is_lru_too():
    env, graph = make_env(vec=True, num_envs=2)
    env._rewire_cache_limit = 3
    graphs = [env._rewired(*state(graph, i)) for i in range(3)]
    env._rewired(*state(graph, 0))          # refresh
    env._rewired(*state(graph, 3))          # evicts state 1
    misses = env._rewire_misses
    assert env._rewired(*state(graph, 0)) is graphs[0]
    assert env._rewire_misses == misses
    env._rewired(*state(graph, 1))
    assert env._rewire_misses == misses + 1
