"""Property tests: the vectorized CSR fast paths are byte-identical to the
seed's per-node reference implementations.

Each hypothesis example draws a random graph and a random ``(k, d)`` state
and checks three layers of the engine against their reference twins:

* ``degree_profiles`` vs ``degree_profiles_reference`` — exact array
  equality (same values, same summation order, same padding).
* ``build_entropy_sequences`` vs ``build_entropy_sequences_reference`` —
  both fed the *same* precomputed entropy-row matrix so the comparison
  isolates the ranking logic from last-ulp BLAS differences between batched
  GEMM and per-row GEMV.
* ``rewire_graph`` vs ``rewire_graph_reference`` — identical edge-key
  arrays (and therefore identical edge sets) for every (k, d) and every
  add/remove gating.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import clamp_state, rewire_graph, rewire_graph_reference
from repro.datasets import planted_partition_graph
from repro.entropy import (
    RelativeEntropy,
    assert_rankings_match,
    build_entropy_sequences,
    build_entropy_sequences_reference,
    degree_profiles,
    degree_profiles_reference,
)


def make_setup(seed: int, num_nodes: int, homophily: float, lam: float,
               max_candidates: int):
    graph = planted_partition_graph(
        num_nodes=num_nodes, homophily=homophily, seed=seed
    )
    entropy = RelativeEntropy.from_graph(graph, lam=lam)
    H = entropy.matrix(block=16)  # same blocked rows both builders consume
    fast = build_entropy_sequences(
        graph, entropy, max_candidates=max_candidates, block_size=16, H=H
    )
    ref = build_entropy_sequences_reference(
        graph, entropy, max_candidates=max_candidates, H=H
    )
    return graph, entropy, fast, ref


graph_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),       # seed
    st.integers(min_value=10, max_value=60),          # num_nodes
    st.floats(min_value=0.05, max_value=0.95),        # homophily
    st.sampled_from([0.0, 0.5, 1.0, 2.0]),            # lambda
    st.integers(min_value=1, max_value=12),           # max_candidates
)


@settings(max_examples=25, deadline=None)
@given(graph_params)
def test_degree_profiles_byte_identical(params):
    seed, n, hom, _, _ = params
    graph = planted_partition_graph(num_nodes=n, homophily=hom, seed=seed)
    for max_len in (None, 2, 5):
        fast = degree_profiles(graph, max_len=max_len)
        ref = degree_profiles_reference(graph, max_len=max_len)
        np.testing.assert_array_equal(fast, ref)


@settings(max_examples=25, deadline=None)
@given(graph_params)
def test_entropy_sequences_byte_identical(params):
    graph, _, fast, ref = make_setup(*params)
    np.testing.assert_array_equal(fast.remote, ref.remote)
    np.testing.assert_array_equal(fast.remote_scores, ref.remote_scores)
    assert len(fast.neighbors) == len(ref.neighbors) == graph.num_nodes
    for a, b in zip(fast.neighbors, ref.neighbors):
        np.testing.assert_array_equal(a, b)
    for a, b in zip(fast.neighbor_scores, ref.neighbor_scores):
        np.testing.assert_array_equal(a, b)


@settings(max_examples=25, deadline=None)
@given(
    graph_params,
    st.lists(st.integers(min_value=0, max_value=8), min_size=60, max_size=60),
    st.lists(st.integers(min_value=0, max_value=8), min_size=60, max_size=60),
    st.sampled_from([(True, True), (True, False), (False, True)]),
)
def test_rewire_byte_identical(params, ks, ds, gates):
    graph, _, fast_seqs, ref_seqs = make_setup(*params)
    n = graph.num_nodes
    add, remove = gates
    k, d = clamp_state(
        np.array(ks[:n]), np.array(ds[:n]), graph, fast_seqs, 8, 8
    )
    out_fast = rewire_graph(
        graph, fast_seqs, k, d, add_edges=add, remove_edges=remove
    )
    out_ref = rewire_graph_reference(
        graph, ref_seqs, k, d, add_edges=add, remove_edges=remove
    )
    np.testing.assert_array_equal(out_fast.edge_keys(), out_ref.edge_keys())
    assert out_fast.edges == out_ref.edges
    assert out_fast == out_ref


@settings(max_examples=15, deadline=None)
@given(graph_params)
def test_unclamped_extreme_states_agree(params):
    """k beyond max_candidates and d beyond degree take everything available."""
    graph, _, fast_seqs, ref_seqs = make_setup(*params)
    n = graph.num_nodes
    k = np.full(n, 100, dtype=np.int64)
    d = np.full(n, 100, dtype=np.int64)
    out_fast = rewire_graph(graph, fast_seqs, k, d)
    out_ref = rewire_graph_reference(graph, ref_seqs, k, d)
    assert out_fast.edges == out_ref.edges


def test_sequences_agree_without_shared_rows():
    """Smoke check: when each builder computes its own entropy rows, the
    rankings agree everywhere the scores are strictly separated.

    The tiled JS kernel and the per-row formula differ in float summation
    order, so *exact* score ties (structurally identical nodes, common in
    planted graphs) may resolve to a different — equally correct — candidate
    order; those positions are excluded.  Byte-identical output under shared
    rows is covered by the hypothesis tests above."""
    graph = planted_partition_graph(num_nodes=50, homophily=0.3, seed=3)
    entropy = RelativeEntropy.from_graph(graph, lam=1.0)
    fast = build_entropy_sequences(graph, entropy, max_candidates=10)
    ref = build_entropy_sequences_reference(graph, entropy, max_candidates=10)
    assert assert_rankings_match(fast, ref) > 0


def test_neighbor_csr_matches_lists():
    graph = planted_partition_graph(num_nodes=40, homophily=0.4, seed=1)
    entropy = RelativeEntropy.from_graph(graph, lam=1.0)
    for seqs in (
        build_entropy_sequences(graph, entropy, max_candidates=6),
        build_entropy_sequences_reference(graph, entropy, max_candidates=6),
    ):
        indptr, flat = seqs.neighbor_csr()
        assert indptr.shape == (graph.num_nodes + 1,)
        for v in range(graph.num_nodes):
            np.testing.assert_array_equal(
                flat[indptr[v] : indptr[v + 1]], seqs.neighbors[v]
            )
