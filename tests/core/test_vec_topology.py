"""Tests for the batched topology MDP (`repro.rl.vector.VecTopologyEnv`).

The contract under test: with ``B = 1`` every observation, reward, done and
info is byte-identical to the sequential :class:`TopologyEnv`; with
``B > 1`` the stacked reward evaluation agrees with per-episode evaluation
to floating-point noise, and the core batching hooks (clamp, observation
template) agree with their sequential twins exactly.
"""

import numpy as np
import pytest

from repro.core import (
    OBS_DIM,
    RareConfig,
    TopologyEnv,
    build_observation,
    clamp_state,
    clamp_state_batch,
    fill_observation,
    observation_template,
)
from repro.datasets import planted_partition_graph
from repro.entropy import RelativeEntropy, build_entropy_sequences
from repro.gnn import Trainer, build_backbone
from repro.graph import random_split
from repro.rl import PPO, NodePolicy, PPOConfig
from repro.rl.vector import VecTopologyEnv


def make_parts(num_nodes=40, **config_overrides):
    """Fresh (graph, sequences, model, trainer, split, config) — identical
    across calls, so twin envs start from the same model bytes."""
    graph = planted_partition_graph(
        num_nodes=num_nodes, homophily=0.3, feature_signal=0.4,
        num_features=32, seed=0,
    )
    split = random_split(graph.labels, np.random.default_rng(0))
    entropy = RelativeEntropy.from_graph(graph, lam=1.0)
    sequences = build_entropy_sequences(graph, entropy, max_candidates=8)
    config_overrides.setdefault("horizon", 4)
    config = RareConfig(
        k_max=4, d_max=4, max_candidates=8, **config_overrides
    )
    model = build_backbone(
        "gcn", graph.num_features, graph.num_classes,
        hidden=16, rng=np.random.default_rng(0),
    )
    trainer = Trainer(model, lr=0.05)
    return graph, sequences, model, trainer, split, config


# ---------------------------------------------------------------------------
# Core batching hooks
# ---------------------------------------------------------------------------
def test_clamp_state_batch_matches_rows():
    graph, sequences, *_ , config = make_parts()
    rng = np.random.default_rng(0)
    B, n = 5, graph.num_nodes
    k = rng.integers(-3, 9, (B, n))
    d = rng.integers(-3, 9, (B, n))
    kb, db = clamp_state_batch(k, d, graph, sequences, 4, 4)
    for b in range(B):
        ks, ds = clamp_state(k[b], d[b], graph, sequences, 4, 4)
        np.testing.assert_array_equal(kb[b], ks)
        np.testing.assert_array_equal(db[b], ds)


def test_observation_template_composes_build_observation():
    graph, sequences, _, _, _, config = make_parts()
    n = graph.num_nodes
    rng = np.random.default_rng(1)
    k = rng.integers(0, 5, n)
    d = rng.integers(0, 5, n)
    template = observation_template(graph, sequences, config)
    assert (template[:, 0] == 0).all() and (template[:, 1] == 0).all()
    np.testing.assert_array_equal(
        fill_observation(template, k, d, config),
        build_observation(k, d, graph, sequences, config),
    )
    # Batched fill: row b equals the sequential observation for state b.
    kb = rng.integers(0, 5, (3, n))
    db = rng.integers(0, 5, (3, n))
    out = np.empty((3, n, OBS_DIM))
    fill_observation(template, kb, db, config, out=out)
    for b in range(3):
        np.testing.assert_array_equal(
            out[b], build_observation(kb[b], db[b], graph, sequences, config)
        )


# ---------------------------------------------------------------------------
# B = 1: byte-identical twin of TopologyEnv
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("co_train", [False, True])
def test_b1_step_stream_byte_identical(co_train):
    env = TopologyEnv(*make_parts(), co_train=co_train)
    venv = VecTopologyEnv(*make_parts(), num_envs=1, co_train=co_train, seed=0)
    n = env.base_graph.num_nodes

    obs_s = env.reset()
    obs_v = venv.reset()
    np.testing.assert_array_equal(obs_s, obs_v[0])

    rng = np.random.default_rng(3)
    for _ in range(6):  # crosses one episode boundary (horizon=4)
        action = rng.integers(0, 3, 2 * n)
        obs_s, rew_s, done_s, info_s = env.step(action)
        obs_v, rew_v, done_v, info_v = venv.step(action[None])
        assert rew_s == rew_v[0]
        assert done_s == bool(done_v[0])
        for key, val in info_s.items():
            assert info_v[0][key] == val
        if done_s:
            np.testing.assert_array_equal(
                obs_s, info_v[0]["terminal_observation"]
            )
            obs_s = env.reset()
        np.testing.assert_array_equal(obs_s, obs_v[0])
        np.testing.assert_array_equal(env.k, venv.k[0])
        np.testing.assert_array_equal(env.d, venv.d[0])


def test_b1_auc_reward_variant_matches():
    env = TopologyEnv(*make_parts(reward="auc"), co_train=False)
    venv = VecTopologyEnv(
        *make_parts(reward="auc"), num_envs=1, co_train=False, seed=0
    )
    n = env.base_graph.num_nodes
    env.reset()
    venv.reset()
    rng = np.random.default_rng(0)
    for _ in range(3):
        action = rng.integers(0, 3, 2 * n)
        _, rew_s, _, _ = env.step(action)
        _, rew_v, _, _ = venv.step(action[None])
        assert rew_s == rew_v[0]


# ---------------------------------------------------------------------------
# B > 1: batch semantics
# ---------------------------------------------------------------------------
def test_stacked_rewards_match_loop_evaluation():
    B = 4
    va = VecTopologyEnv(*make_parts(), num_envs=B, co_train=False, seed=0,
                        reward_batching="stacked")
    vb = VecTopologyEnv(*make_parts(), num_envs=B, co_train=False, seed=0,
                        reward_batching="loop")
    np.testing.assert_array_equal(va.reset(), vb.reset())
    for _ in range(4):
        actions = va.sample_actions()
        obs_a, rew_a, done_a, _ = va.step(actions)
        obs_b, rew_b, done_b, _ = vb.step(actions)
        np.testing.assert_array_equal(obs_a, obs_b)
        np.testing.assert_allclose(rew_a, rew_b, rtol=1e-9, atol=1e-12)
        np.testing.assert_array_equal(done_a, done_b)


def test_batched_episodes_match_independent_sequential_envs():
    """Each batch slot replays exactly the episode a sequential env would
    produce under the same actions (co_train off = fixed shared model)."""
    B = 3
    venv = VecTopologyEnv(*make_parts(), num_envs=B, co_train=False, seed=0)
    parts = make_parts()
    seq_envs = [
        TopologyEnv(*parts, co_train=False) for _ in range(B)
    ]
    venv.reset()
    for env in seq_envs:
        env.reset()
    rng = np.random.default_rng(7)
    n = venv.base_graph.num_nodes
    for _ in range(3):
        actions = rng.integers(0, 3, (B, 2 * n))
        obs_v, rew_v, _, _ = venv.step(actions)
        for b, env in enumerate(seq_envs):
            obs_s, rew_s, _, _ = env.step(actions[b])
            np.testing.assert_array_equal(obs_s, obs_v[b])
            assert rew_s == pytest.approx(rew_v[b], rel=1e-9, abs=1e-12)


def test_autoreset_and_episode_infos():
    B = 2
    venv = VecTopologyEnv(*make_parts(horizon=2), num_envs=B, co_train=False,
                          seed=0)
    venv.reset()
    venv.step(venv.sample_actions())
    obs, rewards, dones, infos = venv.step(venv.sample_actions())
    assert dones.all()
    for b in range(B):
        assert infos[b]["episode"]["l"] == 2
        assert "terminal_observation" in infos[b]
    # Fresh episodes: state cleared, observation is the S_0 template.
    assert (venv.t == 0).all()
    assert (venv.k == 0).all() and (venv.d == 0).all()
    assert (obs[:, :, 0] == 0).all() and (obs[:, :, 1] == 0).all()
    assert all(g is venv.base_graph for g in venv.current_graphs)
    # Histories accumulate across episodes, like the sequential env.
    assert all(len(h) == 2 for h in venv.histories)
    venv.reset()
    assert all(len(h) == 2 for h in venv.histories)
    venv.clear_history()
    assert all(len(h) == 0 for h in venv.histories)


def test_shared_rewire_memo_across_envs():
    """Two episodes reaching the same (k, d) state share one Graph."""
    B = 2
    venv = VecTopologyEnv(*make_parts(), num_envs=B, co_train=False, seed=0)
    venv.reset()
    n = venv.base_graph.num_nodes
    same = np.tile(np.full(2 * n, 2), (B, 1))  # both increment everything
    venv.step(same)
    assert venv.current_graphs[0] is venv.current_graphs[1]
    assert venv._rewire_misses == 1
    assert venv._rewire_hits >= 1


def test_seed_spawns_stable_per_episode_streams():
    """Episode b's random stream is one function of (base seed, b): the
    same for any batch width that includes it."""
    a = VecTopologyEnv(*make_parts(), num_envs=2, co_train=False, seed=11)
    b = VecTopologyEnv(*make_parts(), num_envs=4, co_train=False, seed=11)
    sa = a.sample_actions()
    sb = b.sample_actions()
    np.testing.assert_array_equal(sa, sb[:2])
    # Reseeding reproduces the stream; distinct seeds diverge.
    a.reset(seed=11)
    np.testing.assert_array_equal(a.sample_actions(), sa)
    a.reset(seed=12)
    assert not np.array_equal(a.sample_actions(), sa)


def test_sequential_env_seed_plumbing():
    env = TopologyEnv(*make_parts(), co_train=False, seed=4)
    first = env.sample_action()
    env.reset(seed=4)
    np.testing.assert_array_equal(env.sample_action(), first)
    assert env.action_space.contains(first)


def test_validation_errors():
    parts = make_parts()
    with pytest.raises(ValueError, match="num_envs"):
        VecTopologyEnv(*parts, num_envs=0)
    with pytest.raises(ValueError, match="reward_batching"):
        VecTopologyEnv(*parts, num_envs=2, reward_batching="turbo")
    venv = VecTopologyEnv(*parts, num_envs=2, co_train=False, seed=0)
    with pytest.raises(ValueError, match="actions"):
        venv.step(np.zeros((2, 3), dtype=int))


def test_rare_config_num_envs_validation():
    with pytest.raises(ValueError, match="num_envs"):
        RareConfig(num_envs=0)
    with pytest.raises(ValueError, match="vectorized"):
        RareConfig(num_envs=4, rl_algorithm="reinforce")
    assert RareConfig(num_envs=4).num_envs == 4


# ---------------------------------------------------------------------------
# Acceptance: PPO through the B = 1 vectorized path is the reference run
# ---------------------------------------------------------------------------
def test_ppo_vectorized_b1_training_byte_identical():
    env = TopologyEnv(*make_parts(num_nodes=30, horizon=3), co_train=True)
    ppo_a = PPO(
        NodePolicy(obs_dim=OBS_DIM, hidden=16, rng=np.random.default_rng(1)),
        PPOConfig(update_epochs=1),
        rng=np.random.default_rng(2),
    )
    ppo_a.learn(env, total_steps=6, rollout_steps=3)

    venv = VecTopologyEnv(
        *make_parts(num_nodes=30, horizon=3), num_envs=1, co_train=True, seed=0
    )
    ppo_b = PPO(
        NodePolicy(obs_dim=OBS_DIM, hidden=16, rng=np.random.default_rng(1)),
        PPOConfig(update_epochs=1),
        rng=np.random.default_rng(2),
    )
    ppo_b.learn(venv, total_steps=6, rollout_steps=3)

    for p_a, p_b in zip(ppo_a.policy.parameters(), ppo_b.policy.parameters()):
        np.testing.assert_array_equal(p_a.data, p_b.data)
    assert ppo_a.history == ppo_b.history


def test_graphrare_fit_with_num_envs():
    """Framework integration: the vectorized collection path produces a
    valid result end to end."""
    from repro.core import GraphRARE

    graph = planted_partition_graph(
        num_nodes=40, num_classes=3, homophily=0.25,
        feature_signal=0.5, num_features=32, seed=0,
    )
    split = random_split(graph.labels, np.random.default_rng(0))
    cfg = RareConfig(
        k_max=3, d_max=3, max_candidates=8, episodes=4, horizon=3,
        num_envs=2, final_epochs=20, final_patience=6, seed=0,
    )
    result = GraphRARE("gcn", cfg).fit(graph, split, train_baseline=False)
    assert 0.0 <= result.test_acc <= 1.0
    # ceil(4 episodes / 2 envs) = 2 update iterations.
    assert len(result.episode_rewards) == 2
