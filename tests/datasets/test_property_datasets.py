"""Hypothesis property tests for the dataset generators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import DatasetSpec, build_synthetic_graph, sample_edges
from repro.graph import homophily_ratio


@settings(max_examples=15, deadline=None)
@given(
    homophily=st.floats(min_value=0.05, max_value=0.95),
    num_classes=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=10),
)
def test_generated_homophily_tracks_target(homophily, num_classes, seed):
    spec = DatasetSpec(
        name="prop",
        num_nodes=150,
        num_edges=600,
        num_features=16,
        num_classes=num_classes,
        homophily=homophily,
    )
    graph = build_synthetic_graph(spec, seed=seed)
    assert abs(homophily_ratio(graph) - homophily) < 0.1


@settings(max_examples=15, deadline=None)
@given(scale=st.floats(min_value=0.05, max_value=1.0))
def test_scaled_spec_invariants(scale):
    spec = DatasetSpec(
        name="prop",
        num_nodes=1000,
        num_edges=5000,
        num_features=100,
        num_classes=4,
        homophily=0.4,
    )
    small = spec.scaled(scale)
    assert small.num_nodes >= 40
    assert small.num_features >= 32
    assert small.homophily == spec.homophily
    assert small.num_classes == spec.num_classes
    # Mean degree preserved within rounding.
    if small.num_nodes > 40:
        before = spec.num_edges / spec.num_nodes
        after = small.num_edges / small.num_nodes
        assert abs(before - after) < 1.0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50))
def test_edges_always_canonical_and_in_range(seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 3, 80)
    edges = sample_edges(labels, 200, 0.3, rng)
    for u, v in edges:
        assert 0 <= u < v < 80
