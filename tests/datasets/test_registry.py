"""Tests for the Table II dataset registry."""

import numpy as np
import pytest

from repro.datasets import (
    ALL_DATASETS,
    HETEROPHILIC,
    HOMOPHILIC,
    SPECS,
    dataset_names,
    get_spec,
    load_dataset,
)
from repro.graph import homophily_ratio

# Table II of the paper.
TABLE2 = {
    "chameleon": (2277, 36101, 2325, 5, 0.23),
    "squirrel": (5201, 217073, 2089, 5, 0.22),
    "cornell": (183, 295, 1703, 5, 0.30),
    "texas": (183, 309, 1703, 5, 0.11),
    "wisconsin": (251, 499, 1703, 5, 0.21),
    "cora": (2708, 5429, 1433, 7, 0.81),
    "pubmed": (19717, 44338, 500, 3, 0.80),
}


def test_registry_matches_table2():
    for name, (n, e, d, c, h) in TABLE2.items():
        spec = SPECS[name]
        assert spec.num_nodes == n
        assert spec.num_edges == e
        assert spec.num_features == d
        assert spec.num_classes == c
        assert spec.homophily == pytest.approx(h)


def test_dataset_names_order():
    assert dataset_names() == HETEROPHILIC + HOMOPHILIC
    assert set(ALL_DATASETS) == set(TABLE2)


def test_get_spec_unknown_raises():
    with pytest.raises(ValueError, match="unknown dataset"):
        get_spec("citeseer")


def test_get_spec_case_insensitive():
    assert get_spec("Cornell").name == "cornell"


@pytest.mark.parametrize("name", ["cornell", "texas", "wisconsin"])
def test_load_small_datasets_full_scale(name):
    g = load_dataset(name, scale=1.0, seed=0)
    n, e, d, c, h = TABLE2[name]
    assert g.num_nodes == n
    assert g.num_edges == e
    assert g.num_features == d
    assert abs(homophily_ratio(g) - h) < 0.08


@pytest.mark.parametrize("name", ALL_DATASETS)
def test_load_scaled_datasets_preserve_homophily(name):
    g = load_dataset(name, scale=0.05, seed=0)
    target = SPECS[name].homophily
    assert abs(homophily_ratio(g) - target) < 0.12
    assert g.num_nodes >= 40
    assert (np.bincount(g.labels) >= 3).all()


def test_load_dataset_deterministic():
    a = load_dataset("cornell", scale=0.5, seed=1)
    b = load_dataset("cornell", scale=0.5, seed=1)
    assert a == b


def test_chameleon_denser_than_webkb():
    cham = get_spec("chameleon")
    corn = get_spec("cornell")
    assert cham.num_edges / cham.num_nodes > 5 * corn.num_edges / corn.num_nodes
