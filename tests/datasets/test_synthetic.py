"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    DatasetSpec,
    build_synthetic_graph,
    generate_features,
    generate_labels,
    planted_partition_graph,
    sample_edges,
)
from repro.graph import homophily_ratio


def small_spec(**overrides):
    base = dict(
        name="toy",
        num_nodes=300,
        num_edges=1200,
        num_features=64,
        num_classes=4,
        homophily=0.3,
    )
    base.update(overrides)
    return DatasetSpec(**base)


# ---------------------------------------------------------------------------
# Labels
# ---------------------------------------------------------------------------
def test_labels_cover_all_classes():
    labels = generate_labels(200, 5, np.random.default_rng(0))
    assert set(np.unique(labels)) == set(range(5))


def test_labels_min_three_per_class():
    labels = generate_labels(40, 8, np.random.default_rng(3))
    counts = np.bincount(labels, minlength=8)
    assert (counts >= 3).all()


def test_labels_deterministic():
    a = generate_labels(100, 3, np.random.default_rng(5))
    b = generate_labels(100, 3, np.random.default_rng(5))
    np.testing.assert_array_equal(a, b)


# ---------------------------------------------------------------------------
# Edges
# ---------------------------------------------------------------------------
def test_sample_edges_count_and_validity():
    labels = generate_labels(200, 4, np.random.default_rng(0))
    edges = sample_edges(labels, 800, 0.3, np.random.default_rng(0))
    assert len(edges) == 800
    for u, v in edges:
        assert u < v
        assert 0 <= u < 200 and 0 <= v < 200


def test_sample_edges_hits_target_homophily():
    labels = generate_labels(400, 4, np.random.default_rng(1))
    for target in (0.1, 0.5, 0.9):
        edges = sample_edges(labels, 2000, target, np.random.default_rng(2))
        same = np.mean([labels[u] == labels[v] for u, v in edges])
        assert abs(same - target) < 0.06, f"target {target}, got {same}"


def test_sample_edges_invalid_homophily():
    labels = np.array([0, 1, 0, 1])
    with pytest.raises(ValueError):
        sample_edges(labels, 2, 1.5, np.random.default_rng(0))


def test_degree_sigma_controls_tail():
    labels = generate_labels(500, 3, np.random.default_rng(0))
    flat = sample_edges(labels, 2000, 0.5, np.random.default_rng(0), degree_sigma=0.1)
    heavy = sample_edges(labels, 2000, 0.5, np.random.default_rng(0), degree_sigma=1.5)

    def max_degree(edges):
        deg = np.zeros(500)
        for u, v in edges:
            deg[u] += 1
            deg[v] += 1
        return deg.max()

    assert max_degree(heavy) > max_degree(flat)


# ---------------------------------------------------------------------------
# Features
# ---------------------------------------------------------------------------
def test_features_binary_and_no_empty_rows():
    labels = generate_labels(150, 3, np.random.default_rng(0))
    X = generate_features(labels, 64, np.random.default_rng(0))
    assert set(np.unique(X)) <= {0.0, 1.0}
    assert (X.sum(axis=1) > 0).all()


def test_features_class_signal():
    # Same-class nodes must be more feature-similar than cross-class pairs.
    labels = np.repeat([0, 1], 100)
    X = generate_features(labels, 128, np.random.default_rng(0), signal=0.4)
    mean0 = X[labels == 0].mean(axis=0)
    mean1 = X[labels == 1].mean(axis=0)
    within = mean0 @ mean0
    across = mean0 @ mean1
    assert within > 1.5 * across


def test_feature_signal_zero_is_uninformative():
    labels = np.repeat([0, 1], 200)
    X = generate_features(labels, 64, np.random.default_rng(0), signal=0.0, noise=0.2)
    mean0 = X[labels == 0].mean(axis=0)
    mean1 = X[labels == 1].mean(axis=0)
    assert np.abs(mean0 - mean1).max() < 0.15


# ---------------------------------------------------------------------------
# Full builds
# ---------------------------------------------------------------------------
def test_build_synthetic_graph_matches_spec():
    spec = small_spec()
    g = build_synthetic_graph(spec, seed=0)
    assert g.num_nodes == spec.num_nodes
    assert g.num_edges == spec.num_edges
    assert g.num_features == spec.num_features
    assert g.num_classes == spec.num_classes
    assert abs(homophily_ratio(g) - spec.homophily) < 0.07


def test_build_synthetic_graph_deterministic():
    spec = small_spec()
    assert build_synthetic_graph(spec, seed=3) == build_synthetic_graph(spec, seed=3)


def test_build_synthetic_graph_seed_changes_graph():
    spec = small_spec()
    assert build_synthetic_graph(spec, seed=0) != build_synthetic_graph(spec, seed=1)


def test_scaled_spec_preserves_mean_degree():
    spec = small_spec(num_nodes=1000, num_edges=5000)
    small = spec.scaled(0.2)
    assert small.num_nodes == 200
    assert abs(small.num_edges / small.num_nodes - 5.0) < 0.1


def test_scaled_spec_bounds():
    spec = small_spec()
    with pytest.raises(ValueError):
        spec.scaled(0.0)
    with pytest.raises(ValueError):
        spec.scaled(1.5)
    assert spec.scaled(1.0) is spec


def test_planted_partition_graph_strong_structure():
    g = planted_partition_graph(num_nodes=90, homophily=0.85, seed=0)
    assert homophily_ratio(g) > 0.7
    assert g.num_classes == 3
