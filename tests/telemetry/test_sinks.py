"""JSONL sink, schema validator and report rendering."""

import json

import pytest

from repro.telemetry import (
    Telemetry,
    render_report,
    report_from_events,
    use_telemetry,
    validate_event,
    validate_lines,
)


def make_session(tmp_path=None):
    path = str(tmp_path / "run.jsonl") if tmp_path is not None else None
    tel = Telemetry(enabled=True, jsonl_path=path, run={"name": "unit"})
    with use_telemetry(tel):
        with tel.span("outer", hist="outer_s"):
            with tel.span("inner", engine="screened"):
                tel.count("widgets", 3)
                tel.observe("sizes", 5.0, buckets=(1.0, 10.0))
                tel.set_gauge("depth", 2.0)
    tel.close()
    return tel, path


def test_jsonl_stream_is_schema_valid(tmp_path):
    tel, path = make_session(tmp_path)
    lines = open(path).read().splitlines()
    events, errors = validate_lines(lines)
    assert errors == []
    types = [e["type"] for e in events]
    assert types[0] == "meta"
    assert events[0]["run"] == {"name": "unit"}
    assert types.count("span") == 2
    assert "counter" in types and "gauge" in types and "histogram" in types
    # Metric lines come after every span line (flushed by close()).
    assert max(i for i, t in enumerate(types) if t == "span") < min(
        i for i, t in enumerate(types) if t in ("counter", "gauge", "histogram")
    )


def test_close_is_idempotent(tmp_path):
    tel, path = make_session(tmp_path)
    tel.close()  # second close: no duplicate metric lines
    lines = open(path).read().splitlines()
    counters = [l for l in lines if json.loads(l)["type"] == "counter"]
    assert len(counters) == 1


def test_in_memory_events_match_file_events(tmp_path):
    tel, path = make_session(tmp_path)
    from_file = [json.loads(l) for l in open(path).read().splitlines()]
    assert tel.events() == from_file


def test_report_from_events_roundtrips(tmp_path):
    tel, path = make_session(tmp_path)
    events, errors = validate_lines(open(path).read().splitlines())
    assert not errors
    report = report_from_events(events)
    assert report == tel.report()
    assert "outer" in report and "inner" in report
    assert "widgets" in report and "sizes" in report


def test_validator_flags_bad_events():
    with pytest.raises(ValueError):
        validate_event({"type": "mystery", "v": 1})
    with pytest.raises(ValueError):
        validate_event({"type": "span", "v": 2})
    with pytest.raises(ValueError):
        validate_event({"type": "span", "v": 1})  # missing fields
    with pytest.raises(ValueError):
        validate_event({"type": "counter", "v": 1, "name": "c", "value": -1})
    with pytest.raises(ValueError):
        validate_event({
            "type": "histogram", "v": 1, "name": "h",
            "buckets": [2.0, 1.0], "counts": [0, 0, 0],
            "count": 0, "total": 0.0, "min": None, "max": None,
        })


def test_validate_lines_checks_stream_invariants():
    meta = json.dumps(
        {"type": "meta", "v": 1, "clock": "perf_counter", "run": {}}
    )
    span = {"type": "span", "v": 1, "id": 1, "parent": None, "name": "a",
            "start": 0.0, "dur": 0.1}
    # Child before parent is VALID (completion order).
    child_first = [
        meta,
        json.dumps({**span, "id": 2, "parent": 3}),
        json.dumps({**span, "id": 3}),
    ]
    events, errors = validate_lines(child_first)
    assert errors == []

    dup = [meta, json.dumps(span), json.dumps(span)]
    _, errors = validate_lines(dup)
    assert any("duplicate span id" in e for e in errors)

    orphan = [meta, json.dumps({**span, "parent": 99})]
    _, errors = validate_lines(orphan)
    assert any("never defined" in e for e in errors)

    no_meta = [json.dumps(span)]
    _, errors = validate_lines(no_meta)
    assert any("must start with a meta event" in e for e in errors)


def test_report_duration_suffix_convention():
    tel = Telemetry(enabled=True)
    with use_telemetry(tel):
        tel.observe("halo_size", 12.0, buckets=(4.0, 16.0))
        tel.observe("step_s", 0.012)
    report = render_report(tel.spans, tel.registry)
    # `_s` histograms render as durations; others as plain numbers.
    assert "12.00ms" in report
    assert "12.00s" not in report
