"""Unit tests for the counter/gauge/histogram registry."""

import pytest

from repro.telemetry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    StatsView,
)


def test_counter_increments():
    c = Counter("x")
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_histogram_summary_quantiles():
    h = Histogram("lat", buckets=(1.0, 2.0, 4.0, 8.0))
    for v in (0.5, 1.5, 1.5, 3.0, 7.0):
        h.observe(v)
    s = h.summary()
    assert s["count"] == 5
    assert s["min"] == 0.5 and s["max"] == 7.0
    assert s["total"] == pytest.approx(13.5)
    # p50 lands in the (1, 2] bucket, p99 in (4, 8].
    assert 1.0 <= s["p50"] <= 2.0
    assert 4.0 <= s["p99"] <= 8.0


def test_histogram_overflow_bucket():
    h = Histogram("lat", buckets=(1.0,))
    h.observe(100.0)
    assert h.counts[-1] == 1
    # Overflow quantiles interpolate between the last bound and the max.
    assert 1.0 <= h.quantile(0.5) <= 100.0


def test_histogram_merge_requires_identical_buckets():
    h = Histogram("lat", buckets=(1.0, 2.0))
    with pytest.raises(ValueError):
        h.merge_state({"buckets": [1.0], "counts": [0, 0], "count": 0,
                       "total": 0.0, "min": None, "max": None})


def test_registry_state_roundtrip_and_merge():
    a = MetricsRegistry()
    a.counter("n").inc(2)
    a.histogram("t", buckets=(1.0, 2.0)).observe(1.5)
    a.gauge("g").set(7.0)

    b = MetricsRegistry()
    b.counter("n").inc(3)
    b.histogram("t", buckets=(1.0, 2.0)).observe(0.5)
    b.gauge("g").set(9.0)

    a.merge_state(b.state())
    assert a.counter("n").value == 5
    assert a.histogram("t", buckets=(1.0, 2.0)).count == 2
    assert a.gauge("g").value == 9.0  # last write wins


def test_histogram_reregistration_with_other_buckets_rejected():
    reg = MetricsRegistry()
    reg.histogram("t", buckets=(1.0, 2.0))
    with pytest.raises(ValueError):
        reg.histogram("t", buckets=(1.0, 3.0))


def test_default_time_buckets_sorted_and_span_useful_range():
    assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)
    assert DEFAULT_TIME_BUCKETS[0] <= 1e-6
    assert DEFAULT_TIME_BUCKETS[-1] >= 10.0


def test_stats_view_is_live_readonly_mapping():
    counters = {"hits": Counter("hits"), "misses": Counter("misses")}
    view = StatsView(counters)
    assert view["hits"] == 0
    counters["hits"].inc(3)
    assert view["hits"] == 3
    assert dict(view) == {"hits": 3, "misses": 0}
    assert len(view) == 2
    with pytest.raises(TypeError):
        view["hits"] = 5
