"""Unit tests for spans, the session object and the no-op path."""

import pytest

from repro.telemetry import (
    NULL_SPAN,
    NULL_TELEMETRY,
    Telemetry,
    current_span,
    get_telemetry,
    telemetry_from_spec,
    traced,
    use_telemetry,
)


def span_names(tel):
    return [s["name"] for s in tel.spans]


def test_span_nesting_records_parent_ids():
    tel = Telemetry(enabled=True)
    with use_telemetry(tel):
        with tel.span("outer"):
            with tel.span("inner"):
                pass
    # Spans are recorded in completion order: inner closes first.
    assert span_names(tel) == ["inner", "outer"]
    inner, outer = tel.spans
    assert outer["parent"] is None
    assert inner["parent"] == outer["id"]
    assert inner["dur"] >= 0.0 and outer["dur"] >= inner["dur"]


def test_span_attrs_and_current_span():
    tel = Telemetry(enabled=True)
    with use_telemetry(tel):
        assert current_span() is None
        with tel.span("s", engine="screened") as span:
            assert current_span() is span
        assert current_span() is None
    assert tel.spans[0]["attrs"] == {"engine": "screened"}


def test_span_hist_observes_duration():
    tel = Telemetry(enabled=True)
    with use_telemetry(tel):
        with tel.span("step", hist="rl.step_s"):
            pass
    h = tel.registry.histograms["rl.step_s"]
    assert h.count == 1
    assert h.total == pytest.approx(tel.spans[0]["dur"])


def test_traced_decorator_uses_ambient_session():
    calls = []

    @traced("work", kind="unit")
    def work(x):
        calls.append(x)
        return x + 1

    tel = Telemetry(enabled=True)
    with use_telemetry(tel):
        assert work(1) == 2
    assert work(5) == 6  # outside any session: still runs, no record
    assert calls == [1, 5]
    assert span_names(tel) == ["work"]


def test_timed_span_measures_even_when_disabled():
    with NULL_TELEMETRY.timed_span("t") as span:
        pass
    assert span.duration >= 0.0
    assert NULL_TELEMETRY.spans == []


def test_disabled_session_is_pure_noop():
    tel = Telemetry(enabled=False)
    span = tel.span("x", hist="h")
    assert span is NULL_SPAN  # one shared singleton, no allocation
    assert tel.span("y") is NULL_SPAN
    with span:
        tel.count("c")
        tel.observe("h", 1.0)
        tel.set_gauge("g", 2.0)
    assert tel.spans == []
    assert tel.registry.counters == {}
    assert tel.registry.histograms == {}
    assert tel.registry.gauges == {}
    # The disabled counter() helper hands out unregistered instruments.
    c = tel.counter("c")
    c.inc()
    assert tel.registry.counters == {}


def test_get_telemetry_defaults_to_disabled_singleton():
    assert get_telemetry() is NULL_TELEMETRY
    tel = Telemetry(enabled=True)
    with use_telemetry(tel):
        assert get_telemetry() is tel
    assert get_telemetry() is NULL_TELEMETRY


def test_telemetry_from_spec():
    assert telemetry_from_spec(None) is NULL_TELEMETRY
    assert telemetry_from_spec("off") is NULL_TELEMETRY
    mem = telemetry_from_spec("on")
    assert mem.enabled and mem.jsonl_path is None
    mem2 = telemetry_from_spec("memory")
    assert mem2.enabled and mem2.jsonl_path is None


def test_span_cap_drops_and_counts(monkeypatch):
    import repro.telemetry.core as core

    monkeypatch.setattr(core, "MAX_SPANS", 2)
    tel = Telemetry(enabled=True)
    with use_telemetry(tel):
        for i in range(4):
            with tel.span(f"s{i}"):
                pass
    assert len(tel.spans) == 2
    assert tel.spans_dropped == 2


def test_export_absorb_reparents_roots():
    worker = Telemetry(enabled=True)
    with use_telemetry(worker):
        with worker.span("shard"):
            worker.count("rows")
    state = worker.export_state()

    parent = Telemetry(enabled=True)
    with use_telemetry(parent):
        with parent.span("build"):
            parent.absorb(state)
    names = {s["name"]: s for s in parent.spans}
    assert set(names) == {"shard", "build"}
    assert names["shard"]["parent"] == names["build"]["id"]
    assert parent.registry.counters["rows"].value == 1


def test_absorb_remaps_colliding_span_ids():
    a = Telemetry(enabled=True)
    with use_telemetry(a):
        with a.span("a"):
            pass
    b = Telemetry(enabled=True)
    with use_telemetry(b):
        with b.span("b"):
            pass
    a.absorb(b.export_state())
    ids = [s["id"] for s in a.spans]
    assert len(ids) == len(set(ids)) == 2


def _storage_hot_path(tmp_path):
    """Drive every instrumented out-of-core path once; return its outputs."""
    import numpy as np

    from repro.datasets import planted_partition_graph
    from repro.entropy import RelativeEntropy
    from repro.graph.storage import (
        ScreenStateLoader,
        load_graph_bundle,
        save_entropy_sidecar,
        save_graph_bundle,
    )

    g = planted_partition_graph(num_nodes=30, num_classes=3, seed=0)
    path = str(tmp_path / "bundle")
    save_graph_bundle(g, path)
    save_entropy_sidecar(path, RelativeEntropy.from_graph(g, lam=1.0))
    mg = load_graph_bundle(path)
    mg.csr_row_slice(0, 10)
    mg.edge_key_slice(0, 10)
    mg.adjacency()
    ScreenStateLoader(path, max_candidates=4)()
    return np.asarray(mg.edge_keys())


def test_storage_instrumentation_disabled_is_pure_noop(tmp_path):
    # The default session is the disabled singleton: the whole storage
    # hot path (save, load, slices, materialise, shard-state load) must
    # leave it untouched — no spans, no registered instruments.
    assert get_telemetry() is NULL_TELEMETRY
    _storage_hot_path(tmp_path)
    assert NULL_TELEMETRY.spans == []
    assert NULL_TELEMETRY.registry.counters == {}
    assert NULL_TELEMETRY.registry.histograms == {}
    assert NULL_TELEMETRY.registry.gauges == {}


def test_storage_instrumentation_enabled_records(tmp_path):
    tel = Telemetry(enabled=True)
    with use_telemetry(tel):
        _storage_hot_path(tmp_path)
    counters = tel.registry.counters
    assert counters["storage.bytes_written"].value > 0
    assert counters["storage.bytes_read"].value > 0
    assert counters["storage.rows_streamed"].value >= 20
    assert counters["storage.shard_loads"].value == 1
    assert counters["storage.materialize.adjacency"].value == 1
    assert tel.registry.histograms["io.read_s"].count >= 1
    names = {s["name"] for s in tel.spans}
    assert {"storage.save", "storage.load", "storage.state_load"} <= names
