"""Worker-pool telemetry merge: deterministic and lossless.

The tentpole contract for sharded execution (``repro.entropy.screening
.run_sharded``) is that the observability stream — spans, counters,
histograms — is byte-for-byte independent of worker count and executor
flavour.  These tests pin that down both on a synthetic worker (where
the exact expected totals are known in closed form) and on the real
screened sequence builder across thread AND process pools.
"""

from collections import Counter as TallyCounter

import pytest

from repro.datasets import planted_partition_graph
from repro.entropy import RelativeEntropy, build_entropy_sequences
from repro.entropy.screening import run_sharded
from repro.telemetry import Telemetry, get_telemetry, use_telemetry


def _counting_worker(task):
    """Count one unit per task and ``hi - lo`` rows; returns the range sum."""
    lo, hi = task
    tel = get_telemetry()
    tel.count("test.tasks")
    tel.count("test.rows", hi - lo)
    tel.observe("test.volume", float(hi - lo), buckets=(4.0, 16.0, 64.0))
    return sum(range(lo, hi))


TASKS = [(0, 7), (7, 19), (19, 20), (20, 52)]


def _run_pool(num_workers, executor):
    tel = Telemetry(enabled=True)
    with use_telemetry(tel):
        with tel.span("build"):
            results = run_sharded(
                _counting_worker, TASKS, num_workers=num_workers,
                executor=executor,
            )
    return results, tel


@pytest.mark.parametrize(
    "num_workers,executor",
    [(1, "thread"), (2, "thread"), (4, "thread"),
     (2, "process"), (4, "process")],
)
def test_pool_merge_is_lossless(num_workers, executor):
    results, tel = _run_pool(num_workers, executor)
    assert results == [sum(range(lo, hi)) for lo, hi in TASKS]
    # Counters: every worker increment survives the merge.
    assert tel.registry.counters["test.tasks"].value == len(TASKS)
    assert tel.registry.counters["test.rows"].value == 52
    hist = tel.registry.histograms["test.volume"]
    assert hist.count == len(TASKS)
    assert hist.total == pytest.approx(52.0)
    # Spans: one shard span per task, all re-parented under "build".
    by_name = TallyCounter(s["name"] for s in tel.spans)
    assert by_name == {"entropy.shard": len(TASKS), "build": 1}
    build = next(s for s in tel.spans if s["name"] == "build")
    shards = [s for s in tel.spans if s["name"] == "entropy.shard"]
    assert all(s["parent"] == build["id"] for s in shards)


def test_pool_merge_is_deterministic_across_flavours():
    """Counters and span structure are identical for every pool shape."""
    baseline = None
    for num_workers, executor in [
        (1, "thread"), (3, "thread"), (3, "process")
    ]:
        _, tel = _run_pool(num_workers, executor)
        fingerprint = (
            {k: c.value for k, c in sorted(tel.registry.counters.items())},
            # Duration histograms (`_s`) hold wall-clock values; only the
            # value-carrying ones must be bit-identical across pools.
            {k: h.state() for k, h in sorted(tel.registry.histograms.items())
             if not k.endswith("_s")},
            [s["name"] for s in tel.spans],
        )
        if baseline is None:
            baseline = fingerprint
        else:
            assert fingerprint == baseline, (num_workers, executor)


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_screened_builder_counters_match_sequential(executor):
    """The real screened engine: pooled runs reproduce the serial stream."""
    graph = planted_partition_graph(num_nodes=90, num_features=12, seed=7)
    entropy = RelativeEntropy.from_graph(graph)

    def build(num_workers):
        tel = Telemetry(enabled=True)
        with use_telemetry(tel):
            seqs = build_entropy_sequences(
                graph, entropy, max_candidates=4, screening="on",
                num_workers=num_workers, executor=executor,
            )
        return seqs, tel

    seq_serial, tel_serial = build(1)
    seq_pooled, tel_pooled = build(3)
    assert (seq_pooled.remote == seq_serial.remote).all()
    serial_counts = {
        k: c.value for k, c in tel_serial.registry.counters.items()
    }
    pooled_counts = {
        k: c.value for k, c in tel_pooled.registry.counters.items()
    }
    assert serial_counts == pooled_counts
    assert serial_counts["entropy.screen.rows"] == graph.num_nodes
    assert TallyCounter(s["name"] for s in tel_serial.spans) == TallyCounter(
        s["name"] for s in tel_pooled.spans
    )
