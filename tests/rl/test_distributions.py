"""Tests for categorical / multi-discrete distributions."""

import numpy as np
import pytest

from repro.rl import Categorical, MultiDiscreteDistribution
from repro.tensor import Tensor

RNG = np.random.default_rng(0)


def test_categorical_rejects_1d_logits():
    with pytest.raises(ValueError):
        Categorical(Tensor(np.zeros(3)))


def test_probs_normalised():
    cat = Categorical(Tensor(RNG.standard_normal((5, 4))))
    np.testing.assert_allclose(cat.probs.sum(axis=-1), np.ones(5))


def test_sample_respects_support():
    cat = Categorical(Tensor(RNG.standard_normal((100, 3))))
    samples = cat.sample(np.random.default_rng(0))
    assert samples.shape == (100,)
    assert samples.min() >= 0 and samples.max() < 3


def test_sample_degenerate_distribution():
    logits = np.full((10, 3), -100.0)
    logits[:, 1] = 100.0
    cat = Categorical(Tensor(logits))
    np.testing.assert_array_equal(cat.sample(np.random.default_rng(0)), np.ones(10))


def test_sample_frequencies_match_probs():
    logits = np.log(np.array([[0.7, 0.2, 0.1]])).repeat(20000, axis=0)
    samples = Categorical(Tensor(logits)).sample(np.random.default_rng(0))
    freq = np.bincount(samples, minlength=3) / len(samples)
    np.testing.assert_allclose(freq, [0.7, 0.2, 0.1], atol=0.02)


def test_log_prob_matches_log_softmax():
    logits = RNG.standard_normal((4, 3))
    cat = Categorical(Tensor(logits))
    actions = np.array([0, 2, 1, 1])
    lp = cat.log_prob(actions).data
    shifted = logits - logits.max(axis=1, keepdims=True)
    ls = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    np.testing.assert_allclose(lp, ls[np.arange(4), actions])


def test_entropy_uniform_is_log_k():
    cat = Categorical(Tensor(np.zeros((2, 4))))
    np.testing.assert_allclose(cat.entropy().data, np.log(4.0))


def test_entropy_degenerate_near_zero():
    logits = np.zeros((1, 3))
    logits[0, 0] = 50.0
    assert Categorical(Tensor(logits)).entropy().data[0] < 1e-6


def test_log_prob_gradient_flows():
    logits = Tensor(RNG.standard_normal((3, 3)), requires_grad=True)
    cat = Categorical(logits)
    cat.log_prob(np.array([0, 1, 2])).sum().backward()
    assert logits.grad is not None
    # d/dlogits of sum log softmax picks = onehot - softmax per row.
    np.testing.assert_allclose(logits.grad.sum(axis=1), np.zeros(3), atol=1e-12)


def test_multidiscrete_joint_log_prob_is_sum():
    logits = RNG.standard_normal((6, 3))
    dist = MultiDiscreteDistribution(Tensor(logits))
    cat = Categorical(Tensor(logits))
    actions = np.array([0, 1, 2, 0, 1, 2])
    assert dist.log_prob(actions).item() == pytest.approx(
        cat.log_prob(actions).data.sum()
    )


def test_multidiscrete_entropy_is_sum():
    logits = RNG.standard_normal((4, 3))
    dist = MultiDiscreteDistribution(Tensor(logits))
    cat = Categorical(Tensor(logits))
    assert dist.entropy().item() == pytest.approx(cat.entropy().data.sum())


def test_multidiscrete_sample_shape():
    dist = MultiDiscreteDistribution(Tensor(RNG.standard_normal((8, 3))))
    assert dist.sample(np.random.default_rng(0)).shape == (8,)
