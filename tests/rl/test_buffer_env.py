"""Tests for the rollout buffer (GAE) and spaces."""

import numpy as np
import pytest

from repro.rl import MultiDiscreteSpace, RolloutBuffer


# ---------------------------------------------------------------------------
# Spaces
# ---------------------------------------------------------------------------
def test_space_sample_and_contains():
    space = MultiDiscreteSpace([3, 3, 5])
    rng = np.random.default_rng(0)
    for _ in range(20):
        a = space.sample(rng)
        assert space.contains(a)


def test_space_rejects_invalid():
    space = MultiDiscreteSpace([3, 3])
    assert not space.contains(np.array([3, 0]))
    assert not space.contains(np.array([0.5, 1.0]))
    assert not space.contains(np.array([0, 0, 0]))


def test_space_validation():
    with pytest.raises(ValueError):
        MultiDiscreteSpace([[3, 3]])
    with pytest.raises(ValueError):
        MultiDiscreteSpace([0, 3])


def test_space_repr():
    assert "4 x 3" in repr(MultiDiscreteSpace([3, 3, 3, 3]))


# ---------------------------------------------------------------------------
# Buffer / GAE
# ---------------------------------------------------------------------------
def make_buffer(rewards, values, dones, gamma=0.9, lam=0.8):
    buf = RolloutBuffer(gamma=gamma, gae_lambda=lam)
    for r, v, d in zip(rewards, values, dones):
        buf.add(np.zeros((2, 2)), np.zeros(4, dtype=int), r, v, 0.0, d)
    return buf


def reference_gae(rewards, values, dones, last_value, gamma, lam):
    n = len(rewards)
    adv = np.zeros(n)
    gae = 0.0
    for t in reversed(range(n)):
        next_v = 0.0 if dones[t] else (values[t + 1] if t + 1 < n else last_value)
        nonterm = 0.0 if dones[t] else 1.0
        delta = rewards[t] + gamma * next_v * nonterm - values[t]
        gae = delta + gamma * lam * nonterm * gae
        adv[t] = gae
    return adv


def test_gae_matches_reference_implementation():
    rng = np.random.default_rng(0)
    rewards = rng.standard_normal(10)
    values = rng.standard_normal(10)
    dones = [False] * 9 + [True]
    buf = make_buffer(rewards, values, dones)
    adv, ret = buf.compute_advantages(last_value=0.5)
    expected = reference_gae(rewards, values, dones, 0.5, 0.9, 0.8)
    np.testing.assert_allclose(adv, expected)
    np.testing.assert_allclose(ret, expected + values)


def test_gae_single_step_terminal():
    buf = make_buffer([1.0], [0.3], [True])
    adv, ret = buf.compute_advantages()
    assert adv[0] == pytest.approx(1.0 - 0.3)
    assert ret[0] == pytest.approx(1.0)


def test_gae_bootstrap_uses_last_value():
    buf = make_buffer([0.0], [0.0], [False], gamma=1.0, lam=1.0)
    adv, _ = buf.compute_advantages(last_value=2.0)
    assert adv[0] == pytest.approx(2.0)


def test_gae_resets_at_episode_boundary():
    # Episode boundary between t=1 and t=2: reward at t=2 must not leak back.
    rewards = [0.0, 0.0, 100.0]
    values = [0.0, 0.0, 0.0]
    dones = [False, True, True]
    buf = make_buffer(rewards, values, dones, gamma=1.0, lam=1.0)
    adv, _ = buf.compute_advantages()
    assert adv[0] == pytest.approx(0.0)
    assert adv[2] == pytest.approx(100.0)


def test_gamma_lambda_one_gives_monte_carlo():
    rewards = [1.0, 1.0, 1.0]
    values = [0.0, 0.0, 0.0]
    buf = make_buffer(rewards, values, [False, False, True], gamma=1.0, lam=1.0)
    adv, ret = buf.compute_advantages()
    np.testing.assert_allclose(ret, [3.0, 2.0, 1.0])


def test_empty_buffer_raises():
    with pytest.raises(ValueError):
        RolloutBuffer().compute_advantages()


def test_clear():
    buf = make_buffer([1.0], [0.0], [True])
    assert len(buf) == 1
    buf.clear()
    assert len(buf) == 0
